// Package decaf is a Go implementation of DECAF — the Distributed,
// Extensible Collaborative Application Framework of Strom, Banavar,
// Miller, Prakash and Ward, "Concurrency Control and View Notification
// Algorithms for Collaborative Replicated Objects" (ICDCS 1997 / IEEE
// Trans. Computers 47(4), 1998).
//
// DECAF extends the Model-View-Controller paradigm for synchronous
// groupware. Applications hold typed model objects (Int, Float, String,
// Bool, List, Tuple, Association) that can join replica relationships
// with model objects in other applications. Transactions atomically read
// and update several model objects; updates propagate optimistically to
// all replicas and are validated at each object's primary copy using
// read-committed (RC), read-latest (RL) and no-conflict (NC) guesses.
// Conflicted transactions abort and re-execute automatically. Views
// attach to model objects and are notified with consistent snapshots —
// optimistically (immediately, possibly of uncommitted state, with a
// later commit notification) or pessimistically (only committed state, in
// monotonic order).
//
// A minimal two-party session:
//
//	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 5 * time.Millisecond})
//	alice, _ := decaf.Dial(net, 1)
//	bob, _ := decaf.Dial(net, 2)
//	defer alice.Close()
//	defer bob.Close()
//
//	counterA, _ := alice.NewInt("counter")
//	counterB, _ := bob.NewInt("counter")
//	bob.JoinObject(counterB, 1, counterA.Ref().ID()).Wait()
//
//	alice.ExecuteFunc(func(tx *decaf.Tx) error {
//		counterA.Set(tx, counterA.Value(tx)+1)
//		return nil
//	}).Wait()
package decaf

import (
	"log/slog"
	"time"

	"decaf/internal/engine"
	"decaf/internal/obs"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// SiteID identifies one collaborating application instance. IDs must be
// unique across a collaboration and nonzero.
type SiteID = vtime.SiteID

// VT is a virtual time: a Lamport clock value with a site tie-breaker.
// Transactions and snapshots are totally ordered by VT.
type VT = vtime.VT

// Stats are a site's monotonic event counters.
type Stats = engine.Stats

// Result is the final outcome of a transaction.
type Result = engine.Result

// Options tune a Site.
type Options struct {
	// Logger receives engine debug logs (nil disables).
	Logger *slog.Logger
	// MaxRetries bounds automatic re-execution after conflicts
	// (default engine.DefaultMaxRetries).
	MaxRetries int
	// RetryDelay inserts a pause before re-executing a conflicted
	// transaction (default: immediate, as in the paper).
	RetryDelay time.Duration
	// DisableDelegation turns off the delegated-commit optimization
	// (paper §3.1) — an ablation switch.
	DisableDelegation bool
	// DisableEagerConfirm turns off the eager snapshot confirmation
	// (paper §5.1.2) — an ablation switch.
	DisableEagerConfirm bool
	// DisableFastPath turns off the commutative fast path — an ablation
	// switch: purely commutative transactions (Add, List.InsertAfter)
	// then commit via the ordinary guess/confirm protocol.
	DisableFastPath bool
	// CommitWorkers sizes the engine's sharded commit pipeline (0 uses
	// GOMAXPROCS; values <= 1 keep remote-write handling fully serial on
	// the event loop).
	CommitWorkers int
	// NotifyQueueLimit bounds the view/abort notification queue; past
	// it, notifications are dropped and counted rather than blocking
	// the engine (0 uses engine.DefaultNotifyQueueLimit).
	NotifyQueueLimit int
	// Observer receives the site's metrics, VT-stamped trace events, and
	// debug state (nil: counters still count, tracing and wall-clock
	// timing are off). Share one Observer with the site's transport
	// (TCPOptions.Observer) so a single ServeDebug scrape covers both.
	Observer *Observer
}

// Observer bundles a site's metrics registry, transaction trace ring,
// and debug state sources. Create with NewObserver, pass it via
// Options.Observer (and TCPOptions.Observer), and expose it with
// ServeDebug.
type Observer = obs.Observer

// ObserverConfig tunes an Observer; see obs.Config.
type ObserverConfig = obs.Config

// Metrics is a registry of named counters, gauges, and histograms with
// a Prometheus text exposition.
type Metrics = obs.Registry

// DebugServer is a running debug HTTP server; Close releases it.
type DebugServer = obs.DebugServer

// NewObserver creates an Observer with tracing and timing enabled.
func NewObserver() *Observer { return obs.New() }

// NewObserverConfig creates an Observer with explicit configuration.
func NewObserverConfig(cfg ObserverConfig) *Observer { return obs.NewWithConfig(cfg) }

// ServeDebug serves an Observer over HTTP on addr: Prometheus text
// metrics at /metrics, a JSON state dump at /debug/decaf/state,
// VT-stamped transaction spans at /debug/decaf/trace, and pprof under
// /debug/pprof/.
func ServeDebug(addr string, o *Observer) (*DebugServer, error) { return obs.Serve(addr, o) }

// Site is a collaborating application instance: it hosts model objects,
// runs transactions, exchanges update and confirmation messages with peer
// sites, and drives view notifications. Create one with NewSite or Dial
// and release it with Close.
type Site struct {
	eng *engine.Site
}

// NewSite attaches a site to a transport endpoint. The site is started
// and ready for use.
func NewSite(ep transport.Endpoint, opts Options) *Site {
	s := &Site{eng: engine.NewSite(ep, engine.Options{
		Logger:              opts.Logger,
		MaxRetries:          opts.MaxRetries,
		RetryDelay:          opts.RetryDelay,
		DisableDelegation:   opts.DisableDelegation,
		DisableEagerConfirm: opts.DisableEagerConfirm,
		DisableFastPath:     opts.DisableFastPath,
		CommitWorkers:       opts.CommitWorkers,
		NotifyQueueLimit:    opts.NotifyQueueLimit,
		Observer:            opts.Observer,
	})}
	s.eng.Start()
	return s
}

// Dial attaches a new site with the given ID to a simulated network.
func Dial(net *SimNetwork, id SiteID) (*Site, error) {
	ep, err := net.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return NewSite(ep, Options{}), nil
}

// DialOptions is Dial with explicit Options.
func DialOptions(net *SimNetwork, id SiteID, opts Options) (*Site, error) {
	ep, err := net.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return NewSite(ep, opts), nil
}

// ID returns the site identifier.
func (s *Site) ID() SiteID { return s.eng.ID() }

// Stats returns a copy of the site's counters.
func (s *Site) Stats() Stats { return s.eng.Stats() }

// Metrics returns the site's metrics registry (live — values keep
// moving as the site runs). Sites created without an Observer get a
// private registry backing Stats.
func (s *Site) Metrics() *Metrics { return s.eng.Observer().Metrics() }

// Observer returns the site's observability bundle.
func (s *Site) Observer() *Observer { return s.eng.Observer() }

// Close stops the site. In-flight transactions are abandoned.
func (s *Site) Close() { s.eng.Stop() }

// Engine exposes the underlying engine site for advanced integrations
// (benchmarks, protocol inspection). Most applications never need it.
func (s *Site) Engine() *engine.Site { return s.eng }

// ---------------------------------------------------------------------------
// Simulated network re-exports.
// ---------------------------------------------------------------------------

// SimConfig parameterizes a simulated network: Latency is the one-way
// point-to-point message latency (the paper's t), Jitter an added uniform
// random delay, Seed its source.
type SimConfig struct {
	Latency   time.Duration
	Jitter    time.Duration
	Seed      int64
	LatencyFn func(from, to SiteID) time.Duration
}

// SimNetwork is an in-memory network with configurable latency, used for
// simulations, tests, and the paper's experiments.
type SimNetwork struct {
	inner *transport.Network
}

// NewSimNetwork creates a simulated network.
func NewSimNetwork(cfg SimConfig) *SimNetwork {
	return &SimNetwork{inner: transport.NewNetwork(transport.Config{
		Latency:   cfg.Latency,
		Jitter:    cfg.Jitter,
		Seed:      cfg.Seed,
		LatencyFn: cfg.LatencyFn,
	})}
}

// Kill simulates a fail-stop crash of a site: survivors receive a failure
// notification and run the paper's §3.4 recovery.
func (n *SimNetwork) Kill(id SiteID) { n.inner.Kill(id) }

// Partition silently blocks traffic between two sites; Heal restores it.
func (n *SimNetwork) Partition(a, b SiteID) { n.inner.Partition(a, b) }

// Heal removes a partition.
func (n *SimNetwork) Heal(a, b SiteID) { n.inner.Heal(a, b) }

// Close shuts the network down.
func (n *SimNetwork) Close() { n.inner.Close() }

// ListenTCP starts a real TCP endpoint for site on addr; peers maps other
// site IDs to dialable addresses. Pass the result to NewSite.
func ListenTCP(site SiteID, addr string, peers map[SiteID]string) (*transport.TCP, error) {
	return transport.ListenTCP(site, addr, peers)
}

// TCPOptions tunes a TCP endpoint: queue and batch sizes, the suspicion
// policy governing reconnect backoff and failure escalation, keepalive
// probing, and fault injection. See transport.TCPOptions.
type TCPOptions = transport.TCPOptions

// SuspicionPolicy controls when connection trouble with a peer escalates
// into a fail-stop verdict. See transport.SuspicionPolicy.
type SuspicionPolicy = transport.SuspicionPolicy

// Faults injects network faults (refused dials, killed connections,
// dropped or delayed frames) for tests and benchmarks.
type Faults = transport.Faults

// NewFaults returns an empty fault-injection harness.
func NewFaults() *Faults { return transport.NewFaults() }

// ListenTCPOptions is ListenTCP with explicit options.
func ListenTCPOptions(site SiteID, addr string, peers map[SiteID]string, opts TCPOptions) (*transport.TCP, error) {
	return transport.ListenTCPOptions(site, addr, peers, opts)
}

// ---------------------------------------------------------------------------
// Transactions.
// ---------------------------------------------------------------------------

// Tx is the execution context passed to a transaction's Execute method.
// All model-object reads and writes go through it so the engine can track
// the read and write sets for optimistic concurrency control. A Tx is
// valid only for the duration of Execute.
type Tx struct {
	inner *engine.Tx
}

// VT returns the transaction's virtual time.
func (tx *Tx) VT() VT { return tx.inner.VT() }

// Transaction is a user-defined atomic action, the analogue of the
// paper's transaction objects (§2.4): Execute may read and write any
// model objects of its site; its effects commit or abort atomically.
// Returning an error (or panicking) aborts without retry; concurrency
// conflicts abort and re-execute automatically.
type Transaction interface {
	Execute(tx *Tx) error
}

// AbortHandler is optionally implemented by Transactions that want the
// paper's handleAbort() callback on programmed aborts.
type AbortHandler interface {
	HandleAbort(err error)
}

// Pending tracks a submitted transaction.
type Pending struct {
	h *engine.Handle
}

// Applied is closed when the transaction's updates are applied locally
// (the moment optimistic views can see them).
func (p *Pending) Applied() <-chan struct{} { return p.h.Applied() }

// Done delivers the final Result.
func (p *Pending) Done() <-chan Result { return p.h.Done() }

// Wait blocks for the final Result.
func (p *Pending) Wait() Result { return p.h.Wait() }

// Execute submits a transaction for atomic execution at this site.
func (s *Site) Execute(t Transaction) *Pending {
	txn := &engine.Txn{
		Execute: func(etx *engine.Tx) error {
			return t.Execute(&Tx{inner: etx})
		},
	}
	if ah, ok := t.(AbortHandler); ok {
		txn.OnAbort = ah.HandleAbort
	}
	return &Pending{h: s.eng.Submit(txn)}
}

// ExecuteFunc submits a function as a transaction.
func (s *Site) ExecuteFunc(fn func(tx *Tx) error) *Pending {
	return &Pending{h: s.eng.Submit(&engine.Txn{
		Execute: func(etx *engine.Tx) error { return fn(&Tx{inner: etx}) },
	})}
}

// errors re-exported from the engine.
var (
	// ErrAborted wraps the user error of a programmed abort.
	ErrAborted = engine.ErrAborted
	// ErrTooManyRetries reports an exhausted automatic retry budget.
	ErrTooManyRetries = engine.ErrTooManyRetries
)

// kindOf maps engine kinds to facade constructors; used when wrapping
// children of composites.
func wrapRef(s *Site, ref engine.ObjRef) Object {
	switch ref.Kind() {
	case wire.KindInt:
		return &Int{base{s, ref}}
	case wire.KindFloat:
		return &Float{base{s, ref}}
	case wire.KindString:
		return &String{base{s, ref}}
	case wire.KindBool:
		return &Bool{base{s, ref}}
	case wire.KindList:
		return &List{base{s, ref}}
	case wire.KindTuple:
		return &Tuple{base{s, ref}}
	case wire.KindAssociation:
		return &Association{base{s, ref}}
	default:
		return nil
	}
}
