package decaf

import (
	"decaf/internal/engine"
	"decaf/internal/ids"
)

// View is a user-defined observer of model objects (paper §2.5). When an
// attached model object changes, the view's Update method is called with
// a consistent state snapshot. Update may render, print, or initiate new
// transactions; it runs on the site's notifier goroutine, never
// concurrently with itself.
type View interface {
	Update(s *Snapshot)
}

// Committer is optionally implemented by optimistic views to receive the
// paper's commit() notification: the most recent update notification is
// known to have shown committed state (§4.1).
type Committer interface {
	Commit()
}

// ViewMode selects optimistic or pessimistic notification (paper §2.5.1).
type ViewMode int

// View modes.
const (
	// Optimistic views are notified as soon as a transaction executes
	// locally — possibly of state that is later rolled back — and
	// receive Commit when the snapshot is known committed. They trade
	// accuracy and the risk of wasted work for responsiveness.
	Optimistic ViewMode = ViewMode(engine.Optimistic)
	// Pessimistic views never see uncommitted or inconsistent values and
	// see all committed values in monotonic order of applied updates.
	Pessimistic ViewMode = ViewMode(engine.Pessimistic)
)

// Snapshot is an immutable consistent snapshot of the attached model
// objects at a single virtual time, delivered to View.Update. Snapshots
// behave as if read instantaneously with respect to all transactions
// (paper §2.5).
type Snapshot struct {
	data    engine.SnapshotData
	changed map[ids.ObjectID]struct{}
}

// newSnapshot builds the changed-ID set once so Changed is O(1) per
// query; built eagerly so concurrent Changed calls need no lock.
func newSnapshot(d engine.SnapshotData) *Snapshot {
	s := &Snapshot{data: d}
	if len(d.Changed) > 0 {
		s.changed = make(map[ids.ObjectID]struct{}, len(d.Changed))
		for _, id := range d.Changed {
			s.changed[id] = struct{}{}
		}
	}
	return s
}

// VT returns the snapshot's virtual time.
func (s *Snapshot) VT() VT { return s.data.TS }

// IsCommitted reports whether the snapshot is known to contain only
// committed state (always true for pessimistic views).
func (s *Snapshot) IsCommitted() bool { return s.data.Committed }

// Changed reports whether obj's value changed since the view's previous
// notification (paper §2.5: notifications carry the list of changed
// objects so views can recompute incrementally).
func (s *Snapshot) Changed(obj Object) bool {
	_, ok := s.changed[obj.Ref().ID()]
	return ok
}

// value returns the raw snapshot value for an object.
func (s *Snapshot) value(id ids.ObjectID) any {
	return s.data.Values[id]
}

// Int reads an attached Int's value at the snapshot time.
func (s *Snapshot) Int(o *Int) int64 {
	n, _ := s.value(o.ID()).(int64)
	return n
}

// Float reads an attached Float's value at the snapshot time.
func (s *Snapshot) Float(o *Float) float64 {
	n, _ := s.value(o.ID()).(float64)
	return n
}

// String reads an attached String's value at the snapshot time.
func (s *Snapshot) String(o *String) string {
	n, _ := s.value(o.ID()).(string)
	return n
}

// Bool reads an attached Bool's value at the snapshot time.
func (s *Snapshot) Bool(o *Bool) bool {
	n, _ := s.value(o.ID()).(bool)
	return n
}

// List reads an attached List's materialized structure at the snapshot
// time ([]any of scalars, []any, map[string]any).
func (s *Snapshot) List(o *List) []any {
	n, _ := s.value(o.ID()).([]any)
	return n
}

// Tuple reads an attached Tuple's materialized structure.
func (s *Snapshot) Tuple(o *Tuple) map[string]any {
	n, _ := s.value(o.ID()).(map[string]any)
	return n
}

// Relationships reads an attached Association's value.
func (s *Snapshot) Relationships(a *Association) []Relationship {
	rels, _ := s.value(a.ID()).([]Relationship)
	return rels
}

// Attachment identifies an attached view; Detach stops notifications.
type Attachment struct {
	inner *engine.ViewHandle
}

// Detach removes the view from its model objects.
func (a *Attachment) Detach() {
	if a != nil {
		a.inner.Detach()
	}
}

// Attach attaches a view to one or more model objects at this site. A
// view attached to a composite is also notified of changes to the
// composite's children (§2.5). The view immediately receives an initial
// Update with the current state.
func (s *Site) Attach(v View, mode ViewMode, objs ...Object) (*Attachment, error) {
	refs := make([]engine.ObjRef, 0, len(objs))
	for _, o := range objs {
		refs = append(refs, o.Ref())
	}
	fns := engine.ViewFuncs{
		Update: func(d engine.SnapshotData) { v.Update(newSnapshot(d)) },
	}
	if c, ok := v.(Committer); ok {
		fns.Commit = c.Commit
	}
	h, err := s.eng.AttachView(refs, engine.ViewMode(mode), fns)
	if err != nil {
		return nil, err
	}
	return &Attachment{inner: h}, nil
}

// ViewFunc adapts a function to the View interface.
type ViewFunc func(s *Snapshot)

// Update implements View.
func (f ViewFunc) Update(s *Snapshot) { f(s) }
