package decaf_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"decaf"
)

// TestDebugServerSmoke drives a small two-site session with an Observer
// attached and checks the three debug endpoints end to end: Prometheus
// metrics carry the transaction and view counters, /debug/decaf/state
// reports a running engine, and /debug/decaf/trace shows a committed
// VT-stamped span. This is the same wiring the -debug-addr flags of
// decaf-bench and decaf-chat use.
func TestDebugServerSmoke(t *testing.T) {
	o := decaf.NewObserver()
	srv, err := decaf.ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	s1, err := decaf.DialOptions(net, 1, decaf.Options{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := decaf.Dial(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	o1, _ := s1.NewInt("counter")
	o2, _ := s2.NewInt("counter")
	if res := s2.JoinObject(o2, 1, o1.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}

	notified := make(chan struct{}, 16)
	view := decaf.ViewFunc(func(s *decaf.Snapshot) {
		select {
		case notified <- struct{}{}:
		default:
		}
	})
	if _, err := s1.Attach(view, decaf.Pessimistic, o1); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		res := s1.ExecuteFunc(func(tx *decaf.Tx) error {
			o1.Set(tx, o1.Value(tx)+1)
			return nil
		}).Wait()
		if !res.Committed {
			t.Fatalf("txn %d: %+v", i, res)
		}
	}
	select {
	case <-notified:
	case <-time.After(3 * time.Second):
		t.Fatal("pessimistic view never notified")
	}

	base := fmt.Sprintf("http://%s", srv.Addr())

	metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"decaf_txn_submitted_total",
		"decaf_txn_committed_total",
		"decaf_txn_commit_latency_seconds_bucket",
		"decaf_view_pess_notifications_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if v, ok := s1.Metrics().Value("decaf_txn_committed_total"); !ok || v < 3 {
		t.Errorf("committed counter = %v (ok=%v), want >= 3", v, ok)
	}

	var state map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/decaf/state")), &state); err != nil {
		t.Fatalf("decode state: %v", err)
	}
	eng, ok := state["engine"].(map[string]any)
	if !ok {
		t.Fatalf("state has no engine section: %v", state)
	}
	if running, _ := eng["running"].(bool); !running {
		t.Errorf("engine state reports running=%v", eng["running"])
	}

	var trace struct {
		Enabled bool `json:"enabled"`
		Spans   []struct {
			Outcome string `json:"outcome"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/decaf/trace")), &trace); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if !trace.Enabled {
		t.Error("trace reports disabled")
	}
	committed := 0
	for _, sp := range trace.Spans {
		if sp.Outcome == "committed" {
			committed++
		}
	}
	if committed < 3 {
		t.Errorf("trace shows %d committed spans, want >= 3", committed)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body)
}
