package decaf

import (
	"decaf/internal/engine"
	"decaf/internal/wire"
)

// Composite model objects (paper §2.1): lists are linearly indexed
// sequences of embedded children; tuples are collections of children
// indexed by a string key. Updates to embedded children propagate
// indirectly through the composite root's replication graph using
// VT-tagged paths (paper §3.2).

// List is a linearly indexed composite model object.
type List struct{ base }

// NewList creates an empty list model object.
func (s *Site) NewList(name string) (*List, error) {
	ref, err := s.eng.CreateObject(engine.KindList, name, nil)
	if err != nil {
		return nil, err
	}
	return &List{base{s, ref}}, nil
}

// Len returns the number of elements, recording a structural read.
func (l *List) Len(tx *Tx) int {
	n, _ := tx.inner.ListLen(l.ref)
	return n
}

// At returns the child object at index i (nil when out of range).
func (l *List) At(tx *Tx, i int) Object {
	ref, err := tx.inner.ListGet(l.ref, i)
	if err != nil {
		return nil
	}
	return wrapRef(l.site, ref)
}

// Insert embeds a new child of the given kind at index i and returns it.
//
// Index-based inserts race under concurrent submitters: two sites that
// both insert "at index 2" resolve their index against different local
// states, so the elements land relative to whatever each site saw. For
// concurrent editing, anchor on an element instead with InsertAfter.
func (l *List) Insert(tx *Tx, i int, kind Kind, initial any) Object {
	ref, err := tx.inner.ListInsert(l.ref, i, wire.ChildDecl{Kind: kind.k, Value: normalizeValue(initial)})
	if err != nil {
		return nil
	}
	return wrapRef(l.site, ref)
}

// ElemTag is the stable identity of a list element, independent of its
// current index. Obtain one with TagAt and use it as the anchor of
// InsertAfter.
type ElemTag = wire.ElemTag

// TagAt returns the stable tag of the element at index i, recording a
// structural read.
func (l *List) TagAt(tx *Tx, i int) (ElemTag, error) {
	return tx.inner.ListTagAt(l.ref, i)
}

// InsertAfter embeds a new child directly after the element tagged
// `after` (the zero ElemTag anchors at the head) and returns it. The
// position names an element rather than an index, so concurrent inserts
// at different sites interleave deterministically — this is the
// sanctioned op for concurrent editing, and (when the transaction does
// nothing else) it commits on the commutative fast path without a
// primary round-trip.
func (l *List) InsertAfter(tx *Tx, after ElemTag, kind Kind, initial any) Object {
	ref, err := tx.inner.ListInsertAfter(l.ref, after, wire.ChildDecl{Kind: kind.k, Value: normalizeValue(initial)})
	if err != nil {
		return nil
	}
	return wrapRef(l.site, ref)
}

// Append embeds a new child at the end of the list and returns it.
func (l *List) Append(tx *Tx, kind Kind, initial any) Object {
	ref, err := tx.inner.ListAppend(l.ref, wire.ChildDecl{Kind: kind.k, Value: normalizeValue(initial)})
	if err != nil {
		return nil
	}
	return wrapRef(l.site, ref)
}

// AppendInt embeds a new Int child with the given initial value.
func (l *List) AppendInt(tx *Tx, v int64) *Int {
	o, _ := l.Append(tx, KindInt, v).(*Int)
	return o
}

// AppendString embeds a new String child with the given initial value.
func (l *List) AppendString(tx *Tx, v string) *String {
	o, _ := l.Append(tx, KindString, v).(*String)
	return o
}

// AppendFloat embeds a new Float child with the given initial value.
func (l *List) AppendFloat(tx *Tx, v float64) *Float {
	o, _ := l.Append(tx, KindFloat, v).(*Float)
	return o
}

// AppendList embeds a nested empty list.
func (l *List) AppendList(tx *Tx) *List {
	o, _ := l.Append(tx, KindList, nil).(*List)
	return o
}

// AppendTuple embeds a nested empty tuple.
func (l *List) AppendTuple(tx *Tx) *Tuple {
	o, _ := l.Append(tx, KindTuple, nil).(*Tuple)
	return o
}

// Remove deletes the element at index i.
func (l *List) Remove(tx *Tx, i int) error {
	return tx.inner.ListRemove(l.ref, i)
}

// Committed materializes the latest committed structure: a []any tree of
// scalar values, []any, and map[string]any.
func (l *List) Committed() []any {
	v, _ := l.site.eng.ReadCommitted(l.ref)
	out, _ := v.([]any)
	return out
}

// Current materializes the current (possibly uncommitted) structure.
func (l *List) Current() []any {
	v, _ := l.site.eng.ReadCurrent(l.ref)
	out, _ := v.([]any)
	return out
}

// Tuple is a key-indexed composite model object.
type Tuple struct{ base }

// NewTuple creates an empty tuple model object.
func (s *Site) NewTuple(name string) (*Tuple, error) {
	ref, err := s.eng.CreateObject(engine.KindTuple, name, nil)
	if err != nil {
		return nil, err
	}
	return &Tuple{base{s, ref}}, nil
}

// Keys returns the live keys, recording a structural read.
func (t *Tuple) Keys(tx *Tx) []string {
	keys, _ := tx.inner.TupleKeys(t.ref)
	return keys
}

// Get returns the child under key (nil when absent).
func (t *Tuple) Get(tx *Tx, key string) Object {
	ref, ok, err := tx.inner.TupleGet(t.ref, key)
	if err != nil || !ok {
		return nil
	}
	return wrapRef(t.site, ref)
}

// Set embeds (or replaces) a child of the given kind under key and
// returns it.
func (t *Tuple) Set(tx *Tx, key string, kind Kind, initial any) Object {
	ref, err := tx.inner.TupleSet(t.ref, key, wire.ChildDecl{Kind: kind.k, Value: normalizeValue(initial)})
	if err != nil {
		return nil
	}
	return wrapRef(t.site, ref)
}

// SetInt embeds an Int child under key.
func (t *Tuple) SetInt(tx *Tx, key string, v int64) *Int {
	o, _ := t.Set(tx, key, KindInt, v).(*Int)
	return o
}

// SetFloat embeds a Float child under key.
func (t *Tuple) SetFloat(tx *Tx, key string, v float64) *Float {
	o, _ := t.Set(tx, key, KindFloat, v).(*Float)
	return o
}

// SetString embeds a String child under key.
func (t *Tuple) SetString(tx *Tx, key string, v string) *String {
	o, _ := t.Set(tx, key, KindString, v).(*String)
	return o
}

// SetList embeds a nested empty list under key.
func (t *Tuple) SetList(tx *Tx, key string) *List {
	o, _ := t.Set(tx, key, KindList, nil).(*List)
	return o
}

// SetTuple embeds a nested empty tuple under key.
func (t *Tuple) SetTuple(tx *Tx, key string) *Tuple {
	o, _ := t.Set(tx, key, KindTuple, nil).(*Tuple)
	return o
}

// Remove deletes the child under key.
func (t *Tuple) Remove(tx *Tx, key string) error {
	return tx.inner.TupleRemove(t.ref, key)
}

// Committed materializes the latest committed structure.
func (t *Tuple) Committed() map[string]any {
	v, _ := t.site.eng.ReadCommitted(t.ref)
	out, _ := v.(map[string]any)
	return out
}

// Current materializes the current (possibly uncommitted) structure.
func (t *Tuple) Current() map[string]any {
	v, _ := t.site.eng.ReadCurrent(t.ref)
	out, _ := v.(map[string]any)
	return out
}

// Kind selects a model-object kind for composite embedding.
type Kind struct{ k wire.ChildKind }

// Embeddable model-object kinds.
var (
	KindInt    = Kind{wire.KindInt}
	KindFloat  = Kind{wire.KindFloat}
	KindString = Kind{wire.KindString}
	KindBool   = Kind{wire.KindBool}
	KindList   = Kind{wire.KindList}
	KindTuple  = Kind{wire.KindTuple}
)

// normalizeValue coerces convenient Go literals to the engine's scalar
// representation (int -> int64).
func normalizeValue(v any) any {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int32:
		return int64(n)
	default:
		return v
	}
}
