package decaf_test

// Benchmarks regenerating the paper's evaluation (§5), one per
// table/figure — see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results. ns/op is the measured latency where the benchmark
// name says "Latency"; custom metrics carry rates. The full sweeps with
// printed tables live in cmd/decaf-bench.

import (
	"fmt"
	"testing"
	"time"

	"decaf"
	"decaf/internal/bench"
	"decaf/internal/gvt"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// benchPair builds two joined Int replicas over a simulated network.
func benchPair(b *testing.B, t time.Duration) (*decaf.Site, *decaf.Site, *decaf.Int, *decaf.Int, func()) {
	b.Helper()
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: t})
	s1, err := decaf.Dial(net, 1)
	if err != nil {
		b.Fatal(err)
	}
	s2, err := decaf.Dial(net, 2)
	if err != nil {
		b.Fatal(err)
	}
	o1, _ := s1.NewInt("x")
	o2, _ := s2.NewInt("x")
	if res := s2.JoinObject(o2, 1, o1.Ref().ID()).Wait(); !res.Committed {
		b.Fatalf("join: %+v", res)
	}
	cleanup := func() {
		s1.Close()
		s2.Close()
		net.Close()
	}
	return s1, s2, o1, o2, cleanup
}

// BenchmarkLocalTxnThroughput measures raw transaction execution and
// commit speed with no replication (the framework-overhead floor).
func BenchmarkLocalTxnThroughput(b *testing.B) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	s, err := decaf.Dial(net, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { s.Close(); net.Close() }()
	o, _ := s.NewInt("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.ExecuteFunc(func(tx *decaf.Tx) error {
			o.Set(tx, o.Value(tx)+1)
			return nil
		}).Wait()
		if !res.Committed {
			b.Fatalf("txn failed: %+v", res)
		}
	}
}

// BenchmarkReplicatedTxnThroughput measures commit throughput for a
// two-site replicated object with negligible network latency.
func BenchmarkReplicatedTxnThroughput(b *testing.B) {
	_, s2, _, o2, cleanup := benchPair(b, 0)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s2.ExecuteFunc(func(tx *decaf.Tx) error {
			o2.Set(tx, int64(i))
			return nil
		}).Wait()
		if !res.Committed {
			b.Fatalf("txn failed: %+v", res)
		}
	}
}

// BenchmarkObsOverhead measures the same replicated commit path as
// BenchmarkReplicatedTxnThroughput but with full observability enabled
// (metrics + tracing + wall-clock latency stamps on both sites); the
// ns/op delta between the two is the internal/obs hot-path cost.
// `decaf-bench -exp e11` runs the paired comparison, writes it to
// BENCH_obs.json, and enforces the ≤3% budget of DESIGN.md §9.
func BenchmarkObsOverhead(b *testing.B) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	s1, err := decaf.DialOptions(net, 1, decaf.Options{Observer: decaf.NewObserver()})
	if err != nil {
		b.Fatal(err)
	}
	s2, err := decaf.DialOptions(net, 2, decaf.Options{Observer: decaf.NewObserver()})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { s1.Close(); s2.Close(); net.Close() }()
	o1, _ := s1.NewInt("x")
	o2, _ := s2.NewInt("x")
	if res := s2.JoinObject(o2, 1, o1.Ref().ID()).Wait(); !res.Committed {
		b.Fatalf("join: %+v", res)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s2.ExecuteFunc(func(tx *decaf.Tx) error {
			o2.Set(tx, int64(i))
			return nil
		}).Wait()
		if !res.Committed {
			b.Fatalf("txn failed: %+v", res)
		}
	}
}

// BenchmarkE1CommitLatency regenerates §5.1.1: ns/op is the origin-site
// commit latency; with t=2ms the model says 4ms (2t) for a remote
// primary and ~0 for a local primary.
func BenchmarkE1CommitLatency(b *testing.B) {
	const t = 2 * time.Millisecond
	b.Run("remote-primary-2t", func(b *testing.B) {
		_, s2, _, o2, cleanup := benchPair(b, t) // primary at site 1
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := s2.ExecuteFunc(func(tx *decaf.Tx) error {
				o2.Set(tx, int64(i))
				return nil
			}).Wait(); !res.Committed {
				b.Fatal("txn failed")
			}
		}
	})
	b.Run("local-primary-0t", func(b *testing.B) {
		s1, _, o1, _, cleanup := benchPair(b, t) // primary at site 1
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := s1.ExecuteFunc(func(tx *decaf.Tx) error {
				o1.Set(tx, int64(i))
				return nil
			}).Wait(); !res.Committed {
				b.Fatal("txn failed")
			}
		}
	})
}

// BenchmarkE2PessimisticViewLatency regenerates §5.1.2 at the origin:
// ns/op is the time from execution until the pessimistic view is
// notified (model: 2t).
func BenchmarkE2PessimisticViewLatency(b *testing.B) {
	const t = 2 * time.Millisecond
	_, s2, _, o2, cleanup := benchPair(b, t)
	defer cleanup()

	notify := make(chan int64, 64)
	v := decaf.ViewFunc(func(s *decaf.Snapshot) {
		select {
		case notify <- s.Int(o2):
		default:
		}
	})
	if _, err := s2.Attach(v, decaf.Pessimistic, o2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := int64(i + 1)
		s2.ExecuteFunc(func(tx *decaf.Tx) error {
			o2.Set(tx, want)
			return nil
		})
		for got := range notify {
			if got == want {
				break
			}
		}
	}
}

// BenchmarkE4LostUpdates regenerates the §5.2.2 blind-write benchmark:
// the custom metric lost% is the optimistic-view lost-update rate under
// two-party load.
func BenchmarkE4LostUpdates(b *testing.B) {
	cfg := bench.DefaultLoadConfig()
	cfg.Duration = 500 * time.Millisecond
	b.ResetTimer()
	var lost, notified uint64
	for i := 0; i < b.N; i++ {
		l, n, _, err := bench.RunE4ForBench(cfg, 20)
		if err != nil {
			b.Fatal(err)
		}
		lost += l
		notified += n
	}
	if lost+notified > 0 {
		b.ReportMetric(100*float64(lost)/float64(lost+notified), "lost%")
	}
}

// BenchmarkE5Rollbacks regenerates the §5.2.2 read-write benchmark: the
// custom metric rollback% is the conflict-abort rate.
func BenchmarkE5Rollbacks(b *testing.B) {
	cfg := bench.DefaultLoadConfig()
	cfg.Duration = 300 * time.Millisecond
	b.ResetTimer()
	var commits, rollbacks uint64
	for i := 0; i < b.N; i++ {
		c, r, _, err := bench.RunE5ForBench(cfg, 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		commits += c
		rollbacks += r
	}
	if commits+rollbacks > 0 {
		b.ReportMetric(100*float64(rollbacks)/float64(commits+rollbacks), "rollback%")
	}
}

// BenchmarkE6Scalability regenerates §5.1.3: ns/op is commit latency as
// the network grows. DECAF stays flat (~2t); the GVT sweep grows with N.
func BenchmarkE6Scalability(b *testing.B) {
	const t = 2 * time.Millisecond
	for _, n := range []int{3, 9, 17} {
		b.Run(fmt.Sprintf("decaf-n%d", n), func(b *testing.B) {
			net := decaf.NewSimNetwork(decaf.SimConfig{Latency: t})
			defer net.Close()
			var sites []*decaf.Site
			for i := 1; i <= n; i++ {
				s, err := decaf.Dial(net, vtime.SiteID(i))
				if err != nil {
					b.Fatal(err)
				}
				sites = append(sites, s)
			}
			defer func() {
				for _, s := range sites {
					s.Close()
				}
			}()
			// One replica set among sites 1..3; the rest of the network
			// exists but does not participate.
			root, _ := sites[0].NewInt("x")
			var mine *decaf.Int
			for i := 2; i <= 3; i++ {
				o, _ := sites[i-1].NewInt("x")
				if res := sites[i-1].JoinObject(o, 1, root.Ref().ID()).Wait(); !res.Committed {
					b.Fatal("join failed")
				}
				if i == 2 {
					mine = o
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := sites[1].ExecuteFunc(func(tx *decaf.Tx) error {
					mine.Set(tx, int64(i))
					return nil
				}).Wait(); !res.Committed {
					b.Fatal("txn failed")
				}
			}
		})
		b.Run(fmt.Sprintf("gvt-n%d", n), func(b *testing.B) {
			net := transport.NewNetwork(transport.Config{Latency: t})
			defer net.Close()
			ring := make([]vtime.SiteID, n)
			for i := range ring {
				ring[i] = vtime.SiteID(i + 1)
			}
			var sites []*gvt.Site
			for _, id := range ring {
				ep, err := net.Endpoint(id)
				if err != nil {
					b.Fatal(err)
				}
				sites = append(sites, gvt.NewSite(ep, ring))
			}
			for _, s := range sites {
				s.Start()
			}
			defer func() {
				for _, s := range sites {
					s.Stop()
				}
			}()
			<-sites[1].Write("warm", int64(0)).Done()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				<-sites[1].Write("x", int64(i)).Done()
			}
		})
	}
}

// BenchmarkE7CentralizedEcho regenerates the §1 responsiveness baseline:
// ns/op is the centralized round-trip (model 2t) versus DECAF's local
// optimistic notification measured in BenchmarkE7DecafLocal.
func BenchmarkE7CentralizedEcho(b *testing.B) {
	const t = 2 * time.Millisecond
	d, err := bench.RunE7CentralizedForBench(t, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.Microseconds())/1000, "echo_ms")
	for i := 0; i < b.N; i++ {
		_ = i // the measurement above is per-run; keep the loop trivial
	}
}

// BenchmarkE7DecafLocal measures the replicated architecture's local
// action visibility (optimistic view at the origin).
func BenchmarkE7DecafLocal(b *testing.B) {
	const t = 2 * time.Millisecond
	d, err := bench.RunE7DecafForBench(t, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.Microseconds())/1000, "local_ms")
	for i := 0; i < b.N; i++ {
		_ = i
	}
}
