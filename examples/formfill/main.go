// Formfill: the paper's motivating insurance scenario — "groupware
// applications that allow an insurance agent to help clients understand
// insurance products ... and to fill out insurance forms" (§5.2.1).
//
// The form is a replicated Tuple whose fields are embedded scalar model
// objects; the agent and the client edit different fields concurrently
// (no conflicts), then race on the same field (optimistic concurrency
// control serializes them). The agent's GUI is an optimistic view for
// responsiveness; the insurer's back office uses a pessimistic view so
// the record of the form only ever contains committed states.
//
// This example also demonstrates the §2.6 collaboration-establishment
// flow: the agent publishes an invitation through an association object,
// and the client imports it to discover and join the form.
//
// Run with: go run ./examples/formfill
package main

import (
	"fmt"
	"sync"
	"time"

	"decaf"
)

func main() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 12 * time.Millisecond})
	defer net.Close()
	agent, _ := decaf.Dial(net, 1)
	client, _ := decaf.Dial(net, 2)
	backOffice, _ := decaf.Dial(net, 3)
	defer agent.Close()
	defer client.Close()
	defer backOffice.Close()

	// The agent builds the form and publishes it through an association.
	form, _ := agent.NewTuple("policy-form")
	must(agent.ExecuteFunc(func(tx *decaf.Tx) error {
		form.SetString(tx, "name", "")
		form.SetString(tx, "product", "term-life")
		form.SetInt(tx, "coverage", 100000)
		form.SetString(tx, "notes", "")
		return nil
	}).Wait())

	assoc, _ := agent.NewAssociation("policy-session")
	must(assoc.Define("form", form, "the insurance form").Wait())
	inv, err := assoc.Invitation("help me fill my policy")
	if err != nil {
		panic(err)
	}
	fmt.Printf("agent published invitation: site=%v assoc=%v\n", inv.Site, inv.Assoc)

	// Client and back office import the invitation and join.
	joinForm := func(s *decaf.Site, who string) *decaf.Tuple {
		a, p, err := s.Import(inv, "imported "+who)
		if err != nil {
			panic(err)
		}
		must(p.Wait())
		f, _ := s.NewTuple("policy-form")
		must(a.Join("form", f).Wait())
		fmt.Printf("%s joined the form (replicas now at %v)\n", who, f.ReplicaSites())
		return f
	}
	clientForm := joinForm(client, "client")
	backForm := joinForm(backOffice, "back-office")

	// Back office keeps a pessimistic record.
	var recMu sync.Mutex
	var record []string
	rec := decaf.ViewFunc(func(s *decaf.Snapshot) {
		recMu.Lock()
		defer recMu.Unlock()
		record = append(record, fmt.Sprintf("vt %-8s %v", s.VT(), s.Tuple(backForm)))
	})
	if _, err := backOffice.Attach(rec, decaf.Pessimistic, backForm); err != nil {
		panic(err)
	}

	// Agent GUI: optimistic for responsiveness.
	gui := decaf.ViewFunc(func(s *decaf.Snapshot) {
		state := "editing"
		if s.IsCommitted() {
			state = "saved"
		}
		_ = state // a real GUI would recolor; keep the console quiet
	})
	if _, err := agent.Attach(gui, decaf.Optimistic, form); err != nil {
		panic(err)
	}

	// Concurrent edits of DIFFERENT fields: no conflicts.
	fmt.Println("\n-- concurrent edits of different fields --")
	p1 := client.ExecuteFunc(func(tx *decaf.Tx) error {
		name := clientForm.Get(tx, "name").(*decaf.String)
		name.Set(tx, "Jane Doe")
		return nil
	})
	p2 := agent.ExecuteFunc(func(tx *decaf.Tx) error {
		notes := form.Get(tx, "notes").(*decaf.String)
		notes.Set(tx, "client prefers annual billing")
		return nil
	})
	r1, r2 := p1.Wait(), p2.Wait()
	fmt.Printf("client name edit: committed=%v retries=%d | agent notes edit: committed=%v retries=%d\n",
		r1.Committed, r1.Retries, r2.Committed, r2.Retries)

	// A race on the SAME field: read-modify-write increments of the
	// coverage; concurrency control serializes them so both apply.
	fmt.Println("\n-- racing read-modify-writes on the coverage field --")
	bump := func(s *decaf.Site, f *decaf.Tuple, by int64) *decaf.Pending {
		return s.ExecuteFunc(func(tx *decaf.Tx) error {
			cov := f.Get(tx, "coverage").(*decaf.Int)
			cov.Set(tx, cov.Value(tx)+by)
			return nil
		})
	}
	pa := bump(agent, form, 50000)
	pc := bump(client, clientForm, 25000)
	ra, rc := pa.Wait(), pc.Wait()
	fmt.Printf("agent +50000: committed=%v retries=%d | client +25000: committed=%v retries=%d\n",
		ra.Committed, ra.Retries, rc.Committed, rc.Retries)

	// Quiesce and show the final form everywhere.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if fmt.Sprint(form.Committed()) == fmt.Sprint(clientForm.Committed()) &&
			fmt.Sprint(form.Committed()) == fmt.Sprint(backForm.Committed()) {
			cov, _ := form.Committed()["coverage"].(int64)
			if cov == 175000 {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("\nfinal form (agent):  %v\n", form.Committed())
	fmt.Printf("final form (client): %v\n", clientForm.Committed())
	fmt.Printf("final form (office): %v\n", backForm.Committed())

	// The back-office record trails the committed state by the
	// notification protocol's confirmations; wait for the final entry.
	for waitUntil := time.Now().Add(2 * time.Second); time.Now().Before(waitUntil); {
		recMu.Lock()
		n := len(record)
		recMu.Unlock()
		if n >= 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	recMu.Lock()
	fmt.Printf("\nback-office record: %d committed states (monotonic, no rolled-back values)\n", len(record))
	for _, line := range record {
		fmt.Println("  " + line)
	}
	recMu.Unlock()
}

func must(res decaf.Result) {
	if !res.Committed {
		panic(fmt.Sprintf("transaction failed: %+v", res))
	}
}
