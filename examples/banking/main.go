// Banking: the paper's running example (Figs. 2 and 3).
//
// Two account model objects are replicated between a client application
// and an advisor application. XferTrans is the paper's Fig. 2 transaction
// object — it transfers a balance atomically across both accounts and
// aborts (with handleAbort) on overdraft. BalanceView is the Fig. 3
// optimistic view — it renders updates "in red" immediately (possibly
// uncommitted) and repaints "in black" on the commit notification; a
// pessimistic AuditView sees only committed, monotonically ordered state.
//
// Run with: go run ./examples/banking
package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"decaf"
)

// XferTrans is the paper's Fig. 2 transaction object.
type XferTrans struct {
	Ap, Bp  *decaf.Float
	XferAmt float64
}

// Execute implements decaf.Transaction.
func (x *XferTrans) Execute(tx *decaf.Tx) error {
	if x.Ap.Value(tx)-x.XferAmt >= 0 {
		x.Ap.Set(tx, x.Ap.Value(tx)-x.XferAmt)
		x.Bp.Set(tx, x.Bp.Value(tx)+x.XferAmt)
		return nil
	}
	return errors.New("can't transfer more than balance")
}

// HandleAbort implements decaf.AbortHandler (the paper's handleAbort()).
func (x *XferTrans) HandleAbort(err error) {
	fmt.Printf("  [handleAbort] transfer of %.2f rejected: %v\n", x.XferAmt, err)
}

// BalanceView is the paper's Fig. 3 optimistic view object.
type BalanceView struct {
	name string
	bp   *decaf.Float

	mu    sync.Mutex
	color string
}

// Update implements decaf.View: show the (possibly uncommitted) balance
// in red so the user is aware of its optimistic nature.
func (v *BalanceView) Update(s *decaf.Snapshot) {
	v.mu.Lock()
	v.color = "red"
	v.mu.Unlock()
	fmt.Printf("  [%s optimistic] balance %.2f shown in RED (uncertain)\n", v.name, s.Float(v.bp))
}

// Commit implements decaf.Committer: the shown value is now committed.
func (v *BalanceView) Commit() {
	v.mu.Lock()
	v.color = "black"
	v.mu.Unlock()
	fmt.Printf("  [%s optimistic] repainted BLACK (committed)\n", v.name)
}

// AuditView is a pessimistic view: it records every committed balance in
// monotonic order — an audit trail that can never contain rolled-back
// state.
type AuditView struct {
	a, b *decaf.Float

	mu  sync.Mutex
	log []string
}

// Update implements decaf.View.
func (v *AuditView) Update(s *decaf.Snapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.log = append(v.log, fmt.Sprintf("vt %-8s A=%.2f B=%.2f", s.VT(), s.Float(v.a), s.Float(v.b)))
}

// Trail returns the audit entries.
func (v *AuditView) Trail() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.log...)
}

func main() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 15 * time.Millisecond})
	defer net.Close()
	client, _ := decaf.Dial(net, 1)
	advisor, _ := decaf.Dial(net, 2)
	defer client.Close()
	defer advisor.Close()

	// Replicated accounts A and B.
	aC, _ := client.NewFloat("account-A")
	bC, _ := client.NewFloat("account-B")
	aA, _ := advisor.NewFloat("account-A")
	bA, _ := advisor.NewFloat("account-B")
	must(advisor.JoinObject(aA, client.ID(), aC.Ref().ID()).Wait())
	must(advisor.JoinObject(bA, client.ID(), bC.Ref().ID()).Wait())

	// Seed the balance and wait for it to reach the advisor's replica
	// (otherwise the first transfer would read 0 and abort as an
	// overdraft).
	must(client.ExecuteFunc(func(tx *decaf.Tx) error {
		aC.Set(tx, 100)
		return nil
	}).Wait())
	for aA.Committed() != 100 {
		time.Sleep(5 * time.Millisecond)
	}

	// The advisor watches optimistically; the client audits
	// pessimistically.
	balView := &BalanceView{name: "advisor", bp: bA}
	if _, err := advisor.Attach(balView, decaf.Optimistic, bA); err != nil {
		panic(err)
	}
	audit := &AuditView{a: aC, b: bC}
	if _, err := client.Attach(audit, decaf.Pessimistic, aC, bC); err != nil {
		panic(err)
	}

	fmt.Println("-- advisor transfers 30 from A to B --")
	res := advisor.Execute(&XferTrans{Ap: aA, Bp: bA, XferAmt: 30}).Wait()
	fmt.Printf("transfer committed=%v\n", res.Committed)
	time.Sleep(100 * time.Millisecond)

	fmt.Println("-- advisor attempts an overdraft of 500 --")
	res = advisor.Execute(&XferTrans{Ap: aA, Bp: bA, XferAmt: 500}).Wait()
	fmt.Printf("transfer committed=%v err=%v\n", res.Committed, res.Err != nil)
	time.Sleep(100 * time.Millisecond)

	fmt.Println("-- concurrent transfers from both sites --")
	p1 := client.Execute(&XferTrans{Ap: aC, Bp: bC, XferAmt: 10})
	p2 := advisor.Execute(&XferTrans{Ap: aA, Bp: bA, XferAmt: 20})
	r1, r2 := p1.Wait(), p2.Wait()
	fmt.Printf("client transfer committed=%v retries=%d; advisor committed=%v retries=%d\n",
		r1.Committed, r1.Retries, r2.Committed, r2.Retries)
	time.Sleep(200 * time.Millisecond)

	fmt.Printf("\nfinal balances: client A=%.2f B=%.2f | advisor A=%.2f B=%.2f (sum preserved: %v)\n",
		aC.Committed(), bC.Committed(), aA.Committed(), bA.Committed(),
		aC.Committed()+bC.Committed() == 100)

	fmt.Println("\naudit trail (pessimistic view — committed states only, monotonic):")
	for _, line := range audit.Trail() {
		fmt.Println("  " + line)
	}
}

func must(res decaf.Result) {
	if !res.Committed {
		panic(fmt.Sprintf("transaction failed: %+v", res))
	}
}
