// Quickstart: two collaborating applications share a replicated counter.
//
// Alice and Bob each hold their own Int model object; Bob joins his to
// Alice's, forming a replica relationship. Transactions at either site
// update both replicas atomically; an optimistic view at Bob's site shows
// updates the moment they execute, before they commit.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"decaf"
)

func main() {
	// A simulated network with 20ms one-way latency (the paper's t).
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 20 * time.Millisecond})
	defer net.Close()

	alice, err := decaf.Dial(net, 1)
	if err != nil {
		panic(err)
	}
	defer alice.Close()
	bob, err := decaf.Dial(net, 2)
	if err != nil {
		panic(err)
	}
	defer bob.Close()

	// Each application instantiates its own model object...
	counterA, _ := alice.NewInt("counter")
	counterB, _ := bob.NewInt("counter")

	// ...and Bob joins his object into Alice's replica relationship.
	if res := bob.JoinObject(counterB, alice.ID(), counterA.Ref().ID()).Wait(); !res.Committed {
		panic(fmt.Sprintf("join failed: %+v", res))
	}
	fmt.Println("replica relationship established:",
		"alice sees replicas at", counterA.ReplicaSites(),
		"| primary copy at site", counterA.PrimarySite())

	// Bob attaches an optimistic view: notified immediately on local
	// execution, and again (via Commit) when the state is known stable.
	view := decaf.ViewFunc(func(s *decaf.Snapshot) {
		state := "optimistic"
		if s.IsCommitted() {
			state = "committed"
		}
		fmt.Printf("  [bob's view] counter = %d (%s, vt %s)\n", s.Int(counterB), state, s.VT())
	})
	if _, err := bob.Attach(view, decaf.Optimistic, counterB); err != nil {
		panic(err)
	}

	// Alice increments three times; each transaction reads and writes
	// atomically and propagates to Bob.
	for i := 0; i < 3; i++ {
		res := alice.ExecuteFunc(func(tx *decaf.Tx) error {
			counterA.Set(tx, counterA.Value(tx)+1)
			return nil
		}).Wait()
		fmt.Printf("alice incremented -> %d (committed=%v, %d retries)\n",
			counterA.Committed(), res.Committed, res.Retries)
	}

	// Bob increments too — concurrency control serializes everything.
	res := bob.ExecuteFunc(func(tx *decaf.Tx) error {
		counterB.Set(tx, counterB.Value(tx)+10)
		return nil
	}).Wait()
	fmt.Printf("bob added 10 -> %d (committed=%v)\n", counterB.Committed(), res.Committed)

	// Let replication quiesce and compare.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && counterA.Committed() != counterB.Committed() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("final: alice=%d bob=%d (replicas converged: %v)\n",
		counterA.Committed(), counterB.Committed(), counterA.Committed() == counterB.Committed())
}
