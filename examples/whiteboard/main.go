// Whiteboard: a three-party collaborative drawing surface built on a
// replicated List of stroke tuples — the paper's blind-write workload
// ("In an application in which all operations are blind writes (e.g., a
// whiteboard ...) there are no update inconsistencies, because
// concurrency control tests never fail", §5.1.2).
//
// Three users draw concurrently; every stroke is a list append (a blind
// structural write), so nothing ever conflicts, and all three replicas
// converge to the identical stroke order via VT-tagged list elements.
//
// Run with: go run ./examples/whiteboard
package main

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"decaf"
)

func main() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 7})
	defer net.Close()

	users := []string{"ana", "ben", "caz"}
	sites := make([]*decaf.Site, len(users))
	boards := make([]*decaf.List, len(users))
	for i := range users {
		s, err := decaf.Dial(net, decaf.SiteID(i+1))
		if err != nil {
			panic(err)
		}
		defer s.Close()
		sites[i] = s
		boards[i], _ = s.NewList("board")
	}
	// Ben and Caz join Ana's board.
	for i := 1; i < len(sites); i++ {
		if res := sites[i].JoinObject(boards[i], sites[0].ID(), boards[0].Ref().ID()).Wait(); !res.Committed {
			panic(fmt.Sprintf("%s could not join: %+v", users[i], res))
		}
	}
	fmt.Println("board shared across", boards[0].ReplicaSites())

	// Each user watches optimistically: strokes appear instantly.
	var strokesSeen [3]int
	var mu sync.Mutex
	for i := range sites {
		i := i
		v := decaf.ViewFunc(func(s *decaf.Snapshot) {
			mu.Lock()
			strokesSeen[i] = len(s.List(boards[i]))
			mu.Unlock()
		})
		if _, err := sites[i].Attach(v, decaf.Optimistic, boards[i]); err != nil {
			panic(err)
		}
	}

	// Concurrent drawing: every user appends strokes at their own pace.
	const strokesPerUser = 8
	var wg sync.WaitGroup
	for i := range sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i + 1)))
			for k := 0; k < strokesPerUser; k++ {
				stroke := fmt.Sprintf("%s/stroke-%d@%d,%d", users[i], k, rng.Intn(800), rng.Intn(600))
				res := sites[i].ExecuteFunc(func(tx *decaf.Tx) error {
					item := boards[i].AppendTuple(tx)
					item.SetString(tx, "who", users[i])
					item.SetString(tx, "path", stroke)
					return nil
				}).Wait()
				if !res.Committed {
					panic(fmt.Sprintf("stroke aborted (should never happen for blind writes): %+v", res))
				}
				time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()

	// Wait for convergence.
	want := strokesPerUser * len(users)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a, b, c := boards[0].Committed(), boards[1].Committed(), boards[2].Committed()
		if len(a) == want && reflect.DeepEqual(a, b) && reflect.DeepEqual(b, c) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	a, b, c := boards[0].Committed(), boards[1].Committed(), boards[2].Committed()
	fmt.Printf("strokes: ana=%d ben=%d caz=%d (want %d each)\n", len(a), len(b), len(c), want)
	fmt.Printf("identical stroke order at all replicas: %v\n",
		reflect.DeepEqual(a, b) && reflect.DeepEqual(b, c))

	// No conflicts ever occur for blind writes (paper §5.1.2).
	for i, s := range sites {
		st := s.Stats()
		fmt.Printf("%s: commits=%d conflicts=%d lost-optimistic-updates=%d\n",
			users[i], st.Commits, st.ConflictAborts, st.LostUpdates)
	}

	fmt.Println("\nfirst five strokes (same at every site):")
	for i, stroke := range a {
		if i >= 5 {
			break
		}
		m := stroke.(map[string]any)
		fmt.Printf("  %d. %-4v %v\n", i+1, m["who"], m["path"])
	}
}
