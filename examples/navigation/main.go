// Navigation: a group navigation tool (one of the application classes the
// paper's introduction motivates — "group navigation tools"). A presenter
// drives a shared viewport (page, scroll position, highlighted section);
// followers' optimistic views track every move with local-GUI
// responsiveness, and a follower can take over the presenter role by
// writing the same replicated state — concurrency control arbitrates the
// handoff.
//
// The viewport is a Tuple of scalars, so each field update is an
// independent blind write: rapid navigation never conflicts (paper
// §5.1.2), and a slow follower simply skips intermediate positions (lost
// updates are invisible here — exactly the paper's argument that "a lost
// update will usually be indistinguishable from two updates in rapid
// succession").
//
// Run with: go run ./examples/navigation
package main

import (
	"fmt"
	"sync"
	"time"

	"decaf"
)

type member struct {
	name     string
	site     *decaf.Site
	viewport *decaf.Tuple

	mu       sync.Mutex
	lastSeen map[string]any
	moves    int
}

// Update implements decaf.View: render the viewport state.
func (m *member) Update(s *decaf.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastSeen = s.Tuple(m.viewport)
	m.moves++
}

func (m *member) position() (string, any, any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastSeen == nil {
		return "", nil, nil
	}
	return fmt.Sprint(m.lastSeen["doc"]), m.lastSeen["page"], m.lastSeen["scroll"]
}

func main() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 12 * time.Millisecond})
	defer net.Close()

	// The presenter builds the shared viewport.
	presenterSite, _ := decaf.Dial(net, 1)
	defer presenterSite.Close()
	vp, _ := presenterSite.NewTuple("viewport")
	must(presenterSite.ExecuteFunc(func(tx *decaf.Tx) error {
		vp.SetString(tx, "doc", "quarterly-report.pdf")
		vp.SetInt(tx, "page", 1)
		vp.SetInt(tx, "scroll", 0)
		vp.SetString(tx, "presenter", "ana")
		return nil
	}).Wait())

	presenter := &member{name: "ana", site: presenterSite, viewport: vp}
	presenterSite.Attach(presenter, decaf.Optimistic, vp)

	// Two followers join.
	followers := make([]*member, 0, 2)
	for i, name := range []string{"ben", "caz"} {
		s, err := decaf.Dial(net, decaf.SiteID(i+2))
		if err != nil {
			panic(err)
		}
		defer s.Close()
		fvp, _ := s.NewTuple("viewport")
		must(s.JoinObject(fvp, presenterSite.ID(), vp.Ref().ID()).Wait())
		f := &member{name: name, site: s, viewport: fvp}
		s.Attach(f, decaf.Optimistic, fvp)
		followers = append(followers, f)
	}
	fmt.Println("session: ana presents to ben and caz; viewport replicated at",
		vp.ReplicaSites())

	// The presenter navigates briskly: page flips and scrolls.
	for page := int64(2); page <= 6; page++ {
		p := page
		must(presenterSite.ExecuteFunc(func(tx *decaf.Tx) error {
			vp.Get(tx, "page").(*decaf.Int).Set(tx, p)
			vp.Get(tx, "scroll").(*decaf.Int).Set(tx, 0)
			return nil
		}).Wait())
		for scroll := int64(100); scroll <= 300; scroll += 100 {
			sc := scroll
			must(presenterSite.ExecuteFunc(func(tx *decaf.Tx) error {
				vp.Get(tx, "scroll").(*decaf.Int).Set(tx, sc)
				return nil
			}).Wait())
		}
	}

	// Wait for followers to land on the final position.
	waitFor(func() bool {
		for _, f := range followers {
			_, page, scroll := f.position()
			if page != int64(6) || scroll != int64(300) {
				return false
			}
		}
		return true
	})
	for _, f := range followers {
		doc, page, scroll := f.position()
		f.mu.Lock()
		moves := f.moves
		f.mu.Unlock()
		fmt.Printf("%s follows: %s page %v scroll %v (rendered %d view updates; intermediate positions may be skipped)\n",
			f.name, doc, page, scroll, moves)
	}

	// Ben takes over the presentation: an ordinary transaction on the
	// same replicated state; optimistic concurrency control arbitrates
	// against any concurrent presenter move.
	ben := followers[0]
	res := ben.site.ExecuteFunc(func(tx *decaf.Tx) error {
		ben.viewport.Get(tx, "presenter").(*decaf.String).Set(tx, "ben")
		ben.viewport.Get(tx, "page").(*decaf.Int).Set(tx, 1)
		return nil
	}).Wait()
	fmt.Printf("\nben takes over: committed=%v retries=%d\n", res.Committed, res.Retries)

	waitFor(func() bool {
		m := vp.Committed()
		return m != nil && m["presenter"] == "ben" && m["page"] == int64(1)
	})
	fmt.Printf("ana's replica confirms the handoff: %v\n", vp.Committed()["presenter"])
}

func must(res decaf.Result) {
	if !res.Committed {
		panic(fmt.Sprintf("transaction failed: %+v", res))
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	panic("condition never reached")
}
