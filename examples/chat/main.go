// Chat: the paper's multi-user chat program (§5.2.1), including dynamic
// membership: users join mid-session through the §2.6 invitation flow,
// receive the full backlog (the join ships the composite's structure),
// and one user leaves while the rest keep talking. A simulated failure
// (fail-stop crash of one member, §3.4) shows the survivors repairing
// the replication graph and continuing.
//
// Run with: go run ./examples/chat
package main

import (
	"fmt"
	"time"

	"decaf"
)

type user struct {
	name string
	site *decaf.Site
	log  *decaf.List
}

func (u *user) say(text string) {
	res := u.site.ExecuteFunc(func(tx *decaf.Tx) error {
		msg := u.log.AppendTuple(tx)
		msg.SetString(tx, "from", u.name)
		msg.SetString(tx, "text", text)
		return nil
	}).Wait()
	if !res.Committed {
		panic(fmt.Sprintf("%s: message failed: %+v", u.name, res))
	}
}

func (u *user) transcript() []string {
	var out []string
	for _, m := range u.log.Committed() {
		t := m.(map[string]any)
		out = append(out, fmt.Sprintf("<%v> %v", t["from"], t["text"]))
	}
	return out
}

func main() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: 8 * time.Millisecond})
	defer net.Close()

	// Host starts the room and publishes an invitation.
	hostSite, _ := decaf.Dial(net, 1)
	defer hostSite.Close()
	hostLog, _ := hostSite.NewList("room")
	host := &user{name: "host", site: hostSite, log: hostLog}

	assoc, _ := hostSite.NewAssociation("room")
	must(assoc.Define("log", hostLog, "the chat log").Wait())
	inv, _ := assoc.Invitation("come chat")

	host.say("welcome to the room")

	// join brings a user in via the invitation; the backlog ships with
	// the join.
	join := func(name string, id decaf.SiteID) *user {
		s, err := decaf.Dial(net, id)
		if err != nil {
			panic(err)
		}
		a, p, err := s.Import(inv, "imported room")
		if err != nil {
			panic(err)
		}
		must(p.Wait())
		l, _ := s.NewList("room")
		must(a.Join("log", l).Wait())
		u := &user{name: name, site: s, log: l}
		fmt.Printf("%s joined; backlog: %v\n", name, u.transcript())
		return u
	}

	mira := join("mira", 2)
	mira.say("hi all!")
	noel := join("noel", 3)
	noel.say("good to be here")
	host.say("glad you both made it")

	time.Sleep(150 * time.Millisecond)
	fmt.Println("\ntranscripts after the opening round:")
	for _, u := range []*user{host, mira, noel} {
		fmt.Printf("  %-5s %v\n", u.name+":", u.transcript())
	}

	// Mira leaves gracefully; the others keep talking.
	must(mira.site.LeaveObject(mira.log).Wait())
	fmt.Println("\nmira left the room")
	host.say("just us now")

	// Noel's machine crashes (fail-stop); the host's site detects it,
	// repairs the replication graph, and keeps working.
	net.Kill(3)
	fmt.Println("noel's site crashed (fail-stop)")
	time.Sleep(100 * time.Millisecond)
	host.say("still here after the crash")

	time.Sleep(150 * time.Millisecond)
	fmt.Printf("\nhost's replicas after leave+crash: %v\n", hostLog.ReplicaSites())
	fmt.Println("final host transcript:")
	for _, line := range host.transcript() {
		fmt.Println("  " + line)
	}
	fmt.Printf("mira's frozen transcript (left before the last messages): %d messages\n", len(mira.transcript()))
	mira.site.Close()
}

func must(res decaf.Result) {
	if !res.Committed {
		panic(fmt.Sprintf("transaction failed: %+v", res))
	}
}
