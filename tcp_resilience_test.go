package decaf_test

import (
	"testing"

	"decaf"
)

// TestTCPResilienceMidTransactionFlaps kills live TCP connections while
// transactions are committing and asserts the engine rides out the flaps:
// every write commits, state replicates, and neither site ever receives a
// fail-stop notification.
func TestTCPResilienceMidTransactionFlaps(t *testing.T) {
	faultsA, faultsB := decaf.NewFaults(), decaf.NewFaults()
	epA, err := decaf.ListenTCPOptions(1, "127.0.0.1:0", nil, decaf.TCPOptions{Faults: faultsA})
	if err != nil {
		t.Fatal(err)
	}
	peers := map[decaf.SiteID]string{1: epA.Addr().String()}
	epB, err := decaf.ListenTCPOptions(2, "127.0.0.1:0", peers, decaf.TCPOptions{Faults: faultsB})
	if err != nil {
		t.Fatal(err)
	}
	epA.SetPeerAddr(2, epB.Addr().String())

	a := decaf.NewSite(epA, decaf.Options{})
	b := decaf.NewSite(epB, decaf.Options{})
	defer a.Close()
	defer b.Close()

	ia, _ := a.NewInt("x")
	ib, _ := b.NewInt("x")
	if res := b.JoinObject(ib, 1, ia.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("join over TCP: %+v", res)
	}

	// Writes from the secondary must reach the primary (confirm round
	// trips) and commit despite the link being killed under them: every
	// few writes both directions of the link are cut mid-protocol.
	const writes = 30
	killed := 0
	for i := 1; i <= writes; i++ {
		v := int64(i)
		pending := b.ExecuteFunc(func(tx *decaf.Tx) error {
			ib.Set(tx, v)
			return nil
		})
		if i%5 == 0 {
			killed += faultsA.KillConnections(2)
			killed += faultsB.KillConnections(1)
		}
		res := pending.Wait()
		if !res.Committed {
			t.Fatalf("write %d aborted during flap: %+v", i, res)
		}
	}
	if killed == 0 {
		t.Fatal("no live connections were ever killed")
	}

	eventually(t, "replication across flaps", func() bool {
		return ia.Committed() == writes
	})

	if st := epA.Stats(); st.FailureEvents != 0 {
		t.Fatalf("site 1 suspected its peer: %+v", st)
	}
	if st := epB.Stats(); st.FailureEvents != 0 {
		t.Fatalf("site 2 suspected its peer: %+v", st)
	}
	if epA.Stats().Reconnects+epB.Stats().Reconnects == 0 {
		t.Fatal("flap test never reconnected — killer was ineffective")
	}
}
