module decaf

go 1.22
