package decaf_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"decaf"
)

// pair builds a two-site session over a simulated network.
func pair(t *testing.T, latency time.Duration) (*decaf.SimNetwork, *decaf.Site, *decaf.Site) {
	t.Helper()
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: latency})
	a, err := decaf.Dial(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decaf.Dial(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
		net.Close()
	})
	return net, a, b
}

// joinInts creates joined Int replicas at both sites.
func joinInts(t *testing.T, a, b *decaf.Site, name string) (*decaf.Int, *decaf.Int) {
	t.Helper()
	ia, err := a.NewInt(name)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.NewInt(name)
	if err != nil {
		t.Fatal(err)
	}
	if res := b.JoinObject(ib, a.ID(), ia.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}
	return ia, ib
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out: %s", what)
}

func TestQuickstartFlow(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)
	ia, ib := joinInts(t, a, b, "counter")

	res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		ia.Set(tx, ia.Value(tx)+1)
		return nil
	}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	eventually(t, "replication", func() bool {
		return ib.Committed() == 1 && ia.Committed() == 1
	})
}

// XferTrans is the paper's Fig. 2 transaction object: transfer xferAmt
// from account Ap to account Bp, aborting on overdraft.
type XferTrans struct {
	Ap, Bp  *decaf.Float
	XferAmt float64
	aborted chan error
}

// Execute implements decaf.Transaction.
func (x *XferTrans) Execute(tx *decaf.Tx) error {
	if x.Ap.Value(tx)-x.XferAmt >= 0 {
		x.Ap.Set(tx, x.Ap.Value(tx)-x.XferAmt)
		x.Bp.Set(tx, x.Bp.Value(tx)+x.XferAmt)
		return nil
	}
	return errors.New("can't transfer more than balance")
}

// HandleAbort implements decaf.AbortHandler.
func (x *XferTrans) HandleAbort(err error) {
	if x.aborted != nil {
		x.aborted <- err
	}
}

func TestPaperFig2XferTrans(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)

	apA, _ := a.NewFloat("A")
	apB, _ := b.NewFloat("A")
	bpA, _ := a.NewFloat("B")
	bpB, _ := b.NewFloat("B")
	if res := b.JoinObject(apB, a.ID(), apA.Ref().ID()).Wait(); !res.Committed {
		t.Fatal("join A")
	}
	if res := b.JoinObject(bpB, a.ID(), bpA.Ref().ID()).Wait(); !res.Committed {
		t.Fatal("join B")
	}
	if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		apA.Set(tx, 100)
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("seed")
	}
	eventually(t, "seed replication", func() bool { return apB.Committed() == 100 })

	// Successful transfer from site B.
	if res := b.Execute(&XferTrans{Ap: apB, Bp: bpB, XferAmt: 30}).Wait(); !res.Committed {
		t.Fatalf("transfer: %+v", res)
	}
	eventually(t, "transfer replication", func() bool {
		return apA.Committed() == 70 && bpA.Committed() == 30
	})

	// Overdraft aborts with HandleAbort called (paper §2.4).
	aborted := make(chan error, 1)
	res := b.Execute(&XferTrans{Ap: apB, Bp: bpB, XferAmt: 1000, aborted: aborted}).Wait()
	if res.Committed || !errors.Is(res.Err, decaf.ErrAborted) {
		t.Fatalf("overdraft result: %+v", res)
	}
	select {
	case <-aborted:
	case <-time.After(time.Second):
		t.Fatal("HandleAbort not called")
	}
	if apB.Committed() != 70 || bpB.Committed() != 30 {
		t.Fatalf("balances changed after abort: %v / %v", apB.Committed(), bpB.Committed())
	}
}

// BalanceView is the paper's Fig. 3 optimistic view: it renders the
// balance in red on update (possibly uncommitted) and repaints black on
// commit.
type BalanceView struct {
	Bp *decaf.Float

	mu      sync.Mutex
	color   string
	text    string
	commits int
}

// Update implements decaf.View.
func (v *BalanceView) Update(s *decaf.Snapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.color = "red"
	v.text = fmt.Sprintf("%.2f", s.Float(v.Bp))
}

// Commit implements decaf.Committer.
func (v *BalanceView) Commit() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.color = "black"
	v.commits++
}

func (v *BalanceView) state() (string, string, int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.color, v.text, v.commits
}

func TestPaperFig3BalanceView(t *testing.T) {
	_, a, b := pair(t, 10*time.Millisecond)

	bpA, _ := a.NewFloat("B")
	bpB, _ := b.NewFloat("B")
	if res := b.JoinObject(bpB, a.ID(), bpA.Ref().ID()).Wait(); !res.Committed {
		t.Fatal("join")
	}

	view := &BalanceView{Bp: bpB}
	if _, err := b.Attach(view, decaf.Optimistic, bpB); err != nil {
		t.Fatal(err)
	}

	p := b.ExecuteFunc(func(tx *decaf.Tx) error {
		bpB.Set(tx, 42.5)
		return nil
	})
	<-p.Applied()
	// Optimistic: the update notification shows the new value (red)
	// before commit.
	eventually(t, "red update", func() bool {
		color, text, _ := view.state()
		return text == "42.50" && color == "red"
	})
	if res := p.Wait(); !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	// Then the commit notification repaints black.
	eventually(t, "black commit", func() bool {
		color, _, commits := view.state()
		return color == "black" && commits >= 1
	})
}

func TestPessimisticViewFacade(t *testing.T) {
	_, a, b := pair(t, 2*time.Millisecond)
	ia, ib := joinInts(t, a, b, "x")
	_ = ia

	var mu sync.Mutex
	var seen []int64
	v := decaf.ViewFunc(func(s *decaf.Snapshot) {
		mu.Lock()
		defer mu.Unlock()
		if !s.IsCommitted() {
			t.Error("pessimistic snapshot not committed")
		}
		seen = append(seen, s.Int(ib))
	})
	if _, err := b.Attach(v, decaf.Pessimistic, ib); err != nil {
		t.Fatal(err)
	}

	for k := int64(1); k <= 3; k++ {
		if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
			ia.Set(tx, k)
			return nil
		}).Wait(); !res.Committed {
			t.Fatalf("write %d failed", k)
		}
	}
	eventually(t, "all committed values", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) >= 3 && seen[len(seen)-1] == 3
	})
}

func TestCompositeFacade(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)

	la, _ := a.NewList("todo")
	lb, _ := b.NewList("todo")
	if res := b.JoinObject(lb, a.ID(), la.Ref().ID()).Wait(); !res.Committed {
		t.Fatal("join")
	}

	res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		la.AppendString(tx, "write tests")
		item := la.AppendTuple(tx)
		item.SetString(tx, "title", "ship")
		item.SetInt(tx, "priority", 1)
		return nil
	}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}

	want := []any{"write tests", map[string]any{"title": "ship", "priority": int64(1)}}
	eventually(t, "composite replication", func() bool {
		return reflect.DeepEqual(lb.Committed(), want)
	})

	// Update an embedded child from the other site.
	res = b.ExecuteFunc(func(tx *decaf.Tx) error {
		item, ok := lb.At(tx, 1).(*decaf.Tuple)
		if !ok {
			return errors.New("no tuple at index 1")
		}
		pri, ok := item.Get(tx, "priority").(*decaf.Int)
		if !ok {
			return errors.New("no priority")
		}
		pri.Set(tx, pri.Value(tx)+1)
		return nil
	}).Wait()
	if !res.Committed {
		t.Fatalf("child txn: %+v", res)
	}
	eventually(t, "child update replication", func() bool {
		got := la.Committed()
		if len(got) != 2 {
			return false
		}
		m, _ := got[1].(map[string]any)
		return m != nil && m["priority"] == int64(2)
	})
}

func TestAssociationFacade(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)

	doc, _ := a.NewString("doc")
	assoc, _ := a.NewAssociation("workspace")
	if res := assoc.Define("doc", doc, "shared document").Wait(); !res.Committed {
		t.Fatal("define")
	}
	inv, err := assoc.Invitation("join my workspace")
	if err != nil {
		t.Fatal(err)
	}

	assocB, imp, err := b.Import(inv, "workspace")
	if err != nil {
		t.Fatal(err)
	}
	if res := imp.Wait(); !res.Committed {
		t.Fatalf("import: %+v", res)
	}

	eventually(t, "relationships visible", func() bool {
		rels := assocB.Relationships()
		return len(rels) == 1 && rels[0].Name == "doc"
	})

	docB, _ := b.NewString("doc")
	if res := assocB.Join("doc", docB).Wait(); !res.Committed {
		t.Fatal("join")
	}

	if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		doc.Set(tx, "hello collaboration")
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("write")
	}
	eventually(t, "doc replicated", func() bool {
		return docB.Committed() == "hello collaboration"
	})

	// Leave and verify isolation.
	if res := assocB.Leave("doc", docB).Wait(); !res.Committed {
		t.Fatalf("leave: %+v", res)
	}
	if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		doc.Set(tx, "post-leave")
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("write after leave")
	}
	time.Sleep(20 * time.Millisecond)
	if docB.Committed() == "post-leave" {
		t.Fatal("left replica still receiving updates")
	}
}

func TestConcurrentIncrementsFacade(t *testing.T) {
	_, a, b := pair(t, 2*time.Millisecond)
	ia, ib := joinInts(t, a, b, "n")

	const per = 5
	var wg sync.WaitGroup
	inc := func(s *decaf.Site, o *decaf.Int) {
		defer wg.Done()
		for k := 0; k < per; k++ {
			res := s.ExecuteFunc(func(tx *decaf.Tx) error {
				o.Set(tx, o.Value(tx)+1)
				return nil
			}).Wait()
			if !res.Committed {
				t.Errorf("increment failed: %+v", res)
			}
		}
	}
	wg.Add(2)
	go inc(a, ia)
	go inc(b, ib)
	wg.Wait()

	eventually(t, "serialized increments", func() bool {
		return ia.Committed() == 2*per && ib.Committed() == 2*per
	})
}

func TestOverTCP(t *testing.T) {
	// The same protocol over the real TCP transport.
	epA, err := decaf.ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[decaf.SiteID]string{1: epA.Addr().String()}
	epB, err := decaf.ListenTCP(2, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}

	a := decaf.NewSite(epA, decaf.Options{})
	b := decaf.NewSite(epB, decaf.Options{})
	defer a.Close()
	defer b.Close()

	ia, _ := a.NewInt("x")
	ib, _ := b.NewInt("x")
	if res := b.JoinObject(ib, 1, ia.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("join over TCP: %+v", res)
	}
	if res := b.ExecuteFunc(func(tx *decaf.Tx) error {
		ib.Set(tx, 9)
		return nil
	}).Wait(); !res.Committed {
		t.Fatalf("write over TCP: %+v", res)
	}
	eventually(t, "tcp replication", func() bool {
		return ia.Committed() == 9
	})
}
