package decaf

import (
	"decaf/internal/engine"
	"decaf/internal/ids"
	"decaf/internal/wire"
)

// Dynamic collaboration establishment (paper §2.6, §3.3).

// Relationship is one replica relationship published in an association:
// a named set of member objects with their sites and descriptions.
type Relationship = wire.Relationship

// Member is one object participating in a replica relationship.
type Member = wire.Member

// Invitation is the external token that publicizes the right to make
// replicas of an application's objects (paper §2.6). It is plain data:
// publish it on any out-of-band channel (a bulletin board, a URL, a chat
// message) and import it with Site.Import.
type Invitation = engine.Invitation

// ObjectID is a model object's globally unique identifier.
type ObjectID = ids.ObjectID

// Association is a model object whose value is a set of replica
// relationships bundled for an application purpose (paper §2.1). Changes
// in membership are signaled to attached views exactly like value changes.
type Association struct{ base }

// NewAssociation creates an association model object.
func (s *Site) NewAssociation(name string) (*Association, error) {
	ref, err := s.eng.CreateAssociation(name)
	if err != nil {
		return nil, err
	}
	return &Association{base{s, ref}}, nil
}

// Define adds (or extends) the named replica relationship, registering
// member as a joined object others can collaborate with.
func (a *Association) Define(relName string, member Object, desc string) *Pending {
	return &Pending{h: a.site.eng.DefineRelationship(a.ref, relName, member.Ref(), desc)}
}

// Invitation creates the external token for this association.
func (a *Association) Invitation(desc string) (Invitation, error) {
	return a.site.eng.Invite(a.ref, desc)
}

// Relationships returns the association's current replica relationships.
func (a *Association) Relationships() []Relationship {
	rels, _ := a.site.eng.Relationships(a.ref)
	return rels
}

// Join joins obj into the named replica relationship: the full §3.3
// protocol — the association value is read to locate a member object,
// optimistically updated with the new membership, and the replication
// graphs are merged with confirmations from both graphs' primary copies.
func (a *Association) Join(relName string, obj Object) *Pending {
	return &Pending{h: a.site.eng.JoinRelationship(a.ref, relName, obj.Ref())}
}

// Leave removes obj from the named replica relationship; the remaining
// members keep collaborating with one another.
func (a *Association) Leave(relName string, obj Object) *Pending {
	return &Pending{h: a.site.eng.LeaveRelationship(a.ref, relName, obj.Ref())}
}

// Import instantiates a local association object replicating the one
// named by the invitation (paper §2.6). The returned association is
// usable once the Pending commits; reading its Relationships then reveals
// what can be joined.
func (s *Site) Import(inv Invitation, name string) (*Association, *Pending, error) {
	ref, h, err := s.eng.ImportAssociation(inv, name)
	if err != nil {
		return nil, nil, err
	}
	return &Association{base{s, ref}}, &Pending{h: h}, nil
}

// JoinObject establishes a replica relationship between a local object
// and a remote object directly, given an out-of-band reference (remote
// site and object ID). Associations are the full-featured path; this is
// the low-level primitive.
func (s *Site) JoinObject(local Object, remoteSite SiteID, remoteObj ObjectID) *Pending {
	return &Pending{h: s.eng.JoinObject(local.Ref(), remoteSite, remoteObj)}
}

// LeaveObject removes a local object from its replica relationship
// without an association.
func (s *Site) LeaveObject(local Object) *Pending {
	return &Pending{h: s.eng.LeaveRelationship(engine.ObjRef{}, "", local.Ref())}
}
