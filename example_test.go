package decaf_test

import (
	"fmt"
	"time"

	"decaf"
)

// Example shows the minimal two-party flow: join a replica relationship
// and run an atomic transaction that replicates.
func Example() {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: time.Millisecond})
	defer net.Close()
	alice, _ := decaf.Dial(net, 1)
	bob, _ := decaf.Dial(net, 2)
	defer alice.Close()
	defer bob.Close()

	counterA, _ := alice.NewInt("counter")
	counterB, _ := bob.NewInt("counter")
	bob.JoinObject(counterB, alice.ID(), counterA.Ref().ID()).Wait()

	alice.ExecuteFunc(func(tx *decaf.Tx) error {
		counterA.Set(tx, counterA.Value(tx)+1)
		return nil
	}).Wait()

	for counterB.Committed() != 1 {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("bob sees", counterB.Committed())
	// Output: bob sees 1
}

// ExampleSite_Execute shows a multi-object atomic transaction with a
// programmed abort (the paper's Fig. 2 transfer).
func ExampleSite_Execute() {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()

	a, _ := site.NewFloat("A")
	b, _ := site.NewFloat("B")
	site.ExecuteFunc(func(tx *decaf.Tx) error {
		a.Set(tx, 100)
		return nil
	}).Wait()

	transfer := func(amt float64) decaf.Result {
		return site.ExecuteFunc(func(tx *decaf.Tx) error {
			if a.Value(tx)-amt < 0 {
				return fmt.Errorf("can't transfer more than balance")
			}
			a.Set(tx, a.Value(tx)-amt)
			b.Set(tx, b.Value(tx)+amt)
			return nil
		}).Wait()
	}

	ok := transfer(30)
	overdraft := transfer(500)
	fmt.Printf("transfer committed=%v, overdraft committed=%v, A=%.0f B=%.0f\n",
		ok.Committed, overdraft.Committed, a.Committed(), b.Committed())
	// Output: transfer committed=true, overdraft committed=false, A=70 B=30
}

// ExampleSite_Attach shows optimistic and pessimistic views on the same
// object.
func ExampleSite_Attach() {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()

	x, _ := site.NewInt("x")
	done := make(chan struct{})
	site.Attach(decaf.ViewFunc(func(s *decaf.Snapshot) {
		if s.Int(x) == 42 {
			fmt.Println("pessimistic view saw committed", s.Int(x))
			close(done)
		}
	}), decaf.Pessimistic, x)

	site.ExecuteFunc(func(tx *decaf.Tx) error {
		x.Set(tx, 42)
		return nil
	}).Wait()
	<-done
	// Output: pessimistic view saw committed 42
}

// ExampleList shows composite model objects with embedded children.
func ExampleList() {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()

	todo, _ := site.NewList("todo")
	site.ExecuteFunc(func(tx *decaf.Tx) error {
		todo.AppendString(tx, "write tests")
		item := todo.AppendTuple(tx)
		item.SetString(tx, "title", "ship")
		item.SetInt(tx, "priority", 1)
		return nil
	}).Wait()

	fmt.Println(todo.Committed())
	// Output: [write tests map[priority:1 title:ship]]
}

// ExampleAssociation shows the collaboration-establishment flow of paper
// section 2.6: define a relationship, publish an invitation, import it
// elsewhere, and join.
func ExampleAssociation() {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	host, _ := decaf.Dial(net, 1)
	guest, _ := decaf.Dial(net, 2)
	defer host.Close()
	defer guest.Close()

	doc, _ := host.NewString("doc")
	host.ExecuteFunc(func(tx *decaf.Tx) error {
		doc.Set(tx, "hello")
		return nil
	}).Wait()

	assoc, _ := host.NewAssociation("workspace")
	assoc.Define("doc", doc, "the shared doc").Wait()
	inv, _ := assoc.Invitation("join me")

	imported, pending, _ := guest.Import(inv, "workspace")
	pending.Wait()
	guestDoc, _ := guest.NewString("doc")
	imported.Join("doc", guestDoc).Wait()

	for guestDoc.Committed() != "hello" {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("guest sees:", guestDoc.Committed())
	// Output: guest sees: hello
}
