// Command decaf-demo runs a scripted multi-site walkthrough of the DECAF
// algorithms on a simulated network, narrating each protocol behaviour
// from the paper: optimistic update propagation with primary-copy
// validation (§3.1), conflict abort and automatic re-execution (§2.4),
// optimistic vs pessimistic view notification (§4), dynamic collaboration
// establishment (§3.3), and fail-stop failure recovery with graph repair
// (§3.4).
//
// Usage: decaf-demo [-t 15ms]
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"decaf"
)

func main() {
	lat := flag.Duration("t", 15*time.Millisecond, "one-way network latency")
	flag.Parse()

	fmt.Printf("DECAF demo — 4 sites, one-way latency t = %v\n", *lat)
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: *lat})
	defer net.Close()

	sites := map[int]*decaf.Site{}
	for i := 1; i <= 4; i++ {
		s, err := decaf.Dial(net, decaf.SiteID(i))
		if err != nil {
			panic(err)
		}
		defer s.Close()
		sites[i] = s
	}

	// --- §3.3: collaboration establishment -------------------------------
	fmt.Println("\n[1] collaboration establishment (paper 3.3)")
	doc, _ := sites[1].NewString("doc")
	assoc, _ := sites[1].NewAssociation("session")
	must(assoc.Define("doc", doc, "shared doc").Wait())
	inv, _ := assoc.Invitation("join me")

	replicas := map[int]*decaf.String{1: doc}
	for i := 2; i <= 4; i++ {
		a, p, err := sites[i].Import(inv, "imported")
		if err != nil {
			panic(err)
		}
		must(p.Wait())
		d, _ := sites[i].NewString("doc")
		must(a.Join("doc", d).Wait())
		replicas[i] = d
	}
	fmt.Printf("    4 sites joined; replicas at %v, primary copy at site %v\n",
		doc.ReplicaSites(), doc.PrimarySite())

	// --- §3.1: update propagation and commit latency ---------------------
	fmt.Println("\n[2] optimistic update with primary-copy commit (paper 3.1)")
	start := time.Now()
	must(sites[3].ExecuteFunc(func(tx *decaf.Tx) error {
		replicas[3].Set(tx, "draft v1")
		return nil
	}).Wait())
	fmt.Printf("    committed at origin in %v (model: 2t = %v)\n",
		time.Since(start).Round(time.Millisecond), 2**lat)

	// --- §2.4: conflict abort and automatic retry ------------------------
	fmt.Println("\n[3] conflicting read-modify-writes serialize via abort+retry (paper 2.4)")
	counter := map[int]*decaf.Int{}
	c1, _ := sites[1].NewInt("n")
	counter[1] = c1
	for i := 2; i <= 3; i++ {
		c, _ := sites[i].NewInt("n")
		must(sites[i].JoinObject(c, 1, c1.Ref().ID()).Wait())
		counter[i] = c
	}
	var wg sync.WaitGroup
	retries := make([]int, 4)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				res := sites[i].ExecuteFunc(func(tx *decaf.Tx) error {
					counter[i].Set(tx, counter[i].Value(tx)+1)
					return nil
				}).Wait()
				retries[i] += res.Retries
			}
		}(i)
	}
	wg.Wait()
	waitFor(func() bool { return counter[1].Committed() == 9 })
	fmt.Printf("    9 concurrent increments from 3 sites -> counter = %d (retries: s1=%d s2=%d s3=%d)\n",
		counter[1].Committed(), retries[1], retries[2], retries[3])

	// --- §4: optimistic vs pessimistic views ------------------------------
	fmt.Println("\n[4] optimistic vs pessimistic view notification (paper 4)")
	var optAt, pessAt time.Time
	var vmu sync.Mutex
	optSeen := make(chan struct{}, 1)
	pessSeen := make(chan struct{}, 1)
	sites[2].Attach(decaf.ViewFunc(func(s *decaf.Snapshot) {
		if s.String(replicas[2]) == "draft v2" {
			vmu.Lock()
			first := optAt.IsZero()
			if first {
				optAt = time.Now()
			}
			vmu.Unlock()
			if first {
				optSeen <- struct{}{}
			}
		}
	}), decaf.Optimistic, replicas[2])
	sites[2].Attach(decaf.ViewFunc(func(s *decaf.Snapshot) {
		if s.String(replicas[2]) == "draft v2" {
			vmu.Lock()
			first := pessAt.IsZero()
			if first {
				pessAt = time.Now()
			}
			vmu.Unlock()
			if first {
				pessSeen <- struct{}{}
			}
		}
	}), decaf.Pessimistic, replicas[2])

	t0 := time.Now()
	sites[2].ExecuteFunc(func(tx *decaf.Tx) error {
		replicas[2].Set(tx, "draft v2")
		return nil
	})
	<-optSeen
	<-pessSeen
	vmu.Lock()
	fmt.Printf("    optimistic view saw the edit after %v; pessimistic after %v (model: ~0 vs 2t = %v)\n",
		optAt.Sub(t0).Round(time.Millisecond), pessAt.Sub(t0).Round(time.Millisecond), 2**lat)
	vmu.Unlock()

	// --- §3.4: fail-stop failure and graph repair -------------------------
	fmt.Println("\n[5] fail-stop site failure and graph repair (paper 3.4)")
	fmt.Printf("    before: replicas at %v\n", replicas[2].ReplicaSites())
	net.Kill(4)
	waitFor(func() bool {
		for _, s := range replicas[2].ReplicaSites() {
			if s == 4 {
				return false
			}
		}
		return true
	})
	fmt.Printf("    site 4 crashed; survivors repaired the graph: replicas now at %v\n", replicas[2].ReplicaSites())
	must(sites[2].ExecuteFunc(func(tx *decaf.Tx) error {
		replicas[2].Set(tx, "post-crash edit")
		return nil
	}).Wait())
	waitFor(func() bool { return replicas[1].Committed() == "post-crash edit" })
	fmt.Println("    collaboration continues among survivors: edit propagated to all remaining replicas")

	fmt.Println("\ndemo complete")
}

func must(res decaf.Result) {
	if !res.Committed {
		panic(fmt.Sprintf("transaction failed: %+v", res))
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	panic("demo condition never reached")
}
