// Command decaf-bench regenerates the paper's evaluation (§5): run all
// experiments or a selection, printing one table per experiment.
//
// Usage:
//
//	decaf-bench [-exp all|e1,e2,...] [-t 10ms] [-quick] [-seed 1] [-debug-addr :8321]
//
// Experiments:
//
//	e1  transaction commit latency vs the 2t/3t analysis (§5.1.1)
//	e2  view notification latency vs the analysis (§5.1.2)
//	e3  observed vs analytic latency across induced delays (§5.2.2)
//	e4  lost-update rate under two-party blind-write load (§5.2.2)
//	e5  rollback rate for read-write transactions under load (§5.2.2)
//	e6  commit latency vs network size: DECAF vs GVT sweep (§5.1.3)
//	e7  responsiveness: replicated vs centralized architecture (§1)
//	e8  ablations: delegated commit (§3.1) and eager confirmation (§5.1.2)
//	e9  transport hot path: binary codec vs gob, batched vs legacy TCP
//	e10 transport resilience: committed txn/s across injected link flaps
//	e11 observability overhead: instrumented vs uninstrumented hot path
//	e12 engine scaling: batched loop + sharded commit pipeline throughput
//	e13 commutative fast path: local-commit adds vs guessed RMW latency
//	e14 anti-entropy catch-up: offline site resyncs from the primary's WAL
//
// e9 additionally writes its results to -transport-out (default
// BENCH_transport.json), e10 to -resilience-out (default
// BENCH_resilience.json), e11 to -obs-out (default BENCH_obs.json),
// e12 to -engine-out (default BENCH_engine.json), e13 to
// -fastpath-out (default BENCH_fastpath.json), and e14 to
// -antientropy-out (default BENCH_antientropy.json) so the numbers are
// diffable across revisions. e11 fails (exit 1) when the measured
// hot-path overhead exceeds the 3% budget of DESIGN.md §9; e12 fails
// when pipelined submission commits less than 2x the serial throughput
// (enforced on machines with enough cores); e13 fails when fast-path
// p50 latency reaches the simulated one-way delay at t=5ms or when any
// run fails to converge; e14 fails when a resync misses exact
// convergence, runs a spurious failover, skips the parked-transaction
// resubmission, or exceeds the per-missed-update catch-up gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"decaf"
	"decaf/internal/bench"
)

func main() {
	var (
		exp            = flag.String("exp", "all", "comma-separated experiments (e1..e10) or 'all'")
		lat            = flag.Duration("t", 10*time.Millisecond, "base one-way network latency t")
		quick          = flag.Bool("quick", false, "smaller sweeps and fewer trials")
		seed           = flag.Int64("seed", 1, "workload random seed")
		transportOut   = flag.String("transport-out", "BENCH_transport.json", "where e9 writes its JSON report ('' disables)")
		resilienceOut  = flag.String("resilience-out", "BENCH_resilience.json", "where e10 writes its JSON report ('' disables)")
		obsOut         = flag.String("obs-out", "BENCH_obs.json", "where e11 writes its JSON report ('' disables)")
		engineOut      = flag.String("engine-out", "BENCH_engine.json", "where e12 writes its JSON report ('' disables)")
		fastpathOut    = flag.String("fastpath-out", "BENCH_fastpath.json", "where e13 writes its JSON report ('' disables)")
		antientropyOut = flag.String("antientropy-out", "BENCH_antientropy.json", "where e14 writes its JSON report ('' disables)")
		debugAddr      = flag.String("debug-addr", "", "serve /metrics, /debug/decaf/{state,trace} and pprof on this address (instruments site 1 of each experiment)")
	)
	flag.Parse()

	if *debugAddr != "" {
		o := decaf.NewObserver()
		srv, err := decaf.ServeDebug(*debugAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		bench.SetObserver(o)
		fmt.Printf("debug server on http://%s/metrics\n", srv.Addr())
	}

	selected := map[string]bool{}
	if *exp == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14"} {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			selected[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}

	latCfg := bench.DefaultLatencyConfig()
	loadCfg := bench.DefaultLoadConfig()
	scaleCfg := bench.DefaultScaleConfig()
	loadCfg.Seed = *seed
	if *lat > 0 {
		latCfg.Delays = []time.Duration{*lat / 2, *lat, 2 * *lat}
		loadCfg.Latency = *lat
	}
	if *quick {
		latCfg.Delays = latCfg.Delays[:1]
		latCfg.Trials = 2
		loadCfg.Duration = 500 * time.Millisecond
		scaleCfg.Sizes = []int{3, 9, 17}
		scaleCfg.Trials = 2
	}

	type runner struct {
		name string
		run  func() (*bench.Table, error)
	}
	runners := []runner{
		{"e1", func() (*bench.Table, error) { return bench.E1CommitLatency(latCfg) }},
		{"e2", func() (*bench.Table, error) { return bench.E2ViewLatency(latCfg) }},
		{"e3", func() (*bench.Table, error) { return bench.E3LatencyVsDelay(latCfg) }},
		{"e4", func() (*bench.Table, error) { return bench.E4LostUpdates(loadCfg, nil) }},
		{"e5", func() (*bench.Table, error) { return bench.E5Rollbacks(loadCfg, 0, nil) }},
		{"e6", func() (*bench.Table, error) { return bench.E6Scalability(scaleCfg) }},
		{"e7", func() (*bench.Table, error) { return bench.E7Responsiveness(latCfg) }},
		{"e8", func() (*bench.Table, error) { return bench.E8Ablations(latCfg) }},
		{"e9", func() (*bench.Table, error) {
			rounds, window := 20000, 2*time.Second
			if *quick {
				rounds, window = 2000, 500*time.Millisecond
			}
			codec, err := bench.MeasureCodec(rounds)
			if err != nil {
				return nil, err
			}
			tput, err := bench.MeasureTCPThroughput(window, 8)
			if err != nil {
				return nil, err
			}
			if *transportOut != "" {
				if err := bench.WriteTransportJSON(*transportOut, codec, tput); err != nil {
					return nil, err
				}
			}
			return bench.TransportTable(codec, tput), nil
		}},
		{"e10", func() (*bench.Table, error) {
			window := 2 * time.Second
			if *quick {
				window = 500 * time.Millisecond
			}
			res, err := bench.MeasureResilience(window, 8, 100*time.Millisecond)
			if err != nil {
				return nil, err
			}
			if *resilienceOut != "" {
				if err := bench.WriteResilienceJSON(*resilienceOut, res); err != nil {
					return nil, err
				}
			}
			return bench.ResilienceTable(res), nil
		}},
		{"e11", func() (*bench.Table, error) {
			txns, trials := 2000, 5
			if *quick {
				txns, trials = 400, 3
			}
			res, err := bench.MeasureObsOverhead(txns, trials)
			if err != nil {
				return nil, err
			}
			if *obsOut != "" {
				if err := bench.WriteObsJSON(*obsOut, res); err != nil {
					return nil, err
				}
			}
			if !res.Pass {
				return bench.ObsTable(res), fmt.Errorf(
					"obs overhead %.2f%% exceeds %.0f%% gate", res.OverheadPct, res.GatePct)
			}
			return bench.ObsTable(res), nil
		}},
		{"e12", func() (*bench.Table, error) {
			txns, trials := 4000, 5
			if *quick {
				txns, trials = 800, 3
			}
			res, err := bench.MeasureEngineScaling(txns, trials)
			if err != nil {
				return nil, err
			}
			if *engineOut != "" {
				if err := bench.WriteEngineJSON(*engineOut, res); err != nil {
					return nil, err
				}
			}
			// The run fails only when the gate was enforced AND missed;
			// below GateMinCores the result is advisory (Pass=false there
			// records that the gate claim is unsupported, not that it
			// failed).
			if res.GateEnforced && !res.Pass {
				return bench.EngineTable(res), fmt.Errorf(
					"speedup %.2fx vs PR4 baseline below %.1fx gate", res.BaselineSpeedup, res.Gate)
			}
			return bench.EngineTable(res), nil
		}},
		{"e13", func() (*bench.Table, error) {
			txns := 60
			if *quick {
				txns = 30
			}
			res, err := bench.MeasureFastpath(txns)
			if err != nil {
				return nil, err
			}
			if *fastpathOut != "" {
				if err := bench.WriteFastpathJSON(*fastpathOut, res); err != nil {
					return nil, err
				}
			}
			if !res.Pass {
				return bench.FastpathTable(res), fmt.Errorf(
					"fast-path p50 not below t at t=%.0fms, or a run failed to converge", res.GateLatencyMS)
			}
			return bench.FastpathTable(res), nil
		}},
		{"e14", func() (*bench.Table, error) {
			backlogs := []int{100, 400, 1600}
			if *quick {
				backlogs = []int{50, 200}
			}
			res, err := bench.MeasureAntiEntropy(backlogs)
			if err != nil {
				return nil, err
			}
			if *antientropyOut != "" {
				if err := bench.WriteAntiEntropyJSON(*antientropyOut, res); err != nil {
					return nil, err
				}
			}
			if !res.Pass {
				return bench.AntiEntropyTable(res), fmt.Errorf(
					"anti-entropy catch-up missed the gate (convergence, resubmission, zero failovers, %.1fms/update)",
					res.GateNsPerUpdate/1e6)
			}
			return bench.AntiEntropyTable(res), nil
		}},
	}

	fmt.Println("DECAF evaluation harness — reproducing Strom et al., \"Concurrency Control and")
	fmt.Println("View Notification Algorithms for Collaborative Replicated Objects\" (section 5)")

	failed := false
	for _, r := range runners {
		if !selected[r.name] {
			continue
		}
		start := time.Now()
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (%s in %v)\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
