// Command decaf-vet runs the DECAF-specific static analyzer suite
// (internal/analysis) over packages of this module and reports
// file:line diagnostics for violated concurrency and determinism
// invariants.
//
// Usage:
//
//	decaf-vet [packages]
//
// Packages are directory patterns relative to the working directory:
// "./..." (the default) analyzes every package in the module, "./dir"
// analyzes one package, "./dir/..." a subtree. Exit status is 0 when
// clean, 1 when any analyzer reported a finding, 2 on load or usage
// errors.
//
// Suppress a documented false positive in place with:
//
//	//decaf:ignore <analyzer> <reason>
//
// which covers the directive's line and the line below it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"decaf/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: decaf-vet [packages]\n\nruns the DECAF analyzer suite; see internal/analysis for the checks\n")
		flag.PrintDefaults()
	}
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	for _, pattern := range patterns {
		loaded, err := loadPattern(loader, cwd, pattern)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d.Render(loader.ModRoot))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "decaf-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// loadPattern resolves one package pattern to loaded packages.
func loadPattern(loader *analysis.Loader, cwd, pattern string) ([]*analysis.Package, error) {
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		root := filepath.Join(cwd, filepath.FromSlash(rest))
		return loader.LoadAll(root)
	}
	pkg, err := loader.Load(filepath.Join(cwd, filepath.FromSlash(pattern)))
	if err != nil {
		return nil, err
	}
	return []*analysis.Package{pkg}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "decaf-vet:", err)
	os.Exit(2)
}
