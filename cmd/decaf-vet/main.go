// Command decaf-vet runs the DECAF-specific static analyzer suite
// (internal/analysis) over packages of this module and reports
// file:line diagnostics for violated concurrency and determinism
// invariants.
//
// Usage:
//
//	decaf-vet [-list] [-json] [packages]
//
// Packages are directory patterns relative to the working directory:
// "./..." (the default) analyzes every package in the module, "./dir"
// analyzes one package, "./dir/..." a subtree. Exit status is 0 when
// clean, 1 when any analyzer reported a finding, 2 on load or usage
// errors.
//
// With -json the report is a single JSON object on stdout — findings,
// bare-ignore warnings, and counts — for CI annotation tooling.
//
// Suppress a documented false positive in place with:
//
//	//decaf:ignore <analyzer> <reason>
//
// which covers the directive's line and the line below it. The reason
// is required in spirit: a directive without one still suppresses, but
// decaf-vet reports it as a warning and counts it in the exit summary
// (and TestVetSelfClean fails on it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"decaf/internal/analysis"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Findings    []jsonFinding `json:"findings"`
	BareIgnores []jsonFinding `json:"bare_ignores"`
	Counts      struct {
		Findings    int `json:"findings"`
		BareIgnores int `json:"bare_ignores"`
	} `json:"counts"`
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: decaf-vet [-list] [-json] [packages]\n\nruns the DECAF analyzer suite; see internal/analysis for the checks\n")
		flag.PrintDefaults()
	}
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit one JSON report object instead of plain lines (for CI annotations)")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	for _, pattern := range patterns {
		loaded, err := loadPattern(loader, cwd, pattern)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, loaded...)
	}

	res := analysis.RunSuite(analyzers, pkgs)
	root := loader.ModRoot

	if *asJSON {
		var rep jsonReport
		rep.Findings = []jsonFinding{}
		rep.BareIgnores = []jsonFinding{}
		for _, d := range res.Diags {
			rep.Findings = append(rep.Findings, jsonFinding{
				File:     relTo(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, b := range res.BareIgnores {
			rep.BareIgnores = append(rep.BareIgnores, jsonFinding{
				File:     relTo(root, b.Pos.Filename),
				Line:     b.Pos.Line,
				Column:   b.Pos.Column,
				Analyzer: b.Analyzer,
				Message:  "bare //decaf:ignore (no reason); add a justification",
			})
		}
		rep.Counts.Findings = len(res.Diags)
		rep.Counts.BareIgnores = len(res.BareIgnores)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d.Render(root))
		}
		for _, b := range res.BareIgnores {
			fmt.Println(b.Render(root))
		}
	}

	if len(res.BareIgnores) > 0 {
		fmt.Fprintf(os.Stderr, "decaf-vet: %d bare-ignore warning(s)\n", len(res.BareIgnores))
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "decaf-vet: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}

// relTo renders file relative to root when it lies under it.
func relTo(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// loadPattern resolves one package pattern to loaded packages.
func loadPattern(loader *analysis.Loader, cwd, pattern string) ([]*analysis.Package, error) {
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		root := filepath.Join(cwd, filepath.FromSlash(rest))
		return loader.LoadAll(root)
	}
	pkg, err := loader.Load(filepath.Join(cwd, filepath.FromSlash(pattern)))
	if err != nil {
		return nil, err
	}
	return []*analysis.Package{pkg}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "decaf-vet:", err)
	os.Exit(2)
}
