// Command decaf-chat is an interactive multi-user chat over real TCP —
// the paper's "multi-user chat program" (§5.2.1) as a networked
// application. The first instance hosts the room; others join it by
// address. Every message is an atomic append to a replicated List, and a
// pessimistic view renders only committed messages, in the same order at
// every participant.
//
// Host a room:
//
//	decaf-chat -site 1 -listen :7701 -name alice
//
// Join it (peers maps the host's site ID to its address):
//
//	decaf-chat -site 2 -listen :7702 -join 1=localhost:7701 -name bob
//	decaf-chat -site 3 -listen :7703 -join 1=localhost:7701 -name caz
//
// Type lines to chat; /quit leaves.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"decaf"
)

func main() {
	var (
		siteID = flag.Uint("site", 1, "unique site ID (>=1)")
		listen = flag.String("listen", ":7701", "listen address")
		join   = flag.String("join", "", "host to join, as <siteID>=<addr> (empty: host a room)")
		name   = flag.String("name", "", "display name (default: site<ID>)")
		debug  = flag.String("debug-addr", "", "serve /metrics, /debug/decaf/{state,trace} and pprof on this address")
	)
	flag.Parse()
	if *name == "" {
		*name = fmt.Sprintf("site%d", *siteID)
	}

	peers := map[decaf.SiteID]string{}
	var hostID decaf.SiteID
	if *join != "" {
		parts := strings.SplitN(*join, "=", 2)
		if len(parts) != 2 {
			fatal("-join must be <siteID>=<addr>")
		}
		id, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			fatal("bad site ID in -join: %v", err)
		}
		hostID = decaf.SiteID(id)
		peers[hostID] = parts[1]
	}

	var observer *decaf.Observer
	if *debug != "" {
		observer = decaf.NewObserver()
		srv, err := decaf.ServeDebug(*debug, observer)
		if err != nil {
			fatal("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/metrics\n", srv.Addr())
	}

	ep, err := decaf.ListenTCPOptions(decaf.SiteID(*siteID), *listen, peers,
		decaf.TCPOptions{Observer: observer})
	if err != nil {
		fatal("listen: %v", err)
	}
	site := decaf.NewSite(ep, decaf.Options{Observer: observer})
	defer site.Close()

	log, err := site.NewList("chat-log")
	if err != nil {
		fatal("create log: %v", err)
	}

	if *join == "" {
		// Host: create the association so late joiners could discover
		// the room (the log's object ID is the out-of-band token here).
		assoc, _ := site.NewAssociation("room")
		if res := assoc.Define("log", log, "chat log").Wait(); !res.Committed {
			fatal("define relationship: %+v", res)
		}
		fmt.Printf("hosting room at %s — others join with:\n", ep.Addr())
		fmt.Printf("  decaf-chat -site <N> -listen :770N -join %d=%s\n", *siteID, ep.Addr())
	} else {
		// The well-known object seq of the host's log: the host creates
		// it first, so it is s<host>/1.
		remote := decaf.ObjectID{Site: hostID, Seq: 1}
		fmt.Printf("joining room at site %d ...\n", hostID)
		if res := site.JoinObject(log, hostID, remote).Wait(); !res.Committed {
			fatal("join failed: %+v", res)
		}
		fmt.Println("joined; backlog:")
	}

	// Pessimistic view: print committed messages in order.
	printed := 0
	view := decaf.ViewFunc(func(s *decaf.Snapshot) {
		msgs := s.List(log)
		for ; printed < len(msgs); printed++ {
			m, ok := msgs[printed].(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("<%v> %v\n", m["from"], m["text"])
		}
	})
	if _, err := site.Attach(view, decaf.Pessimistic, log); err != nil {
		fatal("attach view: %v", err)
	}

	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		if text == "/quit" {
			site.LeaveObject(log).Wait()
			fmt.Println("left the room")
			return
		}
		res := site.ExecuteFunc(func(tx *decaf.Tx) error {
			msg := log.AppendTuple(tx)
			msg.SetString(tx, "from", *name)
			msg.SetString(tx, "text", text)
			return nil
		}).Wait()
		if !res.Committed {
			fmt.Printf("! message not delivered: %v\n", res.Err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
