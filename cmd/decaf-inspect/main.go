// Command decaf-inspect prints a human-readable summary of a DECAF site
// checkpoint produced by Site.Checkpoint / Site.CheckpointFile (the
// persistence store of paper §5.3): the site's objects, committed values,
// composite structure with its virtual-time element tags, and replication
// graphs.
//
// With -live it inspects a running site instead, fetching and rendering
// the /debug/decaf/state dump of a debug server started with -debug-addr
// (decaf-bench, decaf-chat) or decaf.ServeDebug.
//
// Usage:
//
//	decaf-inspect <checkpoint-file>
//	decaf-inspect -live localhost:8321
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"decaf/internal/engine"
)

func main() {
	live := flag.String("live", "", "inspect a running site: fetch /debug/decaf/state from this debug-server address")
	flag.Parse()

	if *live != "" {
		if err := inspectLive(*live); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: decaf-inspect <checkpoint-file> | decaf-inspect -live <addr>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	out, err := engine.DescribeCheckpoint(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// inspectLive fetches /debug/decaf/state and renders each layer's state
// in the same outline style as the checkpoint description.
func inspectLive(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(addr + "/debug/decaf/state")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/decaf/state: %s", resp.Status)
	}
	var state map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		return fmt.Errorf("decode state: %w", err)
	}

	fmt.Printf("live site state (%s)\n", addr)
	for _, layer := range sortedKeys(state) {
		fmt.Printf("\n%s:\n", layer)
		render(os.Stdout, state[layer], "  ")
	}
	return nil
}

// render prints a decoded JSON value as an indented outline with sorted
// keys, so successive snapshots diff cleanly.
func render(w *os.File, v any, indent string) {
	switch t := v.(type) {
	case map[string]any:
		if len(t) == 0 {
			fmt.Fprintf(w, "%s(empty)\n", indent)
			return
		}
		for _, k := range sortedKeys(t) {
			switch child := t[k].(type) {
			case map[string]any, []any:
				fmt.Fprintf(w, "%s%s:\n", indent, k)
				render(w, child, indent+"  ")
			default:
				fmt.Fprintf(w, "%s%s: %s\n", indent, k, scalar(child))
			}
		}
	case []any:
		for _, item := range t {
			switch item.(type) {
			case map[string]any, []any:
				fmt.Fprintf(w, "%s-\n", indent)
				render(w, item, indent+"  ")
			default:
				fmt.Fprintf(w, "%s- %s\n", indent, scalar(item))
			}
		}
	default:
		fmt.Fprintf(w, "%s%s\n", indent, scalar(v))
	}
}

func scalar(v any) string {
	switch t := v.(type) {
	case float64:
		if t == float64(int64(t)) {
			return fmt.Sprintf("%d", int64(t))
		}
		return fmt.Sprintf("%g", t)
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%v", t)
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
