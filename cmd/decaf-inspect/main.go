// Command decaf-inspect prints a human-readable summary of a DECAF site
// checkpoint produced by Site.Checkpoint / Site.CheckpointFile (the
// persistence store of paper §5.3): the site's objects, committed values,
// composite structure with its virtual-time element tags, and replication
// graphs.
//
// Usage: decaf-inspect <checkpoint-file>
package main

import (
	"fmt"
	"os"

	"decaf/internal/engine"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: decaf-inspect <checkpoint-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	out, err := engine.DescribeCheckpoint(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
