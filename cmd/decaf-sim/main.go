// Command decaf-sim drives the deterministic simulation harness
// (internal/sim): whole-cluster runs on a virtual clock, exploring
// message interleavings by seed and checking convergence, accounting
// identities, and GVT monotonicity after quiescence.
//
// Sweep mode (default) runs every profile across a contiguous seed
// range and exits 1 if any run fails, printing a one-line replay
// command per failure:
//
//	decaf-sim -seeds 200 [-start 1] [-profiles faulty,nofast] [-artifacts DIR]
//
// With -artifacts, each failing run's full event trace is written to
// DIR/<profile>-seed<seed>.trace so CI can upload it.
//
// Replay mode re-runs a single (profile, seed) and prints the full
// event trace — the exact interleaving, step by step:
//
//	decaf-sim -replay -profile nofast -seed 107
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"decaf/internal/sim"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 50, "number of seeds per profile in sweep mode")
		start     = flag.Int64("start", 1, "first seed")
		profiles  = flag.String("profiles", "all", "comma-separated profile names, or 'all'")
		artifacts = flag.String("artifacts", "", "directory for failing-run trace artifacts ('' disables)")
		replay    = flag.Bool("replay", false, "replay one (profile, seed) and print its trace")
		profile   = flag.String("profile", "", "profile name for -replay")
		seed      = flag.Int64("seed", 1, "seed for -replay")
		gvtSeeds  = flag.Int("gvt-seeds", 0, "additionally run this many seeds of the GVT ring simulation")
	)
	flag.Parse()

	if *replay {
		os.Exit(runReplay(*profile, *seed))
	}
	os.Exit(runSweep(*profiles, *start, *seeds, *gvtSeeds, *artifacts))
}

func runReplay(name string, seed int64) int {
	p, ok := sim.ProfileByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (have: %s)\n", name, profileNames())
		return 2
	}
	r := sim.Run(p, seed)
	fmt.Print(r.Trace)
	fmt.Printf("steps=%d killed=%s\n", r.Steps, sim.KilledLabel(r.Killed))
	fmt.Printf("fingerprint: %s\n", r.Fingerprint)
	if r.Err != nil {
		fmt.Printf("FAIL: %v\n", r.Err)
		return 1
	}
	fmt.Println("ok")
	return 0
}

func runSweep(names string, start int64, count, gvtCount int, artifactDir string) int {
	ps := sim.Profiles()
	if names != "all" {
		want := map[string]bool{}
		for _, n := range strings.Split(names, ",") {
			want[strings.TrimSpace(n)] = true
		}
		kept := ps[:0]
		for _, p := range ps {
			if want[p.Name] {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "no matching profiles in %q (have: %s)\n", names, profileNames())
			return 2
		}
		ps = kept
	}

	type job struct {
		profile sim.Profile
		seed    int64
	}
	var jobs []job
	for _, p := range ps {
		for _, s := range sim.Seeds(start, count) {
			jobs = append(jobs, job{p, s})
		}
	}

	// Each run is internally deterministic (one virtual clock, lock-step
	// event delivery); runs share nothing, so the sweep itself can use
	// every core.
	var (
		mu       sync.Mutex
		failures []sim.Result
		next     int
	)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(jobs) {
					mu.Unlock()
					return
				}
				j := jobs[next]
				next++
				mu.Unlock()
				r := sim.Run(j.profile, j.seed)
				if r.Err != nil {
					mu.Lock()
					failures = append(failures, r)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	sort.Slice(failures, func(i, j int) bool {
		if failures[i].Profile != failures[j].Profile {
			return failures[i].Profile < failures[j].Profile
		}
		return failures[i].Seed < failures[j].Seed
	})
	for _, r := range failures {
		fmt.Printf("FAIL %s seed=%d: %v\n", r.Profile, r.Seed, r.Err)
		fmt.Printf("  replay: go run ./cmd/decaf-sim -replay -profile %s -seed %d\n", r.Profile, r.Seed)
		if artifactDir != "" {
			if err := writeArtifact(artifactDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "  artifact: %v\n", err)
			}
		}
	}

	gvtFailures := 0
	if gvtCount > 0 {
		gp := sim.GVTProfile{Name: "ring3", Sites: 3, Jitter: 4e6}
		for _, s := range sim.Seeds(start, gvtCount) {
			if r := sim.RunGVT(gp, s); r.Err != nil {
				gvtFailures++
				fmt.Printf("FAIL gvt/%s seed=%d: %v\n", gp.Name, r.Seed, r.Err)
			}
		}
		fmt.Printf("gvt: %d seeds, %d failures\n", gvtCount, gvtFailures)
	}

	fmt.Printf("sweep: %d runs (%d profiles x %d seeds from %d), %d failures\n",
		len(jobs), len(ps), count, start, len(failures))
	if len(failures) > 0 || gvtFailures > 0 {
		return 1
	}
	return 0
}

func writeArtifact(dir string, r sim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.trace", r.Profile, r.Seed))
	var b strings.Builder
	fmt.Fprintf(&b, "profile=%s seed=%d steps=%d killed=%s\n", r.Profile, r.Seed, r.Steps, sim.KilledLabel(r.Killed))
	fmt.Fprintf(&b, "error: %v\n", r.Err)
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint)
	fmt.Fprintf(&b, "replay: go run ./cmd/decaf-sim -replay -profile %s -seed %d\n\n", r.Profile, r.Seed)
	b.WriteString(r.Trace)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func profileNames() string {
	var names []string
	for _, p := range sim.Profiles() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}
