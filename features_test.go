package decaf_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"decaf"
)

// Facade-level tests for the extension features: authorization monitors,
// the persistence store, and direct propagation of embedded objects.

func TestFacadeAuthorizer(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)

	secret, _ := a.NewString("secret")
	a.SetAuthorizer(func(req decaf.AuthRequest) error {
		if req.Kind == decaf.AuthJoin {
			return errors.New("invitation only")
		}
		return nil
	})

	mine, _ := b.NewString("secret")
	res := b.JoinObject(mine, a.ID(), secret.Ref().ID()).Wait()
	if res.Committed {
		t.Fatal("unauthorized join committed")
	}

	a.SetAuthorizer(nil)
	mine2, _ := b.NewString("secret")
	if res := b.JoinObject(mine2, a.ID(), secret.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("join after clearing monitor: %+v", res)
	}
}

func TestFacadeCheckpointRestore(t *testing.T) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	site, err := decaf.Dial(net, 7)
	if err != nil {
		t.Fatal(err)
	}

	n, _ := site.NewInt("n")
	todo, _ := site.NewList("todo")
	if res := site.ExecuteFunc(func(tx *decaf.Tx) error {
		n.Set(tx, 5)
		todo.AppendString(tx, "persist me")
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("setup txn failed")
	}

	path := filepath.Join(t.TempDir(), "site7.ckpt")
	if err := site.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	site.Close()
	net.Close()

	// Cold restart.
	net2 := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net2.Close()
	site2, err := decaf.Dial(net2, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer site2.Close()
	if err := site2.RestoreFile(path); err != nil {
		t.Fatal(err)
	}

	objs, err := site2.Objects()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("restored %d objects, want 2", len(objs))
	}
	var gotInt *decaf.Int
	var gotList *decaf.List
	for _, o := range objs {
		switch v := o.(type) {
		case *decaf.Int:
			gotInt = v
		case *decaf.List:
			gotList = v
		}
	}
	if gotInt == nil || gotList == nil {
		t.Fatalf("restored objects have wrong types: %T", objs)
	}
	if gotInt.Committed() != 5 {
		t.Fatalf("restored int = %d", gotInt.Committed())
	}
	if !reflect.DeepEqual(gotList.Committed(), []any{"persist me"}) {
		t.Fatalf("restored list = %v", gotList.Committed())
	}
}

func TestFacadeCheckpointBuffer(t *testing.T) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()
	if _, err := site.NewInt("x"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := site.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty checkpoint")
	}
}

func TestFacadePromoteAndEmbeddedJoin(t *testing.T) {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: time.Millisecond})
	defer net.Close()
	a, _ := decaf.Dial(net, 1)
	b, _ := decaf.Dial(net, 2)
	c, _ := decaf.Dial(net, 3)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	// A tuple replicated between sites 1 and 2 with a scalar child.
	formA, _ := a.NewTuple("form")
	var childA *decaf.Int
	if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		childA = formA.SetInt(tx, "score", 10)
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("setup")
	}
	formB, _ := b.NewTuple("form")
	if res := b.JoinObject(formB, a.ID(), formA.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("tree join: %+v", res)
	}

	// Promote the child and join it from an outside site that has no
	// copy of the tree (paper Fig. 7).
	if res := a.Promote(childA).Wait(); !res.Committed {
		t.Fatalf("promote: %+v", res)
	}
	outside, _ := c.NewInt("score")
	if res := c.JoinObject(outside, a.ID(), childA.Ref().ID()).Wait(); !res.Committed {
		t.Fatalf("outside join: %+v", res)
	}

	if res := c.ExecuteFunc(func(tx *decaf.Tx) error {
		outside.Set(tx, 99)
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("outside write")
	}
	eventually(t, "score replicated into both trees", func() bool {
		ma := formA.Committed()
		mb := formB.Committed()
		return ma != nil && mb != nil && ma["score"] == int64(99) && mb["score"] == int64(99)
	})
}

func TestFacadeBoolAndFloat(t *testing.T) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()

	flag, _ := site.NewBool("flag")
	ratio, _ := site.NewFloat("ratio")
	if res := site.ExecuteFunc(func(tx *decaf.Tx) error {
		flag.Set(tx, !flag.Value(tx))
		ratio.Set(tx, ratio.Value(tx)+0.5)
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("txn failed")
	}
	if flag.Committed() != true || ratio.Committed() != 0.5 {
		t.Fatalf("flag=%v ratio=%v", flag.Committed(), ratio.Committed())
	}
	if flag.Current() != true {
		t.Fatal("Current mismatch")
	}
}

func TestFacadeStats(t *testing.T) {
	_, a, b := pair(t, time.Millisecond)
	ia, ib := joinInts(t, a, b, "x")
	_ = ib
	if res := a.ExecuteFunc(func(tx *decaf.Tx) error {
		ia.Set(tx, 1)
		return nil
	}).Wait(); !res.Committed {
		t.Fatal("txn failed")
	}
	st := a.Stats()
	if st.Commits == 0 || st.Submitted == 0 || st.MessagesSent == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestFacadeDetach(t *testing.T) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	site, _ := decaf.Dial(net, 1)
	defer site.Close()
	x, _ := site.NewInt("x")

	calls := make(chan int64, 16)
	att, err := site.Attach(decaf.ViewFunc(func(s *decaf.Snapshot) {
		calls <- s.Int(x)
	}), decaf.Optimistic, x)
	if err != nil {
		t.Fatal(err)
	}
	<-calls // initial
	att.Detach()
	site.ExecuteFunc(func(tx *decaf.Tx) error {
		x.Set(tx, 5)
		return nil
	}).Wait()
	select {
	case v := <-calls:
		t.Fatalf("notified after detach: %v", v)
	case <-time.After(30 * time.Millisecond):
	}
}
