package decaf

import (
	"decaf/internal/engine"
	"decaf/internal/ids"
)

// Object is implemented by every typed model object. Model objects hold
// application state, can join replica relationships with objects at other
// sites, and can have views attached (paper §2.1).
type Object interface {
	// Ref returns the object's engine handle (used to attach views and
	// establish collaborations).
	Ref() engine.ObjRef
	// Site returns the hosting site.
	Site() *Site
}

// base carries the common state of all typed model objects.
type base struct {
	site *Site
	ref  engine.ObjRef
}

// Ref implements Object.
func (b *base) Ref() engine.ObjRef { return b.ref }

// Site implements Object.
func (b *base) Site() *Site { return b.site }

// ID returns the object's globally unique identifier.
func (b *base) ID() ids.ObjectID { return b.ref.ID() }

// ReplicaSites returns the sites currently holding replicas (including
// this one).
func (b *base) ReplicaSites() []SiteID {
	sites, _ := b.site.eng.ReplicaSites(b.ref)
	return sites
}

// PrimarySite returns the site of the object's primary copy.
func (b *base) PrimarySite() SiteID {
	p, _ := b.site.eng.PrimarySite(b.ref)
	return p
}

// ---------------------------------------------------------------------------
// Scalar model objects.
// ---------------------------------------------------------------------------

// Int is an integer model object.
type Int struct{ base }

// NewInt creates an integer model object with initial value 0.
func (s *Site) NewInt(name string) (*Int, error) {
	ref, err := s.eng.CreateObject(engine.KindInt, name, nil)
	if err != nil {
		return nil, err
	}
	return &Int{base{s, ref}}, nil
}

// Value reads the current value inside a transaction.
func (i *Int) Value(tx *Tx) int64 {
	v, err := tx.inner.Read(i.ref)
	if err != nil {
		return 0
	}
	n, _ := v.(int64)
	return n
}

// Set writes the value inside a transaction.
func (i *Int) Set(tx *Tx, v int64) { _ = tx.inner.Write(i.ref, v) }

// Add increments the value by delta inside a transaction. Adds commute:
// a transaction built only from adds (and other commutative ops) commits
// on the fast path, without a primary round-trip.
func (i *Int) Add(tx *Tx, delta int64) { _ = tx.inner.Add(i.ref, delta) }

// Committed reads the latest committed value outside any transaction.
func (i *Int) Committed() int64 {
	v, _ := i.site.eng.ReadCommitted(i.ref)
	n, _ := v.(int64)
	return n
}

// Current reads the current (possibly uncommitted) value.
func (i *Int) Current() int64 {
	v, _ := i.site.eng.ReadCurrent(i.ref)
	n, _ := v.(int64)
	return n
}

// Float is a real-number model object.
type Float struct{ base }

// NewFloat creates a float model object with initial value 0.
func (s *Site) NewFloat(name string) (*Float, error) {
	ref, err := s.eng.CreateObject(engine.KindFloat, name, nil)
	if err != nil {
		return nil, err
	}
	return &Float{base{s, ref}}, nil
}

// Value reads the current value inside a transaction.
func (f *Float) Value(tx *Tx) float64 {
	v, err := tx.inner.Read(f.ref)
	if err != nil {
		return 0
	}
	n, _ := v.(float64)
	return n
}

// Set writes the value inside a transaction.
func (f *Float) Set(tx *Tx, v float64) { _ = tx.inner.Write(f.ref, v) }

// Add increments the value by delta inside a transaction; see Int.Add.
func (f *Float) Add(tx *Tx, delta float64) { _ = tx.inner.Add(f.ref, delta) }

// Committed reads the latest committed value.
func (f *Float) Committed() float64 {
	v, _ := f.site.eng.ReadCommitted(f.ref)
	n, _ := v.(float64)
	return n
}

// Current reads the current (possibly uncommitted) value.
func (f *Float) Current() float64 {
	v, _ := f.site.eng.ReadCurrent(f.ref)
	n, _ := v.(float64)
	return n
}

// String is a string model object.
type String struct{ base }

// NewString creates a string model object with initial value "".
func (s *Site) NewString(name string) (*String, error) {
	ref, err := s.eng.CreateObject(engine.KindString, name, nil)
	if err != nil {
		return nil, err
	}
	return &String{base{s, ref}}, nil
}

// Value reads the current value inside a transaction.
func (o *String) Value(tx *Tx) string {
	v, err := tx.inner.Read(o.ref)
	if err != nil {
		return ""
	}
	n, _ := v.(string)
	return n
}

// Set writes the value inside a transaction.
func (o *String) Set(tx *Tx, v string) { _ = tx.inner.Write(o.ref, v) }

// Committed reads the latest committed value.
func (o *String) Committed() string {
	v, _ := o.site.eng.ReadCommitted(o.ref)
	n, _ := v.(string)
	return n
}

// Current reads the current (possibly uncommitted) value.
func (o *String) Current() string {
	v, _ := o.site.eng.ReadCurrent(o.ref)
	n, _ := v.(string)
	return n
}

// Bool is a boolean model object.
type Bool struct{ base }

// NewBool creates a boolean model object with initial value false.
func (s *Site) NewBool(name string) (*Bool, error) {
	ref, err := s.eng.CreateObject(engine.KindBool, name, nil)
	if err != nil {
		return nil, err
	}
	return &Bool{base{s, ref}}, nil
}

// Value reads the current value inside a transaction.
func (o *Bool) Value(tx *Tx) bool {
	v, err := tx.inner.Read(o.ref)
	if err != nil {
		return false
	}
	n, _ := v.(bool)
	return n
}

// Set writes the value inside a transaction.
func (o *Bool) Set(tx *Tx, v bool) { _ = tx.inner.Write(o.ref, v) }

// Committed reads the latest committed value.
func (o *Bool) Committed() bool {
	v, _ := o.site.eng.ReadCommitted(o.ref)
	n, _ := v.(bool)
	return n
}

// Current reads the current (possibly uncommitted) value.
func (o *Bool) Current() bool {
	v, _ := o.site.eng.ReadCurrent(o.ref)
	n, _ := v.(bool)
	return n
}
