package decaf

import (
	"io"
	"os"

	"decaf/internal/engine"
)

// Persistence and authorization: the paper's §5.3 persistence store and
// the §1 authorization monitors, surfaced on the public API.

// AuthKind classifies a remote access vetted by an authorization monitor.
type AuthKind = engine.AuthKind

// Remote access kinds.
const (
	// AuthJoin is a remote request to join a local object's replica
	// relationship.
	AuthJoin = engine.AuthJoin
	// AuthWrite is a remote transaction updating a local object whose
	// primary copy lives at this site.
	AuthWrite = engine.AuthWrite
	// AuthRead is a remote read (transaction or view snapshot) confirmed
	// by this site's primary copy.
	AuthRead = engine.AuthRead
)

// AuthRequest describes one remote access.
type AuthRequest = engine.AuthRequest

// ErrUnauthorized wraps authorization denials.
var ErrUnauthorized = engine.ErrUnauthorized

// SetAuthorizer installs an authorization monitor: a policy hook invoked
// for every remote join, and for every remote write or read validated by
// this site's primary copies (paper §1: "users may also code
// authorization monitors to restrict access to sensitive objects").
// A nil monitor allows everything.
func (s *Site) SetAuthorizer(fn func(req AuthRequest) error) {
	if fn == nil {
		s.eng.SetAuthorizer(nil)
		return
	}
	s.eng.SetAuthorizer(engine.Authorizer(fn))
}

// Checkpoint writes the site's committed state — objects, values,
// composite structure (with its global element tags), and replication
// graphs — to w (paper §5.3's persistence store).
func (s *Site) Checkpoint(w io.Writer) error { return s.eng.Checkpoint(w) }

// CheckpointFile is Checkpoint to a file path.
func (s *Site) CheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Checkpoint(f); err != nil {
		return err
	}
	return f.Sync()
}

// Restore loads a checkpoint into this fresh site (same site ID, no
// objects created yet). Restored objects keep their original IDs, so
// peers restored from mutually consistent checkpoints resume their
// replica relationships in place.
func (s *Site) Restore(r io.Reader) error { return s.eng.Restore(r) }

// RestoreFile is Restore from a file path.
func (s *Site) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Restore(f)
}

// Promote switches an embedded model object (a composite child) to
// direct propagation (paper §3.2.2): it receives its own replication
// graph over its counterparts at every replica of the enclosing tree and
// can then join external objects independently of the tree. JoinObject
// promotes automatically when needed; call Promote explicitly to pay the
// switching cost up front.
func (s *Site) Promote(obj Object) *Pending {
	return &Pending{h: s.eng.Promote(obj.Ref())}
}

// Objects lists the site's top-level model objects (useful after
// Restore), wrapped in their typed facades.
func (s *Site) Objects() ([]Object, error) {
	refs, err := s.eng.Objects()
	if err != nil {
		return nil, err
	}
	out := make([]Object, 0, len(refs))
	for _, r := range refs {
		if o := wrapRef(s, r); o != nil {
			out = append(out, o)
		}
	}
	return out, nil
}
