// Package vtime implements the virtual-time (VT) machinery of the DECAF
// concurrency-control algorithms: Lamport logical clocks extended with a
// site identifier so that every transaction in the system receives a
// globally unique, totally ordered virtual time (paper §3).
package vtime

import (
	"fmt"
	"sync"
)

// SiteID identifies a site (one collaborating application instance).
// Site identifiers participate in VT tie-breaking, so they must be unique
// across a collaboration.
type SiteID uint32

// String implements fmt.Stringer.
func (s SiteID) String() string { return fmt.Sprintf("s%d", uint32(s)) }

// VT is a virtual time: a Lamport clock value paired with the identifier of
// the site that generated it. VTs are totally ordered, first by Lamport
// time, then by site. The zero VT sorts before every VT produced by a
// Clock and is used as "the beginning of time".
type VT struct {
	Time uint64
	Site SiteID
}

// Zero is the virtual time before all transactions.
var Zero = VT{}

// IsZero reports whether v is the zero virtual time.
func (v VT) IsZero() bool { return v == Zero }

// Less reports whether v is ordered strictly before w.
func (v VT) Less(w VT) bool {
	if v.Time != w.Time {
		return v.Time < w.Time
	}
	return v.Site < w.Site
}

// LessEq reports whether v is ordered before or equal to w.
func (v VT) LessEq(w VT) bool { return v == w || v.Less(w) }

// Compare returns -1, 0, or +1 according to the total order on VTs.
func (v VT) Compare(w VT) int {
	switch {
	case v.Less(w):
		return -1
	case w.Less(v):
		return 1
	default:
		return 0
	}
}

// Max returns the later of v and w.
func (v VT) Max(w VT) VT {
	if v.Less(w) {
		return w
	}
	return v
}

// String implements fmt.Stringer, e.g. "100@s2".
func (v VT) String() string {
	if v.IsZero() {
		return "0"
	}
	return fmt.Sprintf("%d@%s", v.Time, v.Site)
}

// Clock is a Lamport clock owned by a single site. The zero value is not
// usable; construct with NewClock so the clock knows its site identity.
//
// Clock is safe for concurrent use. (The engine calls it from a single
// event loop, but controllers may request times from other goroutines.)
type Clock struct {
	mu   sync.Mutex
	site SiteID // immutable after NewClock
	last uint64 // guarded by mu
}

// NewClock returns a Clock that stamps virtual times for the given site.
func NewClock(site SiteID) *Clock {
	return &Clock{site: site}
}

// Site returns the site this clock stamps for.
func (c *Clock) Site() SiteID { return c.site }

// Next advances the clock and returns a fresh virtual time strictly greater
// than every VT previously returned by or observed through this clock.
func (c *Clock) Next() VT {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last++
	return VT{Time: c.last, Site: c.site}
}

// Observe merges an externally received virtual time into the clock
// (Lamport receive rule): subsequent calls to Next return VTs greater
// than v.
func (c *Clock) Observe(v VT) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v.Time > c.last {
		c.last = v.Time
	}
}

// Now returns the current Lamport time without advancing the clock.
func (c *Clock) Now() VT {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VT{Time: c.last, Site: c.site}
}

// JustBelow returns the largest VT strictly less than v under the total
// order (or Zero when no such VT exists). It is the inverse step the
// engine and the GVT sweep use to turn an exclusive bound into an
// inclusive one; keeping it here keeps raw field manipulation of VTs
// confined to this package.
func JustBelow(v VT) VT {
	if v.Site > 0 {
		return VT{Time: v.Time, Site: v.Site - 1}
	}
	if v.Time == 0 {
		return Zero
	}
	return VT{Time: v.Time - 1, Site: ^SiteID(0)}
}

// Interval is a half-open virtual-time interval (Lo, Hi]: it excludes Lo
// and includes Hi. Intervals are how the primary copy reserves "write-free"
// regions of time (RL guesses) and checks no-conflict (NC) guesses.
type Interval struct {
	Lo VT // exclusive
	Hi VT // inclusive
}

// Contains reports whether v lies within the half-open interval (Lo, Hi].
func (iv Interval) Contains(v VT) bool {
	return iv.Lo.Less(v) && v.LessEq(iv.Hi)
}

// Empty reports whether the interval contains no virtual times.
func (iv Interval) Empty() bool { return !iv.Lo.Less(iv.Hi) }

// Overlaps reports whether two half-open intervals share any virtual time.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	// (a,b] and (c,d] overlap iff a < d and c < b.
	return iv.Lo.Less(other.Hi) && other.Lo.Less(iv.Hi)
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("(%s,%s]", iv.Lo, iv.Hi)
}
