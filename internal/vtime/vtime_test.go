package vtime

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestVTLess(t *testing.T) {
	tests := []struct {
		name string
		a, b VT
		want bool
	}{
		{"zero before anything", Zero, VT{1, 0}, true},
		{"time dominates", VT{1, 9}, VT{2, 0}, true},
		{"site breaks ties", VT{5, 1}, VT{5, 2}, true},
		{"equal not less", VT{5, 1}, VT{5, 1}, false},
		{"reverse time", VT{3, 0}, VT{2, 9}, false},
		{"reverse site", VT{5, 2}, VT{5, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestVTCompareConsistentWithLess(t *testing.T) {
	f := func(at, bt uint16, as, bs uint8) bool {
		a := VT{Time: uint64(at), Site: SiteID(as)}
		b := VT{Time: uint64(bt), Site: SiteID(bs)}
		switch a.Compare(b) {
		case -1:
			return a.Less(b) && !b.Less(a)
		case 1:
			return b.Less(a) && !a.Less(b)
		default:
			return a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVTTotalOrderProperties(t *testing.T) {
	// Antisymmetry, transitivity, totality over random triples.
	f := func(at, bt, ct uint8, as, bs, cs uint8) bool {
		a := VT{uint64(at), SiteID(as)}
		b := VT{uint64(bt), SiteID(bs)}
		c := VT{uint64(ct), SiteID(cs)}
		// Totality: exactly one of a<b, b<a, a==b.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVTMax(t *testing.T) {
	a, b := VT{3, 1}, VT{3, 2}
	if got := a.Max(b); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if got := b.Max(a); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if got := a.Max(a); got != a {
		t.Errorf("Max = %v, want %v", got, a)
	}
}

func TestVTString(t *testing.T) {
	if got := Zero.String(); got != "0" {
		t.Errorf("Zero.String() = %q", got)
	}
	if got := (VT{42, 7}).String(); got != "42@s7" {
		t.Errorf("String() = %q, want 42@s7", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock(3)
	prev := Zero
	for i := 0; i < 100; i++ {
		v := c.Next()
		if !prev.Less(v) {
			t.Fatalf("clock not monotonic: %v then %v", prev, v)
		}
		if v.Site != 3 {
			t.Fatalf("wrong site: %v", v)
		}
		prev = v
	}
}

func TestClockObserve(t *testing.T) {
	c := NewClock(1)
	c.Observe(VT{100, 2})
	v := c.Next()
	if !(VT{100, 2}).Less(v) {
		t.Fatalf("Next after Observe(100@s2) = %v, want > 100@s2", v)
	}
	// Observing an older time must not move the clock backwards.
	c.Observe(VT{5, 9})
	w := c.Next()
	if !v.Less(w) {
		t.Fatalf("clock went backwards: %v then %v", v, w)
	}
}

func TestClockConcurrentUniqueness(t *testing.T) {
	c := NewClock(1)
	const goroutines, per = 8, 200
	var mu sync.Mutex
	seen := make(map[VT]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]VT, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("duplicate VT %v", v)
				}
				seen[v] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique VTs, want %d", len(seen), goroutines*per)
	}
}

func TestTwoClocksNeverCollide(t *testing.T) {
	// Different sites can produce the same Lamport time but the full VTs
	// must differ.
	a, b := NewClock(1), NewClock(2)
	seen := make(map[VT]bool)
	for i := 0; i < 50; i++ {
		for _, v := range []VT{a.Next(), b.Next()} {
			if seen[v] {
				t.Fatalf("VT collision: %v", v)
			}
			seen[v] = true
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: VT{10, 0}, Hi: VT{20, 0}}
	tests := []struct {
		v    VT
		want bool
	}{
		{VT{10, 0}, false}, // exclusive lower bound
		{VT{10, 1}, true},  // just above Lo
		{VT{15, 0}, true},
		{VT{20, 0}, true},  // inclusive upper bound
		{VT{20, 1}, false}, // just above Hi
		{VT{5, 0}, false},
		{Zero, false},
	}
	for _, tt := range tests {
		if got := iv.Contains(tt.v); got != tt.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", iv, tt.v, got, tt.want)
		}
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !(Interval{Lo: VT{5, 0}, Hi: VT{5, 0}}).Empty() {
		t.Error("point interval should be empty")
	}
	if !(Interval{Lo: VT{6, 0}, Hi: VT{5, 0}}).Empty() {
		t.Error("inverted interval should be empty")
	}
	if (Interval{Lo: VT{5, 0}, Hi: VT{5, 1}}).Empty() {
		t.Error("(5@s0, 5@s1] contains 5@s1; not empty")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	mk := func(lo, hi uint64) Interval {
		return Interval{Lo: VT{lo, 0}, Hi: VT{hi, 0}}
	}
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"disjoint", mk(0, 5), mk(5, 10), false}, // (0,5] and (5,10] share nothing
		{"touching overlap", mk(0, 6), mk(5, 10), true},
		{"nested", mk(0, 10), mk(3, 4), true},
		{"identical", mk(2, 8), mk(2, 8), true},
		{"empty never overlaps", mk(5, 5), mk(0, 10), false},
		{"far apart", mk(0, 2), mk(8, 9), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("overlap not symmetric for %v, %v", tt.a, tt.b)
			}
		})
	}
}

func TestIntervalOverlapsProperty(t *testing.T) {
	// Two intervals overlap iff some point (drawn from a small domain) is
	// in both. Small domain makes the exhaustive check cheap and exact.
	rng := rand.New(rand.NewSource(1))
	points := make([]VT, 0, 64)
	for ti := uint64(0); ti < 8; ti++ {
		for s := SiteID(0); s < 4; s++ {
			points = append(points, VT{ti, s})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Less(points[j]) })
	for n := 0; n < 500; n++ {
		a := Interval{points[rng.Intn(len(points))], points[rng.Intn(len(points))]}
		b := Interval{points[rng.Intn(len(points))], points[rng.Intn(len(points))]}
		shared := false
		for _, p := range points {
			if a.Contains(p) && b.Contains(p) {
				shared = true
				break
			}
		}
		if got := a.Overlaps(b); got != shared {
			t.Fatalf("Overlaps(%v, %v) = %v, want %v", a, b, got, shared)
		}
	}
}
