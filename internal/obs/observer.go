package obs

import (
	"sort"
	"sync"
)

// Observer bundles one site's observability surfaces: the metrics
// registry, the event tracer, the wall-clock source for latency
// stamps, and the named state sources the debug server renders at
// /debug/decaf/state.
//
// Layers share one Observer per site: the engine, its transport
// endpoint, and (in the baseline experiments) a GVT daemon all register
// their metrics and state sources on the same instance, so one scrape
// sees the whole site.
type Observer struct {
	reg    *Registry
	trace  *Trace
	timing bool

	mu      sync.Mutex
	sources map[string]func() any // guarded by mu
}

// Config tunes an Observer.
type Config struct {
	// TraceCapacity bounds the event ring (0: DefaultTraceCapacity;
	// negative: tracing disabled).
	TraceCapacity int
	// DisableTiming suppresses wall-clock stamps: NowNanos returns 0
	// and latency histograms receive no samples. VT stamps are
	// unaffected.
	DisableTiming bool
}

// New creates a fully enabled Observer (tracing and timing on).
func New() *Observer { return NewWithConfig(Config{}) }

// NewWithConfig creates an Observer with explicit settings.
func NewWithConfig(cfg Config) *Observer {
	o := &Observer{
		reg:     NewRegistry(),
		timing:  !cfg.DisableTiming,
		sources: map[string]func() any{},
	}
	if cfg.TraceCapacity >= 0 {
		o.trace = NewTrace(cfg.TraceCapacity)
	}
	return o
}

// Nop creates the default Observer for uninstrumented sites: the
// registry is live (counters are the same single atomic adds the site
// performed before this subsystem existed) but tracing and timing are
// off, so the hot path pays no event records, no allocations, and no
// wall-clock reads.
func Nop() *Observer {
	return NewWithConfig(Config{TraceCapacity: -1, DisableTiming: true})
}

// Metrics returns the observer's registry. Nil-safe: a nil Observer
// returns nil, and registry handles obtained from it are nil and
// therefore no-ops.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Trace returns the event tracer (nil when tracing is disabled).
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// TraceEnabled reports whether Trace().Record stores events.
func (o *Observer) TraceEnabled() bool { return o != nil && o.trace.Enabled() }

// NowNanos returns the current wall clock in Unix nanoseconds, or 0
// when timing is disabled. Deterministic packages (engine, gvt) must
// obtain wall stamps only through this method so their own sources
// never read the clock (enforced by the decaf-vet wallclock analyzer).
func (o *Observer) NowNanos() int64 {
	if o == nil || !o.timing {
		return 0
	}
	return nowNanos()
}

// ObserveSince records the elapsed seconds from a NowNanos stamp into
// h. A zero start (timing disabled, or a stamp taken before the
// observer was attached) records nothing.
func (o *Observer) ObserveSince(h *Histogram, start int64) {
	if o == nil || !o.timing || start == 0 || h == nil {
		return
	}
	h.Observe(float64(nowNanos()-start) / 1e9)
}

// RegisterStateSource installs (or replaces) a named provider of live
// debug state. fn must be safe to call from any goroutine; it runs on
// each /debug/decaf/state request.
func (o *Observer) RegisterStateSource(name string, fn func() any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sources[name] = fn
}

// State evaluates every registered state source, keyed by source name.
func (o *Observer) State() map[string]any {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	names := make([]string, 0, len(o.sources))
	fns := make([]func() any, 0, len(o.sources))
	for name := range o.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fns = append(fns, o.sources[name])
	}
	o.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, name := range names {
		out[name] = fns[i]()
	}
	return out
}
