package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the observer's debug mux:
//
//	/metrics            Prometheus text exposition of the registry
//	/debug/decaf/state  JSON map of every registered state source
//	/debug/decaf/trace  recent VT-stamped spans (?n= caps the span count)
//	/debug/pprof/...    the standard runtime profiles
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/decaf/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.State())
	})
	mux.HandleFunc("/debug/decaf/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := o.Trace()
		spans := tr.Spans()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		writeJSON(w, traceDump{
			Enabled:  tr.Enabled(),
			Recorded: tr.Recorded(),
			Dropped:  tr.Dropped(),
			Spans:    spansJSON(spans),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceDump is the JSON shape of /debug/decaf/trace.
type traceDump struct {
	Enabled  bool       `json:"enabled"`
	Recorded uint64     `json:"recorded"`
	Dropped  uint64     `json:"dropped"`
	Spans    []spanJSON `json:"spans"`
}

// spanJSON renders a Span with event kinds as strings.
type spanJSON struct {
	VT      string      `json:"vt"`
	Outcome string      `json:"outcome,omitempty"`
	Events  []eventJSON `json:"events"`
}

type eventJSON struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Site   string `json:"site"`
	Peer   string `json:"peer,omitempty"`
	Wall   int64  `json:"wall_ns,omitempty"`
	Detail string `json:"detail,omitempty"`
}

func spansJSON(spans []Span) []spanJSON {
	out := make([]spanJSON, 0, len(spans))
	for _, sp := range spans {
		js := spanJSON{VT: sp.TxnVT.String(), Outcome: sp.Outcome}
		for _, ev := range sp.Events {
			ej := eventJSON{
				Seq:    ev.Seq,
				Kind:   ev.Kind.String(),
				Site:   ev.Site.String(),
				Wall:   ev.Wall,
				Detail: ev.Detail,
			}
			if ev.Peer != 0 {
				ej.Peer = ev.Peer.String()
			}
			js.Events = append(js.Events, ej)
		}
		out = append(out, js)
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DebugServer is a running per-site debug HTTP server.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the observer's debug server on addr (e.g.
// "127.0.0.1:7944"; port 0 picks a free one). Close releases it.
func Serve(addr string, o *Observer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the server's bound address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }
