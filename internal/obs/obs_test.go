package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"decaf/internal/vtime"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("decaf_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("decaf_test_total", "dup"); same != c {
		t.Fatal("re-registering a counter must return the existing one")
	}

	g := r.Gauge("decaf_test_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("decaf_test_latency_seconds", "a histogram", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(50) // above the last bound: +Inf bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("hist count = %d, want 3", got)
	}
	if got := h.Sum(); got != 50.055 {
		t.Fatalf("hist sum = %v, want 50.055", got)
	}

	// Nil handles are no-ops.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("decaf_commits_total", "committed transactions").Add(3)
	r.GaugeFunc("decaf_queue_depth", "queued items", func() float64 { return 2 })
	h := r.Histogram("decaf_lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE decaf_commits_total counter",
		"decaf_commits_total 3",
		"# TYPE decaf_queue_depth gauge",
		"decaf_queue_depth 2",
		"# TYPE decaf_lat_seconds histogram",
		`decaf_lat_seconds_bucket{le="0.5"} 1`,
		`decaf_lat_seconds_bucket{le="1"} 2`,
		`decaf_lat_seconds_bucket{le="+Inf"} 2`,
		"decaf_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceRingWrapAndDrops(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{TxnVT: vtime.VT{Time: uint64(i + 1), Site: 1}, Site: 1, Kind: EvSubmit})
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("recorded = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest survivors)", i, ev.Seq, want)
		}
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace(64)
	a := vtime.VT{Time: 5, Site: 1}
	b := vtime.VT{Time: 3, Site: 2}
	tr.Record(Event{TxnVT: a, Site: 1, Kind: EvSubmit})
	tr.Record(Event{TxnVT: b, Site: 2, Kind: EvSubmit})
	tr.Record(Event{TxnVT: a, Site: 1, Kind: EvConfirm, Peer: 2, Detail: "ok"})
	tr.Record(Event{TxnVT: a, Site: 1, Kind: EvCommit})
	tr.Record(Event{TxnVT: b, Site: 2, Kind: EvAbort, Detail: "RL: conflict"})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Ordered by VT: b (time 3) before a (time 5).
	if spans[0].TxnVT != b || spans[1].TxnVT != a {
		t.Fatalf("span order = %v, %v", spans[0].TxnVT, spans[1].TxnVT)
	}
	if spans[0].Outcome != "aborted" || spans[1].Outcome != "committed" {
		t.Fatalf("outcomes = %q, %q", spans[0].Outcome, spans[1].Outcome)
	}
	if len(spans[1].Events) != 3 {
		t.Fatalf("span a has %d events, want 3", len(spans[1].Events))
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Event{TxnVT: vtime.VT{Time: uint64(i), Site: vtime.SiteID(w + 1)}, Kind: EvExecute})
				if i%100 == 0 {
					_ = tr.Events() // concurrent reads must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 8000 {
		t.Fatalf("recorded = %d, want 8000", got)
	}
	if got := len(tr.Events()); got != 128 {
		t.Fatalf("retained = %d, want full ring of 128", got)
	}
}

func TestNopObserver(t *testing.T) {
	o := Nop()
	if o.TraceEnabled() {
		t.Fatal("Nop observer must not trace")
	}
	if o.NowNanos() != 0 {
		t.Fatal("Nop observer must not read the clock")
	}
	o.Trace().Record(Event{Kind: EvSubmit}) // must not panic
	h := o.Metrics().Histogram("decaf_x_seconds", "", WallBuckets)
	o.ObserveSince(h, 12345)
	if h.Count() != 0 {
		t.Fatal("ObserveSince must be a no-op with timing disabled")
	}
	// The registry itself stays live: counters still count.
	c := o.Metrics().Counter("decaf_y_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("Nop observer counters must still count")
	}
}

func TestObserverStateSources(t *testing.T) {
	o := New()
	o.RegisterStateSource("engine", func() any { return map[string]int{"txns": 2} })
	o.RegisterStateSource("transport", func() any { return "ok" })
	st := o.State()
	if len(st) != 2 || st["transport"] != "ok" {
		t.Fatalf("state = %v", st)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	o := New()
	o.Metrics().Counter("decaf_txn_submitted_total", "submitted").Add(9)
	o.RegisterStateSource("engine", func() any { return map[string]string{"site": "s1"} })
	o.Trace().Record(Event{TxnVT: vtime.VT{Time: 1, Site: 1}, Site: 1, Kind: EvSubmit})
	o.Trace().Record(Event{TxnVT: vtime.VT{Time: 1, Site: 1}, Site: 1, Kind: EvCommit})

	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "decaf_txn_submitted_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/decaf/state"); !strings.Contains(out, `"site": "s1"`) {
		t.Errorf("/debug/decaf/state missing engine source:\n%s", out)
	}
	out := get("/debug/decaf/trace")
	if !strings.Contains(out, `"outcome": "committed"`) || !strings.Contains(out, `"kind": "submit"`) {
		t.Errorf("/debug/decaf/trace missing span data:\n%s", out)
	}
}
