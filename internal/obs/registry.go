// Package obs is DECAF's stdlib-only observability subsystem: a typed
// metrics registry with an atomic, allocation-free record path; a
// VT-stamped transaction/view event tracer backed by a bounded lock-free
// ring; and an optional per-site net/http debug server exposing
// Prometheus-text /metrics, JSON /debug/decaf/state and
// /debug/decaf/trace, and net/http/pprof.
//
// The paper's evaluation (§5) is a set of models over observable events
// — commit at 2t/3t, pessimistic views at 2t/3t, abort and lost-update
// rates — and this package turns a running site into the instrument
// those models are checked against.
//
// Determinism note: obs is the ONE place outside cmd/ and the benches
// allowed to read the wall clock (see internal/analysis.Wallclock). The
// deterministic packages (engine, history, gvt, vtime) obtain wall
// stamps exclusively through Observer.NowNanos, so their own sources
// stay clean and protocol state never depends on real time — wall time
// feeds metrics only.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event counter. Add and Inc are lock-free and
// allocation-free; all methods are nil-safe so an unregistered handle
// behaves as a no-op.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a settable instantaneous value. All methods are nil-safe.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one atomic add per bucket hit plus a CAS loop on the
// float64-bit sum. Buckets are cumulative at exposition time
// (Prometheus semantics); internally each slot counts its own range.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
	count  atomic.Uint64
	name   string
	help   string
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// WallBuckets are the default upper bounds (seconds) for wall-clock
// latency histograms: 500µs to 10s, roughly exponential.
var WallBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// VTBuckets are the default upper bounds for virtual-time-tick
// histograms (Lamport-clock distance between two protocol events).
var VTBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// metric is one registered exposition entry, in registration order.
type metric struct {
	counter *Counter
	gauge   *Gauge
	gfn     *gaugeFunc
	hist    *Histogram
}

func (m metric) name() string {
	switch {
	case m.counter != nil:
		return m.counter.name
	case m.gauge != nil:
		return m.gauge.name
	case m.gfn != nil:
		return m.gfn.name
	default:
		return m.hist.name
	}
}

// Registry holds a site's pre-registered metrics. Registration takes a
// lock (it happens at site construction); the record path — Counter.Add,
// Gauge.Set, Histogram.Observe — never does. Registering a name twice
// returns the existing metric, so layers sharing one Observer
// (engine + transport + gvt) compose without coordination.
type Registry struct {
	mu      sync.Mutex
	metrics []metric // guarded by mu
	byName  map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// Counter registers (or fetches) a counter by name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.counter
	}
	c := &Counter{name: name, help: help}
	r.add(metric{counter: c})
	return c
}

// Gauge registers (or fetches) a settable gauge by name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.gauge
	}
	g := &Gauge{name: name, help: help}
	r.add(metric{gauge: g})
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time. fn must be
// safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.add(metric{gfn: &gaugeFunc{name: name, help: help, fn: fn}})
}

// Histogram registers (or fetches) a fixed-bucket histogram. bounds are
// ascending upper bounds; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.hist
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		name:   name,
		help:   help,
	}
	r.add(metric{hist: h})
	return h
}

// add appends m; every caller holds r.mu.
func (r *Registry) add(m metric) {
	//decaf:ignore guardedby helper called only from methods that hold r.mu
	r.metrics = append(r.metrics, m)
	r.byName[m.name()] = m
}

// Value returns the current value of a counter or gauge (histograms:
// the sample count) by name — a convenience for tests and smoke checks.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch {
	case m.counter != nil:
		return float64(m.counter.Value()), true
	case m.gauge != nil:
		return float64(m.gauge.Value()), true
	case m.gfn != nil:
		return m.gfn.fn(), true
	default:
		return float64(m.hist.Count()), true
	}
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range ms {
		switch {
		case m.counter != nil:
			header(&b, m.counter.name, m.counter.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", m.counter.name, m.counter.Value())
		case m.gauge != nil:
			header(&b, m.gauge.name, m.gauge.help, "gauge")
			fmt.Fprintf(&b, "%s %d\n", m.gauge.name, m.gauge.Value())
		case m.gfn != nil:
			header(&b, m.gfn.name, m.gfn.help, "gauge")
			fmt.Fprintf(&b, "%s %s\n", m.gfn.name, formatFloat(m.gfn.fn()))
		case m.hist != nil:
			h := m.hist
			header(&b, h.name, h.help, "histogram")
			cum := uint64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", h.name, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
