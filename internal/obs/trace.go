package obs

import (
	"sort"
	"sync/atomic"
	"time"

	"decaf/internal/vtime"
)

// EventKind names one step of the §3 transaction state machine or the
// §4 view-notification protocols.
type EventKind uint8

// Transaction lifecycle and view notification event kinds.
const (
	// EvSubmit: a transaction was submitted at its originating site.
	EvSubmit EventKind = iota + 1
	// EvExecute: user code ran (optimistic local execution); Detail
	// carries the attempt number on re-executions.
	EvExecute
	// EvPropagate: an update/check message was sent toward Peer; Detail
	// is "confirm" when that peer hosts a primary copy that must answer,
	// and "delegate" when the whole decision was delegated to it.
	EvPropagate
	// EvPrimaryCheck: this site validated RL/NC guesses as a primary;
	// Detail carries the verdict ("ok" or the denial reason).
	EvPrimaryCheck
	// EvReserve: a primary-copy reservation was placed at this site.
	EvReserve
	// EvConfirm: a confirmation verdict from Peer (a primary) reached
	// the originating site; Detail is "ok" or the denial reason.
	EvConfirm
	// EvDelegatedCommit: the single remote primary decided the
	// transaction on the origin's behalf (paper §3.1); Detail is
	// "commit" or "abort".
	EvDelegatedCommit
	// EvCommit: the transaction committed (summary broadcast at the
	// origin, or outcome applied at a remote site).
	EvCommit
	// EvAbort: the transaction aborted; Detail carries the reason.
	EvAbort
	// EvReExecute: an automatic re-execution was scheduled after a
	// concurrency-control abort.
	EvReExecute
	// EvApply: a remote transaction's updates were applied at this site.
	EvApply
	// EvOptNotify: an optimistic view update notification was scheduled.
	EvOptNotify
	// EvCommitNotify: an optimistic view's commit notification fired
	// (its latest snapshot is known committed, §4.1).
	EvCommitNotify
	// EvPessNotify: a pessimistic view snapshot was delivered (§4.2).
	EvPessNotify
)

var eventKindNames = map[EventKind]string{
	EvSubmit:          "submit",
	EvExecute:         "execute",
	EvPropagate:       "propagate",
	EvPrimaryCheck:    "primary-check",
	EvReserve:         "reserve",
	EvConfirm:         "confirm",
	EvDelegatedCommit: "delegated-commit",
	EvCommit:          "commit",
	EvAbort:           "abort",
	EvReExecute:       "re-execute",
	EvApply:           "apply",
	EvOptNotify:       "opt-notify",
	EvCommitNotify:    "commit-notify",
	EvPessNotify:      "pess-notify",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event is one VT-stamped observation. TxnVT identifies the span the
// event belongs to (for view events: the snapshot's virtual time).
type Event struct {
	// Seq is the tracer-assigned global sequence number.
	Seq uint64 `json:"seq"`
	// Wall is the wall-clock stamp in Unix nanoseconds (0 when the
	// tracer's observer has timing disabled).
	Wall int64 `json:"wall_ns"`
	// TxnVT is the transaction (or snapshot) virtual time.
	TxnVT vtime.VT `json:"vt"`
	// Site is the site that recorded the event.
	Site vtime.SiteID `json:"site"`
	// Kind names the protocol step.
	Kind EventKind `json:"-"`
	// Peer is the remote site involved, when any.
	Peer vtime.SiteID `json:"peer,omitempty"`
	// Detail carries the step's free-form annotation (verdict, reason,
	// attempt count).
	Detail string `json:"detail,omitempty"`
}

// Trace is a bounded lock-free ring of recent events. Record claims a
// slot with one atomic increment and publishes the event with one
// atomic pointer store; when the ring wraps, the oldest events are
// overwritten and counted as dropped. A nil or disabled Trace records
// nothing and costs one predictable branch.
type Trace struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// DefaultTraceCapacity bounds the ring when no explicit capacity is
// configured.
const DefaultTraceCapacity = 8192

// NewTrace creates a ring holding the most recent capacity events
// (capacity <= 0 selects DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{slots: make([]atomic.Pointer[Event], capacity)}
}

// Enabled reports whether Record stores events.
func (t *Trace) Enabled() bool { return t != nil && len(t.slots) > 0 }

// Record stores one event, stamping its sequence number. The caller
// fills every other field; Wall is left as provided so disabled-timing
// observers record pure VT traces.
func (t *Trace) Record(ev Event) {
	if !t.Enabled() {
		return
	}
	e := new(Event)
	*e = ev
	e.Seq = t.next.Add(1) - 1
	t.slots[e.Seq%uint64(len(t.slots))].Store(e)
}

// Dropped returns how many events have been overwritten by ring wrap.
func (t *Trace) Dropped() uint64 {
	if !t.Enabled() {
		return 0
	}
	n := t.next.Load()
	if c := uint64(len(t.slots)); n > c {
		return n - c
	}
	return 0
}

// Recorded returns how many events have been recorded in total.
func (t *Trace) Recorded() uint64 {
	if !t.Enabled() {
		return 0
	}
	return t.next.Load()
}

// Events returns a copy of the retained events in sequence order.
func (t *Trace) Events() []Event {
	if !t.Enabled() {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Span is the per-transaction record assembled from retained events:
// every event sharing one TxnVT, in recording order.
type Span struct {
	TxnVT  vtime.VT `json:"vt"`
	Events []Event  `json:"events"`
	// Outcome summarizes the span: "committed", "aborted", or "" while
	// undecided (or when the deciding event was dropped from the ring).
	Outcome string `json:"outcome,omitempty"`
}

// Spans groups the retained events into per-transaction spans, ordered
// by the VT of the transaction.
func (t *Trace) Spans() []Span {
	events := t.Events()
	byVT := map[vtime.VT]*Span{}
	var order []vtime.VT
	for _, ev := range events {
		sp, ok := byVT[ev.TxnVT]
		if !ok {
			sp = &Span{TxnVT: ev.TxnVT}
			byVT[ev.TxnVT] = sp
			order = append(order, ev.TxnVT)
		}
		sp.Events = append(sp.Events, ev)
		switch ev.Kind {
		case EvCommit:
			if ev.Detail == "fastpath" {
				sp.Outcome = "committed-fastpath"
			} else {
				sp.Outcome = "committed"
			}
		case EvAbort:
			sp.Outcome = "aborted"
		case EvDelegatedCommit:
			if ev.Detail == "commit" {
				sp.Outcome = "committed"
			} else {
				sp.Outcome = "aborted"
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Less(order[j]) })
	out := make([]Span, 0, len(order))
	for _, vt := range order {
		out = append(out, *byVT[vt])
	}
	return out
}

// nowNanos is obs's single wall-clock read, shared by Observer stamps
// and the trace JSON rendering.
func nowNanos() int64 { return time.Now().UnixNano() }
