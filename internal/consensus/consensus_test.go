package consensus

import (
	"testing"

	"decaf/internal/vtime"
)

// bus is a deterministic in-memory network of instances: sends append
// to a FIFO queue and drain delivers them in order. Dropping a site
// simulates fail-stop; holding messages simulates delay.
type bus struct {
	t     *testing.T
	insts map[vtime.SiteID]*Instance[string]
	queue []envelope
	dead  map[vtime.SiteID]bool
	steps []stepRecord
}

type envelope struct {
	from, to vtime.SiteID
	msg      Msg[string]
}

type stepRecord struct {
	at   vtime.SiteID
	step Step[string]
}

func newBus(t *testing.T, members ...vtime.SiteID) *bus {
	b := &bus{t: t, insts: make(map[vtime.SiteID]*Instance[string]), dead: make(map[vtime.SiteID]bool)}
	for _, id := range members {
		b.insts[id] = New[string](id, members)
	}
	return b
}

func (b *bus) enqueue(from vtime.SiteID, sends []Send[string]) {
	for _, s := range sends {
		b.queue = append(b.queue, envelope{from: from, to: s.To, msg: s.Msg})
	}
}

// drain delivers queued messages until the queue is empty.
func (b *bus) drain() {
	for len(b.queue) > 0 {
		env := b.queue[0]
		b.queue = b.queue[1:]
		if b.dead[env.to] {
			continue
		}
		inst, ok := b.insts[env.to]
		if !ok {
			continue
		}
		st := inst.Handle(env.from, env.msg)
		b.steps = append(b.steps, stepRecord{at: env.to, step: st})
		b.enqueue(env.to, st.Sends)
		// The embedding layer accepts immediately on promise quorum in
		// these tests (no straggler grace).
		if st.PromiseQuorum {
			b.enqueue(env.to, inst.AcceptValue("v@"+env.to.String()))
		}
	}
}

func (b *bus) propose(id vtime.SiteID) {
	b.enqueue(id, b.insts[id].Propose())
}

func (b *bus) decidedValue(id vtime.SiteID) (string, bool) {
	return b.insts[id].Decided()
}

func TestBallotOrdering(t *testing.T) {
	cases := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{}, Ballot{Round: 1, Site: 1}, true},
		{Ballot{Round: 1, Site: 1}, Ballot{Round: 1, Site: 2}, true},
		{Ballot{Round: 1, Site: 3}, Ballot{Round: 2, Site: 1}, true},
		{Ballot{Round: 2, Site: 1}, Ballot{Round: 1, Site: 3}, false},
		{Ballot{Round: 1, Site: 1}, Ballot{Round: 1, Site: 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Ballot{}).IsZero() {
		t.Error("zero ballot should be IsZero")
	}
	if (Ballot{Round: 1, Site: 1}).IsZero() {
		t.Error("real ballot should not be IsZero")
	}
}

func TestQuorumSizes(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4} {
		members := make([]vtime.SiteID, n)
		for i := range members {
			members[i] = vtime.SiteID(i + 1)
		}
		in := New[string](1, members)
		if got := in.Quorum(); got != want {
			t.Errorf("quorum(%d members) = %d, want %d", n, got, want)
		}
	}
}

func TestMembersSortedDeduped(t *testing.T) {
	in := New[string](1, []vtime.SiteID{3, 1, 2, 3, 1})
	got := in.Members()
	want := []vtime.SiteID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
}

// TestBasicDecision: one proposer, all members alive, everyone learns
// the proposer's own value.
func TestBasicDecision(t *testing.T) {
	b := newBus(t, 1, 2, 3)
	b.propose(2)
	b.drain()
	for _, id := range []vtime.SiteID{1, 2, 3} {
		v, ok := b.decidedValue(id)
		if !ok {
			t.Fatalf("site %v undecided", id)
		}
		if v != "v@s2" {
			t.Fatalf("site %v decided %q, want v@s2", id, v)
		}
	}
}

// TestDecisionWithMinorityDead: a 5-member instance decides with two
// acceptors dead.
func TestDecisionWithMinorityDead(t *testing.T) {
	b := newBus(t, 1, 2, 3, 4, 5)
	b.dead[1] = true
	b.dead[2] = true
	b.propose(3)
	b.drain()
	for _, id := range []vtime.SiteID{3, 4, 5} {
		if _, ok := b.decidedValue(id); !ok {
			t.Fatalf("site %v undecided with quorum alive", id)
		}
	}
}

// TestNoDecisionWithoutQuorum: a majority of dead acceptors blocks any
// decision — the split-brain guard.
func TestNoDecisionWithoutQuorum(t *testing.T) {
	b := newBus(t, 1, 2, 3, 4, 5)
	b.dead[1] = true
	b.dead[2] = true
	b.dead[3] = true
	b.propose(4)
	b.drain()
	for _, id := range []vtime.SiteID{4, 5} {
		if _, ok := b.decidedValue(id); ok {
			t.Fatalf("site %v decided without a quorum", id)
		}
	}
}

// TestTakeoverAdoptsAcceptedValue: proposer 1 gets its value accepted
// by a quorum but dies before Learns propagate beyond one acceptor;
// proposer 3's takeover must adopt 1's value, not its own.
func TestTakeoverAdoptsAcceptedValue(t *testing.T) {
	members := []vtime.SiteID{1, 2, 3}
	insts := map[vtime.SiteID]*Instance[string]{}
	for _, id := range members {
		insts[id] = New[string](id, members)
	}

	// Phase 1: proposer 1 prepares, gathers promises from 1 and 2.
	prepares := insts[1].Propose()
	for _, s := range prepares {
		if s.To == 3 {
			continue // site 3 never hears from proposer 1
		}
		st := insts[s.To].Handle(1, s.Msg)
		for _, r := range st.Sends {
			insts[1].Handle(s.To, r.Msg)
		}
	}
	if !insts[1].HasPromiseQuorum() {
		t.Fatal("proposer 1 should hold a promise quorum")
	}

	// Phase 2: only acceptor 2 processes the Accept before proposer 1
	// dies; no Accepted replies are delivered, so nothing is decided.
	accepts := insts[1].AcceptValue("from-1")
	for _, s := range accepts {
		if s.To != 2 {
			continue
		}
		insts[2].Handle(1, s.Msg)
	}

	// Takeover: proposer 3 runs a full round among the survivors
	// {2, 3}. Its promise from 2 carries the accepted value "from-1",
	// which must win over 3's own candidate.
	queue := []envelope{}
	for _, s := range insts[3].Propose() {
		queue = append(queue, envelope{from: 3, to: s.To, msg: s.Msg})
	}
	for len(queue) > 0 {
		env := queue[0]
		queue = queue[1:]
		if env.to == 1 {
			continue // dead
		}
		st := insts[env.to].Handle(env.from, env.msg)
		for _, r := range st.Sends {
			queue = append(queue, envelope{from: env.to, to: r.To, msg: r.Msg})
		}
		if st.PromiseQuorum {
			for _, r := range insts[env.to].AcceptValue("from-3") {
				queue = append(queue, envelope{from: env.to, to: r.To, msg: r.Msg})
			}
		}
	}
	v, ok := insts[3].Decided()
	if !ok {
		t.Fatal("takeover proposer undecided")
	}
	if v != "from-1" {
		t.Fatalf("takeover decided %q, want adopted value from-1", v)
	}
	v2, ok2 := insts[2].Decided()
	if !ok2 || v2 != "from-1" {
		t.Fatalf("acceptor 2 decided (%q, %v), want (from-1, true)", v2, ok2)
	}
}

// TestPreemption: a proposer whose ballot is below an acceptor's
// promise gets refused and reports Preempted; its next Propose picks a
// higher round.
func TestPreemption(t *testing.T) {
	members := []vtime.SiteID{1, 2, 3}
	a := New[string](1, members)
	bst := New[string](2, members)
	acc := New[string](3, members)

	// Proposer 2 claims round 1 at acceptor 3.
	for _, s := range bst.Propose() {
		if s.To == 3 {
			acc.Handle(2, s.Msg)
		}
	}
	// Proposer 1 also claims round 1 (it has observed nothing), and
	// acceptor 3 refuses: 1.S1 < 1.S2.
	var refusal Msg[string]
	for _, s := range a.Propose() {
		if s.To == 3 {
			st := acc.Handle(1, s.Msg)
			refusal = st.Sends[0].Msg
		}
	}
	if refusal.OK {
		t.Fatal("acceptor should refuse the lower ballot")
	}
	st := a.Handle(3, refusal)
	if !st.Preempted {
		t.Fatal("refused promise should report Preempted")
	}
	if a.Proposing() {
		t.Fatal("preempted attempt should be abandoned")
	}
	// The refusal carried the promised ballot, so the retry jumps past
	// round 1.
	sends := a.Propose()
	if got := a.Ballot(); got.Round < 2 {
		t.Fatalf("retry ballot %v, want round >= 2", got)
	}
	if len(sends) != len(members) {
		t.Fatalf("retry prepares = %d, want %d", len(sends), len(members))
	}
}

// TestDuplicateDelivery: re-delivered promises and accepts never
// double-count toward quorums, and duplicate Learns fire Decided once.
func TestDuplicateDelivery(t *testing.T) {
	members := []vtime.SiteID{1, 2, 3, 4, 5}
	p := New[string](1, members)
	p.Propose()
	promise := Msg[string]{Kind: Promise, Ballot: p.Ballot(), OK: true}
	p.Handle(2, promise)
	p.Handle(2, promise) // duplicate
	st := p.Handle(3, promise)
	if st.PromiseQuorum {
		t.Fatal("2 distinct promisers + self-less dupes should not be a quorum of 3")
	}
	p.Handle(1, promise)
	if !p.HasPromiseQuorum() {
		t.Fatal("3 distinct promisers should be a quorum")
	}
	p.AcceptValue("v")
	acc := Msg[string]{Kind: Accepted, Ballot: p.Ballot(), OK: true}
	p.Handle(2, acc)
	p.Handle(2, acc) // duplicate
	p.Handle(3, acc)
	st = p.Handle(1, acc)
	if !st.Decided {
		t.Fatal("3 distinct accepts should decide")
	}
	learn := Msg[string]{Kind: Learn, Ballot: p.Ballot(), Value: "v"}
	if st := p.Handle(4, learn); st.Decided {
		t.Fatal("duplicate Learn re-fired Decided")
	}
}

// TestProposeAfterDecisionIsNoop: once decided, Propose returns nil and
// the decision is stable.
func TestProposeAfterDecisionIsNoop(t *testing.T) {
	b := newBus(t, 1, 2, 3)
	b.propose(1)
	b.drain()
	v0, _ := b.decidedValue(1)
	if sends := b.insts[1].Propose(); sends != nil {
		t.Fatal("Propose after decision should return nil")
	}
	if v, _ := b.decidedValue(1); v != v0 {
		t.Fatal("decision changed after late Propose")
	}
}

// TestDuelingProposersConverge: two proposers alternate preemption but
// each retry jumps above all observed rounds, and with the bus's
// FIFO delivery one of them completes; all members agree.
func TestDuelingProposersConverge(t *testing.T) {
	b := newBus(t, 1, 2, 3, 4, 5)
	b.propose(1)
	b.propose(2)
	b.drain()
	// Retry any preempted proposer once; FIFO drain guarantees the
	// higher ballot finishes before a new dueling round starts.
	for _, id := range []vtime.SiteID{1, 2} {
		if _, ok := b.decidedValue(id); !ok && !b.insts[id].Proposing() {
			b.propose(id)
			b.drain()
		}
	}
	var want string
	for _, id := range []vtime.SiteID{1, 2, 3, 4, 5} {
		v, ok := b.decidedValue(id)
		if !ok {
			t.Fatalf("site %v undecided after dueling proposers", id)
		}
		if want == "" {
			want = v
		}
		if v != want {
			t.Fatalf("site %v decided %q, others %q", id, v, want)
		}
	}
}

// TestNonMemberPromisesIgnored: promises from sites outside the member
// set never count toward a quorum.
func TestNonMemberPromisesIgnored(t *testing.T) {
	p := New[string](1, []vtime.SiteID{1, 2, 3})
	p.Propose()
	promise := Msg[string]{Kind: Promise, Ballot: p.Ballot(), OK: true}
	p.Handle(9, promise)
	p.Handle(10, promise)
	p.Handle(11, promise)
	if p.HasPromiseQuorum() {
		t.Fatal("non-member promises counted toward quorum")
	}
}
