// Package consensus is a small single-decree Paxos-style kernel used
// for membership/graph-repair decisions (DESIGN.md §14). It is a pure
// message-in/message-out state machine: no goroutines, no timers, no
// clocks, no I/O. The embedding layer (internal/engine) owns delivery,
// retry/takeover timers (routed through engine.Scheduler so the
// deterministic simulator can explore them), and durability.
//
// One Instance decides one value among a fixed member set — for graph
// repair, the members are the sites of the pre-failure graphs minus the
// failed site, so every survivor computes the same member set and the
// same quorum regardless of how its local failure suspicions diverge.
// Ballots are (round, site) pairs: any member can preempt a stalled
// proposer by proposing at a higher round, and the site ID breaks ties
// deterministically.
package consensus

import (
	"fmt"

	"decaf/internal/vtime"
)

// Ballot orders proposal attempts. The zero Ballot is "no ballot" and
// compares below every real one (real ballots have Round >= 1).
type Ballot struct {
	Round uint64
	Site  vtime.SiteID
}

// Less reports whether b orders strictly before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Site < o.Site
}

// IsZero reports whether b is the "no ballot" sentinel.
func (b Ballot) IsZero() bool { return b.Round == 0 && b.Site == 0 }

func (b Ballot) String() string { return fmt.Sprintf("%d.S%d", b.Round, b.Site) }

// Kind enumerates the five kernel message types.
type Kind uint8

const (
	// Prepare is phase 1a: a proposer claims a ballot.
	Prepare Kind = 1 + iota
	// Promise is phase 1b: an acceptor grants (OK) or refuses a
	// Prepare; a grant carries any previously accepted value.
	Promise
	// Accept is phase 2a: the proposer asks acceptors to accept a
	// value under its ballot.
	Accept
	// Accepted is phase 2b: an acceptor acknowledges (OK) or refuses
	// an Accept.
	Accepted
	// Learn broadcasts a decided value to all members.
	Learn
)

func (k Kind) String() string {
	switch k {
	case Prepare:
		return "prepare"
	case Promise:
		return "promise"
	case Accept:
		return "accept"
	case Accepted:
		return "accepted"
	case Learn:
		return "learn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Msg is one kernel message. Which fields are meaningful depends on
// Kind: Ballot always; OK and Promised on Promise/Accepted (a refusal
// reports the ballot the acceptor is promised to, so the proposer
// learns how far to jump); HasAccepted/AcceptedBallot/Value on a
// granted Promise; Value on Accept and Learn.
type Msg[V any] struct {
	Kind           Kind
	Ballot         Ballot
	OK             bool
	Promised       Ballot
	HasAccepted    bool
	AcceptedBallot Ballot
	Value          V
}

// Send pairs a kernel message with its destination. The embedding
// layer delivers it (including To == self, which it may loop back).
type Send[V any] struct {
	To  vtime.SiteID
	Msg Msg[V]
}

// Step is what Handle tells the embedding layer beyond the messages to
// send. At most one of the flags fires per call.
type Step[V any] struct {
	Sends []Send[V]

	// PromiseQuorum: this call completed a phase-1 quorum for the
	// local proposer's current ballot. The embedder decides when to
	// call AcceptValue (e.g. immediately, or after a short grace so
	// stragglers' promises — and any state piggybacked on them — are
	// folded in).
	PromiseQuorum bool

	// Preempted: the local proposer's current attempt was refused by
	// an acceptor promised to a higher ballot. The attempt is
	// abandoned; the embedder may re-Propose (typically after a
	// backoff).
	Preempted bool

	// Decided: this call decided the instance (first time only).
	// Decided() now returns the value. Duplicate Learns and late
	// phase-2 quorums do not re-fire this flag.
	Decided bool
}

// Instance is one single-decree consensus instance. All methods must be
// called from a single goroutine (in the engine: the site event loop).
type Instance[V any] struct {
	self    vtime.SiteID
	members []vtime.SiteID // sorted, deduped

	// Acceptor state.
	promised       Ballot
	hasAccepted    bool
	acceptedBallot Ballot
	acceptedValue  V

	// Proposer state (phase 0 = idle, 1 = preparing, 2 = accepting).
	phase        int
	ballot       Ballot
	promises     map[vtime.SiteID]bool
	haveAdopted  bool
	adoptedFrom  Ballot
	adoptedValue V
	accepts      map[vtime.SiteID]bool
	proposal     V
	maxRound     uint64 // highest round observed anywhere

	// Learner state.
	decided  bool
	decision V
}

// New creates an instance for self among members. Members are copied,
// sorted, and deduped; self need not be a member (a non-member can
// still learn), but only members count toward quorums.
func New[V any](self vtime.SiteID, members []vtime.SiteID) *Instance[V] {
	ms := make([]vtime.SiteID, 0, len(members))
	seen := make(map[vtime.SiteID]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	return &Instance[V]{self: self, members: ms}
}

// Members returns the member set (sorted; callers must not mutate).
func (in *Instance[V]) Members() []vtime.SiteID { return in.members }

// Quorum returns the majority threshold: floor(len(members)/2)+1.
func (in *Instance[V]) Quorum() int { return len(in.members)/2 + 1 }

// Decided returns the decided value, if any.
func (in *Instance[V]) Decided() (V, bool) { return in.decision, in.decided }

// Proposing reports whether a local proposal attempt is in flight.
func (in *Instance[V]) Proposing() bool { return in.phase != 0 }

// Ballot returns the local proposer's current ballot (zero if it has
// never proposed).
func (in *Instance[V]) Ballot() Ballot { return in.ballot }

// HasPromiseQuorum reports whether the current attempt holds a phase-1
// quorum (it keeps holding it while stragglers' promises arrive).
func (in *Instance[V]) HasPromiseQuorum() bool {
	return in.phase >= 1 && len(in.promises) >= in.Quorum()
}

// Promised reports whether member id has granted a promise for the
// current attempt.
func (in *Instance[V]) Promised(id vtime.SiteID) bool { return in.promises[id] }

func (in *Instance[V]) isMember(id vtime.SiteID) bool {
	for _, m := range in.members {
		if m == id {
			return true
		}
	}
	return false
}

func (in *Instance[V]) observe(b Ballot) {
	if b.Round > in.maxRound {
		in.maxRound = b.Round
	}
}

func (in *Instance[V]) broadcast(m Msg[V]) []Send[V] {
	sends := make([]Send[V], 0, len(in.members))
	for _, to := range in.members {
		sends = append(sends, Send[V]{To: to, Msg: m})
	}
	return sends
}

// Propose starts (or restarts) a proposal attempt at a ballot above
// every ballot this instance has observed, and returns the Prepares to
// send to all members (including self — the embedder loops those back
// through Handle like any other message). Proposing after a decision
// returns nil.
func (in *Instance[V]) Propose() []Send[V] {
	if in.decided {
		return nil
	}
	in.ballot = Ballot{Round: in.maxRound + 1, Site: in.self}
	in.observe(in.ballot)
	in.phase = 1
	in.promises = make(map[vtime.SiteID]bool)
	in.haveAdopted = false
	in.accepts = nil
	return in.broadcast(Msg[V]{Kind: Prepare, Ballot: in.ballot})
}

// AcceptValue moves the current attempt to phase 2. The caller's value
// v is used only if no promise carried a previously accepted value;
// otherwise the value accepted under the highest ballot is adopted
// (the Paxos safety rule). Returns nil unless the attempt holds a
// promise quorum in phase 1.
func (in *Instance[V]) AcceptValue(v V) []Send[V] {
	if in.decided || in.phase != 1 || len(in.promises) < in.Quorum() {
		return nil
	}
	if in.haveAdopted {
		in.proposal = in.adoptedValue
	} else {
		in.proposal = v
	}
	in.phase = 2
	in.accepts = make(map[vtime.SiteID]bool)
	return in.broadcast(Msg[V]{Kind: Accept, Ballot: in.ballot, Value: in.proposal})
}

// Handle processes one inbound kernel message from member `from` and
// returns the resulting sends and state transitions.
func (in *Instance[V]) Handle(from vtime.SiteID, m Msg[V]) Step[V] {
	in.observe(m.Ballot)
	in.observe(m.Promised)
	var st Step[V]
	switch m.Kind {
	case Prepare:
		reply := Msg[V]{Kind: Promise, Ballot: m.Ballot}
		if in.promised.Less(m.Ballot) || in.promised == m.Ballot {
			in.promised = m.Ballot
			reply.OK = true
			reply.HasAccepted = in.hasAccepted
			reply.AcceptedBallot = in.acceptedBallot
			reply.Value = in.acceptedValue
		} else {
			reply.Promised = in.promised
		}
		st.Sends = []Send[V]{{To: from, Msg: reply}}

	case Promise:
		if in.phase != 1 || m.Ballot != in.ballot {
			break // stale reply for an abandoned attempt
		}
		if !m.OK {
			in.phase = 0
			st.Preempted = true
			break
		}
		if !in.isMember(from) || in.promises[from] {
			break
		}
		in.promises[from] = true
		if m.HasAccepted && (!in.haveAdopted || in.adoptedFrom.Less(m.AcceptedBallot)) {
			in.haveAdopted = true
			in.adoptedFrom = m.AcceptedBallot
			in.adoptedValue = m.Value
		}
		if len(in.promises) == in.Quorum() {
			st.PromiseQuorum = true
		}

	case Accept:
		reply := Msg[V]{Kind: Accepted, Ballot: m.Ballot}
		if in.promised.Less(m.Ballot) || in.promised == m.Ballot {
			in.promised = m.Ballot
			in.hasAccepted = true
			in.acceptedBallot = m.Ballot
			in.acceptedValue = m.Value
			reply.OK = true
		} else {
			reply.Promised = in.promised
		}
		st.Sends = []Send[V]{{To: from, Msg: reply}}

	case Accepted:
		if in.phase != 2 || m.Ballot != in.ballot {
			break
		}
		if !m.OK {
			in.phase = 0
			st.Preempted = true
			break
		}
		if !in.isMember(from) || in.accepts[from] {
			break
		}
		in.accepts[from] = true
		if len(in.accepts) == in.Quorum() && !in.decided {
			in.decided = true
			in.decision = in.proposal
			in.phase = 0
			st.Decided = true
			st.Sends = in.broadcast(Msg[V]{Kind: Learn, Ballot: m.Ballot, Value: in.decision})
		}

	case Learn:
		if !in.decided {
			in.decided = true
			in.decision = m.Value
			in.phase = 0
			st.Decided = true
		}
	}
	return st
}
