// Package gvt implements the baseline commit protocol DECAF is compared
// against (paper §5.1.3, §6): optimistic update propagation with commit
// driven by a Jefferson-style Global Virtual Time sweep, as in Time Warp,
// ORESTE, and COAST.
//
// Every site replicates every register (the COAST assumption). Writes
// apply optimistically everywhere, but a value may only be shown to a
// pessimistic observer — i.e. commit — once a global sweep proves no
// straggler below its virtual time can exist anywhere. The sweep is a
// token circulating all sites: commit latency is therefore proportional
// to the size of the network, which is precisely the property the DECAF
// primary-copy protocol avoids.
package gvt

import (
	"sync"
	"sync/atomic"

	"decaf/internal/obs"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Pending tracks a submitted write until it commits.
type Pending struct {
	done chan vtime.VT
}

// Wait blocks until the write's updates are committed at the originating
// site (GVT passed its VT) and returns the commit VT.
func (p *Pending) Wait() vtime.VT { return <-p.done }

// Done returns the completion channel.
func (p *Pending) Done() <-chan vtime.VT { return p.done }

// entry is one uncommitted update.
type entry struct {
	vt      vtime.VT
	name    string
	value   any
	origin  vtime.SiteID
	acksDue int // writer-side: peers that have not acknowledged yet
	pending *Pending
}

// Site is one member of a GVT-committed replicated register group.
type Site struct {
	id    vtime.SiteID
	clock *vtime.Clock
	ep    transport.Endpoint
	ring  []vtime.SiteID // all members in token order

	calls chan func()
	stop  chan struct{}
	done  chan struct{}

	// Loop-confined state.
	committed   map[string]any
	uncommitted []*entry // sorted by VT
	gvt         vtime.VT
	tokenSeen   uint64

	mu        sync.Mutex
	onCommit  func(name string, value any, vt vtime.VT) // guarded by mu
	startOnce sync.Once
	stopOnce  sync.Once

	// Observability (optional; see SetObserver). Counters are nil-safe,
	// so an unobserved site pays one predictable branch per bump. The
	// atomic mirrors carry loop-confined values to scrape-time gauges.
	tokens       *obs.Counter
	commits      *obs.Counter
	gvtTime      atomic.Uint64
	clockTime    atomic.Uint64
	uncommittedN atomic.Int64
	started      atomic.Bool
}

// NewSite creates a group member. ring lists every member in token order
// (identical at all sites); the first member injects the token.
func NewSite(ep transport.Endpoint, ring []vtime.SiteID) *Site {
	return &Site{
		id:        ep.Site(),
		clock:     vtime.NewClock(ep.Site()),
		ep:        ep,
		ring:      append([]vtime.SiteID(nil), ring...),
		calls:     make(chan func(), 1024),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		committed: map[string]any{},
	}
}

// SetObserver wires the site into an observability bundle. Call before
// Start. Pass the same Observer as the process's other layers so one
// scrape covers everything.
func (s *Site) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	reg := o.Metrics()
	s.tokens = reg.Counter("decaf_gvt_token_rounds_total",
		"GVT sweep token rounds handled by this site.")
	s.commits = reg.Counter("decaf_gvt_commits_total",
		"Updates committed by the GVT sweep at this site.")
	reg.GaugeFunc("decaf_gvt_uncommitted_depth",
		"Updates applied but not yet committed by the GVT sweep.",
		func() float64 { return float64(s.uncommittedN.Load()) })
	reg.GaugeFunc("decaf_gvt_lag_ticks",
		"Local clock minus GVT estimate, in virtual-time ticks.",
		func() float64 {
			return float64(s.clockTime.Load()) - float64(s.gvtTime.Load())
		})
	o.RegisterStateSource("gvt", s.debugState)
}

// debugState snapshots loop-confined state for /debug/decaf/state.
func (s *Site) debugState() any {
	if !s.started.Load() {
		return map[string]any{"running": false}
	}
	var out map[string]any
	ch := make(chan struct{})
	s.do(func() {
		byOrigin := map[string]int{}
		for _, e := range s.uncommitted {
			byOrigin[e.origin.String()]++
		}
		out = map[string]any{
			"running":               true,
			"site":                  s.id.String(),
			"clock":                 s.clock.Now().String(),
			"gvt":                   s.gvt.String(),
			"token_round":           s.tokenSeen,
			"ring_size":             len(s.ring),
			"uncommitted":           len(s.uncommitted),
			"uncommitted_by_origin": byOrigin,
			"committed_registers":   len(s.committed),
		}
		close(ch)
	})
	select {
	case <-ch:
	case <-s.done:
		return map[string]any{"running": false}
	}
	return out
}

// OnCommit registers a callback invoked (on the event loop) whenever an
// update commits at this site — the analogue of a pessimistic view
// notification.
func (s *Site) OnCommit(fn func(name string, value any, vt vtime.VT)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCommit = fn
}

// Start launches the event loop; the ring's first member injects the
// sweep token.
func (s *Site) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		go s.loop()
		if len(s.ring) > 1 && s.ring[0] == s.id {
			// Inject via handleToken so the head contributes its own
			// minimum to round 1.
			s.do(func() { s.handleToken(wire.GVTToken{Round: 1}) })
		}
	})
}

// Stop shuts the site down.
func (s *Site) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Site) do(fn func()) {
	select {
	case s.calls <- fn:
	case <-s.stop:
	case <-s.done:
	}
}

func (s *Site) loop() {
	defer close(s.done)
	events := s.ep.Events()
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.calls:
			fn()
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Kind != transport.EventMessage {
				continue
			}
			s.clock.Observe(ev.SentAt)
			s.handle(ev.Msg)
		}
	}
}

// Write submits a blind write of a shared register.
func (s *Site) Write(name string, value any) *Pending {
	p := &Pending{done: make(chan vtime.VT, 1)}
	s.do(func() {
		vt := s.clock.Next()
		e := &entry{vt: vt, name: name, value: value, origin: s.id, pending: p}
		for _, peer := range s.ring {
			if peer == s.id {
				continue
			}
			e.acksDue++
			_ = s.ep.Send(peer, s.clock.Now(), wire.GVTUpdate{VT: vt, From: s.id, Name: name, Value: value})
		}
		s.insert(e)
		if len(s.ring) <= 1 {
			// Degenerate single-member group: no sweep needed.
			s.gvt = vt
			s.gvtTime.Store(s.gvt.Time)
		}
		s.tryCommit()
	})
	return p
}

// ReadCommitted returns the committed value of a register.
func (s *Site) ReadCommitted(name string) any {
	var v any
	ch := make(chan struct{})
	s.do(func() {
		v = s.committed[name]
		close(ch)
	})
	select {
	case <-ch:
	case <-s.done:
	}
	return v
}

// Quiescent reports whether the site's event loop is parked over empty
// intake queues. Messages still in flight in the transport do not count
// — the deterministic simulation harness (internal/sim) owns those. A
// stopped site is quiescent. Unlike the engine, a gvt group is never
// globally quiescent for long: the sweep token circulates continuously,
// so the harness bounds gvt runs by step count rather than by draining
// the clock.
func (s *Site) Quiescent() bool {
	quiet := false
	ch := make(chan struct{})
	s.do(func() {
		quiet = len(s.calls) == 0 && len(s.ep.Events()) == 0
		close(ch)
	})
	select {
	case <-ch:
		return quiet
	case <-s.done:
		return true
	}
}

// GVT returns the site's current global-virtual-time estimate.
func (s *Site) GVT() vtime.VT {
	var v vtime.VT
	ch := make(chan struct{})
	s.do(func() {
		v = s.gvt
		close(ch)
	})
	select {
	case <-ch:
	case <-s.done:
	}
	return v
}

// insert keeps the uncommitted list sorted by VT.
func (s *Site) insert(e *entry) {
	i := len(s.uncommitted)
	for i > 0 && e.vt.Less(s.uncommitted[i-1].vt) {
		i--
	}
	s.uncommitted = append(s.uncommitted, nil)
	copy(s.uncommitted[i+1:], s.uncommitted[i:])
	s.uncommitted[i] = e
	s.uncommittedN.Store(int64(len(s.uncommitted)))
}

func (s *Site) handle(msg wire.Message) {
	switch m := msg.(type) {
	case wire.GVTUpdate:
		s.insert(&entry{vt: m.VT, name: m.Name, value: m.Value, origin: m.From})
		_ = s.ep.Send(m.From, s.clock.Now(), wire.GVTAck{VT: m.VT, From: s.id})
		s.tryCommit()
	case wire.GVTAck:
		for _, e := range s.uncommitted {
			if e.vt == m.VT && e.origin == s.id && e.acksDue > 0 {
				e.acksDue--
			}
		}
	case wire.GVTToken:
		s.handleToken(m)
	}
}

// handleToken contributes this site's minimum uncommitted VT and passes
// the token on; a completed round establishes a new GVT.
func (s *Site) handleToken(tok wire.GVTToken) {
	if tok.Round <= s.tokenSeen {
		return // stale duplicate
	}
	s.tokenSeen = tok.Round
	s.tokens.Inc()
	s.clockTime.Store(s.clock.Now().Time)

	// Adopt the sweep's last result.
	if s.gvt.Less(tok.GVT) {
		s.gvt = tok.GVT
		s.gvtTime.Store(s.gvt.Time)
		s.tryCommit()
	}

	// Contribute the minimum over IN-FLIGHT work: own writes not yet
	// acknowledged by every peer. (Once all acks are in, the update is
	// applied everywhere, so it no longer holds the sweep down; fully
	// replicated entries then commit as GVT passes them. A remote entry
	// never needs contributing: while any site lacks it, its writer is
	// still holding the minimum.)
	for _, e := range s.uncommitted {
		if e.origin != s.id || e.acksDue == 0 {
			continue
		}
		if !tok.MinValid || e.vt.Less(tok.Min) {
			tok.Min, tok.MinValid = e.vt, true
		}
	}

	s.forwardToken(tok)
}

// forwardToken sends the token to the ring successor; when this site is
// the ring head, the round completes and its minimum becomes the GVT
// carried by the next round.
func (s *Site) forwardToken(tok wire.GVTToken) {
	idx := 0
	for i, id := range s.ring {
		if id == s.id {
			idx = i
			break
		}
	}
	next := s.ring[(idx+1)%len(s.ring)]
	if next == s.ring[0] {
		// Round completes at the head: its accumulated minimum bounds
		// every uncommitted VT in the system, so everything strictly
		// below it may commit.
		newGVT := s.clock.Now()
		if tok.MinValid {
			newGVT = vtime.JustBelow(tok.Min)
		}
		tok = wire.GVTToken{Round: tok.Round + 1, GVT: newGVT}
	}
	_ = s.ep.Send(next, s.clock.Now(), tok)
}

// tryCommit commits every uncommitted entry at or below the GVT, in VT
// order.
func (s *Site) tryCommit() {
	s.mu.Lock()
	cb := s.onCommit
	s.mu.Unlock()

	kept := s.uncommitted[:0]
	for _, e := range s.uncommitted {
		if !e.vt.LessEq(s.gvt) || (e.origin == s.id && e.acksDue > 0) {
			kept = append(kept, e)
			continue
		}
		s.committed[e.name] = e.value
		s.commits.Inc()
		if cb != nil {
			cb(e.name, e.value, e.vt)
		}
		if e.pending != nil {
			select {
			case e.pending.done <- e.vt:
			default:
			}
		}
	}
	s.uncommitted = kept
	s.uncommittedN.Store(int64(len(s.uncommitted)))
}
