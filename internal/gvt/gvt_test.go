package gvt

import (
	"sync"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

func group(t *testing.T, n int, latency time.Duration) []*Site {
	t.Helper()
	net := transport.NewNetwork(transport.Config{Latency: latency})
	ring := make([]vtime.SiteID, n)
	for i := range ring {
		ring[i] = vtime.SiteID(i + 1)
	}
	sites := make([]*Site, n)
	for i := range sites {
		ep, err := net.Endpoint(ring[i])
		if err != nil {
			t.Fatal(err)
		}
		sites[i] = NewSite(ep, ring)
	}
	for _, s := range sites {
		s.Start()
	}
	t.Cleanup(func() {
		for _, s := range sites {
			s.Stop()
		}
		net.Close()
	})
	return sites
}

func TestGVTWriteCommits(t *testing.T) {
	sites := group(t, 3, time.Millisecond)
	done := sites[0].Write("x", int64(7))
	select {
	case <-done.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("write never committed")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, s := range sites {
			if s.ReadCommitted("x") != int64(7) {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replicas did not converge")
}

func TestGVTCommitOrderMonotonic(t *testing.T) {
	sites := group(t, 3, time.Millisecond)

	var mu sync.Mutex
	var commits []vtime.VT
	sites[2].OnCommit(func(name string, value any, vt vtime.VT) {
		mu.Lock()
		defer mu.Unlock()
		commits = append(commits, vt)
	})

	var pendings []*Pending
	for k := 0; k < 5; k++ {
		pendings = append(pendings, sites[0].Write("a", int64(k)))
		pendings = append(pendings, sites[1].Write("b", int64(k)))
	}
	for _, p := range pendings {
		select {
		case <-p.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("write never committed")
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(commits)
		mu.Unlock()
		if n >= 10 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(commits) < 10 {
		t.Fatalf("observer saw %d commits, want 10", len(commits))
	}
	for i := 1; i < len(commits); i++ {
		if !commits[i-1].Less(commits[i]) {
			t.Fatalf("commit order not monotonic: %v then %v", commits[i-1], commits[i])
		}
	}
}

func TestGVTCommitLatencyGrowsWithRingSize(t *testing.T) {
	// The defining property (paper §5.1.3): commit waits for a sweep
	// proportional to the network size.
	const lat = 4 * time.Millisecond
	measure := func(n int) time.Duration {
		sites := group(t, n, lat)
		// Warm up the token.
		<-sites[0].Write("w", int64(0)).Done()
		start := time.Now()
		<-sites[0].Write("x", int64(1)).Done()
		return time.Since(start)
	}
	small := measure(2)
	large := measure(8)
	if large <= small {
		t.Fatalf("commit latency did not grow with ring size: n=2 %v, n=8 %v", small, large)
	}
	// An 8-ring sweep costs >= 8 hops; a 2-ring >= 2. Require a clear gap.
	if large < 2*small {
		t.Logf("warning: weak separation (n=2 %v, n=8 %v)", small, large)
	}
}

func TestGVTSingleMember(t *testing.T) {
	sites := group(t, 1, 0)
	select {
	case <-sites[0].Write("x", int64(1)).Done():
	case <-time.After(time.Second):
		t.Fatal("single-member write never committed")
	}
	if sites[0].ReadCommitted("x") != int64(1) {
		t.Fatal("value not committed")
	}
}
