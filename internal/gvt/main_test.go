package gvt

import (
	"testing"

	"decaf/internal/testutil"
)

// TestMain fails the package when a test leaks goroutines — the token
// daemon must stop when its site shuts down.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
