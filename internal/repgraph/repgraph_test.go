package repgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

func obj(site uint32, seq uint64) ids.ObjectID {
	return ids.ObjectID{Site: vtime.SiteID(site), Seq: seq}
}

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(obj(1, 1), 1)
	g.AddNode(obj(2, 1), 2)
	g.AddNode(obj(3, 1), 3)
	for _, pair := range [][2]ids.ObjectID{
		{obj(1, 1), obj(2, 1)},
		{obj(2, 1), obj(3, 1)},
		{obj(3, 1), obj(1, 1)},
	} {
		if err := g.AddEdge(pair[0], pair[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestNewGraphSingleNode(t *testing.T) {
	g := NewGraph(obj(5, 2), 5)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("NewGraph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	p, ok := g.Primary()
	if !ok || p != obj(5, 2) {
		t.Fatalf("Primary = %v,%v", p, ok)
	}
	site, ok := g.PrimarySite()
	if !ok || site != 5 {
		t.Fatalf("PrimarySite = %v,%v", site, ok)
	}
	if !g.Connected() {
		t.Fatal("single node graph should be connected")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(obj(1, 1), 1)
	if err := g.AddEdge(obj(1, 1), obj(9, 9)); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.AddEdge(obj(1, 1), obj(1, 1)); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestMultiEdges(t *testing.T) {
	g := NewGraph(obj(1, 1), 1)
	g.AddNode(obj(2, 1), 2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(obj(1, 1), obj(2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (multigraph)", g.NumEdges())
	}
	// Edges are undirected: removing with reversed endpoints works.
	if !g.RemoveEdge(obj(2, 1), obj(1, 1)) {
		t.Fatal("RemoveEdge failed")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	g.RemoveEdge(obj(1, 1), obj(2, 1))
	g.RemoveEdge(obj(1, 1), obj(2, 1))
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.RemoveEdge(obj(1, 1), obj(2, 1)) {
		t.Fatal("removing nonexistent edge reported success")
	}
}

func TestPrimaryIsMinNode(t *testing.T) {
	g := triangle(t)
	p, ok := g.Primary()
	if !ok || p != obj(1, 1) {
		t.Fatalf("Primary = %v, want s1/1", p)
	}
	// Removing the primary moves it to the next smallest node.
	g.RemoveNode(obj(1, 1))
	p, ok = g.Primary()
	if !ok || p != obj(2, 1) {
		t.Fatalf("Primary after removal = %v, want s2/1", p)
	}
}

func TestPrimaryDeterministicAcrossConstructionOrder(t *testing.T) {
	// Property: the primary is a pure function of the graph contents,
	// independent of insertion order (the paper's no-election property).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		nodes := make([]ids.ObjectID, n)
		for i := range nodes {
			nodes[i] = obj(uint32(rng.Intn(4)+1), uint64(i+1))
		}
		build := func(perm []int) *Graph {
			g := &Graph{}
			for _, i := range perm {
				g.AddNode(nodes[i], nodes[i].Site)
			}
			for i := 1; i < n; i++ {
				_ = g.AddEdge(nodes[perm[0]], nodes[perm[i%n]])
			}
			return g
		}
		g1 := build(rng.Perm(n))
		g2 := build(rng.Perm(n))
		p1, ok1 := g1.Primary()
		p2, ok2 := g2.Primary()
		return ok1 && ok2 && p1 == p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeRemovesIncidentEdges(t *testing.T) {
	g := triangle(t)
	if !g.RemoveNode(obj(2, 1)) {
		t.Fatal("RemoveNode failed")
	}
	if g.RemoveNode(obj(2, 1)) {
		t.Fatal("double remove succeeded")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("after removal: %d nodes, %d edges; want 2, 1", g.NumNodes(), g.NumEdges())
	}
}

func TestRemoveSite(t *testing.T) {
	g := triangle(t)
	g.AddNode(obj(2, 2), 2)
	if err := g.AddEdge(obj(2, 2), obj(1, 1)); err != nil {
		t.Fatal(err)
	}
	removed := g.RemoveSite(2)
	if len(removed) != 2 || removed[0] != obj(2, 1) || removed[1] != obj(2, 2) {
		t.Fatalf("RemoveSite removed %v", removed)
	}
	for _, s := range g.Sites() {
		if s == 2 {
			t.Fatal("site 2 still present")
		}
	}
}

func TestComponentAfterDisconnection(t *testing.T) {
	// Chain a-b-c; removing b disconnects a from c.
	g := NewGraph(obj(1, 1), 1)
	g.AddNode(obj(2, 1), 2)
	g.AddNode(obj(3, 1), 3)
	_ = g.AddEdge(obj(1, 1), obj(2, 1))
	_ = g.AddEdge(obj(2, 1), obj(3, 1))
	if !g.Connected() {
		t.Fatal("chain should be connected")
	}
	g.RemoveNode(obj(2, 1))
	if g.Connected() {
		t.Fatal("removing middle node should disconnect")
	}
	comp := g.Component(obj(1, 1))
	if comp.NumNodes() != 1 || !comp.Has(obj(1, 1)) {
		t.Fatalf("component of a = %v", comp)
	}
	if comp.Has(obj(3, 1)) {
		t.Fatal("component of a should not contain c")
	}
}

func TestMergeIdempotentAndStructureCommutative(t *testing.T) {
	a := triangle(t)
	b := NewGraph(obj(4, 1), 4)
	b.AddNode(obj(1, 1), 1)
	_ = b.AddEdge(obj(4, 1), obj(1, 1))

	m1 := a.Clone()
	m1.Merge(b)
	m2 := b.Clone()
	m2.Merge(a)
	// Structure (nodes, edges) is commutative; the anchor keeps the
	// receiver's by design (the invitee's relationship wins).
	m2align := m2.Clone()
	m2align.SetAnchor(m1.Anchor())
	if !m1.Equal(m2align) {
		t.Fatalf("merge structure not commutative:\n%v\n%v", m1, m2)
	}
	m3 := m1.Clone()
	m3.Merge(m1)
	if !m3.Equal(m1) {
		t.Fatalf("merge not idempotent:\n%v\n%v", m3, m1)
	}
	if m1.NumNodes() != 4 {
		t.Fatalf("merged node count = %d, want 4", m1.NumNodes())
	}
}

func TestAnchorPrimary(t *testing.T) {
	// The anchor designates the primary regardless of node order; when
	// the anchor node leaves, the primary falls back to the minimum node.
	g := NewGraph(obj(4, 7), 4) // anchored at s4/7
	g.AddNode(obj(1, 1), 1)
	g.AddNode(obj(2, 1), 2)
	_ = g.AddEdge(obj(4, 7), obj(1, 1))
	_ = g.AddEdge(obj(4, 7), obj(2, 1))

	p, ok := g.Primary()
	if !ok || p != obj(4, 7) {
		t.Fatalf("Primary = %v, want anchor s4/7", p)
	}
	site, _ := g.PrimarySite()
	if site != 4 {
		t.Fatalf("PrimarySite = %v, want 4", site)
	}
	g.RemoveNode(obj(4, 7))
	p, ok = g.Primary()
	if !ok || p != obj(1, 1) {
		t.Fatalf("fallback Primary = %v, want min node s1/1", p)
	}
}

func TestMergeAdoptsAnchorWhenReceiverHasNone(t *testing.T) {
	var g Graph
	g.AddNode(obj(3, 1), 3)
	other := NewGraph(obj(2, 5), 2)
	g.Merge(other)
	if p, ok := g.Primary(); !ok || p != obj(2, 5) {
		t.Fatalf("Primary = %v, want adopted anchor s2/5", p)
	}
}

func TestAnchorSurvivesWire(t *testing.T) {
	g := NewGraph(obj(4, 7), 4)
	g.AddNode(obj(1, 1), 1)
	_ = g.AddEdge(obj(4, 7), obj(1, 1))
	got := FromWire(g.ToWire())
	if p, _ := got.Primary(); p != obj(4, 7) {
		t.Fatalf("anchor lost over wire: primary = %v", p)
	}
	if !got.Equal(g) {
		t.Fatal("wire round trip unequal with anchor")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	c.RemoveNode(obj(1, 1))
	if !g.Has(obj(1, 1)) {
		t.Fatal("mutating clone affected original")
	}
	if g.NumEdges() != 3 {
		t.Fatal("original edges changed")
	}
}

func TestEqual(t *testing.T) {
	a, b := triangle(t), triangle(t)
	if !a.Equal(b) {
		t.Fatal("identical graphs unequal")
	}
	b.RemoveEdge(obj(1, 1), obj(2, 1))
	if a.Equal(b) {
		t.Fatal("graphs with different edges equal")
	}
	var empty Graph
	if empty.Equal(a) {
		t.Fatal("empty equals nonempty")
	}
	if !empty.Equal(&Graph{}) {
		t.Fatal("two empties unequal")
	}
	if !empty.Equal(nil) {
		t.Fatal("empty should equal nil")
	}
}

func TestWireRoundTrip(t *testing.T) {
	g := triangle(t)
	_ = g.AddEdge(obj(1, 1), obj(2, 1)) // multiplicity 2
	got := FromWire(g.ToWire())
	if !got.Equal(g) {
		t.Fatalf("wire round trip: got %v, want %v", got, g)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &Graph{}
		n := rng.Intn(8) + 1
		nodes := make([]ids.ObjectID, n)
		for i := range nodes {
			nodes[i] = obj(uint32(rng.Intn(3)+1), uint64(i))
			g.AddNode(nodes[i], nodes[i].Site)
		}
		for k := 0; k < rng.Intn(10); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				_ = g.AddEdge(nodes[i], nodes[j])
			}
		}
		return FromWire(g.ToWire()).Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSites(t *testing.T) {
	g := triangle(t)
	g.AddNode(obj(2, 9), 2) // second object at site 2
	sites := g.Sites()
	want := []vtime.SiteID{1, 2, 3}
	if len(sites) != len(want) {
		t.Fatalf("Sites = %v", sites)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", sites, want)
		}
	}
}

func TestStringDeterministic(t *testing.T) {
	a, b := triangle(t), triangle(t)
	for i := 0; i < 10; i++ {
		if a.String() != b.String() {
			t.Fatal("String not deterministic")
		}
	}
}
