// Package repgraph implements replication graphs: connected multigraphs
// whose nodes are model-object references and whose multi-edges are the
// replica relations users build (paper §3). Each model object keeps a
// history of such graphs, and a deterministic function maps every graph to
// a primary copy — the anchor node that rooted the relationship, falling
// back to the minimum node — so that all sites agree on the primary site
// without any election protocol (paper §3.3).
package repgraph

import (
	"fmt"
	"sort"
	"strings"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

// Edge is one replica relation between two model objects. The same pair
// may appear several times (multigraph): relations established through
// different associations are distinct edges and are removed independently.
type Edge struct {
	A, B ids.ObjectID
}

// normalized returns the edge with endpoints in canonical order.
func (e Edge) normalized() Edge {
	if e.B.Less(e.A) {
		return Edge{A: e.B, B: e.A}
	}
	return e
}

// Graph is a replication multigraph. The zero value is an empty graph;
// NewGraph creates a single-node graph. Graphs are value-like: mutating
// methods operate in place, and Clone produces an independent copy.
//
// Graph is not safe for concurrent use.
type Graph struct {
	nodes map[ids.ObjectID]vtime.SiteID // node -> site hosting that replica
	edges map[Edge]int                  // normalized edge -> multiplicity
	// anchor, when present among the nodes, is the primary copy: the
	// node that first rooted the relationship (Chu-Hellerstein style
	// exclusive writer). It is part of the replicated graph value, so
	// the primary remains a pure function of the graph. When the anchor
	// node is absent (it left or its site failed), the primary falls
	// back to the minimum node.
	anchor ids.ObjectID
}

// NewGraph returns a graph containing the single node obj hosted at site,
// with no edges — the replication graph of a not-yet-collaborating object.
func NewGraph(obj ids.ObjectID, site vtime.SiteID) *Graph {
	g := &Graph{
		nodes:  map[ids.ObjectID]vtime.SiteID{obj: site},
		edges:  map[Edge]int{},
		anchor: obj,
	}
	return g
}

// SetAnchor designates the primary-copy node. The anchor is replicated as
// part of the graph value; an anchor not present among the nodes is
// ignored by Primary.
func (g *Graph) SetAnchor(obj ids.ObjectID) { g.anchor = obj }

// Anchor returns the designated primary-copy node (possibly absent).
func (g *Graph) Anchor() ids.ObjectID { return g.anchor }

func (g *Graph) init() {
	if g.nodes == nil {
		g.nodes = map[ids.ObjectID]vtime.SiteID{}
	}
	if g.edges == nil {
		g.edges = map[Edge]int{}
	}
}

// AddNode inserts a node hosted at the given site. Adding an existing node
// is a no-op (the site must match; object identity determines the host).
func (g *Graph) AddNode(obj ids.ObjectID, site vtime.SiteID) {
	g.init()
	g.nodes[obj] = site
}

// AddEdge records one replica relation between a and b, adding the nodes
// if needed is NOT done here — both endpoints must already be present.
// It returns an error if either endpoint is unknown.
func (g *Graph) AddEdge(a, b ids.ObjectID) error {
	g.init()
	if _, ok := g.nodes[a]; !ok {
		return fmt.Errorf("repgraph: edge endpoint %s not in graph", a)
	}
	if _, ok := g.nodes[b]; !ok {
		return fmt.Errorf("repgraph: edge endpoint %s not in graph", b)
	}
	if a == b {
		return fmt.Errorf("repgraph: self edge on %s", a)
	}
	g.edges[Edge{A: a, B: b}.normalized()]++
	return nil
}

// RemoveEdge removes one multiplicity of the relation between a and b.
// It reports whether such an edge existed.
func (g *Graph) RemoveEdge(a, b ids.ObjectID) bool {
	e := Edge{A: a, B: b}.normalized()
	n, ok := g.edges[e]
	if !ok {
		return false
	}
	if n <= 1 {
		delete(g.edges, e)
	} else {
		g.edges[e] = n - 1
	}
	return true
}

// RemoveNode deletes a node and all its incident edges (an object leaving
// a collaboration, or a failed site's replica being dropped). It reports
// whether the node was present.
func (g *Graph) RemoveNode(obj ids.ObjectID) bool {
	if _, ok := g.nodes[obj]; !ok {
		return false
	}
	delete(g.nodes, obj)
	for e := range g.edges {
		if e.A == obj || e.B == obj {
			delete(g.edges, e)
		}
	}
	return true
}

// neighborsOf returns the distinct nodes adjacent to obj, sorted.
func (g *Graph) neighborsOf(obj ids.ObjectID) []ids.ObjectID {
	set := map[ids.ObjectID]bool{}
	for e := range g.edges {
		switch obj {
		case e.A:
			set[e.B] = true
		case e.B:
			set[e.A] = true
		}
	}
	out := make([]ids.ObjectID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RemoveNodeContract removes obj and chains its former neighbors together,
// preserving the connectivity of the remaining relationship. Replica
// relationships are symmetric and transitive (paper §2.2), so members that
// were joined *through* the removed node remain replicas of one another
// after it leaves or fails.
func (g *Graph) RemoveNodeContract(obj ids.ObjectID) bool {
	nb := g.neighborsOf(obj)
	if !g.RemoveNode(obj) {
		return false
	}
	for i := 1; i < len(nb); i++ {
		// AddEdge only fails for unknown endpoints; the neighbors were
		// just verified as members.
		_ = g.AddEdge(nb[i-1], nb[i])
	}
	return true
}

// RemoveSiteContract removes every node at the given site with edge
// contraction (see RemoveNodeContract), returning the removed nodes.
func (g *Graph) RemoveSiteContract(site vtime.SiteID) []ids.ObjectID {
	removed := g.RemoveSiteDryRun(site)
	for _, obj := range removed {
		g.RemoveNodeContract(obj)
	}
	return removed
}

// RemoveSite deletes every node hosted at the given site, with incident
// edges (fail-stop site removal, paper §3.4). It returns the removed nodes.
func (g *Graph) RemoveSite(site vtime.SiteID) []ids.ObjectID {
	var removed []ids.ObjectID
	for obj, s := range g.nodes {
		if s == site {
			removed = append(removed, obj)
		}
	}
	for _, obj := range removed {
		g.RemoveNode(obj)
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Less(removed[j]) })
	return removed
}

// RemoveSiteDryRun returns the nodes hosted at site without modifying the
// graph (used to test whether a failure affects this graph).
func (g *Graph) RemoveSiteDryRun(site vtime.SiteID) []ids.ObjectID {
	var out []ids.ObjectID
	for obj, s := range g.nodes {
		if s == site {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Has reports whether obj is a node of the graph.
func (g *Graph) Has(obj ids.ObjectID) bool {
	_, ok := g.nodes[obj]
	return ok
}

// SiteOf returns the site hosting obj's replica.
func (g *Graph) SiteOf(obj ids.ObjectID) (vtime.SiteID, bool) {
	s, ok := g.nodes[obj]
	return s, ok
}

// Nodes returns the graph's nodes in canonical (ObjectID) order.
func (g *Graph) Nodes() []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(g.nodes))
	for obj := range g.nodes {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges counting multiplicity.
func (g *Graph) NumEdges() int {
	n := 0
	for _, m := range g.edges {
		n += m
	}
	return n
}

// Sites returns the distinct sites hosting replicas, in ascending order.
func (g *Graph) Sites() []vtime.SiteID {
	set := map[vtime.SiteID]bool{}
	for _, s := range g.nodes {
		set[s] = true
	}
	out := make([]vtime.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Primary returns the primary copy of the graph: the anchor node when it
// is still a member, else the minimum node under the canonical ObjectID
// order. This is the paper's "function which maps replication graphs to a
// selected node in that graph" — deterministic, with no election phase
// (§3.3). ok is false for an empty graph.
func (g *Graph) Primary() (ids.ObjectID, bool) {
	if _, ok := g.nodes[g.anchor]; ok {
		return g.anchor, true
	}
	var best ids.ObjectID
	found := false
	for obj := range g.nodes {
		if !found || obj.Less(best) {
			best = obj
			found = true
		}
	}
	return best, found
}

// PrimarySite returns the site hosting the primary copy.
func (g *Graph) PrimarySite() (vtime.SiteID, bool) {
	p, ok := g.Primary()
	if !ok {
		return 0, false
	}
	return g.nodes[p], true
}

// Component returns the subgraph reachable from start (including start).
// After node removals a graph may disconnect; each object then retains
// only its own component.
func (g *Graph) Component(start ids.ObjectID) *Graph {
	out := &Graph{nodes: map[ids.ObjectID]vtime.SiteID{}, edges: map[Edge]int{}}
	if _, ok := g.nodes[start]; !ok {
		return out
	}
	// BFS over the multigraph.
	visited := map[ids.ObjectID]bool{start: true}
	queue := []ids.ObjectID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out.nodes[cur] = g.nodes[cur]
		for e, m := range g.edges {
			var other ids.ObjectID
			switch cur {
			case e.A:
				other = e.B
			case e.B:
				other = e.A
			default:
				continue
			}
			out.edges[e] = m
			if !visited[other] {
				visited[other] = true
				queue = append(queue, other)
			}
		}
	}
	return out
}

// Connected reports whether the graph is a single connected component.
// The empty graph counts as connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) <= 1 {
		return true
	}
	var start ids.ObjectID
	for obj := range g.nodes {
		start = obj
		break
	}
	return g.Component(start).NumNodes() == len(g.nodes)
}

// Merge unions other into g (nodes and edge multiplicities). Used by the
// join protocol: when A joins B's relationship, both graphs merge into the
// combined graph gA ∪ gB distributed to all replicas (paper §3.3).
func (g *Graph) Merge(other *Graph) {
	g.init()
	if other == nil {
		return
	}
	for obj, site := range other.nodes {
		g.nodes[obj] = site
	}
	if _, ok := g.nodes[g.anchor]; !ok {
		// Adopt the other graph's anchor when ours is unset or gone.
		g.anchor = other.anchor
	}
	for e, m := range other.edges {
		if cur := g.edges[e]; m > cur {
			// Edge multiplicities are facts about distinct join
			// operations; union takes the max so merging a graph with
			// itself is idempotent.
			g.edges[e] = m
		}
	}
}

// Clone returns an independent deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		nodes:  make(map[ids.ObjectID]vtime.SiteID, len(g.nodes)),
		edges:  make(map[Edge]int, len(g.edges)),
		anchor: g.anchor,
	}
	for k, v := range g.nodes {
		out.nodes[k] = v
	}
	for k, v := range g.edges {
		out.edges[k] = v
	}
	return out
}

// Equal reports whether two graphs have identical nodes, sites, and edge
// multiplicities.
func (g *Graph) Equal(other *Graph) bool {
	if other == nil {
		return g == nil || len(g.nodes) == 0
	}
	if len(g.nodes) != len(other.nodes) || len(g.edges) != len(other.edges) {
		return false
	}
	if g.anchor != other.anchor {
		return false
	}
	for k, v := range g.nodes {
		if ov, ok := other.nodes[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range g.edges {
		if ov, ok := other.edges[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the graph deterministically, for logs and tests.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, n := range g.Nodes() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s@%s", n, g.nodes[n])
	}
	b.WriteString(" |")
	edges := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	for _, e := range edges {
		fmt.Fprintf(&b, " %s-%s", e.A, e.B)
		if m := g.edges[e]; m > 1 {
			fmt.Fprintf(&b, "x%d", m)
		}
	}
	b.WriteString("}")
	return b.String()
}

// Wire is the flattened, gob-friendly form of a Graph.
type Wire struct {
	Nodes  []WireNode
	Edges  []WireEdge
	Anchor ids.ObjectID
}

// WireNode is one node of a wire-form graph.
type WireNode struct {
	Obj  ids.ObjectID
	Site vtime.SiteID
}

// WireEdge is one edge (with multiplicity) of a wire-form graph.
type WireEdge struct {
	Edge  Edge
	Count int
}

// ToWire flattens the graph deterministically for transmission.
func (g *Graph) ToWire() Wire {
	w := Wire{Anchor: g.anchor}
	for _, n := range g.Nodes() {
		w.Nodes = append(w.Nodes, WireNode{Obj: n, Site: g.nodes[n]})
	}
	edges := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	for _, e := range edges {
		w.Edges = append(w.Edges, WireEdge{Edge: e, Count: g.edges[e]})
	}
	return w
}

// FromWire reconstructs a Graph from its wire form.
func FromWire(w Wire) *Graph {
	g := &Graph{nodes: map[ids.ObjectID]vtime.SiteID{}, edges: map[Edge]int{}, anchor: w.Anchor}
	for _, n := range w.Nodes {
		g.nodes[n.Obj] = n.Site
	}
	for _, e := range w.Edges {
		g.edges[e.Edge] = e.Count
	}
	return g
}
