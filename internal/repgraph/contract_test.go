package repgraph

import (
	"testing"

	"decaf/internal/vtime"
)

// Tests for contracting removal: replica relationships are symmetric and
// transitive (paper §2.2), so removing a node must keep the remaining
// members connected even when every join edge passed through it.

// star builds the graph produced by three joins against one invitee:
// center s1/1 with leaves at sites 2, 3, 4.
func star(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(obj(1, 1), 1)
	for s := uint32(2); s <= 4; s++ {
		g.AddNode(obj(s, 1), vtime.SiteID(s))
		if err := g.AddEdge(obj(1, 1), obj(s, 1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRemoveNodeContractKeepsConnectivity(t *testing.T) {
	g := star(t)
	if !g.RemoveNodeContract(obj(1, 1)) {
		t.Fatal("contract removal failed")
	}
	if g.Has(obj(1, 1)) {
		t.Fatal("node still present")
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatalf("survivors disconnected after contract removal: %v", g)
	}
	// Plain removal, by contrast, shatters the star.
	g2 := star(t)
	g2.RemoveNode(obj(1, 1))
	if g2.Connected() {
		t.Fatal("plain removal should disconnect a star")
	}
}

func TestRemoveNodeContractOnLeaf(t *testing.T) {
	g := star(t)
	if !g.RemoveNodeContract(obj(3, 1)) {
		t.Fatal("leaf removal failed")
	}
	if !g.Connected() {
		t.Fatal("removing a leaf must keep the rest connected")
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
}

func TestRemoveNodeContractMissing(t *testing.T) {
	g := star(t)
	if g.RemoveNodeContract(obj(9, 9)) {
		t.Fatal("removal of unknown node reported success")
	}
}

func TestRemoveSiteContract(t *testing.T) {
	// Two nodes at site 2, both bridging other members.
	g := NewGraph(obj(2, 1), 2)
	g.AddNode(obj(2, 2), 2)
	g.AddNode(obj(1, 1), 1)
	g.AddNode(obj(3, 1), 3)
	g.AddNode(obj(4, 1), 4)
	mustEdge := func(a, b uint32, sa, sb uint64) {
		if err := g.AddEdge(obj(a, sa), obj(b, sb)); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(1, 2, 1, 1) // s1/1 - s2/1
	mustEdge(2, 3, 1, 1) // s2/1 - s3/1
	mustEdge(2, 4, 2, 1) // s2/2 - s4/1
	mustEdge(2, 2, 1, 2) // s2/1 - s2/2

	removed := g.RemoveSiteContract(2)
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two site-2 nodes", removed)
	}
	if !g.Connected() {
		t.Fatalf("survivors disconnected: %v", g)
	}
	for _, s := range g.Sites() {
		if s == 2 {
			t.Fatal("site 2 still present")
		}
	}
}

func TestContractRemovalPrimaryFallback(t *testing.T) {
	// Removing the anchor via contract removal falls the primary back to
	// the minimum surviving node, deterministically.
	g := star(t) // anchored at s1/1
	g.RemoveNodeContract(obj(1, 1))
	p, ok := g.Primary()
	if !ok || p != obj(2, 1) {
		t.Fatalf("primary after anchor removal = %v, want s2/1", p)
	}
}
