package bench

import (
	"fmt"
	"time"

	"decaf"
	"decaf/internal/obs"
	"decaf/internal/vtime"
)

// obsGateLatency is the simulated one-way latency for the gated
// overhead measurement: commit latency is 2t (paper §5.1.1), so the
// instrument cost is compared against a realistic end-to-end hot path,
// not the zero-latency CPU floor (reported separately, unguarded).
const obsGateLatency = 200 * time.Microsecond

// ObsOverheadResult quantifies what full observability (metrics +
// tracing + wall-clock latency stamps) costs on the transaction hot
// path, against the ≤3% budget DESIGN.md §9 commits to. BENCH_obs.json
// at the repo root persists it so the cost is diffable across
// revisions.
type ObsOverheadResult struct {
	Txns   int `json:"txns_per_trial"`
	Trials int `json:"trials"`

	// Gated measurement: two-site replicated increment, remote primary,
	// one-way latency SimLatencyUs. Medians across trials.
	SimLatencyUs  int64   `json:"sim_latency_us"`
	BaseNsPerTxn  float64 `json:"base_ns_per_txn"`
	InstrNsPerTxn float64 `json:"instrumented_ns_per_txn"`
	OverheadPct   float64 `json:"overhead_pct"`

	// Stress measurement: same workload at zero simulated latency — the
	// pure CPU cost of the subsystem with nothing to hide behind.
	// Reported for diffing across revisions, not gated: a ~15µs
	// zero-latency commit makes even sub-microsecond instrumentation a
	// double-digit percentage.
	StressBaseNsPerTxn  float64 `json:"stress_base_ns_per_txn"`
	StressInstrNsPerTxn float64 `json:"stress_instrumented_ns_per_txn"`
	StressOverheadPct   float64 `json:"stress_overhead_pct"`

	// Primitive costs, single-threaded ns/op.
	CounterNsPerOp   float64 `json:"counter_ns_per_op"`
	HistogramNsPerOp float64 `json:"histogram_ns_per_op"`
	TraceNsPerOp     float64 `json:"trace_record_ns_per_op"`

	GatePct float64 `json:"gate_pct"`
	Pass    bool    `json:"pass"`
}

// ObsOverheadGatePct is the hot-path overhead budget (DESIGN.md §9).
const ObsOverheadGatePct = 3.0

// MeasureObsOverhead compares committed-transaction cost between an
// uninstrumented pair of sites (obs.Nop: the pre-subsystem baseline)
// and a fully instrumented pair (tracing, timing, and debug state
// sources live). Trials alternate base/instrumented to cancel drift;
// the medians are compared.
func MeasureObsOverhead(txns, trials int) (ObsOverheadResult, error) {
	res := ObsOverheadResult{
		Txns:         txns,
		Trials:       trials,
		SimLatencyUs: obsGateLatency.Microseconds(),
		GatePct:      ObsOverheadGatePct,
	}

	gateBase, gateInstr, err := obsOverheadTrials(txns, trials, obsGateLatency)
	if err != nil {
		return res, err
	}
	res.BaseNsPerTxn, res.InstrNsPerTxn = gateBase, gateInstr
	res.OverheadPct = overheadPct(gateBase, gateInstr)

	stressBase, stressInstr, err := obsOverheadStress(txns, trials)
	if err != nil {
		return res, err
	}
	res.StressBaseNsPerTxn, res.StressInstrNsPerTxn = stressBase, stressInstr
	res.StressOverheadPct = overheadPct(stressBase, stressInstr)

	res.CounterNsPerOp, res.HistogramNsPerOp, res.TraceNsPerOp = obsPrimitives()
	res.Pass = res.OverheadPct <= res.GatePct
	return res, nil
}

// obsOverheadTrials runs alternating base/instrumented trials at the
// given latency and returns the medians (base, instrumented).
func obsOverheadTrials(txns, trials int, latency time.Duration) (float64, float64, error) {
	var base, instr []float64
	for trial := 0; trial < trials; trial++ {
		b, err := obsOverheadOnce(txns, latency, false)
		if err != nil {
			return 0, 0, err
		}
		i, err := obsOverheadOnce(txns, latency, true)
		if err != nil {
			return 0, 0, err
		}
		base = append(base, b)
		instr = append(instr, i)
	}
	return median(base), median(instr), nil
}

// obsOverheadStress runs the zero-latency trials and returns the
// per-config minima: at tens of microseconds per txn the delta is a few
// percent, so scheduler noise dominates any single trial and the
// best-case pair is the stable estimator of the CPU cost.
func obsOverheadStress(txns, trials int) (float64, float64, error) {
	base, instr := float64(0), float64(0)
	for trial := 0; trial < trials; trial++ {
		b, err := obsOverheadOnce(txns, 0, false)
		if err != nil {
			return 0, 0, err
		}
		i, err := obsOverheadOnce(txns, 0, true)
		if err != nil {
			return 0, 0, err
		}
		if trial == 0 || b < base {
			base = b
		}
		if trial == 0 || i < instr {
			instr = i
		}
	}
	return base, instr, nil
}

func overheadPct(base, instr float64) float64 {
	if base <= 0 {
		return 0
	}
	pct := 100 * (instr - base) / base
	if pct < 0 {
		return 0
	}
	return pct
}

// obsOverheadOnce times txns committed increments of a two-site
// replicated Int submitted at the non-primary site, returning ns/txn.
func obsOverheadOnce(txns int, latency time.Duration, instrumented bool) (float64, error) {
	net := decaf.NewSimNetwork(decaf.SimConfig{Latency: latency})
	defer net.Close()
	var o1, o2 *decaf.Observer // nil selects obs.Nop() in the engine
	if instrumented {
		o1, o2 = decaf.NewObserver(), decaf.NewObserver()
	}
	s1, err := decaf.DialOptions(net, 1, decaf.Options{Observer: o1})
	if err != nil {
		return 0, err
	}
	defer s1.Close()
	s2, err := decaf.DialOptions(net, 2, decaf.Options{Observer: o2})
	if err != nil {
		return 0, err
	}
	defer s2.Close()

	root, err := s1.NewInt("x")
	if err != nil {
		return 0, err
	}
	repl, err := s2.NewInt("x")
	if err != nil {
		return 0, err
	}
	if r := s2.JoinObject(repl, 1, root.Ref().ID()).Wait(); !r.Committed {
		return 0, fmt.Errorf("join failed: %+v", r)
	}

	inc := func(tx *decaf.Tx) error {
		repl.Set(tx, repl.Value(tx)+1)
		return nil
	}
	// Warm-up outside the timed window.
	for i := 0; i < txns/10+1; i++ {
		if r := s2.ExecuteFunc(inc).Wait(); !r.Committed {
			return 0, fmt.Errorf("warm-up txn failed: %+v", r)
		}
	}
	start := time.Now()
	for i := 0; i < txns; i++ {
		if r := s2.ExecuteFunc(inc).Wait(); !r.Committed {
			return 0, fmt.Errorf("txn failed: %+v", r)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(txns), nil
}

// obsPrimitives times the three record-path primitives in isolation.
func obsPrimitives() (counterNs, histNs, traceNs float64) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter", "")
	h := reg.Histogram("bench_hist", "", obs.WallBuckets)
	tr := obs.NewTrace(obs.DefaultTraceCapacity)

	const n = 1_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		c.Inc()
	}
	counterNs = float64(time.Since(start).Nanoseconds()) / n

	start = time.Now()
	for i := 0; i < n; i++ {
		h.Observe(0.003)
	}
	histNs = float64(time.Since(start).Nanoseconds()) / n

	vt := vtime.VT{Time: 1, Site: 1}
	start = time.Now()
	for i := 0; i < n; i++ {
		tr.Record(obs.Event{Kind: obs.EvExecute, TxnVT: vt, Site: 1})
	}
	traceNs = float64(time.Since(start).Nanoseconds()) / n
	return counterNs, histNs, traceNs
}

// ObsTable renders the overhead measurement as an experiment table.
func ObsTable(r ObsOverheadResult) *Table {
	t := &Table{
		Title: "E11 — observability overhead (internal/obs, DESIGN.md §9)",
		Note: fmt.Sprintf("two-site replicated increment, remote primary; "+
			"%d txns x %d trials, medians; gate %.0f%% at t=%dµs (stress row unguarded)",
			r.Txns, r.Trials, r.GatePct, r.SimLatencyUs),
		Columns: []string{"configuration", "ns/txn base", "ns/txn instrumented", "overhead", "gate"},
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	t.AddRow(fmt.Sprintf("commit path, t=%dµs", r.SimLatencyUs),
		fmt.Sprintf("%.0f", r.BaseNsPerTxn), fmt.Sprintf("%.0f", r.InstrNsPerTxn),
		fmt.Sprintf("%.2f%%", r.OverheadPct), verdict)
	t.AddRow("commit path, t=0 (stress)",
		fmt.Sprintf("%.0f", r.StressBaseNsPerTxn), fmt.Sprintf("%.0f", r.StressInstrNsPerTxn),
		fmt.Sprintf("%.2f%%", r.StressOverheadPct), "—")
	t.AddRow("counter Inc (ns/op)", fmt.Sprintf("%.1f", r.CounterNsPerOp), "", "", "")
	t.AddRow("histogram Observe (ns/op)", fmt.Sprintf("%.1f", r.HistogramNsPerOp), "", "", "")
	t.AddRow("trace Record (ns/op)", fmt.Sprintf("%.1f", r.TraceNsPerOp), "", "", "")
	return t
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort; trials are few
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
