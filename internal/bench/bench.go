// Package bench implements the measurement harness that reproduces the
// paper's evaluation (§5): the commit- and view-latency analysis (§5.1),
// the benchmark studies of lost updates and rollback rates under load
// (§5.2.2), the scalability comparison against a Global-Virtual-Time
// sweep (§5.1.3), and the responsiveness comparison against the
// centralized architecture (§1).
//
// Each experiment returns a Table whose rows mirror what the paper
// reports; cmd/decaf-bench prints them, and the repo-root benchmarks wrap
// them for `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"decaf"
	"decaf/internal/vtime"
)

// obsMu guards obsv, the optional observer instrumenting site 1 of every
// cluster the harness builds (decaf-bench -debug-addr). Counters
// accumulate across experiments; the engine/transport state sources are
// replaced as clusters come and go, so /debug/decaf/state always shows
// the experiment currently running.
var (
	obsMu sync.Mutex
	obsv  *decaf.Observer
)

// SetObserver instruments the first site of every subsequently created
// cluster with o. Pass nil to stop instrumenting.
func SetObserver(o *decaf.Observer) {
	obsMu.Lock()
	obsv = o
	obsMu.Unlock()
}

func observer() *decaf.Observer {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsv
}

// Table is one experiment's result table.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// ms formats a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// pct formats a ratio as a percentage.
func pct(num, den uint64) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// cluster is a set of DECAF sites on one simulated network.
type cluster struct {
	net   *decaf.SimNetwork
	sites []*decaf.Site
}

// newCluster builds n sites with IDs 1..n.
func newCluster(n int, cfg decaf.SimConfig) (*cluster, error) {
	c := &cluster{net: decaf.NewSimNetwork(cfg)}
	for i := 1; i <= n; i++ {
		var opts decaf.Options
		if i == 1 {
			opts.Observer = observer()
		}
		s, err := decaf.DialOptions(c.net, vtime.SiteID(i), opts)
		if err != nil {
			c.close()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}
	return c, nil
}

func (c *cluster) site(i int) *decaf.Site { return c.sites[i-1] }

func (c *cluster) close() {
	for _, s := range c.sites {
		s.Close()
	}
	c.net.Close()
}

// joinedInts creates Int replicas joined across the listed site indexes
// (1-based); the first listed site anchors the relationship (hosts the
// primary copy).
func (c *cluster) joinedInts(name string, siteIdx ...int) (map[int]*decaf.Int, error) {
	out := map[int]*decaf.Int{}
	first := siteIdx[0]
	root, err := c.site(first).NewInt(name)
	if err != nil {
		return nil, err
	}
	out[first] = root
	for _, i := range siteIdx[1:] {
		o, err := c.site(i).NewInt(name)
		if err != nil {
			return nil, err
		}
		if res := c.site(i).JoinObject(o, c.site(first).ID(), root.Ref().ID()).Wait(); !res.Committed {
			return nil, fmt.Errorf("join site %d: %+v", i, res)
		}
		out[i] = o
	}
	// Wait for topology convergence before measuring.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		settled := true
		for _, i := range siteIdx {
			if len(out[i].ReplicaSites()) != len(siteIdx) {
				settled = false
			}
		}
		if settled {
			return out, nil
		}
		time.Sleep(time.Millisecond)
	}
	return nil, fmt.Errorf("topology did not settle for %s", name)
}

// waitCommittedInt polls until the object's committed value equals want,
// returning the observation time.
func waitCommittedInt(o *decaf.Int, want int64, timeout time.Duration) (time.Time, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if o.Committed() == want {
			return time.Now(), nil
		}
		time.Sleep(50 * time.Microsecond)
	}
	return time.Time{}, fmt.Errorf("value %d never committed", want)
}

// percentile returns the p-th percentile of the (unsorted) samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// mean returns the arithmetic mean of the samples.
func mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}
