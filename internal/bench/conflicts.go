package bench

import (
	"fmt"
	"math/rand"
	"time"

	"decaf"
)

// Experiments E4 and E5: the loaded-conditions benchmarks of §5.2.2.
//
// E4: "transactions involving only blind-writes were measured to
// determine the impact on optimistic views due to lost updates. Even at
// rates of one update per second from both parties of a two-party
// collaboration, the lost update rate was below 20.1 percent."
//
// E5: "for transactions involving both reads and writes and one party
// updating once per second on the average, an update rate by a second
// party of once per three seconds or more produced rollback rates below
// 2 percent; at higher update rates, rollbacks were frequent enough to
// produce significant rates of update inconsistencies."

// LoadConfig parameterizes E4/E5.
type LoadConfig struct {
	// Latency is the one-way network latency t.
	Latency time.Duration
	// Duration is the measured run length per configuration.
	Duration time.Duration
	// Seed drives the stochastic arrival processes.
	Seed int64
}

// DefaultLoadConfig scales the paper's wall-clock setup (seconds between
// updates over a LAN) down by ~50x so a full sweep runs in seconds while
// preserving the dimensionless update-rate-to-latency ratio that governs
// conflict behaviour.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Latency:  10 * time.Millisecond,
		Duration: 2 * time.Second,
		Seed:     1,
	}
}

// E4LostUpdates runs two-party blind-write load and reports the
// optimistic-view lost-update rate per party update rate.
func E4LostUpdates(cfg LoadConfig, rates []float64) (*Table, error) {
	if len(rates) == 0 {
		rates = []float64{5, 10, 20, 50}
	}
	tab := &Table{
		Title: "E4: lost updates under two-party blind-write load (paper 5.2.2)",
		Note: fmt.Sprintf("t=%v, run=%v per rate; both parties write at the given rate;\n"+
			"paper: lost-update rate below ~20%% at 1 update/s (LAN-scale); shape: rate grows with update rate",
			cfg.Latency, cfg.Duration),
		Columns: []string{"rate(upd/s/party)", "updates", "notified", "lost", "lost%"},
	}
	for _, rate := range rates {
		lost, notified, total, err := runE4(cfg, rate)
		if err != nil {
			return nil, fmt.Errorf("E4 rate=%v: %w", rate, err)
		}
		tab.AddRow(fmt.Sprintf("%.1f", rate),
			fmt.Sprint(total), fmt.Sprint(notified), fmt.Sprint(lost), pct(lost, lost+notified))
	}
	return tab, nil
}

func runE4(cfg LoadConfig, rate float64) (lost, notified, total uint64, err error) {
	c, err := newCluster(2, decaf.SimConfig{Latency: cfg.Latency, Seed: cfg.Seed})
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.close()
	objs, err := c.joinedInts("wb", 1, 2)
	if err != nil {
		return 0, 0, 0, err
	}

	// One optimistic view per party, as in a whiteboard.
	for i := 1; i <= 2; i++ {
		v := newLatencyView(objs[i])
		if _, aerr := c.site(i).Attach(v, decaf.Optimistic, objs[i]); aerr != nil {
			return 0, 0, 0, aerr
		}
	}

	before1, before2 := c.site(1).Stats(), c.site(2).Stats()

	stop := make(chan struct{})
	errs := make(chan error, 2)
	writer := func(idx int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		obj := objs[idx]
		site := c.site(idx)
		n := int64(0)
		for {
			// Exponential inter-arrival times (Poisson process).
			wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			select {
			case <-stop:
				errs <- nil
				return
			case <-time.After(wait):
			}
			n++
			val := n*2 + int64(idx) // distinct per party
			res := site.ExecuteFunc(func(tx *decaf.Tx) error {
				obj.Set(tx, val)
				return nil
			}).Wait()
			if !res.Committed {
				errs <- fmt.Errorf("blind write aborted: %+v", res)
				return
			}
		}
	}
	go writer(1, cfg.Seed+1)
	go writer(2, cfg.Seed+2)
	time.Sleep(cfg.Duration)
	close(stop)
	<-errs
	<-errs
	// Drain in-flight traffic.
	time.Sleep(10 * cfg.Latency)

	after1, after2 := c.site(1).Stats(), c.site(2).Stats()
	lost = (after1.LostUpdates - before1.LostUpdates) + (after2.LostUpdates - before2.LostUpdates)
	notified = (after1.OptNotifications - before1.OptNotifications) + (after2.OptNotifications - before2.OptNotifications)
	total = (after1.Commits - before1.Commits) + (after2.Commits - before2.Commits)
	return lost, notified, total, nil
}

// E5Rollbacks runs a read-modify-write party against a second party of
// varying rate and reports the rollback (conflict abort) rate.
func E5Rollbacks(cfg LoadConfig, fastRate float64, slowRates []float64) (*Table, error) {
	if fastRate == 0 {
		fastRate = 5
	}
	if len(slowRates) == 0 {
		slowRates = []float64{0.5, 1, 2, 5, 10, 20}
	}
	tab := &Table{
		Title: "E5: rollback rate for read-write transactions (paper 5.2.2)",
		Note: fmt.Sprintf("t=%v, run=%v; party A read-modify-writes at %.1f/s; party B rate sweeps;\n"+
			"paper: B at 1/3 of A's rate or slower -> rollbacks < 2%%; higher rates -> frequent rollbacks",
			cfg.Latency, 3*cfg.Duration, fastRate),
		Columns: []string{"B rate(upd/s)", "B/A ratio", "commits", "rollbacks", "rollback%", "inconsistencies"},
	}
	for _, r := range slowRates {
		commits, rollbacks, inconsistencies, err := runE5(cfg, fastRate, r)
		if err != nil {
			return nil, fmt.Errorf("E5 rate=%v: %w", r, err)
		}
		tab.AddRow(fmt.Sprintf("%.1f", r), fmt.Sprintf("%.2f", r/fastRate),
			fmt.Sprint(commits), fmt.Sprint(rollbacks),
			pct(rollbacks, commits+rollbacks), fmt.Sprint(inconsistencies))
	}
	return tab, nil
}

func runE5(cfg LoadConfig, rateA, rateB float64) (commits, rollbacks, inconsistencies uint64, err error) {
	// Slow second-party rates need a longer window for meaningful
	// counts.
	runFor := 3 * cfg.Duration
	c, err := newCluster(2, decaf.SimConfig{Latency: cfg.Latency, Seed: cfg.Seed})
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.close()
	objs, err := c.joinedInts("rw", 1, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	// Optimistic views observe, so update inconsistencies are counted.
	for i := 1; i <= 2; i++ {
		v := newLatencyView(objs[i])
		if _, aerr := c.site(i).Attach(v, decaf.Optimistic, objs[i]); aerr != nil {
			return 0, 0, 0, aerr
		}
	}

	before1, before2 := c.site(1).Stats(), c.site(2).Stats()

	stop := make(chan struct{})
	done := make(chan struct{}, 2)
	worker := func(idx int, rate float64, seed int64) {
		defer func() { done <- struct{}{} }()
		rng := rand.New(rand.NewSource(seed))
		obj := objs[idx]
		site := c.site(idx)
		for {
			wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
			// Read-modify-write: increments conflict when interleaved.
			res := site.ExecuteFunc(func(tx *decaf.Tx) error {
				obj.Set(tx, obj.Value(tx)+1)
				return nil
			}).Wait()
			_ = res // conflict aborts retry internally and count in stats
		}
	}
	go worker(1, rateA, cfg.Seed+11)
	go worker(2, rateB, cfg.Seed+12)
	time.Sleep(runFor)
	close(stop)
	<-done
	<-done
	time.Sleep(10 * cfg.Latency)

	after1, after2 := c.site(1).Stats(), c.site(2).Stats()
	commits = (after1.Commits - before1.Commits) + (after2.Commits - before2.Commits)
	rollbacks = (after1.ConflictAborts - before1.ConflictAborts) + (after2.ConflictAborts - before2.ConflictAborts)
	inconsistencies = (after1.UpdateInconsistencies - before1.UpdateInconsistencies) +
		(after2.UpdateInconsistencies - before2.UpdateInconsistencies)
	return commits, rollbacks, inconsistencies, nil
}
