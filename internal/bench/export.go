package bench

import (
	"encoding/json"
	"os"
	"time"
)

// Thin exported wrappers so the repository-root `go test -bench` harness
// can reuse the experiment bodies without duplicating them.

// RunE4ForBench runs one E4 configuration and returns (lost, notified,
// committed-updates).
func RunE4ForBench(cfg LoadConfig, rate float64) (lost, notified, total uint64, err error) {
	return runE4(cfg, rate)
}

// RunE5ForBench runs one E5 configuration and returns (commits,
// rollbacks, update inconsistencies).
func RunE5ForBench(cfg LoadConfig, rateA, rateB float64) (commits, rollbacks, inconsistencies uint64, err error) {
	return runE5(cfg, rateA, rateB)
}

// RunE7DecafForBench measures the mean local-action visibility latency of
// the replicated architecture.
func RunE7DecafForBench(t time.Duration, trials int) (time.Duration, error) {
	return runE7Decaf(t, trials)
}

// RunE7CentralizedForBench measures the mean echo round trip of the
// centralized architecture.
func RunE7CentralizedForBench(t time.Duration, trials int) (time.Duration, error) {
	return runE7Centralized(t, trials)
}

// TransportReport is the persisted form of the transport benchmarks
// (BENCH_transport.json at the repo root).
type TransportReport struct {
	Codec      CodecResult      `json:"codec"`
	Throughput ThroughputResult `json:"tcp_loopback"`
}

// WriteTransportJSON writes the transport benchmark report to path.
func WriteTransportJSON(path string, c CodecResult, t ThroughputResult) error {
	data, err := json.MarshalIndent(TransportReport{Codec: c, Throughput: t}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteResilienceJSON writes the E10 resilience report to path
// (BENCH_resilience.json at the repo root).
func WriteResilienceJSON(path string, r ResilienceResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteObsJSON writes the E11 observability-overhead report to path
// (BENCH_obs.json at the repo root).
func WriteObsJSON(path string, r ObsOverheadResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteEngineJSON writes the E12 engine-scaling report to path
// (BENCH_engine.json at the repo root).
func WriteEngineJSON(path string, r EngineScalingResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteFastpathJSON writes the E13 commutative fast-path report to path
// (BENCH_fastpath.json at the repo root).
func WriteFastpathJSON(path string, r FastpathResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteAntiEntropyJSON writes the E14 anti-entropy catch-up report to
// path (BENCH_antientropy.json at the repo root).
func WriteAntiEntropyJSON(path string, r AntiEntropyResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
