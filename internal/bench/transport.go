package bench

// Transport benchmarks: the wire-codec comparison (binary vs gob) and a
// TCP-loopback committed-transactions/sec throughput measurement. These
// track the transport hot path from PR 1 onward; decaf-bench exports the
// results to BENCH_transport.json so later PRs can diff against the
// recorded baseline.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"decaf"
	"decaf/internal/ids"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// CodecResult compares the binary codec against the gob baseline over a
// representative protocol message mix.
type CodecResult struct {
	// Messages is the number of messages per measured round.
	Messages int `json:"messages"`
	// Ns/op are per-message averages.
	BinaryEncodeNs float64 `json:"binary_encode_ns_per_msg"`
	GobEncodeNs    float64 `json:"gob_encode_ns_per_msg"`
	BinaryDecodeNs float64 `json:"binary_decode_ns_per_msg"`
	GobDecodeNs    float64 `json:"gob_decode_ns_per_msg"`
	// Bytes/msg on the wire (gob amortized over a long stream, as a
	// long-lived connection encoder would).
	BinaryBytesPerMsg float64 `json:"binary_bytes_per_msg"`
	GobBytesPerMsg    float64 `json:"gob_bytes_per_msg"`
	// Speedups: gob cost / binary cost.
	EncodeSpeedup float64 `json:"encode_speedup"`
	DecodeSpeedup float64 `json:"decode_speedup"`
}

// codecMessageMix is the steady-state protocol mix: the WRITE / CONFIRM /
// COMMIT triple plus a view confirmation request.
func codecMessageMix() []wire.Message {
	vt := vtime.VT{Time: 12345, Site: 2}
	target := ids.ObjectID{Site: 3, Seq: 7}
	return []wire.Message{
		wire.Write{
			TxnVT:  vt,
			Origin: 2,
			Updates: []wire.Update{
				{Target: target, ReadVT: vt, GraphVT: vtime.VT{Time: 3, Site: 1}, Op: wire.OpSet{Value: int64(42)}},
				{Target: ids.ObjectID{Site: 1, Seq: 9}, ReadVT: vt, Op: wire.OpSet{Value: "hello world"}},
			},
			Checks:       []wire.ReadCheck{{Target: target, ReadVT: vt, GraphVT: vt}},
			NeedsConfirm: true,
		},
		wire.Confirm{TxnVT: vt, From: 3, OK: true},
		wire.Outcome{TxnVT: vt, Committed: true},
		wire.ConfirmRead{TxnVT: vt, Origin: 2, ReqID: 77, Checks: []wire.ReadCheck{{Target: target, ReadVT: vt}}},
	}
}

// MeasureCodec times encode and decode of the protocol mix for both
// codecs. rounds is the number of passes over the mix (10_000 gives
// stable numbers in well under a second).
func MeasureCodec(rounds int) (CodecResult, error) {
	if rounds <= 0 {
		rounds = 10000
	}
	msgs := codecMessageMix()
	res := CodecResult{Messages: len(msgs)}
	total := float64(rounds * len(msgs))

	// Binary encode.
	var buf []byte
	var binBytes int
	start := time.Now()
	for i := 0; i < rounds; i++ {
		buf = buf[:0]
		var err error
		for _, m := range msgs {
			if buf, err = wire.AppendMessage(buf, m); err != nil {
				return res, err
			}
		}
		binBytes = len(buf)
	}
	res.BinaryEncodeNs = float64(time.Since(start).Nanoseconds()) / total
	res.BinaryBytesPerMsg = float64(binBytes) / float64(len(msgs))

	// Binary decode.
	start = time.Now()
	for i := 0; i < rounds; i++ {
		rest := buf
		for len(rest) > 0 {
			_, n, err := wire.DecodeMessage(rest)
			if err != nil {
				return res, err
			}
			rest = rest[n:]
		}
	}
	res.BinaryDecodeNs = float64(time.Since(start).Nanoseconds()) / total

	// Gob encode: one long-lived encoder, as the legacy transport used
	// per connection, so type descriptors amortize.
	var gobBuf bytes.Buffer
	enc := gob.NewEncoder(&gobBuf)
	wrap := struct{ M wire.Message }{}
	start = time.Now()
	for i := 0; i < rounds; i++ {
		for _, m := range msgs {
			wrap.M = m
			if err := enc.Encode(&wrap); err != nil {
				return res, err
			}
		}
	}
	res.GobEncodeNs = float64(time.Since(start).Nanoseconds()) / total
	res.GobBytesPerMsg = float64(gobBuf.Len()) / total

	// Gob decode over the same stream.
	dec := gob.NewDecoder(bytes.NewReader(gobBuf.Bytes()))
	start = time.Now()
	for i := 0; i < rounds*len(msgs); i++ {
		var out struct{ M wire.Message }
		if err := dec.Decode(&out); err != nil {
			return res, err
		}
	}
	res.GobDecodeNs = float64(time.Since(start).Nanoseconds()) / total

	if res.BinaryEncodeNs > 0 {
		res.EncodeSpeedup = res.GobEncodeNs / res.BinaryEncodeNs
	}
	if res.BinaryDecodeNs > 0 {
		res.DecodeSpeedup = res.GobDecodeNs / res.BinaryDecodeNs
	}
	return res, nil
}

// ThroughputResult reports committed-transactions/sec over TCP loopback
// for the batched binary transport and the legacy gob/synchronous one.
type ThroughputResult struct {
	// DurationMs is the measurement window per mode.
	DurationMs int64 `json:"duration_ms"`
	// Workers is the number of concurrent submitters.
	Workers int `json:"workers"`
	// Txn/s committed at the origin site.
	BatchedTxnPerSec float64 `json:"binary_batched_txn_per_sec"`
	LegacyTxnPerSec  float64 `json:"legacy_gob_sync_txn_per_sec"`
	// Speedup = batched / legacy.
	Speedup float64 `json:"speedup"`
	// Raw transport message rate (Endpoint.Send -> delivery, no engine):
	// sustained delivered messages/sec between two loopback endpoints.
	BatchedMsgPerSec float64 `json:"binary_batched_msg_per_sec"`
	LegacyMsgPerSec  float64 `json:"legacy_gob_sync_msg_per_sec"`
	MsgSpeedup       float64 `json:"msg_speedup"`
}

// MeasureTCPThroughput runs the committed-transaction loop over both
// transport modes and reports txn/s for each.
func MeasureTCPThroughput(window time.Duration, workers int) (ThroughputResult, error) {
	if window <= 0 {
		window = 2 * time.Second
	}
	if workers <= 0 {
		workers = 8
	}
	res := ThroughputResult{DurationMs: window.Milliseconds(), Workers: workers}

	legacy, err := tcpThroughputOnce(window, workers, transport.TCPOptions{Legacy: true})
	if err != nil {
		return res, fmt.Errorf("legacy transport: %w", err)
	}
	batched, err := tcpThroughputOnce(window, workers, transport.TCPOptions{})
	if err != nil {
		return res, fmt.Errorf("batched transport: %w", err)
	}
	res.LegacyTxnPerSec = legacy
	res.BatchedTxnPerSec = batched
	if legacy > 0 {
		res.Speedup = batched / legacy
	}

	legacyMsg, err := tcpMessageRateOnce(window, transport.TCPOptions{Legacy: true})
	if err != nil {
		return res, fmt.Errorf("legacy message rate: %w", err)
	}
	batchedMsg, err := tcpMessageRateOnce(window, transport.TCPOptions{})
	if err != nil {
		return res, fmt.Errorf("batched message rate: %w", err)
	}
	res.LegacyMsgPerSec = legacyMsg
	res.BatchedMsgPerSec = batchedMsg
	if legacyMsg > 0 {
		res.MsgSpeedup = batchedMsg / legacyMsg
	}
	return res, nil
}

// tcpMessageRateOnce measures the raw sustained delivery rate of the
// transport alone (no engine): one goroutine offers CONFIRM messages
// through Endpoint.Send in bursts of 256 with a 50µs pause (~5M/s offered,
// far above either mode's capacity), the receiver counts deliveries, and
// the steady-state rate is taken over the middle of the run. The batched
// sender sheds load when its bounded queue is full, so counting at the
// receiver is what makes the two modes comparable; the pause keeps the
// pump from degenerating into a spin loop that contends with the writer
// goroutine for the queue instead of measuring it.
func tcpMessageRateOnce(window time.Duration, opts transport.TCPOptions) (float64, error) {
	ep1, err := transport.ListenTCPOptions(1, "127.0.0.1:0", nil, opts)
	if err != nil {
		return 0, err
	}
	ep2, err := transport.ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: ep1.Addr().String()}, opts)
	if err != nil {
		ep1.Close()
		return 0, err
	}
	defer ep1.Close()
	defer ep2.Close()

	var delivered atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ep1.Events() {
			if ev.Kind == transport.EventMessage {
				delivered.Add(1)
			}
		}
	}()

	msg := wire.Confirm{TxnVT: vtime.VT{Time: 1, Site: 2}, From: 2, OK: true}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vt := vtime.VT{Site: 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vt.Time++
			_ = ep2.Send(1, vt, msg)
			if i%256 == 255 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// Let the connection establish and rates settle, then measure.
	time.Sleep(200 * time.Millisecond)
	before := delivered.Load()
	start := time.Now()
	time.Sleep(window)
	count := delivered.Load() - before
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	ep2.Close()
	ep1.Close() // closes ep1.Events(), letting the counting goroutine exit
	<-done
	return float64(count) / elapsed.Seconds(), nil
}

// tcpThroughputOnce measures committed txn/s between two engine sites on
// a real TCP loopback: the object's primary copy is at site 1, all
// transactions originate at site 2, so every commit pays a WRITE /
// CONFIRM round trip plus the outcome broadcast through the transport.
func tcpThroughputOnce(window time.Duration, workers int, opts transport.TCPOptions) (float64, error) {
	opts1 := opts
	opts1.Observer = observer() // site 1 engine + transport share one scrape
	ep1, err := transport.ListenTCPOptions(1, "127.0.0.1:0", nil, opts1)
	if err != nil {
		return 0, err
	}
	ep2, err := transport.ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: ep1.Addr().String()}, opts)
	if err != nil {
		ep1.Close()
		return 0, err
	}
	s1 := decaf.NewSite(ep1, decaf.Options{Observer: opts1.Observer})
	s2 := decaf.NewSite(ep2, decaf.Options{})
	defer func() {
		s1.Close()
		s2.Close()
		ep1.Close()
		ep2.Close()
	}()

	root, err := s1.NewInt("counter")
	if err != nil {
		return 0, err
	}
	o2, err := s2.NewInt("counter")
	if err != nil {
		return 0, err
	}
	if r := s2.JoinObject(o2, 1, root.Ref().ID()).Wait(); !r.Committed {
		return 0, fmt.Errorf("join failed: %+v", r)
	}
	// Let the replication topology settle before measuring.
	deadline := time.Now().Add(5 * time.Second)
	for len(o2.ReplicaSites()) != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Warm up connections and code paths.
	for i := 0; i < 50; i++ {
		if r := s2.ExecuteFunc(func(tx *decaf.Tx) error {
			o2.Set(tx, int64(i))
			return nil
		}).Wait(); !r.Committed {
			return 0, fmt.Errorf("warmup txn aborted: %+v", r)
		}
	}

	// Timed window: each worker runs back-to-back blind-write
	// transactions; blind writes never conflict, so the commit rate is
	// bounded by the messaging path, which is what we measure.
	var wg sync.WaitGroup
	counts := make([]uint64, workers)
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r := s2.ExecuteFunc(func(tx *decaf.Tx) error {
					o2.Set(tx, int64(w))
					return nil
				}).Wait(); r.Committed {
					counts[w]++
				}
			}
		}(w)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var committed uint64
	for _, c := range counts {
		committed += c
	}
	return float64(committed) / elapsed.Seconds(), nil
}

// TransportTable renders codec and throughput results for decaf-bench.
func TransportTable(c CodecResult, t ThroughputResult) *Table {
	tab := &Table{
		Title: "E9: transport hot path — binary codec + batched TCP sender (PR 1)",
		Note: "codec: per-message encode/decode cost and wire size, binary vs gob baseline;\n" +
			"throughput: committed txn/s over TCP loopback, origin at non-primary site",
		Columns: []string{"metric", "binary", "gob/legacy", "ratio"},
	}
	tab.AddRow("encode ns/msg", fmt.Sprintf("%.0f", c.BinaryEncodeNs), fmt.Sprintf("%.0f", c.GobEncodeNs), fmt.Sprintf("%.1fx", c.EncodeSpeedup))
	tab.AddRow("decode ns/msg", fmt.Sprintf("%.0f", c.BinaryDecodeNs), fmt.Sprintf("%.0f", c.GobDecodeNs), fmt.Sprintf("%.1fx", c.DecodeSpeedup))
	tab.AddRow("wire bytes/msg", fmt.Sprintf("%.1f", c.BinaryBytesPerMsg), fmt.Sprintf("%.1f", c.GobBytesPerMsg),
		fmt.Sprintf("%.1fx", safeRatio(c.GobBytesPerMsg, c.BinaryBytesPerMsg)))
	tab.AddRow("TCP loopback txn/s", fmt.Sprintf("%.0f", t.BatchedTxnPerSec), fmt.Sprintf("%.0f", t.LegacyTxnPerSec),
		fmt.Sprintf("%.2fx", t.Speedup))
	tab.AddRow("TCP loopback msg/s", fmt.Sprintf("%.0f", t.BatchedMsgPerSec), fmt.Sprintf("%.0f", t.LegacyMsgPerSec),
		fmt.Sprintf("%.1fx", t.MsgSpeedup))
	return tab
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
