package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"decaf"
)

// Quick-configuration smoke tests: every experiment driver must run and
// produce a well-formed table whose measurements are in the physically
// plausible range. (The full sweeps live in cmd/decaf-bench; these keep
// the harness itself honest.)

func quickLatencyCfg() LatencyConfig {
	return LatencyConfig{Delays: []time.Duration{4 * time.Millisecond}, Trials: 2}
}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if tab == nil {
		t.Fatal("nil table")
	}
	if len(tab.Rows) != wantRows {
		t.Fatalf("table %q has %d rows, want %d", tab.Title, len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tab.Columns))
		}
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), tab.Title) {
		t.Fatal("printed table missing title")
	}
}

func TestE1Smoke(t *testing.T) {
	tab, err := E1CommitLatency(quickLatencyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3) // three scenarios x one delay
}

func TestE2E3Smoke(t *testing.T) {
	tab, err := E2ViewLatency(quickLatencyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
	tab, err = E3LatencyVsDelay(quickLatencyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestE4Smoke(t *testing.T) {
	cfg := LoadConfig{Latency: 4 * time.Millisecond, Duration: 250 * time.Millisecond, Seed: 3}
	tab, err := E4LostUpdates(cfg, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestE5Smoke(t *testing.T) {
	cfg := LoadConfig{Latency: 4 * time.Millisecond, Duration: 150 * time.Millisecond, Seed: 3}
	tab, err := E5Rollbacks(cfg, 20, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestE6Smoke(t *testing.T) {
	cfg := ScaleConfig{Latency: 2 * time.Millisecond, Sizes: []int{3, 5}, Trials: 1}
	tab, err := E6Scalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
}

func TestE7Smoke(t *testing.T) {
	tab, err := E7Responsiveness(quickLatencyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestE8Smoke(t *testing.T) {
	tab, err := E8Ablations(quickLatencyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 1)
}

func TestE8AblationShape(t *testing.T) {
	// Each optimization must actually buy its latency: ~t for delegation
	// at the remote replica, ~2t for eager confirmation at the origin.
	const lat = 6 * time.Millisecond
	on, err := runDelegationAblation(lat, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	off, err := runDelegationAblation(lat, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if off <= on {
		t.Errorf("delegation ablation shows no cost: on %v, off %v", on, off)
	}
	eOn, err := runEagerAblation(lat, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	eOff, err := runEagerAblation(lat, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if eOff <= eOn {
		t.Errorf("eager-confirm ablation shows no cost: on %v, off %v", eOn, eOff)
	}
}

func TestE1MatchesModelShape(t *testing.T) {
	// The harness itself must reproduce the 2t commit latency within a
	// factor: with t=10ms, origin commit for a remote primary must land
	// in [2t, 3t).
	const lat = 10 * time.Millisecond
	origin, remote, err := runE1Scenario("remote-primaries", lat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if origin < 2*lat || origin > 3*lat {
		t.Errorf("origin commit %v outside [2t,3t) for t=%v", origin, lat)
	}
	if remote < 3*lat || remote > 4*lat {
		t.Errorf("remote commit %v outside [3t,4t) for t=%v", remote, lat)
	}
}

func TestE6ShapeHolds(t *testing.T) {
	// DECAF's commit latency must not grow with N; the GVT baseline must.
	cfg := ScaleConfig{Latency: 2 * time.Millisecond, Sizes: nil, Trials: 2}
	small, err := runE6Decaf(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := runE6Decaf(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if large > 2*small+2*time.Millisecond {
		t.Errorf("DECAF commit grew with N: n=3 %v, n=11 %v", small, large)
	}
	gSmall, err := runE6GVT(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	gLarge, err := runE6GVT(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if gLarge <= gSmall {
		t.Errorf("GVT commit did not grow with N: n=3 %v, n=11 %v", gSmall, gLarge)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50" {
		t.Errorf("ms() = %q", got)
	}
	if got := pct(1, 4); got != "25.0%" {
		t.Errorf("pct() = %q", got)
	}
	if got := pct(0, 0); got != "0.0%" {
		t.Errorf("pct(0,0) = %q", got)
	}
	samples := []time.Duration{3, 1, 2}
	if got := mean(samples); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := percentile(samples, 0.5); got != 2 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestClusterHelpers(t *testing.T) {
	c, err := newCluster(2, decaf.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	objs, err := c.joinedInts("x", 2, 1) // anchored at site 2
	if err != nil {
		t.Fatal(err)
	}
	if p := objs[1].PrimarySite(); p != 2 {
		t.Fatalf("primary = %v, want 2", p)
	}
	res := c.site(1).ExecuteFunc(func(tx *decaf.Tx) error {
		objs[1].Set(tx, 5)
		return nil
	}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	if _, err := waitCommittedInt(objs[2], 5, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}
