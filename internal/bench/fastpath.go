package bench

import (
	"fmt"
	"math/rand"
	"time"

	"decaf"
	"decaf/internal/vtime"
)

// Experiment E13: the commutative fast path. A transaction built only
// from commutative ops (counter adds here) commits locally without the
// §3 confirm round-trip, so its commit latency is independent of the
// network delay t; a guessed read-modify-write still pays 2t to its
// remote primary. E13 sweeps t, drives a 70% commutative / 30% guessed
// mixed workload, and reports per-cohort commit latency against a
// control run with the fast path disabled (where adds ride the guessed
// path like everything else). Replicas must converge to the exact total
// in every run.

// FastpathGateLatency is the sweep point the gate is evaluated at: with
// t = 5ms, a fast-path commit must complete in under t (it does no
// network round-trip, so in practice it is sub-millisecond).
const FastpathGateLatency = 5 * time.Millisecond

// FastpathRow is one latency point of the E13 sweep.
type FastpathRow struct {
	LatencyMS float64 `json:"latency_ms"`

	// The mixed run, fast path enabled.
	FastP50MS    float64 `json:"fast_p50_ms"`
	FastP95MS    float64 `json:"fast_p95_ms"`
	GuessedP50MS float64 `json:"guessed_p50_ms"`
	GuessedP95MS float64 `json:"guessed_p95_ms"`

	// The control run, fast path disabled: the same adds commit as
	// ordinary blind writes (2t), the guessed cohort is unchanged.
	ControlAddP50MS     float64 `json:"control_add_p50_ms"`
	ControlGuessedP50MS float64 `json:"control_guessed_p50_ms"`

	// FastpathCommits counted at the submitting site (must equal the
	// committed adds of the mixed run); Demotions summed across sites.
	FastpathCommits uint64 `json:"fastpath_commits"`
	Demotions       uint64 `json:"fastpath_demotions"`

	// Converged reports that every replica reached the exact expected
	// total in both runs.
	Converged bool `json:"converged"`
}

// FastpathResult is the persisted E13 report (BENCH_fastpath.json).
type FastpathResult struct {
	Txns          int           `json:"txns_per_run"`
	AddFraction   float64       `json:"add_fraction"`
	Rows          []FastpathRow `json:"rows"`
	GateLatencyMS float64       `json:"gate_latency_ms"`
	// Pass: at the gate latency, fast-path p50 < t and all runs
	// converged. The guessed-cohort comparison is informational (on a
	// noisy box the 2t cohort jitters; convergence and the fast cohort's
	// latency are the claims the fast path makes).
	Pass bool `json:"pass"`
}

// MeasureFastpath runs the E13 sweep: txns transactions per run, 70%
// adds, at one-way delays of 2, 5, and 10ms.
func MeasureFastpath(txns int) (FastpathResult, error) {
	res := FastpathResult{
		Txns:          txns,
		AddFraction:   0.7,
		GateLatencyMS: float64(FastpathGateLatency) / float64(time.Millisecond),
	}
	res.Pass = true
	for _, t := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		mixed, err := runFastpathOnce(t, txns, false)
		if err != nil {
			return res, fmt.Errorf("E13 t=%v: %w", t, err)
		}
		control, err := runFastpathOnce(t, txns, true)
		if err != nil {
			return res, fmt.Errorf("E13 control t=%v: %w", t, err)
		}
		row := FastpathRow{
			LatencyMS:           float64(t) / float64(time.Millisecond),
			FastP50MS:           msF(percentile(mixed.addSamples, 0.50)),
			FastP95MS:           msF(percentile(mixed.addSamples, 0.95)),
			GuessedP50MS:        msF(percentile(mixed.rmwSamples, 0.50)),
			GuessedP95MS:        msF(percentile(mixed.rmwSamples, 0.95)),
			ControlAddP50MS:     msF(percentile(control.addSamples, 0.50)),
			ControlGuessedP50MS: msF(percentile(control.rmwSamples, 0.50)),
			FastpathCommits:     mixed.fastCommits,
			Demotions:           mixed.demotions,
			Converged:           mixed.converged && control.converged,
		}
		res.Rows = append(res.Rows, row)
		if !row.Converged {
			res.Pass = false
		}
		if t == FastpathGateLatency && row.FastP50MS >= row.LatencyMS {
			res.Pass = false
		}
	}
	return res, nil
}

// fastpathRun is one measured workload run.
type fastpathRun struct {
	addSamples  []time.Duration
	rmwSamples  []time.Duration
	fastCommits uint64
	demotions   uint64
	converged   bool
}

// runFastpathOnce drives txns transactions (70% adds, 30% RMW, shuffled)
// from site 2 against a primary at site 1, one at a time so each sample
// is a clean submit-to-commit latency. Every transaction increments by
// one, so both replicas must converge to exactly txns.
func runFastpathOnce(t time.Duration, txns int, disableFast bool) (fastpathRun, error) {
	var run fastpathRun
	c := &cluster{net: decaf.NewSimNetwork(decaf.SimConfig{Latency: t})}
	for i := 1; i <= 2; i++ {
		s, err := decaf.DialOptions(c.net, vtime.SiteID(i), decaf.Options{DisableFastPath: disableFast})
		if err != nil {
			c.close()
			return run, err
		}
		c.sites = append(c.sites, s)
	}
	defer c.close()

	objs, err := c.joinedInts("x", 1, 2)
	if err != nil {
		return run, err
	}

	rng := rand.New(rand.NewSource(13))
	isAdd := make([]bool, txns)
	nAdds := int(0.7 * float64(txns))
	for i := 0; i < nAdds; i++ {
		isAdd[i] = true
	}
	rng.Shuffle(txns, func(a, b int) { isAdd[a], isAdd[b] = isAdd[b], isAdd[a] })

	o := objs[2]
	for _, add := range isAdd {
		var fn func(tx *decaf.Tx) error
		if add {
			fn = func(tx *decaf.Tx) error { o.Add(tx, 1); return nil }
		} else {
			fn = func(tx *decaf.Tx) error {
				v := o.Value(tx)
				o.Set(tx, v+1)
				return nil
			}
		}
		start := time.Now()
		if r := c.site(2).ExecuteFunc(fn).Wait(); !r.Committed {
			return run, fmt.Errorf("txn did not commit: %+v", r)
		}
		sample := time.Since(start)
		if add {
			run.addSamples = append(run.addSamples, sample)
		} else {
			run.rmwSamples = append(run.rmwSamples, sample)
		}
	}

	want := int64(txns)
	run.converged = true
	for i := 1; i <= 2; i++ {
		if _, err := waitCommittedInt(objs[i], want, 10*time.Second); err != nil {
			run.converged = false
		}
	}
	st := c.site(2).Stats()
	run.fastCommits = st.FastpathCommits
	for i := 1; i <= 2; i++ {
		run.demotions += c.site(i).Stats().FastpathDemotions
	}
	if disableFast && run.fastCommits != 0 {
		return run, fmt.Errorf("control run took the fast path %d times", run.fastCommits)
	}
	if !disableFast && run.fastCommits != uint64(len(run.addSamples)) {
		return run, fmt.Errorf("fast commits %d != committed adds %d", run.fastCommits, len(run.addSamples))
	}
	return run, nil
}

// msF renders a duration in fractional milliseconds for the JSON report.
func msF(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// FastpathTable renders the E13 sweep.
func FastpathTable(r FastpathResult) *Table {
	tab := &Table{
		Title: "E13 — commutative fast path (adds commit locally; guessed RMW pays 2t)",
		Note: fmt.Sprintf("2 sites, primary remote; %d txns/run, %.0f%% adds; control = fast path disabled;\n"+
			"gate: fast p50 < t at t=%.0fms, exact convergence everywhere",
			r.Txns, 100*r.AddFraction, r.GateLatencyMS),
		Columns: []string{"t(ms)", "fast p50", "fast p95", "guessed p50", "ctl add p50", "ctl guessed p50", "fast commits", "demotions", "converged"},
	}
	for _, row := range r.Rows {
		tab.AddRow(
			fmt.Sprintf("%.0f", row.LatencyMS),
			fmt.Sprintf("%.3fms", row.FastP50MS),
			fmt.Sprintf("%.3fms", row.FastP95MS),
			fmt.Sprintf("%.2fms", row.GuessedP50MS),
			fmt.Sprintf("%.2fms", row.ControlAddP50MS),
			fmt.Sprintf("%.2fms", row.ControlGuessedP50MS),
			fmt.Sprintf("%d", row.FastpathCommits),
			fmt.Sprintf("%d", row.Demotions),
			fmt.Sprintf("%v", row.Converged),
		)
	}
	return tab
}
