package bench

import (
	"fmt"
	"sync"
	"time"

	"decaf"
)

// Experiments E1-E3: the latency analysis of paper §5.1 and the first
// §5.2.2 benchmark ("latency of optimistic and pessimistic views was
// measured under a range of artificially induced network delays, and the
// observed latencies closely matched the analytical expectations").

// LatencyConfig parameterizes E1-E3.
type LatencyConfig struct {
	// Delays are the induced one-way network latencies t to sweep.
	Delays []time.Duration
	// Trials per configuration.
	Trials int
}

// DefaultLatencyConfig mirrors the paper's light-load setting.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		Delays: []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond},
		Trials: 5,
	}
}

// E1CommitLatency reproduces §5.1.1: a transaction commits in 2t at the
// originating site and 3t at other sites; with a single primary site at
// the origin it commits immediately (and in t elsewhere); with a single
// remote primary site, the delegated commit reaches the primary in t and
// everyone else in 2t.
func E1CommitLatency(cfg LatencyConfig) (*Table, error) {
	tab := &Table{
		Title: "E1: transaction commit latency (paper 5.1.1)",
		Note: "model: remote primaries -> 2t origin / 3t remote; primary at origin -> ~0 / t;\n" +
			"single remote primary (delegated commit) -> 2t origin / 2t remote",
		Columns: []string{"scenario", "t(ms)", "origin(ms)", "model", "remote(ms)", "model"},
	}
	for _, t := range cfg.Delays {
		for _, scenario := range []string{"remote-primaries", "primary-at-origin", "single-remote-primary"} {
			origin, remote, err := runE1Scenario(scenario, t, cfg.Trials)
			if err != nil {
				return nil, fmt.Errorf("E1 %s t=%v: %w", scenario, t, err)
			}
			var modelO, modelR string
			switch scenario {
			case "remote-primaries":
				modelO, modelR = ms(2*t), ms(3*t)
			case "primary-at-origin":
				modelO, modelR = "~0", ms(t)
			case "single-remote-primary":
				modelO, modelR = ms(2*t), ms(2*t)
			}
			tab.AddRow(scenario, ms(t), ms(origin), modelO, ms(remote), modelR)
		}
	}
	return tab, nil
}

// runE1Scenario measures origin- and remote-site commit latency for one
// primary placement.
func runE1Scenario(scenario string, t time.Duration, trials int) (origin, remote time.Duration, err error) {
	// Site 4 is a pure replica observer in every scenario, so the
	// "remote" number is a non-primary, non-origin site (the paper's
	// "other sites"). The general remote-primaries case anchors the two
	// objects at two DISTINCT remote sites (1 and 3) so the delegated
	// commit optimization does not apply.
	c, err := newCluster(4, decaf.SimConfig{Latency: t})
	if err != nil {
		return 0, 0, err
	}
	defer c.close()

	// Two objects, as in the paper's m-object analysis.
	var objs []map[int]*decaf.Int
	for k := 0; k < 2; k++ {
		var anchor int
		switch scenario {
		case "remote-primaries":
			anchor = 1 + 2*k // object 0 -> site 1, object 1 -> site 3
		case "primary-at-origin":
			anchor = 2
		case "single-remote-primary":
			anchor = 1
		}
		order := []int{anchor}
		for _, s := range []int{1, 2, 3, 4} {
			if s != anchor {
				order = append(order, s)
			}
		}
		o, jerr := c.joinedInts(fmt.Sprintf("o%d", k), order...)
		if jerr != nil {
			return 0, 0, jerr
		}
		objs = append(objs, o)
	}

	var originSamples, remoteSamples []time.Duration
	for trial := 1; trial <= trials; trial++ {
		want := int64(trial)
		start := time.Now()
		var p *decaf.Pending
		if scenario == "single-remote-primary" {
			// One object only: single write set keeps exactly one
			// remote primary, triggering delegation.
			p = c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
				objs[0][2].Set(tx, want)
				return nil
			})
		} else {
			p = c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
				objs[0][2].Set(tx, want)
				objs[1][2].Set(tx, want)
				return nil
			})
		}
		res := p.Wait()
		if !res.Committed {
			return 0, 0, fmt.Errorf("trial txn failed: %+v", res)
		}
		originSamples = append(originSamples, time.Since(start))

		at, werr := waitCommittedInt(objs[0][4], want, 5*time.Second+10*t)
		if werr != nil {
			return 0, 0, werr
		}
		remoteSamples = append(remoteSamples, at.Sub(start))
	}
	return mean(originSamples), mean(remoteSamples), nil
}

// E2ViewLatency reproduces §5.1.2: pessimistic views are notified in 2t
// at the originating site and no more than 3t at other sites; an
// optimistic view notification precedes the pessimistic one by 2t, and
// optimistic commit notifications match pessimistic update timing.
func E2ViewLatency(cfg LatencyConfig) (*Table, error) {
	tab := &Table{
		Title: "E2: view notification latency (paper 5.1.2)",
		Note: "model: optimistic update -> ~0 origin / t remote; pessimistic update -> 2t origin / <=3t remote;\n" +
			"optimistic notification precedes pessimistic by ~2t",
		Columns: []string{"t(ms)", "opt@origin", "pess@origin", "model", "opt@remote", "model", "pess@remote", "model"},
	}
	for _, t := range cfg.Delays {
		r, err := runE2(t, cfg.Trials)
		if err != nil {
			return nil, fmt.Errorf("E2 t=%v: %w", t, err)
		}
		tab.AddRow(ms(t),
			ms(r.optOrigin), ms(r.pessOrigin), ms(2*t),
			ms(r.optRemote), ms(t),
			ms(r.pessRemote), ms(3*t))
	}
	return tab, nil
}

type e2Result struct {
	optOrigin, pessOrigin, optRemote, pessRemote time.Duration
}

// latencyView records the time each distinct value was first seen.
type latencyView struct {
	obj *decaf.Int

	mu    sync.Mutex
	times map[int64]time.Time
}

func newLatencyView(obj *decaf.Int) *latencyView {
	return &latencyView{obj: obj, times: map[int64]time.Time{}}
}

// Update implements decaf.View.
func (v *latencyView) Update(s *decaf.Snapshot) {
	now := time.Now()
	val := s.Int(v.obj)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.times[val]; !ok {
		v.times[val] = now
	}
}

// seen returns when val was first notified.
func (v *latencyView) seen(val int64, timeout time.Duration) (time.Time, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v.mu.Lock()
		at, ok := v.times[val]
		v.mu.Unlock()
		if ok {
			return at, nil
		}
		time.Sleep(50 * time.Microsecond)
	}
	return time.Time{}, fmt.Errorf("value %d never notified", val)
}

func runE2(t time.Duration, trials int) (e2Result, error) {
	// Four sites so the remote observer (site 4) is neither the origin
	// (site 2) nor a primary (sites 1 and 3), and the two distinct
	// primaries rule out the delegated-commit shortcut — the general
	// case the §5.1.2 analysis describes.
	c, err := newCluster(4, decaf.SimConfig{Latency: t})
	if err != nil {
		return e2Result{}, err
	}
	defer c.close()

	a, err := c.joinedInts("a", 1, 2, 3, 4)
	if err != nil {
		return e2Result{}, err
	}
	b, err := c.joinedInts("b", 3, 1, 2, 4)
	if err != nil {
		return e2Result{}, err
	}

	optO, pessO := newLatencyView(a[2]), newLatencyView(a[2])
	optR, pessR := newLatencyView(a[4]), newLatencyView(a[4])
	if _, err := c.site(2).Attach(optO, decaf.Optimistic, a[2], b[2]); err != nil {
		return e2Result{}, err
	}
	if _, err := c.site(2).Attach(pessO, decaf.Pessimistic, a[2], b[2]); err != nil {
		return e2Result{}, err
	}
	if _, err := c.site(4).Attach(optR, decaf.Optimistic, a[4], b[4]); err != nil {
		return e2Result{}, err
	}
	if _, err := c.site(4).Attach(pessR, decaf.Pessimistic, a[4], b[4]); err != nil {
		return e2Result{}, err
	}

	var r e2Result
	var oo, po, or, pr []time.Duration
	timeout := 5*time.Second + 10*t
	for trial := 1; trial <= trials; trial++ {
		want := int64(trial)
		start := time.Now()
		// Read-modify-writes: their confirmed RL reservations enable the
		// eager view confirmation of paper 5.1.2.
		res := c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
			a[2].Set(tx, a[2].Value(tx)+1)
			b[2].Set(tx, b[2].Value(tx)+1)
			return nil
		}).Wait()
		if !res.Committed {
			return r, fmt.Errorf("trial txn failed: %+v", res)
		}
		for _, m := range []struct {
			v    *latencyView
			sink *[]time.Duration
		}{{optO, &oo}, {pessO, &po}, {optR, &or}, {pessR, &pr}} {
			at, err := m.v.seen(want, timeout)
			if err != nil {
				return r, err
			}
			*m.sink = append(*m.sink, at.Sub(start))
		}
	}
	r.optOrigin, r.pessOrigin = mean(oo), mean(po)
	r.optRemote, r.pessRemote = mean(or), mean(pr)
	return r, nil
}

// E3LatencyVsDelay reproduces the first §5.2.2 benchmark: sweep the
// artificially induced delay and confirm observed view latencies track
// the analytic model.
func E3LatencyVsDelay(cfg LatencyConfig) (*Table, error) {
	tab := &Table{
		Title:   "E3: observed vs analytic view latency across induced delays (paper 5.2.2)",
		Note:    "pessimistic@origin model 2t; pessimistic@remote model 3t; optimistic@remote model t",
		Columns: []string{"t(ms)", "opt@remote", "model t", "ratio", "pess@origin", "model 2t", "ratio", "pess@remote", "model 3t", "ratio"},
	}
	for _, t := range cfg.Delays {
		r, err := runE2(t, cfg.Trials)
		if err != nil {
			return nil, fmt.Errorf("E3 t=%v: %w", t, err)
		}
		ratio := func(measured time.Duration, model time.Duration) string {
			if model == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", float64(measured)/float64(model))
		}
		tab.AddRow(ms(t),
			ms(r.optRemote), ms(t), ratio(r.optRemote, t),
			ms(r.pessOrigin), ms(2*t), ratio(r.pessOrigin, 2*t),
			ms(r.pessRemote), ms(3*t), ratio(r.pessRemote, 3*t))
	}
	return tab, nil
}
