package bench

import (
	"fmt"
	"time"

	"decaf"
	"decaf/internal/centralized"
	"decaf/internal/gvt"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// Experiments E6 and E7: the scalability argument of §5.1.3 and the
// responsiveness motivation of §1.
//
// E6: "In a hypothetical example of a very large network with large
// numbers of relatively small replica sets (e.g., replicas at sites A, B,
// and C, at sites C, D, and E, at E, F, and G, etc.) the sweep to compute
// a GVT can be very time-consuming, since it is proportional to the size
// of the network. But, in our algorithm, each replica set will have its
// own primary site, and each transaction will require confirmations from
// a very small number of such primary sites."

// ScaleConfig parameterizes E6/E7.
type ScaleConfig struct {
	// Latency is the one-way network latency t.
	Latency time.Duration
	// Sizes are the network sizes (site counts) to sweep.
	Sizes []int
	// Trials per size.
	Trials int
}

// DefaultScaleConfig covers the paper's shape argument at laptop scale.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Latency: 3 * time.Millisecond,
		Sizes:   []int{3, 5, 9, 17, 33},
		Trials:  3,
	}
}

// E6Scalability measures commit latency vs network size for DECAF (chain
// of overlapping 3-site replica sets; transactions touch one set) against
// the GVT-sweep baseline (one group spanning all sites).
func E6Scalability(cfg ScaleConfig) (*Table, error) {
	tab := &Table{
		Title: "E6: commit latency vs network size — DECAF primary-copy vs GVT sweep (paper 5.1.3)",
		Note: fmt.Sprintf("t=%v; DECAF: chain of overlapping 3-site replica sets, txn on one set;\n"+
			"GVT: token sweep over all N sites; expectation: DECAF flat (~2t), GVT grows with N", cfg.Latency),
		Columns: []string{"N sites", "DECAF commit(ms)", "model 2t", "GVT commit(ms)", "GVT/DECAF"},
	}
	for _, n := range cfg.Sizes {
		d, err := runE6Decaf(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("E6 decaf n=%d: %w", n, err)
		}
		g, err := runE6GVT(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("E6 gvt n=%d: %w", n, err)
		}
		ratio := "-"
		if d > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(g)/float64(d))
		}
		tab.AddRow(fmt.Sprint(n), ms(d), ms(2*cfg.Latency), ms(g), ratio)
	}
	return tab, nil
}

// runE6Decaf builds a chain of overlapping 3-site replica sets (sites
// {1,2,3}, {3,4,5}, {5,6,7}, ...) and measures commit latency of a
// transaction on the FIRST replica set, which must not depend on N.
func runE6Decaf(cfg ScaleConfig, n int) (time.Duration, error) {
	c, err := newCluster(n, decaf.SimConfig{Latency: cfg.Latency})
	if err != nil {
		return 0, err
	}
	defer c.close()

	// Chain topology: one shared object per overlapping triple.
	var firstSet map[int]*decaf.Int
	for lo := 1; lo+2 <= n; lo += 2 {
		objs, jerr := c.joinedInts(fmt.Sprintf("set%d", lo), lo, lo+1, lo+2)
		if jerr != nil {
			return 0, jerr
		}
		if lo == 1 {
			firstSet = objs
		}
	}
	if firstSet == nil { // n < 3: single replica set of whatever exists
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i + 1
		}
		firstSet, err = c.joinedInts("set1", idx...)
		if err != nil {
			return 0, err
		}
	}

	var samples []time.Duration
	for trial := 1; trial <= cfg.Trials; trial++ {
		want := int64(trial)
		start := time.Now()
		res := c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
			firstSet[2].Set(tx, want)
			return nil
		}).Wait()
		if !res.Committed {
			return 0, fmt.Errorf("txn failed: %+v", res)
		}
		samples = append(samples, time.Since(start))
	}
	return mean(samples), nil
}

// runE6GVT measures write-commit latency in a GVT group spanning all N
// sites.
func runE6GVT(cfg ScaleConfig, n int) (time.Duration, error) {
	net := transport.NewNetwork(transport.Config{Latency: cfg.Latency})
	defer net.Close()
	ring := make([]vtime.SiteID, n)
	for i := range ring {
		ring[i] = vtime.SiteID(i + 1)
	}
	sites := make([]*gvt.Site, n)
	for i := range sites {
		ep, err := net.Endpoint(ring[i])
		if err != nil {
			return 0, err
		}
		sites[i] = gvt.NewSite(ep, ring)
	}
	sites[0].SetObserver(observer())
	for _, s := range sites {
		s.Start()
	}
	defer func() {
		for _, s := range sites {
			s.Stop()
		}
	}()

	// Warm-up write so the token is circulating.
	select {
	case <-sites[1%n].Write("warm", int64(0)).Done():
	case <-time.After(30 * time.Second):
		return 0, fmt.Errorf("gvt warm-up never committed (n=%d)", n)
	}

	var samples []time.Duration
	for trial := 1; trial <= cfg.Trials; trial++ {
		start := time.Now()
		select {
		case <-sites[1%n].Write("x", int64(trial)).Done():
		case <-time.After(30 * time.Second):
			return 0, fmt.Errorf("gvt write never committed (n=%d)", n)
		}
		samples = append(samples, time.Since(start))
	}
	return mean(samples), nil
}

// E7Responsiveness compares the replicated architecture's local response
// (optimistic view at the originating site) against the centralized
// architecture's echo round-trip (paper §1).
func E7Responsiveness(cfg LatencyConfig) (*Table, error) {
	tab := &Table{
		Title: "E7: local action responsiveness — replicated DECAF vs centralized server (paper 1)",
		Note: "DECAF: optimistic view at the originating site sees the action immediately;\n" +
			"centralized: the actor's own view updates only after the 2t server echo",
		Columns: []string{"t(ms)", "DECAF local(ms)", "centralized echo(ms)", "model 2t", "speedup"},
	}
	for _, t := range cfg.Delays {
		d, err := runE7Decaf(t, cfg.Trials)
		if err != nil {
			return nil, fmt.Errorf("E7 decaf t=%v: %w", t, err)
		}
		cen, err := runE7Centralized(t, cfg.Trials)
		if err != nil {
			return nil, fmt.Errorf("E7 centralized t=%v: %w", t, err)
		}
		speedup := "-"
		if d > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(cen)/float64(d))
		}
		tab.AddRow(ms(t), ms(d), ms(cen), ms(2*t), speedup)
	}
	return tab, nil
}

func runE7Decaf(t time.Duration, trials int) (time.Duration, error) {
	c, err := newCluster(2, decaf.SimConfig{Latency: t})
	if err != nil {
		return 0, err
	}
	defer c.close()
	objs, err := c.joinedInts("x", 1, 2)
	if err != nil {
		return 0, err
	}
	v := newLatencyView(objs[2])
	if _, err := c.site(2).Attach(v, decaf.Optimistic, objs[2]); err != nil {
		return 0, err
	}
	var samples []time.Duration
	for trial := 1; trial <= trials; trial++ {
		want := int64(trial)
		start := time.Now()
		p := c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
			objs[2].Set(tx, want)
			return nil
		})
		at, err := v.seen(want, 5*time.Second)
		if err != nil {
			return 0, err
		}
		samples = append(samples, at.Sub(start))
		if res := p.Wait(); !res.Committed {
			return 0, fmt.Errorf("txn failed: %+v", res)
		}
	}
	return mean(samples), nil
}

func runE7Centralized(t time.Duration, trials int) (time.Duration, error) {
	net := transport.NewNetwork(transport.Config{Latency: t})
	defer net.Close()
	sep, err := net.Endpoint(1)
	if err != nil {
		return 0, err
	}
	srv := centralized.NewServer(sep, []vtime.SiteID{2})
	cep, err := net.Endpoint(2)
	if err != nil {
		return 0, err
	}
	client := centralized.NewClient(cep, 1)
	defer func() {
		net.Close()
		srv.Stop()
		client.Stop()
	}()

	var samples []time.Duration
	for trial := 1; trial <= trials; trial++ {
		start := time.Now()
		select {
		case <-client.Write("x", int64(trial)):
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("echo never arrived")
		}
		samples = append(samples, time.Since(start))
	}
	return mean(samples), nil
}
