package bench

import (
	"fmt"
	"time"

	"decaf"
	"decaf/internal/vtime"
)

// E8: ablations of the paper's two commit-path optimizations.
//
//   - Delegated commit (§3.1): with a single remote primary site, the
//     origin delegates the decision; remote replicas then commit in 2t
//     instead of 3t.
//   - Eager confirmation (§5.1.2): a pessimistic snapshot of objects the
//     committing transaction updated reuses the transaction's own RL
//     validation; without it, every snapshot pays an extra CONFIRM-READ
//     round trip (2t) on top of the commit.

// E8Ablations measures both optimizations on and off.
func E8Ablations(cfg LatencyConfig) (*Table, error) {
	tab := &Table{
		Title: "E8: ablation of the delegated-commit (3.1) and eager-confirmation (5.1.2) optimizations",
		Note: "delegation: remote-replica commit latency with a single remote primary (model 2t on / 3t off);\n" +
			"eager confirm: pessimistic view latency at the origin (model 2t on / 4t off)",
		Columns: []string{"t(ms)", "deleg on(ms)", "deleg off(ms)", "models 2t/3t", "eager on(ms)", "eager off(ms)", "models 2t/4t"},
	}
	for _, t := range cfg.Delays {
		dOn, err := runDelegationAblation(t, cfg.Trials, false)
		if err != nil {
			return nil, fmt.Errorf("E8 delegation on t=%v: %w", t, err)
		}
		dOff, err := runDelegationAblation(t, cfg.Trials, true)
		if err != nil {
			return nil, fmt.Errorf("E8 delegation off t=%v: %w", t, err)
		}
		eOn, err := runEagerAblation(t, cfg.Trials, false)
		if err != nil {
			return nil, fmt.Errorf("E8 eager on t=%v: %w", t, err)
		}
		eOff, err := runEagerAblation(t, cfg.Trials, true)
		if err != nil {
			return nil, fmt.Errorf("E8 eager off t=%v: %w", t, err)
		}
		tab.AddRow(ms(t),
			ms(dOn), ms(dOff), fmt.Sprintf("%s/%s", ms(2*t), ms(3*t)),
			ms(eOn), ms(eOff), fmt.Sprintf("%s/%s", ms(2*t), ms(4*t)))
	}
	return tab, nil
}

// ablationCluster builds sites with per-site engine options.
func ablationCluster(n int, t time.Duration, opts decaf.Options) (*cluster, error) {
	c := &cluster{net: decaf.NewSimNetwork(decaf.SimConfig{Latency: t})}
	for i := 1; i <= n; i++ {
		s, err := decaf.DialOptions(c.net, vtime.SiteID(i), opts)
		if err != nil {
			c.close()
			return nil, err
		}
		c.sites = append(c.sites, s)
	}
	return c, nil
}

// runDelegationAblation measures how long a non-origin, non-primary
// replica (site 3) waits for the commit of a single-remote-primary
// transaction.
func runDelegationAblation(t time.Duration, trials int, disable bool) (time.Duration, error) {
	c, err := ablationCluster(3, t, decaf.Options{DisableDelegation: disable})
	if err != nil {
		return 0, err
	}
	defer c.close()
	objs, err := c.joinedInts("x", 1, 2, 3) // primary at site 1; origin 2; observer 3
	if err != nil {
		return 0, err
	}
	var samples []time.Duration
	for trial := 1; trial <= trials; trial++ {
		want := int64(trial)
		start := time.Now()
		res := c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
			objs[2].Set(tx, want)
			return nil
		}).Wait()
		if !res.Committed {
			return 0, fmt.Errorf("txn failed: %+v", res)
		}
		at, werr := waitCommittedInt(objs[3], want, 5*time.Second+10*t)
		if werr != nil {
			return 0, werr
		}
		samples = append(samples, at.Sub(start))
	}
	return mean(samples), nil
}

// runEagerAblation measures pessimistic view latency at the originating
// site with and without eager confirmation.
func runEagerAblation(t time.Duration, trials int, disable bool) (time.Duration, error) {
	c, err := ablationCluster(2, t, decaf.Options{DisableEagerConfirm: disable, DisableDelegation: true})
	if err != nil {
		return 0, err
	}
	defer c.close()
	objs, err := c.joinedInts("x", 1, 2) // primary remote from the origin
	if err != nil {
		return 0, err
	}
	v := newLatencyView(objs[2])
	if _, err := c.site(2).Attach(v, decaf.Pessimistic, objs[2]); err != nil {
		return 0, err
	}
	var samples []time.Duration
	for trial := 1; trial <= trials; trial++ {
		want := int64(trial)
		start := time.Now()
		// Read-modify-write: eligible for the eager confirmation.
		res := c.site(2).ExecuteFunc(func(tx *decaf.Tx) error {
			objs[2].Set(tx, objs[2].Value(tx)+1)
			return nil
		}).Wait()
		if !res.Committed {
			return 0, fmt.Errorf("txn failed: %+v", res)
		}
		at, werr := v.seen(want, 5*time.Second+10*t)
		if werr != nil {
			return 0, werr
		}
		samples = append(samples, at.Sub(start))
	}
	return mean(samples), nil
}
