package bench

// E10 — transport resilience under link flaps. The same committed-txn/s
// workload as the E9 loopback throughput measurement runs twice: once on
// a stable link and once while a fault injector keeps killing every live
// TCP connection between the two sites. With the reconnect + retransmit
// layer the flapped run must keep committing (no EventSiteFailed, no
// lost protocol messages); the interesting number is how much throughput
// the flaps cost.

import (
	"fmt"
	"sync"
	"time"

	"decaf"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// ResilienceResult reports committed txn/s with link flaps off vs on.
type ResilienceResult struct {
	// DurationMs is the measurement window per mode.
	DurationMs int64 `json:"duration_ms"`
	// Workers is the number of concurrent submitters.
	Workers int `json:"workers"`
	// FlapIntervalMs is how often the injector kills all live
	// connections during the flapped run.
	FlapIntervalMs int64 `json:"flap_interval_ms"`

	// Committed txn/s at the origin site.
	StableTxnPerSec  float64 `json:"stable_txn_per_sec"`
	FlappedTxnPerSec float64 `json:"flapped_txn_per_sec"`
	// Retention = flapped / stable: the throughput that survives flaps.
	Retention float64 `json:"retention"`

	// Fault and recovery accounting for the flapped run, summed over
	// both endpoints.
	ConnectionsKilled uint64 `json:"connections_killed"`
	Reconnects        uint64 `json:"reconnects"`
	Retransmits       uint64 `json:"retransmits"`
	// FailureEvents must be 0: every fault was a flap, not a death.
	FailureEvents uint64 `json:"failure_events"`
}

// MeasureResilience runs the committed-transaction workload with link
// flaps off and on and reports both rates.
func MeasureResilience(window time.Duration, workers int, flapEvery time.Duration) (ResilienceResult, error) {
	if window <= 0 {
		window = 2 * time.Second
	}
	if workers <= 0 {
		workers = 8
	}
	if flapEvery <= 0 {
		flapEvery = 100 * time.Millisecond
	}
	res := ResilienceResult{
		DurationMs:     window.Milliseconds(),
		Workers:        workers,
		FlapIntervalMs: flapEvery.Milliseconds(),
	}

	stable, err := resilienceOnce(window, workers, 0, &res)
	if err != nil {
		return res, fmt.Errorf("stable run: %w", err)
	}
	flapped, err := resilienceOnce(window, workers, flapEvery, &res)
	if err != nil {
		return res, fmt.Errorf("flapped run: %w", err)
	}
	res.StableTxnPerSec = stable
	res.FlappedTxnPerSec = flapped
	if stable > 0 {
		res.Retention = flapped / stable
	}
	return res, nil
}

// resilienceOnce measures committed txn/s between two engine sites over
// TCP loopback; when flapEvery > 0 a background injector kills every
// live connection at that cadence and the fault/recovery counters are
// accumulated into res.
func resilienceOnce(window time.Duration, workers int, flapEvery time.Duration, res *ResilienceResult) (float64, error) {
	faults := transport.NewFaults()
	opts := transport.TCPOptions{Faults: faults}
	opts1 := opts
	opts1.Observer = observer() // site 1 engine + transport share one scrape
	ep1, err := transport.ListenTCPOptions(1, "127.0.0.1:0", nil, opts1)
	if err != nil {
		return 0, err
	}
	ep2, err := transport.ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: ep1.Addr().String()}, opts)
	if err != nil {
		ep1.Close()
		return 0, err
	}
	s1 := decaf.NewSite(ep1, decaf.Options{Observer: opts1.Observer})
	s2 := decaf.NewSite(ep2, decaf.Options{})
	defer func() {
		s1.Close()
		s2.Close()
		ep1.Close()
		ep2.Close()
	}()

	root, err := s1.NewInt("counter")
	if err != nil {
		return 0, err
	}
	o2, err := s2.NewInt("counter")
	if err != nil {
		return 0, err
	}
	if r := s2.JoinObject(o2, 1, root.Ref().ID()).Wait(); !r.Committed {
		return 0, fmt.Errorf("join failed: %+v", r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(o2.ReplicaSites()) != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		if r := s2.ExecuteFunc(func(tx *decaf.Tx) error {
			o2.Set(tx, int64(i))
			return nil
		}).Wait(); !r.Committed {
			return 0, fmt.Errorf("warmup txn aborted: %+v", r)
		}
	}

	var flapWG sync.WaitGroup
	stopFlapper := make(chan struct{})
	if flapEvery > 0 {
		flapWG.Add(1)
		go func() {
			defer flapWG.Done()
			ticker := time.NewTicker(flapEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopFlapper:
					return
				case <-ticker.C:
					// Both directions: ep1's conns to 2 and ep2's to 1,
					// plus whatever inbound each side tracked.
					faults.KillConnections(1)
					faults.KillConnections(2)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	counts := make([]uint64, workers)
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r := s2.ExecuteFunc(func(tx *decaf.Tx) error {
					o2.Set(tx, int64(w))
					return nil
				}).Wait(); r.Committed {
					counts[w]++
				}
			}
		}(w)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	close(stopFlapper)
	flapWG.Wait()

	if flapEvery > 0 {
		st1, st2 := ep1.Stats(), ep2.Stats()
		res.ConnectionsKilled += faults.Killed()
		res.Reconnects += st1.Reconnects + st2.Reconnects
		res.Retransmits += st1.Retransmits + st2.Retransmits
		res.FailureEvents += st1.FailureEvents + st2.FailureEvents
	}

	var committed uint64
	for _, c := range counts {
		committed += c
	}
	return float64(committed) / elapsed.Seconds(), nil
}

// ResilienceTable renders the E10 results for decaf-bench.
func ResilienceTable(r ResilienceResult) *Table {
	tab := &Table{
		Title: "E10: transport resilience — committed txn/s across link flaps (PR 2)",
		Note: fmt.Sprintf("every live TCP connection killed each %dms during the flapped run;\n"+
			"reconnect+retransmit must keep commits flowing with zero failure events", r.FlapIntervalMs),
		Columns: []string{"metric", "value"},
	}
	tab.AddRow("stable txn/s", fmt.Sprintf("%.0f", r.StableTxnPerSec))
	tab.AddRow("flapped txn/s", fmt.Sprintf("%.0f", r.FlappedTxnPerSec))
	tab.AddRow("retention", fmt.Sprintf("%.0f%%", r.Retention*100))
	tab.AddRow("connections killed", fmt.Sprintf("%d", r.ConnectionsKilled))
	tab.AddRow("reconnects", fmt.Sprintf("%d", r.Reconnects))
	tab.AddRow("envelopes retransmitted", fmt.Sprintf("%d", r.Retransmits))
	tab.AddRow("failure events", fmt.Sprintf("%d", r.FailureEvents))
	return tab
}
