package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"decaf"
)

// engineWorkers is the commit-pipeline width used by the E12
// measurement. It is forced above 1 so the sharded staging path runs
// even when GOMAXPROCS is 1 (where the engine would otherwise fall
// back to serial application); on a single-core host the speedup then
// comes from pipelining — batched loop wakeups and coalesced flushes —
// rather than parallel validation.
const engineWorkers = 4

// engineSubmitters is the number of concurrent submitter goroutines in
// the pipelined and contended rows.
const engineSubmitters = 8

// PR4BaselineNsPerTxn is the zero-latency stress-row cost of the
// pre-scaling engine (BENCH_obs.json stress_base_ns_per_txn as of the
// observability PR): the serialized event loop topped out near
// 37.5µs/txn. E12 gates against it.
const PR4BaselineNsPerTxn = 37555.0

// EngineScalingGate is the minimum throughput multiple over the PR 4
// baseline that E12 must demonstrate: the batched loop plus sharded
// commit pipeline have to at least double zero-latency stress-row
// txn/s. The gate is enforced on hosts with >= EngineGateMinCores
// cores (below that the parallel validation path has no cores to run
// on and the number is recorded without failing the run).
const EngineScalingGate = 2.0

// EngineGateMinCores is the core count at which the E12 gate becomes
// enforcing.
const EngineGateMinCores = 4

// EngineScalingResult quantifies the hot-path scaling work: how much
// throughput the batched event loop and sharded commit pipeline
// recover when transactions are submitted concurrently instead of one
// at a time. BENCH_engine.json at the repo root persists it.
type EngineScalingResult struct {
	Txns       int `json:"txns_per_trial"`
	Trials     int `json:"trials"`
	Cores      int `json:"cores"`
	Workers    int `json:"commit_workers"`
	Submitters int `json:"submitters"`

	// Serial: two-site replicated increment at zero simulated latency,
	// one transaction in flight (submit, Wait, repeat). Identical shape
	// to E11's stress row, so it is diffable against BENCH_obs.json's
	// stress_base_ns_per_txn across revisions.
	SerialNsPerTxn float64 `json:"serial_ns_per_txn"`

	// Pipelined: the same increment body, engineSubmitters goroutines
	// each over their own replicated object, all submissions in flight
	// together. Aggregate wall time over all committed transactions.
	PipelinedNsPerTxn float64 `json:"pipelined_ns_per_txn"`

	// Contended: engineSubmitters goroutines incrementing one shared
	// object — the conflict/retry path. Informational, not gated.
	ContendedNsPerTxn float64 `json:"contended_ns_per_txn"`

	// PipelineSpeedup compares pipelined to serial submission in this
	// run (informational: on a single core both are CPU-bound, so the
	// interesting axis there is BaselineSpeedup).
	PipelineSpeedup float64 `json:"pipeline_speedup"`

	// BaselineSpeedup is best-row txn/s over the PR 4 serialized-loop
	// baseline — the gated number.
	BaselineNsPerTxn float64 `json:"pr4_baseline_ns_per_txn"`
	BaselineSpeedup  float64 `json:"speedup_vs_pr4_baseline"`

	Gate         float64 `json:"gate_speedup"`
	GateMinCores int     `json:"gate_min_cores"`
	GateEnforced bool    `json:"gate_enforced"`
	Pass         bool    `json:"pass"`
}

// MeasureEngineScaling runs the three E12 rows. Trials alternate
// serial/pipelined/contended to cancel machine drift; the per-row
// minima are kept (at tens of microseconds per transaction, scheduler
// noise dominates any single trial, so best-case is the stable
// estimator — same reasoning as E11's stress rows).
func MeasureEngineScaling(txns, trials int) (EngineScalingResult, error) {
	res := EngineScalingResult{
		Txns:             txns,
		Trials:           trials,
		Cores:            runtime.NumCPU(),
		Workers:          engineWorkers,
		Submitters:       engineSubmitters,
		BaselineNsPerTxn: PR4BaselineNsPerTxn,
		Gate:             EngineScalingGate,
		GateMinCores:     EngineGateMinCores,
	}
	for trial := 0; trial < trials; trial++ {
		s, err := engineScalingOnce(txns, 1, false)
		if err != nil {
			return res, err
		}
		p, err := engineScalingOnce(txns, engineSubmitters, false)
		if err != nil {
			return res, err
		}
		c, err := engineScalingOnce(txns, engineSubmitters, true)
		if err != nil {
			return res, err
		}
		if trial == 0 || s < res.SerialNsPerTxn {
			res.SerialNsPerTxn = s
		}
		if trial == 0 || p < res.PipelinedNsPerTxn {
			res.PipelinedNsPerTxn = p
		}
		if trial == 0 || c < res.ContendedNsPerTxn {
			res.ContendedNsPerTxn = c
		}
	}
	if res.PipelinedNsPerTxn > 0 {
		res.PipelineSpeedup = res.SerialNsPerTxn / res.PipelinedNsPerTxn
	}
	best := res.SerialNsPerTxn
	if res.PipelinedNsPerTxn > 0 && res.PipelinedNsPerTxn < best {
		best = res.PipelinedNsPerTxn
	}
	if best > 0 {
		res.BaselineSpeedup = res.BaselineNsPerTxn / best
	}
	res.GateEnforced = res.Cores >= res.GateMinCores
	// Pass is an honest claim: it asserts the gate was both enforced and
	// met. On a box below GateMinCores the measurement cannot support the
	// claim, so Pass is false there — NOT vacuously true — and callers
	// that want "did the gate fail" must check GateEnforced && !Pass.
	res.Pass = res.GateEnforced && res.BaselineSpeedup >= res.Gate
	return res, nil
}

// engineScalingOnce times txns committed increments across two sites
// at zero simulated latency and returns aggregate ns per committed
// transaction. With submitters == 1 the transactions are strictly
// sequential (the serial row). With more, each submitter increments
// its own replicated object — disjoint writes that stage through the
// sharded pipeline — unless shared is set, in which case all
// submitters hit one object and ride the conflict/retry path.
func engineScalingOnce(txns, submitters int, shared bool) (float64, error) {
	net := decaf.NewSimNetwork(decaf.SimConfig{})
	defer net.Close()
	opts := decaf.Options{CommitWorkers: engineWorkers}
	s1, err := decaf.DialOptions(net, 1, opts)
	if err != nil {
		return 0, err
	}
	defer s1.Close()
	s2, err := decaf.DialOptions(net, 2, opts)
	if err != nil {
		return 0, err
	}
	defer s2.Close()

	nObjs := submitters
	if shared {
		nObjs = 1
	}
	objs := make([]*decaf.Int, nObjs)
	for k := range objs {
		name := fmt.Sprintf("x%d", k)
		root, err := s1.NewInt(name)
		if err != nil {
			return 0, err
		}
		repl, err := s2.NewInt(name)
		if err != nil {
			return 0, err
		}
		if r := s2.JoinObject(repl, 1, root.Ref().ID()).Wait(); !r.Committed {
			return 0, fmt.Errorf("join %s failed: %+v", name, r)
		}
		objs[k] = repl
	}

	run := func(n, worker int) int {
		obj := objs[0]
		if !shared {
			obj = objs[worker]
		}
		committed := 0
		for i := 0; i < n; i++ {
			r := s2.ExecuteFunc(func(tx *decaf.Tx) error {
				obj.Set(tx, obj.Value(tx)+1)
				return nil
			}).Wait()
			if r.Committed {
				committed++
			} else if !shared {
				return committed // disjoint increments must not abort
			}
		}
		return committed
	}

	// Warm-up outside the timed window.
	var warmWG sync.WaitGroup
	for w := 0; w < submitters; w++ {
		warmWG.Add(1)
		go func(w int) { defer warmWG.Done(); run(txns/submitters/10+1, w) }(w)
	}
	warmWG.Wait()

	per := txns / submitters
	committed := make([]int, submitters)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); committed[w] = run(per, w) }(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := 0
	for w := 0; w < submitters; w++ {
		total += committed[w]
		if !shared && committed[w] != per {
			return 0, fmt.Errorf("worker %d: %d/%d disjoint increments committed", w, committed[w], per)
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("no transactions committed")
	}
	return float64(elapsed.Nanoseconds()) / float64(total), nil
}

// EngineTable renders the E12 scaling measurement. The "vs PR4" column
// compares each row's throughput to the serialized-loop baseline the
// gate is defined against.
func EngineTable(r EngineScalingResult) *Table {
	t := &Table{
		Title: "E12 — engine hot-path scaling (batched loop + sharded commit pipeline)",
		Note: fmt.Sprintf("two-site replicated increments at t=0; %d txns x %d trials, minima; "+
			"%d commit workers, %d submitters, %d cores; gate: best row >= %.1fx the PR4 "+
			"baseline (%.0f ns/txn), enforced on >= %d cores",
			r.Txns, r.Trials, r.Workers, r.Submitters, r.Cores, r.Gate,
			r.BaselineNsPerTxn, r.GateMinCores),
		Columns: []string{"row", "ns/txn", "txn/s", "vs PR4", "gate"},
	}
	verdict := "PASS"
	switch {
	case !r.GateEnforced:
		verdict = fmt.Sprintf("%.2fx (advisory, %d cores)", r.BaselineSpeedup, r.Cores)
	case !r.Pass:
		verdict = "FAIL"
	}
	txnPerSec := func(ns float64) string {
		if ns <= 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f", 1e9/ns)
	}
	vsBase := func(ns float64) string {
		if ns <= 0 {
			return "—"
		}
		return fmt.Sprintf("%.2fx", r.BaselineNsPerTxn/ns)
	}
	t.AddRow("serial (submit+Wait each)", fmt.Sprintf("%.0f", r.SerialNsPerTxn),
		txnPerSec(r.SerialNsPerTxn), vsBase(r.SerialNsPerTxn), "—")
	t.AddRow("pipelined (disjoint objects)", fmt.Sprintf("%.0f", r.PipelinedNsPerTxn),
		txnPerSec(r.PipelinedNsPerTxn), vsBase(r.PipelinedNsPerTxn), verdict)
	t.AddRow("contended (one hot object)", fmt.Sprintf("%.0f", r.ContendedNsPerTxn),
		txnPerSec(r.ContendedNsPerTxn), vsBase(r.ContendedNsPerTxn), "—")
	return t
}
