package bench

// E14 — anti-entropy catch-up for weakly connected replicas (PR 9,
// DESIGN.md §13). A two-site replica pair is silently partitioned; the
// connected primary keeps committing while the offline site accumulates
// a missed-update backlog (and one optimistic transaction of its own
// parks waiting for the unreachable primary). After the heal, one
// anti-entropy session must ship the backlog from the primary's WAL,
// resubmit the parked tail through normal §3 confirmation, and converge
// the pair exactly. The interesting number is catch-up cost per missed
// update; the gate is deliberately generous — it exists to catch a
// catastrophic regression (quadratic re-scan, sync livelock), not to
// benchmark disk.

import (
	"fmt"
	"os"
	"time"

	"decaf/internal/engine"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wal"
)

// AntiEntropyGateNsPerUpdate is the maximum allowed catch-up cost per
// missed update: one in-memory round of ship + apply + notify is
// microseconds of work, so a millisecond per update means the sync path
// degenerated.
const AntiEntropyGateNsPerUpdate = 1e6

// AntiEntropyRow is one backlog size's measurement.
type AntiEntropyRow struct {
	// MissedUpdates is the number of committed writes the offline site
	// never saw.
	MissedUpdates int `json:"missed_updates"`
	// CatchupMs is wall time from SyncWith to exact committed
	// convergence at both sites.
	CatchupMs float64 `json:"catchup_ms"`
	// NsPerUpdate is CatchupMs normalized by the backlog size.
	NsPerUpdate float64 `json:"ns_per_update"`
	// RecordsShipped / RecordsApplied are the sync-session counters at
	// the two sites (shipped at the primary, applied at the returner).
	RecordsShipped uint64 `json:"records_shipped"`
	RecordsApplied uint64 `json:"records_applied"`
	// Resubmits counts parked optimistic transactions re-sent through
	// §3 confirmation after the session (must be >= 1: the benchmark
	// parks one on purpose).
	Resubmits uint64 `json:"resubmits"`
	// FailoversRun must be 0: disconnected is not failed.
	FailoversRun uint64 `json:"failovers_run"`
	Converged    bool   `json:"converged"`
}

// AntiEntropyResult is the E14 report (BENCH_antientropy.json).
type AntiEntropyResult struct {
	Rows            []AntiEntropyRow `json:"rows"`
	GateNsPerUpdate float64          `json:"gate_ns_per_update"`
	// Pass: every row converged, resubmitted its parked transaction,
	// ran zero failovers, and stayed under the per-update gate.
	Pass bool `json:"pass"`
}

// MeasureAntiEntropy runs the catch-up measurement over the given
// backlog sizes.
func MeasureAntiEntropy(backlogs []int) (AntiEntropyResult, error) {
	res := AntiEntropyResult{GateNsPerUpdate: AntiEntropyGateNsPerUpdate, Pass: true}
	for _, n := range backlogs {
		row, err := antiEntropyOnce(n)
		if err != nil {
			return res, fmt.Errorf("backlog %d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
		if !row.Converged || row.Resubmits == 0 || row.FailoversRun != 0 ||
			row.NsPerUpdate > res.GateNsPerUpdate {
			res.Pass = false
		}
	}
	return res, nil
}

// antiEntropyOnce measures one partition/backlog/heal/sync cycle on a
// fresh two-site world.
func antiEntropyOnce(backlog int) (AntiEntropyRow, error) {
	row := AntiEntropyRow{MissedUpdates: backlog}

	net := transport.NewNetwork(transport.Config{})
	defer net.Close()
	sites := make(map[vtime.SiteID]*engine.Site, 2)
	for i := 1; i <= 2; i++ {
		id := vtime.SiteID(i)
		ep, err := net.Endpoint(id)
		if err != nil {
			return row, err
		}
		dir, err := os.MkdirTemp("", "decaf-bench-wal-")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(dir, wal.Options{Sync: wal.SyncBatch})
		if err != nil {
			return row, err
		}
		defer l.Close()
		s := engine.NewSite(ep, engine.Options{WAL: l})
		s.Start()
		defer s.Stop()
		sites[id] = s
	}
	s1, s2 := sites[1], sites[2]

	ref1, err := s1.CreateObject(engine.KindInt, "reg", int64(0))
	if err != nil {
		return row, err
	}
	ref2, err := s2.CreateObject(engine.KindInt, "reg", int64(0))
	if err != nil {
		return row, err
	}
	if r := s2.JoinObject(ref2, 1, ref1.ID()).Wait(); r.Err != nil || !r.Committed {
		return row, fmt.Errorf("join: %+v", r)
	}
	set := func(s *engine.Site, ref engine.ObjRef, v int64) engine.Result {
		return s.Submit(&engine.Txn{Name: "set", Execute: func(tx *engine.Tx) error {
			return tx.Write(ref, v)
		}}).Wait()
	}
	if r := set(s2, ref2, 1); r.Err != nil || !r.Committed {
		return row, fmt.Errorf("warmup: %+v", r)
	}

	// Silent partition; both suspicion policies are told it is a
	// disconnect, not a failure.
	if err := s1.SetPeerDisconnected(2, true); err != nil {
		return row, err
	}
	if err := s2.SetPeerDisconnected(1, true); err != nil {
		return row, err
	}
	net.Partition(1, 2)

	// The backlog: the primary keeps committing while the peer is away.
	for i := 0; i < backlog; i++ {
		if r := set(s1, ref1, int64(100+i)); r.Err != nil || !r.Committed {
			return row, fmt.Errorf("backlog write %d: %+v", i, r)
		}
	}
	want := int64(100 + backlog - 1)

	// One optimistic transaction parks at the offline site: it reads,
	// so it needs §3 confirmation from the unreachable primary.
	parked := s2.Submit(&engine.Txn{Name: "parked", Execute: func(tx *engine.Tx) error {
		if _, err := tx.Read(ref2); err != nil {
			return err
		}
		return tx.Write(ref2, int64(7))
	}})

	// The submission executes asynchronously: wait for it to actually
	// park behind the partition before healing, or it would commit over
	// the healed link without needing resubmission.
	parkDeadline := time.Now().Add(10 * time.Second)
	for s2.WaitingLocal() == 0 && time.Now().Before(parkDeadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if s2.WaitingLocal() == 0 {
		return row, fmt.Errorf("optimistic transaction never parked")
	}

	net.Heal(1, 2)
	if err := s1.SetPeerDisconnected(2, false); err != nil {
		return row, err
	}
	if err := s2.SetPeerDisconnected(1, false); err != nil {
		return row, err
	}

	start := time.Now()
	if err := s2.SyncWith(1); err != nil {
		return row, err
	}
	pres := parked.Wait()
	if pres.Err != nil {
		return row, fmt.Errorf("parked txn: %+v", pres)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		a, err1 := s1.ReadCommitted(ref1)
		b, err2 := s2.ReadCommitted(ref2)
		if err1 == nil && err2 == nil && a == b {
			// The parked write may have won (committed after the
			// backlog) or the backlog tail may have: either way both
			// sites must agree and the value must be one of the two.
			if a == want || a == int64(7) {
				row.Converged = true
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)

	row.CatchupMs = float64(elapsed.Nanoseconds()) / 1e6
	row.NsPerUpdate = float64(elapsed.Nanoseconds()) / float64(backlog)
	st1, st2 := s1.Stats(), s2.Stats()
	row.RecordsShipped = st1.SyncRecordsShipped
	row.RecordsApplied = st2.SyncRecordsApplied
	row.Resubmits = st2.SyncResubmits
	row.FailoversRun = st1.FailoversRun + st2.FailoversRun
	return row, nil
}

// AntiEntropyTable renders the E14 results for decaf-bench.
func AntiEntropyTable(r AntiEntropyResult) *Table {
	tab := &Table{
		Title: "E14: anti-entropy catch-up — offline site resyncs from the primary's WAL (PR 9)",
		Note: fmt.Sprintf("silent partition, backlog committed at the primary, heal, one sync session;\n"+
			"gate: converged, parked txn resubmitted, zero failovers, < %.1fms per missed update",
			r.GateNsPerUpdate/1e6),
		Columns: []string{"missed updates", "catch-up ms", "us/update", "shipped", "applied", "resubmits", "converged"},
	}
	for _, row := range r.Rows {
		tab.AddRow(
			fmt.Sprintf("%d", row.MissedUpdates),
			fmt.Sprintf("%.1f", row.CatchupMs),
			fmt.Sprintf("%.1f", row.NsPerUpdate/1e3),
			fmt.Sprintf("%d", row.RecordsShipped),
			fmt.Sprintf("%d", row.RecordsApplied),
			fmt.Sprintf("%d", row.Resubmits),
			fmt.Sprintf("%v", row.Converged),
		)
	}
	return tab
}
