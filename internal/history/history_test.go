package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"decaf/internal/vtime"
)

func vt(t uint64) vtime.VT { return vtime.VT{Time: t, Site: 1} }

func mustInsert(t *testing.T, h *History, at uint64, val any, st Status) {
	t.Helper()
	if err := h.Insert(vt(at), val, st); err != nil {
		t.Fatalf("Insert(%d): %v", at, err)
	}
}

func TestHistoryInsertAndCurrent(t *testing.T) {
	var h History
	if _, ok := h.Current(); ok {
		t.Fatal("empty history has a current value")
	}
	mustInsert(t, &h, 10, "a", Committed)
	mustInsert(t, &h, 30, "c", Pending)
	mustInsert(t, &h, 20, "b", Pending) // out-of-order arrival (straggler)

	cur, ok := h.Current()
	if !ok || cur.Value != "c" || cur.VT != vt(30) {
		t.Fatalf("Current = %+v, want c@30", cur)
	}
	if got := h.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// Versions must come back sorted.
	vs := h.Versions()
	for i := 1; i < len(vs); i++ {
		if !vs[i-1].VT.Less(vs[i].VT) {
			t.Fatalf("versions not sorted: %v", vs)
		}
	}
}

func TestHistoryDuplicateInsert(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, "a", Pending)
	if err := h.Insert(vt(10), "dup", Pending); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestHistoryAt(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, "a", Committed)
	mustInsert(t, &h, 20, "b", Committed)
	mustInsert(t, &h, 30, "c", Pending)

	tests := []struct {
		at     uint64
		want   any
		wantOK bool
	}{
		{5, nil, false},
		{10, "a", true},
		{15, "a", true},
		{20, "b", true},
		{25, "b", true},
		{30, "c", true},
		{99, "c", true},
	}
	for _, tt := range tests {
		v, ok := h.At(vt(tt.at))
		if ok != tt.wantOK || (ok && v.Value != tt.want) {
			t.Errorf("At(%d) = (%v,%v), want (%v,%v)", tt.at, v.Value, ok, tt.want, tt.wantOK)
		}
	}
}

func TestHistoryCommittedAt(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, "a", Committed)
	mustInsert(t, &h, 20, "b", Pending)
	mustInsert(t, &h, 30, "c", Committed)

	v, ok := h.CommittedAt(vt(25))
	if !ok || v.Value != "a" {
		t.Fatalf("CommittedAt(25) = (%v,%v), want a (skipping pending b)", v.Value, ok)
	}
	v, ok = h.CommittedAt(vt(30))
	if !ok || v.Value != "c" {
		t.Fatalf("CommittedAt(30) = (%v,%v), want c", v.Value, ok)
	}
	if _, ok := h.CommittedAt(vt(5)); ok {
		t.Fatal("CommittedAt before first version should fail")
	}
}

func TestHistoryCommitAbort(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, "a", Pending)
	mustInsert(t, &h, 20, "b", Pending)

	if !h.Commit(vt(10)) {
		t.Fatal("Commit(10) failed")
	}
	if h.Commit(vt(99)) {
		t.Fatal("Commit of unknown VT succeeded")
	}
	v, _ := h.Get(vt(10))
	if v.Status != Committed {
		t.Fatalf("status after commit = %v", v.Status)
	}

	if !h.Abort(vt(20)) {
		t.Fatal("Abort(20) failed")
	}
	if h.Abort(vt(20)) {
		t.Fatal("double abort succeeded")
	}
	cur, ok := h.Current()
	if !ok || cur.Value != "a" {
		t.Fatalf("after abort current = %+v, want a", cur)
	}
}

func TestCurrentCommitted(t *testing.T) {
	var h History
	if _, ok := h.CurrentCommitted(); ok {
		t.Fatal("empty history has committed value")
	}
	mustInsert(t, &h, 10, "a", Committed)
	mustInsert(t, &h, 20, "b", Pending)
	v, ok := h.CurrentCommitted()
	if !ok || v.Value != "a" {
		t.Fatalf("CurrentCommitted = %+v, want a", v)
	}
	h.Commit(vt(20))
	v, _ = h.CurrentCommitted()
	if v.Value != "b" {
		t.Fatalf("CurrentCommitted = %+v, want b", v)
	}
}

func TestHasVersionIn(t *testing.T) {
	var h History
	mustInsert(t, &h, 60, "x", Committed)
	mustInsert(t, &h, 90, "y", Pending)

	iv := vtime.Interval{Lo: vt(60), Hi: vt(100)}
	if !h.HasVersionIn(iv, vtime.Zero) {
		t.Fatal("interval (60,100] contains y@90")
	}
	// The writer's own version does not conflict with itself.
	if h.HasVersionIn(iv, vt(90)) {
		t.Fatal("owner's own version at 90 should be excluded")
	}
	// (90, 100] is free.
	if h.HasVersionIn(vtime.Interval{Lo: vt(90), Hi: vt(100)}, vtime.Zero) {
		t.Fatal("(90,100] should be write-free")
	}
	// Lower bound is exclusive: version at 60 not in (60, 80].
	if h.HasVersionIn(vtime.Interval{Lo: vt(60), Hi: vt(80)}, vtime.Zero) {
		t.Fatal("(60,80] should be write-free (60 exclusive)")
	}
	// Upper bound inclusive: (50, 60] contains the version at 60.
	if !h.HasVersionIn(vtime.Interval{Lo: vt(50), Hi: vt(60)}, vtime.Zero) {
		t.Fatal("(50,60] contains x@60")
	}
}

func TestHasCommittedIn(t *testing.T) {
	var h History
	mustInsert(t, &h, 60, "x", Committed)
	mustInsert(t, &h, 90, "y", Pending)

	iv := vtime.Interval{Lo: vt(80), Hi: vt(100)}
	if h.HasCommittedIn(iv, vtime.Zero) {
		t.Fatal("(80,100] has only a pending version; should not count")
	}
	h.Commit(vt(90))
	if !h.HasCommittedIn(iv, vtime.Zero) {
		t.Fatal("(80,100] now contains committed y@90")
	}
	if h.HasCommittedIn(iv, vt(90)) {
		t.Fatal("owner exclusion should apply")
	}
}

func TestGC(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, "a", Committed)
	mustInsert(t, &h, 20, "b", Committed)
	mustInsert(t, &h, 30, "c", Committed)
	mustInsert(t, &h, 40, "d", Pending)

	// GC with floor 30 keeps c (latest committed <= floor) and d.
	if dropped := h.GC(vt(30)); dropped != 2 {
		t.Fatalf("GC dropped %d, want 2", dropped)
	}
	if h.Len() != 2 {
		t.Fatalf("Len after GC = %d, want 2", h.Len())
	}
	cur, _ := h.CurrentCommitted()
	if cur.Value != "c" {
		t.Fatalf("after GC latest committed = %v, want c", cur.Value)
	}
	// Idempotent.
	if dropped := h.GC(vt(30)); dropped != 0 {
		t.Fatalf("second GC dropped %d, want 0", dropped)
	}
}

func TestGCNeverDropsCurrentCommitted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var h History
		times := rng.Perm(int(n%16) + 2)
		for _, ti := range times {
			st := Pending
			if rng.Intn(2) == 0 {
				st = Committed
			}
			_ = h.Insert(vt(uint64(ti+1)), ti, st)
		}
		before, okBefore := h.CurrentCommitted()
		floor := vt(uint64(rng.Intn(20)))
		h.GC(floor)
		after, okAfter := h.CurrentCommitted()
		if okBefore != okAfter {
			return false
		}
		return !okBefore || before.VT == after.VT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryCurrentIsMaxVT(t *testing.T) {
	// Property: Current always returns the version with the maximum VT
	// regardless of insertion order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h History
		n := rng.Intn(20) + 1
		maxT := uint64(0)
		for _, ti := range rng.Perm(n) {
			u := uint64(ti + 1)
			if err := h.Insert(vt(u), u, Pending); err != nil {
				return false
			}
			if u > maxT {
				maxT = u
			}
		}
		cur, ok := h.Current()
		return ok && cur.VT == vt(maxT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReservationsConflicts(t *testing.T) {
	var r Reservations
	owner := vt(100)
	r.Reserve(vtime.Interval{Lo: vt(60), Hi: vt(100)}, owner)

	if !r.Conflicts(vt(80), vt(90)) {
		t.Fatal("write at 80 by stranger should conflict with (60,100]")
	}
	if r.Conflicts(vt(80), owner) {
		t.Fatal("owner's own write must not conflict with its reservation")
	}
	if r.Conflicts(vt(60), vt(90)) {
		t.Fatal("lower bound is exclusive")
	}
	if !r.Conflicts(vt(100), vt(90)) {
		t.Fatal("upper bound is inclusive")
	}
	if r.Conflicts(vt(101), vt(90)) {
		t.Fatal("write above interval should not conflict")
	}
}

func TestReservationsEmptyIntervalIgnored(t *testing.T) {
	var r Reservations
	r.Reserve(vtime.Interval{Lo: vt(100), Hi: vt(100)}, vt(100)) // blind write
	if r.Len() != 0 {
		t.Fatalf("empty interval stored; Len = %d", r.Len())
	}
}

func TestReservationsRelease(t *testing.T) {
	var r Reservations
	r.Reserve(vtime.Interval{Lo: vt(10), Hi: vt(20)}, vt(20))
	r.Reserve(vtime.Interval{Lo: vt(10), Hi: vt(30)}, vt(30))
	r.Reserve(vtime.Interval{Lo: vt(15), Hi: vt(25)}, vt(20))

	if removed := r.Release(vt(20)); removed != 2 {
		t.Fatalf("Release removed %d, want 2", removed)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if r.Conflicts(vt(18), vt(99)) != true {
		t.Fatal("remaining reservation (10,30] should still conflict at 18")
	}
	if removed := r.Release(vt(20)); removed != 0 {
		t.Fatal("double release removed reservations")
	}
}

func TestReservationsGCBelow(t *testing.T) {
	var r Reservations
	r.Reserve(vtime.Interval{Lo: vt(10), Hi: vt(20)}, vt(20))
	r.Reserve(vtime.Interval{Lo: vt(25), Hi: vt(40)}, vt(40))
	if removed := r.GCBelow(vt(20)); removed != 1 {
		t.Fatalf("GCBelow removed %d, want 1", removed)
	}
	if r.Len() != 1 || r.All()[0].Owner != vt(40) {
		t.Fatalf("wrong reservation retained: %+v", r.All())
	}
}

func TestReservationsNCRLExclusion(t *testing.T) {
	// Property linking History and Reservations: for any confirmed read
	// reservation (tR, tT], a write w conflicts (NC) iff w in (tR, tT];
	// and had the write been inserted first, the RL check over the same
	// interval would have caught it. The two checks are two sides of the
	// same invariant.
	f := func(lo8, hi8, w8 uint8) bool {
		lo, hi, w := uint64(lo8%30), uint64(hi8%30), uint64(w8%30)+1
		if lo >= hi {
			lo, hi = hi, lo+1
		}
		iv := vtime.Interval{Lo: vt(lo), Hi: vt(hi)}
		owner := vt(hi)
		var r Reservations
		r.Reserve(iv, owner)
		ncConflict := r.Conflicts(vt(w), vt(w))

		var h History
		_ = h.Insert(vt(w), "w", Pending)
		rlConflict := h.HasVersionIn(iv, owner)

		inInterval := iv.Contains(vt(w)) && vt(w) != owner
		return ncConflict == inInterval && rlConflict == inInterval
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertReadCarriesReadVT(t *testing.T) {
	var h History
	if err := h.InsertRead(vt(10), "a", Committed, vt(4)); err != nil {
		t.Fatal(err)
	}
	v, ok := h.Get(vt(10))
	if !ok || v.ReadVT != vt(4) {
		t.Fatalf("ReadVT = %v, want 4", v.ReadVT)
	}
	// Plain Insert leaves ReadVT zero (unknown).
	if err := h.Insert(vt(20), "b", Pending); err != nil {
		t.Fatal(err)
	}
	v, _ = h.Get(vt(20))
	if !v.ReadVT.IsZero() {
		t.Fatalf("plain Insert ReadVT = %v, want zero", v.ReadVT)
	}
}

// addMerge returns a counter-increment merge function: prev (nil = 0) + d.
func addMerge(d int64) func(any) any {
	return func(prev any) any {
		n, _ := prev.(int64)
		return n + d
	}
}

func mustInsertMerge(t *testing.T, h *History, at uint64, d int64, st Status) {
	t.Helper()
	if err := h.InsertMerge(vt(at), st, vt(at), addMerge(d)); err != nil {
		t.Fatalf("InsertMerge(%d): %v", at, err)
	}
}

func TestMergeVersionsInOrder(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	cur, _ := h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current = %v, want 112", cur.Value)
	}
}

func TestMergeVersionsOutOfOrder(t *testing.T) {
	// A straggling merge version arriving below existing merge versions
	// must recompute the chain above it — final value independent of
	// arrival order.
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	mustInsertMerge(t, &h, 20, 5, Committed) // straggler
	if v, _ := h.Get(vt(20)); v.Value != int64(105) {
		t.Fatalf("mid value = %v, want 105", v.Value)
	}
	cur, _ := h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current = %v, want 112", cur.Value)
	}
	// A straggling absolute insert below the merge chain rebases it.
	if err := h.Insert(vt(15), int64(0), Committed); err != nil {
		t.Fatal(err)
	}
	cur, _ = h.Current()
	if cur.Value != int64(12) {
		t.Fatalf("current after rebase = %v, want 12", cur.Value)
	}
}

func TestMergeChainStopsAtAbsoluteVersion(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	mustInsert(t, &h, 40, int64(1000), Committed) // absolute overwrite above
	mustInsertMerge(t, &h, 50, 1, Committed)
	// Straggler below: recomputation must stop at the absolute 40.
	mustInsertMerge(t, &h, 20, 5, Committed)
	if v, _ := h.Get(vt(30)); v.Value != int64(112) {
		t.Fatalf("value@30 = %v, want 112", v.Value)
	}
	if v, _ := h.Get(vt(40)); v.Value != int64(1000) {
		t.Fatalf("value@40 = %v, want 1000 (absolute)", v.Value)
	}
	cur, _ := h.Current()
	if cur.Value != int64(1001) {
		t.Fatalf("current = %v, want 1001", cur.Value)
	}
}

func TestMergeRecomputeOnAbort(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, int64(100), Pending)
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	// The base aborts: the merge chain rebases onto nothing (zero).
	if !h.Abort(vt(10)) {
		t.Fatal("abort failed")
	}
	cur, _ := h.Current()
	if cur.Value != int64(12) {
		t.Fatalf("current after abort = %v, want 12", cur.Value)
	}
}

func TestMergeSetValueBecomesAbsolute(t *testing.T) {
	// A transaction overwriting its own Add with a Set makes the version
	// absolute: later predecessor changes must not re-derive it.
	var h History
	mustInsert(t, &h, 10, int64(100), Pending)
	mustInsertMerge(t, &h, 20, 5, Pending)
	if !h.SetValue(vt(20), int64(42)) {
		t.Fatal("SetValue failed")
	}
	h.Abort(vt(10))
	if v, _ := h.Get(vt(20)); v.Value != int64(42) {
		t.Fatalf("value = %v, want absolute 42", v.Value)
	}
}

func TestMergeGCMaterializesBase(t *testing.T) {
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	if n := h.GC(vt(30)); n != 2 {
		t.Fatalf("GC dropped %d, want 2", n)
	}
	cur, _ := h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after GC = %v, want 112", cur.Value)
	}
	// The retained base is now absolute: inserting below must not change it.
	if err := h.Insert(vt(5), int64(0), Committed); err != nil {
		t.Fatal(err)
	}
	cur, _ = h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after under-insert = %v, want 112", cur.Value)
	}
}

func TestMergeGCBaseAbsorbsStragglerMerges(t *testing.T) {
	// A committed merge straggler arriving below a materialized merge base
	// folds its delta into the base — commutativity makes the fold legal —
	// instead of being shadowed and lost.
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	h.GC(vt(30)) // base is the merge version at 30, value 112
	mustInsertMerge(t, &h, 15, 3, Committed)
	cur, _ := h.Current()
	if cur.Value != int64(115) {
		t.Fatalf("current after straggler fold = %v, want 115", cur.Value)
	}
	// Merge versions above the base re-derive from the folded value.
	mustInsertMerge(t, &h, 40, 2, Committed)
	mustInsertMerge(t, &h, 12, 1, Committed)
	cur, _ = h.Current()
	if cur.Value != int64(118) {
		t.Fatalf("current after second fold = %v, want 118", cur.Value)
	}
	// A genuine absolute base (GC kept a plain Insert) shadows stragglers,
	// exactly as the full history would.
	var g History
	mustInsertMerge(t, &g, 20, 5, Committed)
	mustInsert(t, &g, 30, int64(200), Committed)
	g.GC(vt(30))
	mustInsertMerge(t, &g, 25, 9, Committed)
	cur, _ = g.Current()
	if cur.Value != int64(200) {
		t.Fatalf("current with absolute base = %v, want 200", cur.Value)
	}
}

func TestMergeGCBaseFoldsOnCommitNotInsert(t *testing.T) {
	// A PENDING merge below a materialized base must not fold on insert:
	// its transaction may abort. It folds when the commit outcome arrives.
	var h History
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	h.GC(vt(30)) // base value 12
	mustInsertMerge(t, &h, 15, 100, Pending)
	cur, _ := h.Current()
	if cur.Value != int64(12) {
		t.Fatalf("current with pending straggler = %v, want 12", cur.Value)
	}
	if !h.Commit(vt(15)) {
		t.Fatal("commit failed")
	}
	cur, _ = h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after straggler commit = %v, want 112", cur.Value)
	}
	// A second Commit of the same VT is idempotent — no double fold.
	h.Commit(vt(15))
	cur, _ = h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after re-commit = %v, want 112 (no double fold)", cur.Value)
	}
	// And an aborted pending straggler leaves the base untouched.
	mustInsertMerge(t, &h, 16, 50, Pending)
	h.Abort(vt(16))
	cur, _ = h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after straggler abort = %v, want 112", cur.Value)
	}
}

func TestReservationsIntersecting(t *testing.T) {
	var r Reservations
	r.Reserve(vtime.Interval{Lo: vt(10), Hi: vt(30)}, vt(31))
	r.Reserve(vtime.Interval{Lo: vt(20), Hi: vt(40)}, vt(41))
	r.Reserve(vtime.Interval{Lo: vt(50), Hi: vt(60)}, vt(61))
	got := r.Intersecting(vt(25), vt(31))
	if len(got) != 1 || got[0] != vt(41) {
		t.Fatalf("Intersecting(25, excl 31) = %v, want [41]", got)
	}
	if got := r.Intersecting(vt(45), vtime.Zero); got != nil {
		t.Fatalf("Intersecting(45) = %v, want none", got)
	}
}

func TestMergeDuplicateRejectedAfterGCFold(t *testing.T) {
	// Regression: a duplicated committed merge message re-delivered AFTER
	// GC folded the original into the materialized base used to fold its
	// delta a second time (the version record that would have tripped the
	// duplicate-VT check was dropped by GC), silently diverging replicas.
	// Found by the simulation sweep: profile nofast, seed 107 — one site
	// saw two transport duplicates of counter adds and ended 1747 ahead.
	var h History
	mustInsert(t, &h, 10, int64(100), Committed)
	mustInsertMerge(t, &h, 20, 5, Committed)
	mustInsertMerge(t, &h, 30, 7, Committed)
	h.GC(vt(30)) // base is the merge at 30, value 112; 10 and 20 dropped
	if err := h.InsertMerge(vt(20), Committed, vt(20), addMerge(5)); err == nil {
		t.Fatal("duplicate of a GC-folded merge was accepted")
	}
	cur, _ := h.Current()
	if cur.Value != int64(112) {
		t.Fatalf("current after duplicate = %v, want 112 (no double fold)", cur.Value)
	}
	// A straggler that folds in AFTER materialization and is then dropped
	// by a later GC must be remembered too.
	mustInsertMerge(t, &h, 15, 3, Committed) // folds into base: 115
	mustInsertMerge(t, &h, 40, 1, Committed)
	h.GC(vt(40)) // drops the shadowed straggler record and the old base
	if err := h.InsertMerge(vt(15), Committed, vt(15), addMerge(3)); err == nil {
		t.Fatal("duplicate of a post-materialization straggler was accepted")
	}
	if err := h.InsertMerge(vt(30), Committed, vt(30), addMerge(7)); err == nil {
		t.Fatal("duplicate of a dropped materialized base was accepted")
	}
	cur, _ = h.Current()
	if cur.Value != int64(116) {
		t.Fatalf("current after duplicates = %v, want 116", cur.Value)
	}
	// Genuine first arrivals below the new base still fold normally.
	mustInsertMerge(t, &h, 25, 4, Committed)
	cur, _ = h.Current()
	if cur.Value != int64(120) {
		t.Fatalf("current after genuine straggler = %v, want 120", cur.Value)
	}
}
