// Package history implements per-object versioned value histories and
// write-free reservation tables, the data structures behind DECAF's
// optimistic concurrency control (paper §3).
//
// Every model object keeps a History: a set of (value, VT) pairs sorted by
// virtual time, where the value with the latest VT is the current value.
// The primary copy of an object additionally keeps a Reservations table of
// write-free intervals: when it confirms a "read latest" (RL) guess for an
// interval (tR, tT], it reserves that interval so no conflicting write can
// later be confirmed inside it; a "no conflict" (NC) guess for a write at
// tT checks that no other transaction's reservation contains tT.
package history

import (
	"fmt"
	"sort"

	"decaf/internal/vtime"
)

// Status is the commit status of a version.
type Status int

// Version commit states. A version is Pending from the moment the
// optimistic update is applied until its transaction's summary outcome
// arrives.
const (
	Pending Status = iota + 1
	Committed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Committed:
		return "committed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Version is one entry in a value history: the value written by the
// transaction at virtual time VT, with its current commit status.
// Aborted versions are removed from the history rather than retained.
type Version struct {
	VT     vtime.VT
	Value  any
	Status Status
	// ReadVT is tR of the writing transaction — the VT of the version it
	// overwrote (zero when unknown; equal to VT for blind writes). The
	// view engine uses it to tell whether the writer's own RL
	// reservation covers a snapshot interval (paper §5.1.2).
	ReadVT vtime.VT
	// merge, when non-nil, marks a commutative version: its Value is
	// derived from the predecessor's value via this function rather than
	// being absolute. Value is kept eagerly recomputed, so reads never
	// consult merge; it is re-invoked only when predecessors change
	// (out-of-order insert, abort, overwrite).
	merge func(prev any) any
	// materialized marks a merge version whose dropped predecessors were
	// folded into Value by GC. It is no longer recomputable (merge is
	// nil), but unlike a genuine absolute write it must still absorb
	// commutative versions that arrive below it: their deltas fold
	// directly into Value (legal precisely because merges commute).
	materialized bool
}

// History is a virtual-time-indexed set of versions of a single model
// object. The zero value is an empty history ready to use.
//
// History is not safe for concurrent use; the engine confines each history
// to its site's event loop.
type History struct {
	// versions is sorted by VT ascending. Aborted versions are deleted.
	versions []Version
	// folded records the VTs of merge versions that GC absorbed into a
	// materialized base. Versions present in the slice reject duplicate
	// inserts by VT lookup; once GC drops a merge version that record is
	// gone, and a duplicated Write for it would re-fold its delta into
	// the base (merges commute, so the fold succeeds — and the value
	// silently diverges from other replicas). The set is retained
	// forever, like the engine's per-txn outcome map: VTs are globally
	// unique, so membership is a permanent proof of "already applied
	// here". One entry per GC'd commutative update; absolute versions
	// need no entry because a duplicate below the base is shadowed by
	// it rather than folded in.
	folded map[vtime.VT]struct{}
}

// Len returns the number of retained versions.
func (h *History) Len() int { return len(h.versions) }

// search returns the index of the first version with VT >= v.
func (h *History) search(v vtime.VT) int {
	return sort.Search(len(h.versions), func(i int) bool {
		return !h.versions[i].VT.Less(v)
	})
}

// Insert records a new version written at vt. It returns an error if a
// version at exactly vt already exists (virtual times are globally unique,
// so a duplicate indicates a duplicated message).
func (h *History) Insert(vt vtime.VT, value any, st Status) error {
	return h.InsertRead(vt, value, st, vtime.Zero)
}

// InsertRead is Insert carrying the writer's read time tR.
func (h *History) InsertRead(vt vtime.VT, value any, st Status, readVT vtime.VT) error {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		return fmt.Errorf("history: duplicate version at %s", vt)
	}
	h.versions = append(h.versions, Version{})
	copy(h.versions[i+1:], h.versions[i:])
	h.versions[i] = Version{VT: vt, Value: value, Status: st, ReadVT: readVT}
	// An out-of-order absolute insert changes what any merge versions
	// directly above it derive from.
	h.recomputeFrom(i + 1)
	return nil
}

// InsertMerge records a commutative version at vt whose value is derived
// from its predecessor via merge (e.g. a counter increment). The version's
// value stays correct under out-of-order arrival: whenever a predecessor
// changes, the chain of merge versions above it is recomputed.
func (h *History) InsertMerge(vt vtime.VT, st Status, readVT vtime.VT, merge func(prev any) any) error {
	if merge == nil {
		return fmt.Errorf("history: nil merge for version at %s", vt)
	}
	if _, dup := h.folded[vt]; dup {
		return fmt.Errorf("history: duplicate version at %s (already folded into materialized base)", vt)
	}
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		return fmt.Errorf("history: duplicate version at %s", vt)
	}
	h.versions = append(h.versions, Version{})
	copy(h.versions[i+1:], h.versions[i:])
	h.versions[i] = Version{VT: vt, Status: st, ReadVT: readVT, merge: merge}
	h.recomputeFrom(i)
	// A committed merge landing below a GC-materialized base would be
	// shadowed by it; fold the delta in instead. Pending merges fold at
	// Commit time (an abort must leave the base untouched).
	if st == Committed {
		h.foldIntoMaterialized(i, merge)
	}
	return nil
}

// foldIntoMaterialized folds one merge delta into the materialized base
// (if any) that shadows the version at index i, and propagates the change
// to the merge run above the base.
func (h *History) foldIntoMaterialized(i int, merge func(prev any) any) {
	j := i
	for j < len(h.versions) && h.versions[j].merge != nil {
		j++
	}
	if j >= len(h.versions) || !h.versions[j].materialized {
		return
	}
	h.versions[j].Value = merge(h.versions[j].Value)
	h.recomputeFrom(j + 1)
}

// recomputeFrom re-derives the values of the run of merge versions starting
// at index i. The run ends at the first absolute (nil-merge) version, whose
// value does not depend on its predecessors.
func (h *History) recomputeFrom(i int) {
	for ; i < len(h.versions); i++ {
		if h.versions[i].merge == nil {
			return
		}
		var prev any
		if i > 0 {
			prev = h.versions[i-1].Value
		}
		h.versions[i].Value = h.versions[i].merge(prev)
	}
}

// Current returns the version with the latest virtual time, i.e. the
// current value of the object. ok is false for an empty history.
func (h *History) Current() (v Version, ok bool) {
	if len(h.versions) == 0 {
		return Version{}, false
	}
	return h.versions[len(h.versions)-1], true
}

// CurrentCommitted returns the latest committed version, skipping any
// pending versions above it. ok is false when no committed version exists.
func (h *History) CurrentCommitted() (v Version, ok bool) {
	for i := len(h.versions) - 1; i >= 0; i-- {
		if h.versions[i].Status == Committed {
			return h.versions[i], true
		}
	}
	return Version{}, false
}

// At returns the version in effect at virtual time vt: the version with the
// greatest VT less than or equal to vt. ok is false when no version exists
// at or before vt. This is the read a snapshot at tS = vt performs.
func (h *History) At(vt vtime.VT) (v Version, ok bool) {
	i := h.search(vt)
	// i points at first version >= vt; the version in effect is at i if
	// exactly equal, else i-1.
	if i < len(h.versions) && h.versions[i].VT == vt {
		return h.versions[i], true
	}
	if i == 0 {
		return Version{}, false
	}
	return h.versions[i-1], true
}

// CommittedAt returns the committed version in effect at vt, skipping
// pending versions.
func (h *History) CommittedAt(vt vtime.VT) (v Version, ok bool) {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		i++
	}
	for j := i - 1; j >= 0; j-- {
		if h.versions[j].Status == Committed {
			return h.versions[j], true
		}
	}
	return Version{}, false
}

// Get returns the version written at exactly vt.
func (h *History) Get(vt vtime.VT) (v Version, ok bool) {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		return h.versions[i], true
	}
	return Version{}, false
}

// SetValue replaces the value of the version written at exactly vt (a
// transaction overwriting its own earlier write). It reports whether such
// a version existed.
func (h *History) SetValue(vt vtime.VT, value any) bool {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		h.versions[i].Value = value
		// An overwrite is absolute even if the original write was a
		// merge; and it changes what merge versions above derive from.
		h.versions[i].merge = nil
		h.versions[i].materialized = false
		h.recomputeFrom(i + 1)
		return true
	}
	return false
}

// Commit marks the version written at vt as committed. It reports whether
// such a version existed.
func (h *History) Commit(vt vtime.VT) bool {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		if h.versions[i].Status == Committed {
			return true
		}
		h.versions[i].Status = Committed
		// A merge version deciding below a materialized base folds its
		// delta in now (see InsertMerge).
		if h.versions[i].merge != nil {
			h.foldIntoMaterialized(i, h.versions[i].merge)
		}
		return true
	}
	return false
}

// Abort removes the version written at vt (rollback of an aborted
// transaction). It reports whether such a version existed.
func (h *History) Abort(vt vtime.VT) bool {
	i := h.search(vt)
	if i < len(h.versions) && h.versions[i].VT == vt {
		h.versions = append(h.versions[:i], h.versions[i+1:]...)
		h.recomputeFrom(i)
		return true
	}
	return false
}

// HasVersionIn reports whether any version other than one written by
// `owner` exists in the half-open interval iv. This is the primary copy's
// RL guess check: the interval (tR, tT] must be write-free.
func (h *History) HasVersionIn(iv vtime.Interval, owner vtime.VT) bool {
	for i := h.search(iv.Lo); i < len(h.versions); i++ {
		v := h.versions[i]
		if !v.VT.LessEq(iv.Hi) {
			break
		}
		if !iv.Contains(v.VT) {
			continue
		}
		if v.VT != owner {
			return true
		}
	}
	return false
}

// HasCommittedIn reports whether any committed version other than one at
// `owner` lies in iv. Pessimistic view snapshots use this form of the RL
// check: the interval since lastNotifiedVT must be free of committed
// updates.
func (h *History) HasCommittedIn(iv vtime.Interval, owner vtime.VT) bool {
	for i := h.search(iv.Lo); i < len(h.versions); i++ {
		v := h.versions[i]
		if !v.VT.LessEq(iv.Hi) {
			break
		}
		if iv.Contains(v.VT) && v.Status == Committed && v.VT != owner {
			return true
		}
	}
	return false
}

// Versions returns a copy of the retained versions in VT order, for
// inspection and tests.
func (h *History) Versions() []Version {
	out := make([]Version, len(h.versions))
	copy(out, h.versions)
	return out
}

// GC discards versions made obsolete by commits (paper §3: "Committal
// makes old values no longer needed for view snapshots or for rollback
// after abort"). Specifically it drops every version older than the latest
// committed version that is itself older than `floor`. Versions at or
// above floor are retained because a straggling snapshot may still read
// them; callers pass the minimum VT any outstanding snapshot could use,
// or the latest committed VT to keep only that.
//
// It returns the number of versions discarded. The latest committed
// version is always retained.
func (h *History) GC(floor vtime.VT) int {
	// Fast path: pruning needs a committed version at index >= 1 with
	// VT <= floor; a steady-state history (already pruned to its latest
	// committed version plus pending tail) exits without scanning.
	if len(h.versions) <= 1 || !h.versions[1].VT.LessEq(floor) {
		return 0
	}
	// Find latest committed version at or below floor.
	keep := -1
	for i := 0; i < len(h.versions); i++ {
		v := h.versions[i]
		if !v.VT.LessEq(floor) {
			break
		}
		if v.Status == Committed {
			keep = i
		}
	}
	if keep <= 0 {
		return 0
	}
	dropped := keep
	// The retained base becomes the history's floor: materialize its
	// (already computed) value so it no longer derives from dropped
	// predecessors. A materialized MERGE base keeps absorbing committed
	// merge stragglers that arrive below it (foldIntoMaterialized); a
	// genuine absolute base shadows them, exactly as the full history
	// would have.
	if h.versions[keep].merge != nil {
		h.versions[keep].merge = nil
		h.versions[keep].materialized = true
	}
	// Remember every dropped merge VT (including old materialized bases,
	// whose own write was a merge): their deltas now live only inside
	// the base value, and a duplicated message must not fold them in
	// twice. See the folded field's doc.
	for i := 0; i < keep; i++ {
		if v := h.versions[i]; v.merge != nil || v.materialized {
			if h.folded == nil {
				h.folded = make(map[vtime.VT]struct{})
			}
			h.folded[v.VT] = struct{}{}
		}
	}
	h.versions = append(h.versions[:0], h.versions[keep:]...)
	return dropped
}
