package history

import (
	"sort"

	"decaf/internal/vtime"
)

// Reservation is a write-free interval reserved at a primary copy on
// behalf of the transaction (or snapshot) with virtual time Owner. While
// the reservation stands, confirming any other transaction's write inside
// the interval would invalidate Owner's confirmed read, so the NC check
// denies such writes.
type Reservation struct {
	Interval vtime.Interval
	Owner    vtime.VT
}

// Reservations is the write-free reservation table a primary copy keeps
// for one object (or for its replication graph). The zero value is an
// empty table ready to use. Not safe for concurrent use.
type Reservations struct {
	rs []Reservation // sorted by (Interval.Hi, Owner) for GC convenience
}

// Len returns the number of reservations held.
func (r *Reservations) Len() int { return len(r.rs) }

// Reserve records a write-free reservation of iv on behalf of owner.
// Empty intervals (e.g. a blind write's (tT, tT]) are ignored.
func (r *Reservations) Reserve(iv vtime.Interval, owner vtime.VT) {
	if iv.Empty() {
		return
	}
	i := sort.Search(len(r.rs), func(i int) bool {
		hi := r.rs[i].Interval.Hi
		if hi != iv.Hi {
			return iv.Hi.Less(hi)
		}
		return owner.LessEq(r.rs[i].Owner)
	})
	r.rs = append(r.rs, Reservation{})
	copy(r.rs[i+1:], r.rs[i:])
	r.rs[i] = Reservation{Interval: iv, Owner: owner}
}

// Conflicts reports whether a write at vt by the transaction `writer`
// falls inside a reservation made by a different owner — the NC ("no
// conflict") guess check. A transaction never conflicts with its own
// reservations.
func (r *Reservations) Conflicts(vt vtime.VT, writer vtime.VT) bool {
	for _, res := range r.rs {
		if res.Owner != writer && res.Interval.Contains(vt) {
			return true
		}
	}
	return false
}

// Intersecting returns the owners (other than exclude) of reservations
// whose interval contains vt. A commutative fast-path commit landing at vt
// uses this to find the open RL guesses its write invalidates, so they can
// be demoted to re-validation.
func (r *Reservations) Intersecting(vt vtime.VT, exclude vtime.VT) []vtime.VT {
	var owners []vtime.VT
	for _, res := range r.rs {
		if res.Owner != exclude && res.Interval.Contains(vt) {
			owners = append(owners, res.Owner)
		}
	}
	return owners
}

// Release removes every reservation held by owner (called when the owning
// transaction aborts: its confirmed reads no longer constrain writers).
// It returns the number of reservations removed.
func (r *Reservations) Release(owner vtime.VT) int {
	kept := r.rs[:0]
	removed := 0
	for _, res := range r.rs {
		if res.Owner == owner {
			removed++
			continue
		}
		kept = append(kept, res)
	}
	r.rs = kept
	return removed
}

// GCBelow discards reservations whose entire interval lies at or below
// floor; no future transaction can be assigned a VT in that region once
// every transaction at or below floor is decided. It returns the number
// discarded.
func (r *Reservations) GCBelow(floor vtime.VT) int {
	if len(r.rs) == 0 {
		return 0
	}
	kept := r.rs[:0]
	removed := 0
	for _, res := range r.rs {
		if res.Interval.Hi.LessEq(floor) {
			removed++
			continue
		}
		kept = append(kept, res)
	}
	r.rs = kept
	return removed
}

// All returns a copy of the reservations, for inspection and tests.
func (r *Reservations) All() []Reservation {
	out := make([]Reservation, len(r.rs))
	copy(out, r.rs)
	return out
}
