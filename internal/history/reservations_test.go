package history

import (
	"testing"

	"decaf/internal/vtime"
)

func rvt(time uint64, site vtime.SiteID) vtime.VT { return vtime.VT{Time: time, Site: site} }

func riv(lo, hi vtime.VT) vtime.Interval { return vtime.Interval{Lo: lo, Hi: hi} }

func TestReserveIgnoresEmptyIntervals(t *testing.T) {
	var r Reservations
	owner := rvt(5, 1)
	r.Reserve(riv(rvt(3, 1), rvt(3, 1)), owner) // Lo == Hi: a blind write's (tT, tT]
	r.Reserve(riv(rvt(4, 1), rvt(2, 1)), owner) // inverted
	if r.Len() != 0 {
		t.Fatalf("empty intervals reserved: Len = %d", r.Len())
	}
}

func TestConflictsEndpoints(t *testing.T) {
	var r Reservations
	owner := rvt(10, 1)
	writer := rvt(9, 2)
	lo, hi := rvt(3, 1), rvt(8, 1)
	r.Reserve(riv(lo, hi), owner)

	// The interval is half-open (Lo, Hi]: Lo itself is outside, Hi inside.
	if r.Conflicts(lo, writer) {
		t.Error("write at exclusive Lo endpoint conflicted")
	}
	if !r.Conflicts(hi, writer) {
		t.Error("write at inclusive Hi endpoint did not conflict")
	}
	// The site tie-break is part of the order: (3,1) < (3,2) <= (8,1).
	if !r.Conflicts(rvt(3, 2), writer) {
		t.Error("write just above Lo (by site tie-break) did not conflict")
	}
	if r.Conflicts(rvt(8, 2), writer) {
		t.Error("write just above Hi (by site tie-break) conflicted")
	}
}

func TestConflictsOwnerExempt(t *testing.T) {
	var r Reservations
	owner := rvt(10, 1)
	r.Reserve(riv(rvt(3, 1), rvt(8, 1)), owner)
	if r.Conflicts(rvt(5, 1), owner) {
		t.Error("a transaction conflicted with its own reservation")
	}
	if !r.Conflicts(rvt(5, 1), rvt(10, 2)) {
		t.Error("a different writer did not conflict")
	}
}

func TestAdjacentIntervals(t *testing.T) {
	var r Reservations
	a, b, c := rvt(2, 1), rvt(5, 1), rvt(9, 1)
	first, second := rvt(20, 1), rvt(21, 2)
	r.Reserve(riv(a, b), first)
	r.Reserve(riv(b, c), second) // adjacent: (a,b] then (b,c]
	writer := rvt(30, 3)

	// The shared endpoint b belongs to the first interval only, so a
	// writer at b conflicts even if it owns the second reservation.
	if !r.Conflicts(b, second) {
		t.Error("write at shared endpoint did not conflict with the first interval")
	}
	if r.Conflicts(b, first) {
		t.Error("first owner conflicted at its own Hi endpoint")
	}
	if !r.Conflicts(rvt(5, 2), writer) || !r.Conflicts(c, writer) {
		t.Error("interior of second interval did not conflict")
	}
}

func TestOverlappingIntervals(t *testing.T) {
	var r Reservations
	first, second := rvt(20, 1), rvt(21, 2)
	r.Reserve(riv(rvt(2, 1), rvt(6, 1)), first)
	r.Reserve(riv(rvt(4, 1), rvt(9, 1)), second)

	// In the overlap, each owner still conflicts with the other's
	// reservation: owning one of the two is not enough.
	if !r.Conflicts(rvt(5, 1), first) {
		t.Error("first owner did not conflict with second's overlapping reservation")
	}
	if !r.Conflicts(rvt(5, 1), second) {
		t.Error("second owner did not conflict with first's overlapping reservation")
	}
}

func TestRelease(t *testing.T) {
	var r Reservations
	keep, drop := rvt(20, 1), rvt(21, 2)
	r.Reserve(riv(rvt(1, 1), rvt(3, 1)), drop)
	r.Reserve(riv(rvt(2, 1), rvt(5, 1)), keep)
	r.Reserve(riv(rvt(4, 1), rvt(7, 1)), drop)

	if got := r.Release(drop); got != 2 {
		t.Fatalf("Release removed %d, want 2", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d after release, want 1", r.Len())
	}
	if r.Conflicts(rvt(6, 1), rvt(30, 3)) {
		t.Error("released reservation still conflicts")
	}
	if !r.Conflicts(rvt(4, 1), rvt(30, 3)) {
		t.Error("surviving reservation no longer conflicts")
	}
	if got := r.Release(drop); got != 0 {
		t.Errorf("second Release removed %d, want 0", got)
	}
}

func TestGCBelowBoundary(t *testing.T) {
	var r Reservations
	owner := rvt(20, 1)
	floor := rvt(5, 1)
	r.Reserve(riv(rvt(1, 1), rvt(5, 1)), owner)      // Hi == floor: collectable
	r.Reserve(riv(rvt(1, 1), rvt(5, 2)), owner)      // Hi just above floor (site tie-break): kept
	r.Reserve(riv(rvt(3, 1), rvt(9, 1)), rvt(21, 2)) // Hi well above: kept

	if got := r.GCBelow(floor); got != 1 {
		t.Fatalf("GCBelow removed %d, want 1", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d after GC, want 2", r.Len())
	}
	for _, res := range r.All() {
		if res.Interval.Hi.LessEq(floor) {
			t.Errorf("reservation with Hi %v survived GC below %v", res.Interval.Hi, floor)
		}
	}
}

// TestReserveKeepsSortedOrder checks the (Hi, Owner) insertion order that
// GCBelow's sequential scan and the table's determinism rely on.
func TestReserveKeepsSortedOrder(t *testing.T) {
	var r Reservations
	// Insert out of order, including two reservations with the same Hi.
	r.Reserve(riv(rvt(1, 1), rvt(9, 1)), rvt(22, 3))
	r.Reserve(riv(rvt(1, 1), rvt(4, 1)), rvt(20, 1))
	r.Reserve(riv(rvt(1, 1), rvt(9, 1)), rvt(21, 2))
	r.Reserve(riv(rvt(1, 1), rvt(6, 1)), rvt(23, 1))

	all := r.All()
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if cur.Interval.Hi.Less(prev.Interval.Hi) {
			t.Fatalf("reservations out of Hi order at %d: %v after %v", i, cur, prev)
		}
		if cur.Interval.Hi == prev.Interval.Hi && cur.Owner.Less(prev.Owner) {
			t.Fatalf("same-Hi reservations out of Owner order at %d: %v after %v", i, cur, prev)
		}
	}
}
