// Package testutil holds shared test-only helpers.
//
// Its centerpiece is a stdlib-only goroutine-leak detector: DECAF's
// engine, transport, and GVT daemon all spawn background goroutines
// (per-peer writers, retransmit timers, token forwarders), and a test
// that forgets to Close its sites leaks them. The leak shows up later
// as a flaky, unrelated failure — far from the test that caused it —
// so the detector runs once per package, after the whole test binary,
// and prints the surviving stacks.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyTestMain is installed as a package's TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// It runs the tests and then, if they passed, fails the binary when
// goroutines started by the tests are still alive once a settle window
// expires. Goroutines belonging to the runtime and the testing
// framework are filtered out.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitForDrain(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr,
				"goroutine leak: %d goroutine(s) still alive after all tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// waitForDrain polls for lingering goroutines until the deadline.
// Goroutines that are merely slow to wind down (a writer draining its
// last frame, a connection in TIME_WAIT teardown) disappear within a
// poll or two; only genuinely stuck ones survive the full window.
func waitForDrain(window time.Duration) []string {
	deadline := time.Now().Add(window)
	for {
		leaked := interestingGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// interestingGoroutines returns the stacks of all live goroutines that
// are not runtime or testing infrastructure.
func interestingGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g = strings.TrimSpace(g); g != "" && !systemGoroutine(g) {
			out = append(out, g)
		}
	}
	return out
}

// systemGoroutine reports whether a stack belongs to the runtime, the
// testing framework, or this detector itself.
func systemGoroutine(stack string) bool {
	// The first line is "goroutine N [state]:"; the frames follow.
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testutil.interestingGoroutines",
		"runtime.goexit",
		"runtime.gc",
		"runtime.MHeap_Scavenger",
		"runtime.ReadTrace",
		"runtime.ensureSigM",
		"signal.signal_recv",
		"signal.loop",
		"os/signal.",
	} {
		if strings.Contains(stack, marker) {
			// runtime.goexit appears at the bottom of every stack on
			// some platforms; only treat it as a marker when it is the
			// sole frame.
			if marker == "runtime.goexit" && strings.Count(stack, "\n") > 2 {
				continue
			}
			return true
		}
	}
	return false
}
