// Package centralized implements the non-replicated application
// architecture of paper §1 as a responsiveness baseline: a single server
// owns the shared state, and every client action round-trips to it — the
// client's own display updates only when the server's echo returns (as in
// shared-X-server systems). DECAF's replicated architecture exists to
// avoid exactly this round-trip.
package centralized

import (
	"sync"

	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Server owns the authoritative state and echoes every update to all
// clients.
type Server struct {
	ep      transport.Endpoint
	clients []vtime.SiteID

	stop sync.Once
	done chan struct{}

	mu    sync.Mutex
	state map[string]any
}

// NewServer creates (and starts) the central server. clients lists every
// client site.
func NewServer(ep transport.Endpoint, clients []vtime.SiteID) *Server {
	s := &Server{
		ep:      ep,
		clients: append([]vtime.SiteID(nil), clients...),
		done:    make(chan struct{}),
		state:   map[string]any{},
	}
	go s.loop()
	return s
}

func (s *Server) loop() {
	defer close(s.done)
	for ev := range s.ep.Events() {
		if ev.Kind != transport.EventMessage {
			continue
		}
		m, ok := ev.Msg.(wire.CenWrite)
		if !ok {
			continue
		}
		s.mu.Lock()
		s.state[m.Name] = m.Value
		s.mu.Unlock()
		echo := wire.CenEcho{Seq: m.Seq, Name: m.Name, Value: m.Value}
		for _, c := range s.clients {
			_ = s.ep.Send(c, vtime.Zero, echo)
		}
	}
}

// Get returns the server's authoritative value.
func (s *Server) Get(name string) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state[name]
}

// Stop shuts the server down.
func (s *Server) Stop() {
	s.stop.Do(func() { _ = s.ep.Close() })
	<-s.done
}

// Client is a GUI instance in the non-replicated architecture: it holds
// no authoritative state and sees its own actions only via server echoes.
type Client struct {
	ep     transport.Endpoint
	server vtime.SiteID

	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	view    map[string]any
	nextSeq uint64
	waiters map[uint64]chan struct{}
	onEcho  func(name string, value any)
}

// NewClient creates (and starts) a client of the central server.
func NewClient(ep transport.Endpoint, server vtime.SiteID) *Client {
	c := &Client{
		ep:      ep,
		server:  server,
		done:    make(chan struct{}),
		view:    map[string]any{},
		waiters: map[uint64]chan struct{}{},
	}
	go c.loop()
	return c
}

func (c *Client) loop() {
	defer close(c.done)
	for ev := range c.ep.Events() {
		if ev.Kind != transport.EventMessage {
			continue
		}
		m, ok := ev.Msg.(wire.CenEcho)
		if !ok {
			continue
		}
		c.mu.Lock()
		c.view[m.Name] = m.Value
		w := c.waiters[m.Seq]
		delete(c.waiters, m.Seq)
		cb := c.onEcho
		c.mu.Unlock()
		if w != nil {
			close(w)
		}
		if cb != nil {
			cb(m.Name, m.Value)
		}
	}
}

// OnEcho registers a callback for every state echo (the client's "view").
func (c *Client) OnEcho(fn func(name string, value any)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEcho = fn
}

// Write sends an update to the server and returns a channel closed when
// the client's own view reflects it (the echo round-trip — 2t).
func (c *Client) Write(name string, value any) <-chan struct{} {
	c.mu.Lock()
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan struct{})
	c.waiters[seq] = ch
	c.mu.Unlock()
	if err := c.ep.Send(c.server, vtime.Zero, wire.CenWrite{Seq: seq, From: c.ep.Site(), Name: name, Value: value}); err != nil {
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
		close(ch)
	}
	return ch
}

// Get returns the client's latest echoed value.
func (c *Client) Get(name string) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view[name]
}

// Stop shuts the client down.
func (c *Client) Stop() {
	c.stopOnce.Do(func() { _ = c.ep.Close() })
	<-c.done
}
