package centralized

import (
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

func setup(t *testing.T, clients int, latency time.Duration) (*Server, []*Client) {
	t.Helper()
	net := transport.NewNetwork(transport.Config{Latency: latency})
	serverID := vtime.SiteID(1)
	var clientIDs []vtime.SiteID
	for i := 0; i < clients; i++ {
		clientIDs = append(clientIDs, vtime.SiteID(i+2))
	}
	sep, err := net.Endpoint(serverID)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sep, clientIDs)
	var cs []*Client
	for _, id := range clientIDs {
		cep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, NewClient(cep, serverID))
	}
	t.Cleanup(func() {
		net.Close()
		srv.Stop()
		for _, c := range cs {
			c.Stop()
		}
	})
	return srv, cs
}

func TestCentralizedEcho(t *testing.T) {
	srv, cs := setup(t, 2, time.Millisecond)
	select {
	case <-cs[0].Write("x", int64(5)):
	case <-time.After(2 * time.Second):
		t.Fatal("echo never arrived")
	}
	if srv.Get("x") != int64(5) {
		t.Fatal("server state not updated")
	}
	if cs[0].Get("x") != int64(5) {
		t.Fatal("writer view not updated")
	}
	// The other client's view also converges.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cs[1].Get("x") == int64(5) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("peer view not updated")
}

func TestCentralizedRoundTripLatency(t *testing.T) {
	// The architecture's defining cost: a client's own action becomes
	// visible to it only after ~2t (paper §1 motivation for replication).
	const lat = 15 * time.Millisecond
	_, cs := setup(t, 1, lat)
	start := time.Now()
	select {
	case <-cs[0].Write("x", int64(1)):
	case <-time.After(2 * time.Second):
		t.Fatal("echo never arrived")
	}
	elapsed := time.Since(start)
	if elapsed < 2*lat {
		t.Fatalf("round trip %v, want >= 2t = %v", elapsed, 2*lat)
	}
	if elapsed > 4*lat {
		t.Fatalf("round trip %v suspiciously slow", elapsed)
	}
}

func TestCentralizedEchoCallback(t *testing.T) {
	_, cs := setup(t, 2, time.Millisecond)
	got := make(chan any, 1)
	cs[1].OnEcho(func(name string, value any) {
		if name == "y" {
			select {
			case got <- value:
			default:
			}
		}
	})
	<-cs[0].Write("y", "hello")
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("echo value = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer echo callback never fired")
	}
}
