package transport

import (
	"testing"

	"decaf/internal/testutil"
)

// TestMain fails the package when a test leaks goroutines — per-peer
// writers, accept loops, and reconnect timers must all stop on Close.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
