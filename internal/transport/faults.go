package transport

import (
	"net"
	"sync"
	"time"

	"decaf/internal/vtime"
)

// Faults is a fault-injection harness shared by both transports. Tests
// and benchmarks attach one to a TCP endpoint (TCPOptions.Faults) or a
// simulated Network (Config.Faults) and then inject faults while the
// system runs:
//
//   - RefuseDials makes the next N dial attempts to a peer fail
//     (connection-refused-style transient fault).
//   - KillConnections abruptly closes every live tracked connection to
//     or from a peer (mid-stream link kill).
//   - DropFrames silently discards the next N outbound frames to a peer
//     (lossy network). On the simulated Network each protocol message is
//     one frame.
//   - DelayFrames adds a fixed delay before every outbound frame (slow
//     network).
//
// All methods are safe for concurrent use, and every hook is safe on a
// nil *Faults, so transport code calls them unconditionally.
type Faults struct {
	mu     sync.Mutex
	refuse map[vtime.SiteID]int                   // guarded by mu
	drop   map[vtime.SiteID]int                   // guarded by mu
	delay  time.Duration                          // guarded by mu
	conns  map[vtime.SiteID]map[net.Conn]struct{} // guarded by mu

	dialsRefused  uint64 // guarded by mu
	framesDropped uint64 // guarded by mu
	killed        uint64 // guarded by mu
}

// NewFaults returns an empty fault harness.
func NewFaults() *Faults {
	return &Faults{
		refuse: map[vtime.SiteID]int{},
		drop:   map[vtime.SiteID]int{},
		conns:  map[vtime.SiteID]map[net.Conn]struct{}{},
	}
}

// RefuseDials makes the next n dial attempts to site fail. n <= 0 clears
// the fault.
func (f *Faults) RefuseDials(site vtime.SiteID, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		delete(f.refuse, site)
		return
	}
	f.refuse[site] = n
}

// DropFrames silently discards the next n outbound frames addressed to
// site. n <= 0 clears the fault.
func (f *Faults) DropFrames(site vtime.SiteID, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		delete(f.drop, site)
		return
	}
	f.drop[site] = n
}

// DelayFrames adds d before every outbound frame (0 clears the fault).
func (f *Faults) DelayFrames(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// KillConnections abruptly closes every live tracked connection
// associated with site and reports how many it closed.
func (f *Faults) KillConnections(site vtime.SiteID) int {
	f.mu.Lock()
	set := f.conns[site]
	delete(f.conns, site)
	conns := make([]net.Conn, 0, len(set))
	for c := range set {
		conns = append(conns, c)
	}
	f.killed += uint64(len(conns))
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// Killed reports how many connections KillConnections has closed.
func (f *Faults) Killed() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// Refused reports how many dial attempts the harness has failed.
func (f *Faults) Refused() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dialsRefused
}

// Dropped reports how many outbound frames the harness has discarded.
func (f *Faults) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.framesDropped
}

// failDial reports whether a dial attempt to site should fail.
func (f *Faults) failDial(site vtime.SiteID) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.refuse[site]
	if n <= 0 {
		return false
	}
	if n == 1 {
		delete(f.refuse, site)
	} else {
		f.refuse[site] = n - 1
	}
	f.dialsRefused++
	return true
}

// dropFrame reports whether one outbound frame to site should be lost.
func (f *Faults) dropFrame(site vtime.SiteID) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.drop[site]
	if n <= 0 {
		return false
	}
	if n == 1 {
		delete(f.drop, site)
	} else {
		f.drop[site] = n - 1
	}
	f.framesDropped++
	return true
}

// frameDelay returns the configured per-frame delay.
func (f *Faults) frameDelay() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay
}

// track registers a live connection associated with site so that
// KillConnections can reach it.
func (f *Faults) track(site vtime.SiteID, c net.Conn) {
	if f == nil || c == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	set := f.conns[site]
	if set == nil {
		set = map[net.Conn]struct{}{}
		f.conns[site] = set
	}
	set[c] = struct{}{}
}

// untrack forgets a connection (it was closed by its owner).
func (f *Faults) untrack(site vtime.SiteID, c net.Conn) {
	if f == nil || c == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if set := f.conns[site]; set != nil {
		delete(set, c)
		if len(set) == 0 {
			delete(f.conns, site)
		}
	}
}
