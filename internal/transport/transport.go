// Package transport carries DECAF protocol messages between sites.
//
// Two implementations are provided:
//
//   - Network, an in-memory simulated network with configurable
//     point-to-point latency, jitter, partitions, and fail-stop site
//     failures. The paper's performance analysis is expressed in
//     multiples of the one-way message latency t (§5.1); the simulated
//     network injects exactly that parameter, which is how the
//     experiments reproduce the paper's latency results.
//
//   - TCP, a real transport using net + encoding/gob, for running
//     collaborating applications as separate OS processes.
//
// Both present the same Endpoint interface and fail-stop failure
// notifications (paper §3.4: "the underlying communication infrastructure
// provides notification of such failures ... as fail-stop failures").
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// EventKind discriminates endpoint events.
type EventKind int

// Endpoint event kinds.
const (
	// EventMessage delivers a protocol message from a peer.
	EventMessage EventKind = iota + 1
	// EventSiteFailed notifies that a peer site failed (fail-stop):
	// no further messages from it will be delivered until it rejoins as
	// a new member. The TCP transport only emits it after its suspicion
	// policy (reconnect backoff budget / downtime window) is exhausted.
	EventSiteFailed
	// EventSiteRecovered notifies that a peer previously reported via
	// EventSiteFailed has come back (it re-established a connection):
	// the suspicion was premature and sends to it will succeed again.
	// The engine uses it to un-suspect the peer; any §3.4 failover
	// already performed stands (the peer rejoins as a new member).
	EventSiteRecovered
)

// Event is something an endpoint receives: a message or a failure /
// recovery notification. Failure and recovery are control events: the
// TCP transport delivers them losslessly (they are never dropped on a
// full event buffer, unlike messages).
type Event struct {
	Kind EventKind
	// From is the sending site (EventMessage).
	From vtime.SiteID
	// SentAt is the sender's Lamport stamp at send time, merged into the
	// receiver's clock (EventMessage).
	SentAt vtime.VT
	// Msg is the protocol message (EventMessage).
	Msg wire.Message
	// Failed is the subject site (EventSiteFailed, EventSiteRecovered).
	Failed vtime.SiteID
}

// Endpoint is one site's attachment to a transport.
type Endpoint interface {
	// Site returns the site this endpoint belongs to.
	Site() vtime.SiteID
	// Send transmits msg to the destination site. sentAt is the sender's
	// current Lamport stamp. Sends to failed or unknown sites return an
	// error; sends lost to partitions are silently dropped (the network
	// gives no feedback, as on a real LAN).
	Send(to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error
	// Events returns the endpoint's delivery channel. The channel is
	// closed when the endpoint itself is closed or its site is killed.
	Events() <-chan Event
	// Close detaches the endpoint.
	Close() error
}

// BatchSender is an optional Endpoint extension: SendBatch transmits
// several messages to one destination with a single transport handoff.
// The engine uses it to coalesce the outbound messages of one event-loop
// batch per peer. Semantics match len(msgs) sequential Send calls:
// per-message fault injection and latency jitter still apply, and FIFO
// delivery order is preserved.
type BatchSender interface {
	SendBatch(to vtime.SiteID, sentAt vtime.VT, msgs []wire.Message) error
}

// Clock abstracts deferred scheduling for the simulated Network. Now
// returns the current time as an offset (monotonic, origin arbitrary);
// AfterFunc schedules fn at Now()+d and returns a cancel. The default
// real-time implementation is WallClock; the deterministic simulation
// harness (internal/sim) injects its virtual event-queue clock so every
// message delay becomes a seeded, replayable schedule decision.
type Clock interface {
	Now() time.Duration
	AfterFunc(d time.Duration, fn func()) (cancel func())
}

// WallClock is the real-time Clock: AfterFunc uses a runtime timer. It
// is also the engine's default retry Scheduler — the engine itself
// constructs no timers (enforced by the decaf-vet timers analyzer), so
// the one real-timer fallback lives here with the transport's other
// timing machinery.
type WallClock struct{}

var wallEpoch = time.Now()

// Now returns the monotonic offset since process start.
func (WallClock) Now() time.Duration { return time.Since(wallEpoch) }

// AfterFunc schedules fn on a real timer.
func (WallClock) AfterFunc(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// ErrSiteDown is returned by Send when the destination site has failed or
// closed its endpoint.
var ErrSiteDown = errors.New("transport: destination site is down")

// ErrUnknownSite is returned by Send when the destination was never
// registered with the transport.
var ErrUnknownSite = errors.New("transport: unknown destination site")

// ---------------------------------------------------------------------------
// In-memory simulated network.
// ---------------------------------------------------------------------------

// Config parameterizes a simulated Network.
type Config struct {
	// Latency is the base one-way point-to-point message latency — the
	// paper's t. Zero means immediate delivery.
	Latency time.Duration
	// Jitter adds a uniformly distributed [0, Jitter) delay per message.
	// FIFO order per (sender, receiver) pair is preserved regardless.
	Jitter time.Duration
	// Seed seeds the jitter source; the default (0) gives a fixed seed
	// so simulations are reproducible.
	Seed int64
	// LatencyFn, when non-nil, overrides Latency per ordered site pair.
	LatencyFn func(from, to vtime.SiteID) time.Duration
	// QueueSize is the per-endpoint delivery buffer (default 4096).
	QueueSize int
	// Faults, when non-nil, injects network faults: DropFrames loses
	// individual messages in flight and DelayFrames slows every message
	// down (each simulated message is one frame). Dial- and
	// connection-level faults have no meaning here and are ignored.
	Faults *Faults
	// Clock, when non-nil, replaces the real-timer delivery pump with
	// scheduled events on the given clock: no link goroutines, no
	// time.Timer sleeps — every delivery is an event the clock's owner
	// fires explicitly. Per-pair FIFO order is still preserved via the
	// due-time clamp. This is how internal/sim makes a whole run a
	// deterministic function of Seed.
	Clock Clock
	// Duplicate, when > 0, re-delivers each message with the given
	// probability after one extra latency draw — a transport-level
	// retransmit arriving out of band. The original copies still arrive
	// in FIFO order; the duplicate is extra and may arrive after newer
	// messages, which the engine's outcome/ dedup bookkeeping must (and
	// does) tolerate. Requires Clock (it exists for the simulation
	// harness; the real-timer path ignores it).
	Duplicate float64
	// OnDeliver, when non-nil, observes every event at the moment the
	// network hands it to the destination endpoint (after latency,
	// including duplicates; dead-endpoint drops included). The
	// simulation harness records its event trace here.
	OnDeliver func(to vtime.SiteID, ev Event)
}

// Network is an in-memory simulated network. Endpoints attach with
// Endpoint; Kill simulates a fail-stop site crash; Partition/Heal simulate
// connectivity loss.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand                    // guarded by mu
	endpoints map[vtime.SiteID]*memEndpoint // guarded by mu
	links     map[linkKey]*memLink          // guarded by mu
	dead      map[vtime.SiteID]bool         // guarded by mu
	blocked   map[linkKey]bool              // guarded by mu; partitioned ordered pairs
	vdue      map[linkKey]time.Duration     // guarded by mu; per-pair FIFO clamp under cfg.Clock
	closed    bool                          // guarded by mu
	wg        sync.WaitGroup
}

type linkKey struct {
	from, to vtime.SiteID
}

// NewNetwork creates a simulated network.
func NewNetwork(cfg Config) *Network {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	return &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: map[vtime.SiteID]*memEndpoint{},
		links:     map[linkKey]*memLink{},
		dead:      map[vtime.SiteID]bool{},
		blocked:   map[linkKey]bool{},
		vdue:      map[linkKey]time.Duration{},
	}
}

// Endpoint attaches site to the network and returns its endpoint.
// Attaching an already attached site returns an error.
func (n *Network) Endpoint(site vtime.SiteID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("transport: network closed")
	}
	if _, ok := n.endpoints[site]; ok {
		return nil, fmt.Errorf("transport: site %s already attached", site)
	}
	ep := &memEndpoint{
		net:    n,
		site:   site,
		events: make(chan Event, n.cfg.QueueSize),
	}
	n.endpoints[site] = ep
	delete(n.dead, site)
	return ep, nil
}

// latency computes the one-way delay for a message from -> to, including
// jitter.
func (n *Network) latency(from, to vtime.SiteID) time.Duration {
	d := n.cfg.Latency
	if n.cfg.LatencyFn != nil {
		d = n.cfg.LatencyFn(from, to)
	}
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// link returns (creating if needed) the FIFO delivery link from -> to.
func (n *Network) link(from, to vtime.SiteID) *memLink {
	key := linkKey{from, to}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[key]; ok {
		return l
	}
	l := &memLink{
		net:  n,
		to:   to,
		ch:   make(chan queuedEvent, 1024),
		stop: make(chan struct{}),
	}
	n.links[key] = l
	n.wg.Add(1)
	go l.run(&n.wg)
	return l
}

// deliver hands an event to the destination endpoint if it is alive.
func (n *Network) deliver(to vtime.SiteID, ev Event) {
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(to, ev)
	}
	n.mu.Lock()
	ep, ok := n.endpoints[to]
	n.mu.Unlock()
	if !ok {
		return
	}
	ep.deliver(ev)
}

// dispatch schedules ev for delivery to `to` after delay, preserving
// per-ordered-pair FIFO order. With a virtual clock configured the
// delivery becomes a clock event (fired by the simulation driver);
// otherwise it goes through the link's real-timer pump goroutine.
func (n *Network) dispatch(from, to vtime.SiteID, ev Event, delay time.Duration) {
	clk := n.cfg.Clock
	if clk == nil {
		n.link(from, to).enqueue(ev, delay)
		return
	}
	key := linkKey{from, to}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	now := clk.Now()
	due := now + delay
	// Clamp to preserve FIFO when jitter would reorder; events at equal
	// due times fire in schedule order, so `due == last` keeps FIFO too.
	if last, ok := n.vdue[key]; ok && due < last {
		due = last
	}
	n.vdue[key] = due
	// Duplicate-within-policy: an extra copy lands one more latency draw
	// later, out of band (it does not advance the FIFO clamp).
	dup := ev.Kind == EventMessage && n.cfg.Duplicate > 0 && n.rng.Float64() < n.cfg.Duplicate
	n.mu.Unlock()

	clk.AfterFunc(due-now, func() { n.deliver(to, ev) })
	if dup {
		clk.AfterFunc(due-now+n.latency(from, to), func() { n.deliver(to, ev) })
	}
}

// send enqueues a message for delivery.
func (n *Network) send(from, to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	n.mu.Lock()
	if n.dead[from] {
		n.mu.Unlock()
		return ErrSiteDown
	}
	if n.dead[to] {
		n.mu.Unlock()
		return ErrSiteDown
	}
	if _, ok := n.endpoints[to]; !ok {
		n.mu.Unlock()
		return ErrUnknownSite
	}
	if n.blocked[linkKey{from, to}] {
		// Partitioned: silently dropped, like a real network.
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()

	if n.cfg.Faults.dropFrame(to) {
		// Injected loss: silently dropped, like a partitioned link.
		return nil
	}
	ev := Event{Kind: EventMessage, From: from, SentAt: sentAt, Msg: msg}
	n.dispatch(from, to, ev, n.latency(from, to)+n.cfg.Faults.frameDelay())
	return nil
}

// sendBatch enqueues a batch of messages for delivery: one pass over
// the link-state checks and one link lookup for the whole batch, with
// per-message fault injection and jitter (FIFO order is preserved by
// the link's due-time clamp).
func (n *Network) sendBatch(from, to vtime.SiteID, sentAt vtime.VT, msgs []wire.Message) error {
	n.mu.Lock()
	if n.dead[from] || n.dead[to] {
		n.mu.Unlock()
		return ErrSiteDown
	}
	if _, ok := n.endpoints[to]; !ok {
		n.mu.Unlock()
		return ErrUnknownSite
	}
	if n.blocked[linkKey{from, to}] {
		// Partitioned: silently dropped, like a real network.
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()

	for _, msg := range msgs {
		if n.cfg.Faults.dropFrame(to) {
			continue // injected loss, per message
		}
		ev := Event{Kind: EventMessage, From: from, SentAt: sentAt, Msg: msg}
		n.dispatch(from, to, ev, n.latency(from, to)+n.cfg.Faults.frameDelay())
	}
	return nil
}

// Kill simulates a fail-stop crash of site: its endpoint stops receiving,
// all its in-flight messages are dropped at delivery time, and every other
// attached site receives an EventSiteFailed notification after one network
// latency (the failure detector's report).
func (n *Network) Kill(site vtime.SiteID) {
	n.mu.Lock()
	if n.dead[site] || n.closed {
		n.mu.Unlock()
		return
	}
	n.dead[site] = true
	ep := n.endpoints[site]
	var others []vtime.SiteID
	for s := range n.endpoints {
		if s != site && !n.dead[s] {
			others = append(others, s)
		}
	}
	n.mu.Unlock()
	// Deterministic notification order: the RNG draws and schedule slots
	// below must not depend on map iteration order.
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })

	if ep != nil {
		ep.kill()
	}
	for _, s := range others {
		ev := Event{Kind: EventSiteFailed, Failed: site}
		n.dispatch(site, s, ev, n.latency(site, s))
	}
}

// Suspect delivers an EventSiteFailed report for site to every other
// live site WITHOUT killing it: the failure detector false-positives on
// a silent partition (a weakly connected peer, DESIGN.md §13). The
// suspected site keeps running and its links stay usable, subject to
// any Partition in effect.
func (n *Network) Suspect(site vtime.SiteID) {
	n.notifyOthers(site, EventSiteFailed)
}

// Unsuspect delivers an EventSiteRecovered report for site to every
// other live site: the suspicion was premature — the peer reconnected.
func (n *Network) Unsuspect(site vtime.SiteID) {
	n.notifyOthers(site, EventSiteRecovered)
}

// notifyOthers fans a control event about site out to every other live
// site, in deterministic ID order (same reasoning as Kill).
func (n *Network) notifyOthers(site vtime.SiteID, kind EventKind) {
	n.mu.Lock()
	if n.dead[site] || n.closed {
		n.mu.Unlock()
		return
	}
	var others []vtime.SiteID
	for s := range n.endpoints {
		if s != site && !n.dead[s] {
			others = append(others, s)
		}
	}
	n.mu.Unlock()
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	for _, s := range others {
		ev := Event{Kind: kind, Failed: site}
		n.dispatch(site, s, ev, n.latency(site, s))
	}
}

// Alive reports whether site is attached and not killed.
func (n *Network) Alive(site vtime.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.endpoints[site]
	return ok && !n.dead[site]
}

// Partition blocks message delivery in both directions between a and b.
// Unlike Kill, no failure notification is generated (a silent partition).
func (n *Network) Partition(a, b vtime.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey{a, b}] = true
	n.blocked[linkKey{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b vtime.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey{a, b})
	delete(n.blocked, linkKey{b, a})
}

// Close shuts the network down: all links stop, all endpoint channels
// close. Safe to call once.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*memLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	eps := make([]*memEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()

	for _, l := range links {
		l.close()
	}
	n.wg.Wait()
	for _, ep := range eps {
		ep.kill()
	}
}

// queuedEvent is an event with its delivery deadline.
type queuedEvent struct {
	ev  Event
	due time.Time
}

// memLink is a FIFO delivery pipe for one ordered site pair. A dedicated
// goroutine sleeps until each message's due time, preserving send order
// even when jitter varies per message.
type memLink struct {
	net  *Network
	to   vtime.SiteID
	ch   chan queuedEvent
	stop chan struct{}

	mu      sync.Mutex
	lastDue time.Time // guarded by mu
	closed  bool      // guarded by mu
}

func (l *memLink) enqueue(ev Event, delay time.Duration) {
	due := time.Now().Add(delay)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	// Clamp to preserve FIFO when jitter would reorder.
	if due.Before(l.lastDue) {
		due = l.lastDue
	}
	l.lastDue = due
	l.mu.Unlock()

	select {
	case l.ch <- queuedEvent{ev: ev, due: due}:
	case <-l.stop:
	}
}

func (l *memLink) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.stop)
}

func (l *memLink) run(wg *sync.WaitGroup) {
	defer wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case q := <-l.ch:
			if wait := time.Until(q.due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-l.stop:
					return
				}
			}
			l.net.deliver(l.to, q.ev)
		case <-l.stop:
			return
		}
	}
}

// memEndpoint is a site's attachment to a Network.
type memEndpoint struct {
	net    *Network
	site   vtime.SiteID
	events chan Event

	mu     sync.Mutex
	closed bool // guarded by mu
}

var (
	_ Endpoint    = (*memEndpoint)(nil)
	_ BatchSender = (*memEndpoint)(nil)
)

func (ep *memEndpoint) Site() vtime.SiteID { return ep.site }

func (ep *memEndpoint) Send(to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrSiteDown
	}
	ep.mu.Unlock()
	return ep.net.send(ep.site, to, sentAt, msg)
}

func (ep *memEndpoint) SendBatch(to vtime.SiteID, sentAt vtime.VT, msgs []wire.Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrSiteDown
	}
	ep.mu.Unlock()
	return ep.net.sendBatch(ep.site, to, sentAt, msgs)
}

func (ep *memEndpoint) Events() <-chan Event { return ep.events }

func (ep *memEndpoint) deliver(ev Event) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	// Blocking send under the lock would deadlock with kill(); the
	// buffer is large and the engine drains continuously, so a full
	// buffer indicates a stuck site — drop, as a real network would.
	select {
	case ep.events <- ev:
	default:
	}
}

func (ep *memEndpoint) kill() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	ep.closed = true
	close(ep.events)
}

func (ep *memEndpoint) Close() error {
	ep.net.Kill(ep.site)
	return nil
}
