package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"decaf/internal/vtime"
	"decaf/internal/wire"
)

func msg(n uint64) wire.Message {
	return wire.Outcome{TxnVT: vtime.VT{Time: n, Site: 1}, Committed: true}
}

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) Event {
	t.Helper()
	select {
	case ev, ok := <-ep.Events():
		if !ok {
			t.Fatal("events channel closed")
		}
		return ev
	case <-time.After(timeout):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}

func TestNetworkBasicDelivery(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}

	sent := vtime.VT{Time: 7, Site: 1}
	if err := a.Send(2, sent, msg(1)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, b, time.Second)
	if ev.Kind != EventMessage || ev.From != 1 || ev.SentAt != sent {
		t.Fatalf("event = %+v", ev)
	}
	if out, ok := ev.Msg.(wire.Outcome); !ok || out.TxnVT.Time != 1 {
		t.Fatalf("msg = %#v", ev.Msg)
	}
}

func TestNetworkDuplicateAttach(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	if _, err := n.Endpoint(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint(1); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestNetworkUnknownDestination(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Endpoint(1)
	if err := a.Send(99, vtime.Zero, msg(1)); err != ErrUnknownSite {
		t.Fatalf("err = %v, want ErrUnknownSite", err)
	}
}

func TestNetworkFIFOPerLink(t *testing.T) {
	// Heavy jitter must not reorder messages on a single link.
	n := NewNetwork(Config{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 42})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)

	const count = 50
	for i := uint64(0); i < count; i++ {
		if err := a.Send(2, vtime.Zero, msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		ev := recvOne(t, b, 2*time.Second)
		got := ev.Msg.(wire.Outcome).TxnVT.Time
		if got != i {
			t.Fatalf("message %d arrived out of order (got %d)", i, got)
		}
	}
}

func TestNetworkLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := NewNetwork(Config{Latency: lat})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)

	start := time.Now()
	if err := a.Send(2, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Fatalf("delivered in %v, want >= %v", elapsed, lat)
	}
	if elapsed > 10*lat {
		t.Fatalf("delivered in %v, suspiciously slow for latency %v", elapsed, lat)
	}
}

func TestNetworkLatencyFn(t *testing.T) {
	n := NewNetwork(Config{
		Latency: time.Hour, // would hang if used
		LatencyFn: func(from, to vtime.SiteID) time.Duration {
			return time.Millisecond
		},
	})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	if err := a.Send(2, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
}

func TestNetworkKill(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	c, _ := n.Endpoint(3)

	n.Kill(3)

	// Survivors are notified.
	for _, ep := range []Endpoint{a, b} {
		ev := recvOne(t, ep, time.Second)
		if ev.Kind != EventSiteFailed || ev.Failed != 3 {
			t.Fatalf("event = %+v, want SiteFailed(3)", ev)
		}
	}
	// Sends to the dead site fail.
	if err := a.Send(3, vtime.Zero, msg(1)); err != ErrSiteDown {
		t.Fatalf("send to dead site: err = %v, want ErrSiteDown", err)
	}
	// The dead site's event channel closes.
	select {
	case _, ok := <-c.Events():
		if ok {
			t.Fatal("dead site received an event")
		}
	case <-time.After(time.Second):
		t.Fatal("dead site's channel not closed")
	}
	if n.Alive(3) {
		t.Fatal("killed site reported alive")
	}
	if !n.Alive(1) {
		t.Fatal("live site reported dead")
	}
}

func TestNetworkKillOrderingBeforeFailureNotice(t *testing.T) {
	// Messages sent before the kill must be delivered before the failure
	// notification on the same link (fail-stop semantics).
	n := NewNetwork(Config{Latency: 5 * time.Millisecond})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	_ = b

	if err := a.Send(2, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	n.Kill(1)

	ev1 := recvOne(t, b, time.Second)
	if ev1.Kind != EventMessage {
		t.Fatalf("first event = %+v, want the message", ev1)
	}
	ev2 := recvOne(t, b, time.Second)
	if ev2.Kind != EventSiteFailed || ev2.Failed != 1 {
		t.Fatalf("second event = %+v, want SiteFailed(1)", ev2)
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)

	n.Partition(1, 2)
	if err := a.Send(2, vtime.Zero, msg(1)); err != nil {
		t.Fatalf("partitioned send should silently drop, got %v", err)
	}
	select {
	case ev := <-b.Events():
		t.Fatalf("received %+v across partition", ev)
	case <-time.After(50 * time.Millisecond):
	}

	n.Heal(1, 2)
	if err := a.Send(2, vtime.Zero, msg(2)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, b, time.Second)
	if ev.Msg.(wire.Outcome).TxnVT.Time != 2 {
		t.Fatalf("got %+v after heal", ev)
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := NewNetwork(Config{})
	a, _ := n.Endpoint(1)
	b, _ := n.Endpoint(2)
	_ = a.Send(2, vtime.Zero, msg(1))
	_ = b
	n.Close()
	n.Close()
	if _, err := n.Endpoint(5); err == nil {
		t.Fatal("attach after close succeeded")
	}
}

func TestTCPBasicExchange(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	peersB := map[vtime.SiteID]string{1: a.Addr().String()}
	b, err := ListenTCP(2, "127.0.0.1:0", peersB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sent := vtime.VT{Time: 3, Site: 2}
	if err := b.Send(1, sent, msg(11)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, a, 2*time.Second)
	if ev.From != 2 || ev.SentAt != sent {
		t.Fatalf("event = %+v", ev)
	}
	if out := ev.Msg.(wire.Outcome); out.TxnVT.Time != 11 {
		t.Fatalf("msg = %#v", ev.Msg)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Give a its peer book after the fact: a dials using b's address.
	a.SetPeerAddr(2, b.Addr().String())

	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	if err := a.Send(2, vtime.Zero, msg(2)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, b, 2*time.Second)
	if ev.Msg.(wire.Outcome).TxnVT.Time != 2 {
		t.Fatalf("got %+v", ev)
	}
}

func TestTCPFIFO(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const count = 100
	for i := uint64(0); i < count; i++ {
		if err := b.Send(1, vtime.Zero, msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		ev := recvOne(t, a, 2*time.Second)
		if got := ev.Msg.(wire.Outcome).TxnVT.Time; got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestTCPPeerFailureNotification(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}

	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)

	// Abrupt close of b: a's read loop errors and reports failure.
	b.Close()
	ev := recvOne(t, a, 2*time.Second)
	if ev.Kind != EventSiteFailed || ev.Failed != 2 {
		t.Fatalf("event = %+v, want SiteFailed(2)", ev)
	}
}

func TestTCPSendToUnknown(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(9, vtime.Zero, msg(1)); err != ErrUnknownSite {
		t.Fatalf("err = %v, want ErrUnknownSite", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Batched-sender tests (binary codec + per-peer writer goroutine).
// ---------------------------------------------------------------------------

func TestTCPBatchedBurstFIFO(t *testing.T) {
	// A burst far larger than any single frame's batch limit must arrive
	// complete and in order: envelopes queued during a flush coalesce
	// into subsequent frames.
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, TCPOptions{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPOptions(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()}, TCPOptions{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const count = 2000
	for i := uint64(0); i < count; i++ {
		if err := b.Send(1, vtime.VT{Time: i, Site: 2}, msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		ev := recvOne(t, a, 5*time.Second)
		if got := ev.Msg.(wire.Outcome).TxnVT.Time; got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
		if ev.SentAt.Time != i {
			t.Fatalf("message %d carried SentAt %v", i, ev.SentAt)
		}
	}
}

func TestTCPSendDoesNotBlockOnSlowPeer(t *testing.T) {
	// A peer that accepts the connection but never reads must not block
	// the sender's goroutine: once the socket and queue fill, Send drops
	// silently (live-peer overflow policy) and returns promptly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // held open, never read
		}
	}()

	a, err := ListenTCPOptions(1, "127.0.0.1:0",
		map[vtime.SiteID]string{2: ln.Addr().String()},
		TCPOptions{QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	payload := wire.Confirm{TxnVT: vtime.VT{Time: 1, Site: 1}, Reason: string(make([]byte, 16<<10))}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far more data than the socket buffers plus queue can hold.
		for i := 0; i < 5000; i++ {
			if err := a.Send(2, vtime.Zero, payload); err != nil {
				return // ErrSiteDown also proves we did not block
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a peer that never reads")
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

func TestTCPOverflowOnDeadPeer(t *testing.T) {
	// Once a peer has failed, sends report ErrSiteDown rather than
	// silently dropping.
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, TCPOptions{QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	a.SetPeerAddr(2, b.Addr().String())

	b.Close()
	ev := recvOne(t, a, 2*time.Second)
	if ev.Kind != EventSiteFailed || ev.Failed != 2 {
		t.Fatalf("event = %+v, want SiteFailed(2)", ev)
	}
	if err := a.Send(2, vtime.Zero, msg(2)); err != ErrSiteDown {
		t.Fatalf("send to dead peer: err = %v, want ErrSiteDown", err)
	}
}

func TestTCPLegacyInterop(t *testing.T) {
	// The legacy gob protocol (measurement baseline) still works when
	// both ends select it.
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, TCPOptions{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPOptions(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()}, TCPOptions{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(2, b.Addr().String())

	if err := b.Send(1, vtime.VT{Time: 5, Site: 2}, msg(11)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, a, 2*time.Second)
	if ev.From != 2 || ev.Msg.(wire.Outcome).TxnVT.Time != 11 {
		t.Fatalf("event = %+v", ev)
	}
	if err := a.Send(2, vtime.Zero, msg(12)); err != nil {
		t.Fatal(err)
	}
	ev = recvOne(t, b, 2*time.Second)
	if ev.Msg.(wire.Outcome).TxnVT.Time != 12 {
		t.Fatalf("reply = %+v", ev)
	}
}

func TestTCPBatchedConcurrentSenders(t *testing.T) {
	// Many goroutines sending to the same peer: all messages arrive,
	// none duplicated, and the endpoint survives the race detector.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.Send(1, vtime.Zero, msg(uint64(w*per+i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for i := 0; i < workers*per; i++ {
		ev := recvOne(t, a, 5*time.Second)
		n := ev.Msg.(wire.Outcome).TxnVT.Time
		if seen[n] {
			t.Fatalf("message %d duplicated", n)
		}
		seen[n] = true
	}
}
