package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// The TCP transport frames the binary wire codec:
//
//	frame   := u32 big-endian payload length | payload
//	payload := envelope+                      (one flush = one batch)
//	envelope:= from uvarint | sentAt.Time uvarint | sentAt.Site uvarint
//	           | message (self-delimiting, wire.AppendMessage)
//
// Each peer has a bounded outbound queue drained by a dedicated writer
// goroutine: Send never blocks on a socket write, and every envelope
// queued while a flush was in progress rides the next frame, so N queued
// protocol messages cost one syscall. The queue-overflow policy matches
// the simulated network's bounded delivery buffer: overflow on a live
// peer drops the message silently (as a congested network would);
// overflow on a failed peer reports ErrSiteDown.

// maxFrame bounds a frame payload: a corrupt or hostile length prefix
// must not provoke an unbounded allocation.
const maxFrame = 64 << 20

// defaultQueueSize is the per-peer outbound queue bound, mirroring the
// simulated network's default QueueSize.
const defaultQueueSize = 4096

// defaultMaxBatch bounds how many envelopes coalesce into one frame.
const defaultMaxBatch = 512

// dialTimeout bounds the writer goroutine's connection attempt.
const dialTimeout = 10 * time.Second

// TCPOptions tune a TCP endpoint. The zero value gives the defaults.
type TCPOptions struct {
	// QueueSize bounds each peer's outbound queue (default 4096).
	QueueSize int
	// MaxBatch bounds envelopes per flushed frame (default 512).
	MaxBatch int
	// Legacy selects the pre-batching protocol: gob encoding with a
	// synchronous blocking write per Send under a per-peer mutex. It is
	// retained as a measurement baseline and differential oracle for the
	// benchmarks; both ends of a connection must agree on the mode.
	Legacy bool
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.QueueSize <= 0 {
		o.QueueSize = defaultQueueSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultMaxBatch
	}
	return o
}

// tcpEnvelope is the legacy gob-framed envelope.
type tcpEnvelope struct {
	From   vtime.SiteID
	SentAt vtime.VT
	Msg    wire.Message
}

// tcpOut is one queued outbound message.
type tcpOut struct {
	sentAt vtime.VT
	msg    wire.Message
}

// TCP is a real transport over TCP. Every site listens on its own address
// and lazily dials peers from a static address book. A connection error
// to a peer surfaces as an EventSiteFailed for that peer (fail-stop
// presentation, paper §3.4).
type TCP struct {
	site   vtime.SiteID
	ln     net.Listener
	peers  map[vtime.SiteID]string
	events chan Event
	opts   TCPOptions

	mu      sync.Mutex
	conns   map[vtime.SiteID]*tcpPeer
	inbound []net.Conn
	failed  map[vtime.SiteID]bool
	closed  bool
	wg      sync.WaitGroup
}

var _ Endpoint = (*TCP)(nil)

// tcpPeer is the outbound side of one peer: a bounded queue drained by a
// writer goroutine (batched mode), or a mutex-guarded gob encoder
// (legacy mode).
type tcpPeer struct {
	t    *TCP
	site vtime.SiteID
	addr string // dial address; empty when adopted from an inbound conn

	queue    chan tcpOut
	stop     chan struct{}
	stopOnce sync.Once

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder // legacy mode only
}

// ListenTCP starts a TCP endpoint for site on addr with default options.
// peers maps every other site to its dialable address. The returned
// endpoint is ready to send and receive.
func ListenTCP(site vtime.SiteID, addr string, peers map[vtime.SiteID]string) (*TCP, error) {
	return ListenTCPOptions(site, addr, peers, TCPOptions{})
}

// ListenTCPOptions is ListenTCP with explicit options.
func ListenTCPOptions(site vtime.SiteID, addr string, peers map[vtime.SiteID]string, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		site:   site,
		ln:     ln,
		peers:  peers,
		events: make(chan Event, 4096),
		opts:   opts.withDefaults(),
		conns:  map[vtime.SiteID]*tcpPeer{},
		failed: map[vtime.SiteID]bool{},
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Site implements Endpoint.
func (t *TCP) Site() vtime.SiteID { return t.site }

// Events implements Endpoint.
func (t *TCP) Events() <-chan Event { return t.events }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound = append(t.inbound, conn)
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// framePool recycles frame payload buffers across writer goroutines and
// read loops.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// readLoop decodes frames from one connection until error. The first
// envelope identifies the peer; the connection is then also registered
// for outbound sends, so a site can reply to peers that are not in its
// static address book (invitees dial the inviter; replies reuse the same
// connection).
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var from vtime.SiteID
	seen := false
	fail := func() {
		if seen {
			t.reportFailure(from)
		}
	}
	if t.opts.Legacy {
		dec := gob.NewDecoder(conn)
		for {
			var env tcpEnvelope
			if err := dec.Decode(&env); err != nil {
				fail()
				return
			}
			if !seen {
				from, seen = env.From, true
				t.adoptInbound(from, conn)
			}
			t.deliver(Event{Kind: EventMessage, From: env.From, SentAt: env.SentAt, Msg: env.Msg})
		}
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [4]byte
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			fail()
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			fail()
			return
		}
		if cap(*bufp) < int(n) {
			*bufp = make([]byte, n)
		}
		payload := (*bufp)[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			fail()
			return
		}
		rest := payload
		for len(rest) > 0 {
			envFrom, sentAt, msg, used, err := decodeEnvelope(rest)
			if err != nil {
				fail()
				return
			}
			rest = rest[used:]
			if !seen {
				from, seen = envFrom, true
				t.adoptInbound(from, conn)
			}
			t.deliver(Event{Kind: EventMessage, From: envFrom, SentAt: sentAt, Msg: msg})
		}
	}
}

// appendEnvelope encodes one envelope onto the frame buffer.
func appendEnvelope(b []byte, from vtime.SiteID, sentAt vtime.VT, msg wire.Message) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(from))
	b = binary.AppendUvarint(b, sentAt.Time)
	b = binary.AppendUvarint(b, uint64(sentAt.Site))
	return wire.AppendMessage(b, msg)
}

// decodeEnvelope decodes one envelope from the front of b.
func decodeEnvelope(b []byte) (from vtime.SiteID, sentAt vtime.VT, msg wire.Message, used int, err error) {
	off := 0
	next := func() uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			err = errors.New("transport: truncated envelope")
			return 0
		}
		off += n
		return v
	}
	from = vtime.SiteID(next())
	sentAt.Time = next()
	sentAt.Site = vtime.SiteID(next())
	if err != nil {
		return 0, vtime.VT{}, nil, 0, err
	}
	msg, n, err := wire.DecodeMessage(b[off:])
	if err != nil {
		return 0, vtime.VT{}, nil, 0, err
	}
	return from, sentAt, msg, off + n, nil
}

// adoptInbound registers an inbound connection for outbound use when no
// peer record exists yet.
func (t *TCP) adoptInbound(from vtime.SiteID, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.failed[from] {
		return
	}
	if _, ok := t.conns[from]; ok {
		return
	}
	p := t.newPeer(from, "")
	p.conn = conn
	if t.opts.Legacy {
		p.enc = gob.NewEncoder(conn)
	}
	t.conns[from] = p
	if !t.opts.Legacy {
		t.wg.Add(1)
		go p.writeLoop()
	}
}

func (t *TCP) newPeer(site vtime.SiteID, addr string) *tcpPeer {
	return &tcpPeer{
		t:     t,
		site:  site,
		addr:  addr,
		queue: make(chan tcpOut, t.opts.QueueSize),
		stop:  make(chan struct{}),
	}
}

func (t *TCP) deliver(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	select {
	case t.events <- ev:
	default: // receiver stuck; drop as a real network would
	}
}

// reportFailure emits a single EventSiteFailed per peer and tears down
// its sender.
func (t *TCP) reportFailure(site vtime.SiteID) {
	t.mu.Lock()
	if t.closed || t.failed[site] {
		t.mu.Unlock()
		return
	}
	t.failed[site] = true
	p, ok := t.conns[site]
	if ok {
		delete(t.conns, site)
	}
	t.mu.Unlock()
	if ok {
		p.shutdown()
	}
	t.deliver(Event{Kind: EventSiteFailed, Failed: site})
}

// shutdown stops the peer's writer and closes its connection.
func (p *tcpPeer) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// peerFor returns (creating if necessary) the sender record for site.
// No dialing happens on the caller's goroutine; the writer goroutine
// establishes the connection.
func (t *TCP) peerFor(site vtime.SiteID) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.failed[site] {
		return nil, ErrSiteDown
	}
	if p, ok := t.conns[site]; ok {
		return p, nil
	}
	addr, ok := t.peers[site]
	if !ok {
		return nil, ErrUnknownSite
	}
	p := t.newPeer(site, addr)
	t.conns[site] = p
	if !t.opts.Legacy {
		t.wg.Add(1)
		go p.writeLoop()
	}
	return p, nil
}

// Send implements Endpoint. In batched mode it only enqueues: the
// caller's goroutine never blocks on a dial or a socket write.
func (t *TCP) Send(to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	p, err := t.peerFor(to)
	if err != nil {
		return err
	}
	if t.opts.Legacy {
		return t.sendLegacy(p, to, sentAt, msg)
	}
	select {
	case <-p.stop:
		return ErrSiteDown
	case p.queue <- tcpOut{sentAt: sentAt, msg: msg}:
		return nil
	default:
	}
	// Queue full. A dead peer (writer already stopped) is an error; a
	// live but congested one drops silently, matching the simulated
	// network's bounded-buffer semantics.
	select {
	case <-p.stop:
		return ErrSiteDown
	default:
		return nil
	}
}

// sendLegacy is the pre-batching path: dial if needed, then a blocking
// gob encode straight onto the socket under the peer mutex.
func (t *TCP) sendLegacy(p *tcpPeer, to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	p.mu.Lock()
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", p.addr, dialTimeout)
		if err != nil {
			p.mu.Unlock()
			t.reportFailure(to)
			return fmt.Errorf("transport: dial %s: %w", p.addr, errors.Join(ErrSiteDown, err))
		}
		p.conn = conn
		p.enc = gob.NewEncoder(conn)
		t.mu.Lock()
		closed := t.closed
		if !closed {
			t.wg.Add(1)
		}
		t.mu.Unlock()
		if closed {
			p.mu.Unlock()
			conn.Close()
			return ErrSiteDown
		}
		go t.readLoop(conn)
	}
	err := p.enc.Encode(tcpEnvelope{From: t.site, SentAt: sentAt, Msg: msg})
	p.mu.Unlock()
	if err != nil {
		t.reportFailure(to)
		return fmt.Errorf("transport: send to %s: %w", to, errors.Join(ErrSiteDown, err))
	}
	return nil
}

// resolveConn returns the peer's connection, dialing it if the record was
// created by Send rather than adopted from an inbound connection. Returns
// nil after reporting failure when no connection can be established.
func (p *tcpPeer) resolveConn() net.Conn {
	p.mu.Lock()
	if c := p.conn; c != nil {
		p.mu.Unlock()
		return c
	}
	addr := p.addr
	p.mu.Unlock()
	if addr == "" {
		p.t.reportFailure(p.site)
		return nil
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		p.t.reportFailure(p.site)
		return nil
	}
	p.mu.Lock()
	select {
	case <-p.stop:
		p.mu.Unlock()
		conn.Close()
		return nil
	default:
	}
	p.conn = conn
	p.mu.Unlock()

	p.t.mu.Lock()
	closed := p.t.closed
	if !closed {
		p.t.wg.Add(1)
	}
	p.t.mu.Unlock()
	if closed {
		conn.Close()
		return nil
	}
	// Read replies arriving over the outbound connection (peers answer
	// on the connection the request came in on).
	go p.t.readLoop(conn)
	return conn
}

// writeLoop drains the peer queue into batched frames: every envelope
// queued while a flush was in progress is coalesced into the next frame.
func (p *tcpPeer) writeLoop() {
	defer p.t.wg.Done()
	conn := p.resolveConn()
	if conn == nil {
		return
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	var hdr [4]byte
	for {
		var first tcpOut
		select {
		case first = <-p.queue:
		case <-p.stop:
			return
		}
		frame := (*bufp)[:0]
		frame, err := appendEnvelope(frame, p.t.site, first.sentAt, first.msg)
		if err != nil {
			// Unencodable message: drop it, keep the link up.
			frame = frame[:0]
		}
		n := 1
	batch:
		for n < p.t.opts.MaxBatch {
			select {
			case e := <-p.queue:
				next, err := appendEnvelope(frame, p.t.site, e.sentAt, e.msg)
				if err == nil {
					frame = next
				}
				n++
			default:
				break batch
			}
		}
		*bufp = frame[:0] // retain any growth for reuse
		if len(frame) == 0 {
			continue
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
		if _, err := bw.Write(hdr[:]); err != nil {
			p.t.reportFailure(p.site)
			return
		}
		if _, err := bw.Write(frame); err != nil {
			p.t.reportFailure(p.site)
			return
		}
		if err := bw.Flush(); err != nil {
			p.t.reportFailure(p.site)
			return
		}
	}
}

// Close implements Endpoint: stops the listener, closes all connections,
// and closes the events channel after all loops exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpPeer, 0, len(t.conns))
	for _, p := range t.conns {
		conns = append(conns, p)
	}
	t.conns = map[vtime.SiteID]*tcpPeer{}
	inbound := t.inbound
	t.inbound = nil
	t.mu.Unlock()

	err := t.ln.Close()
	for _, p := range conns {
		p.shutdown()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()

	t.mu.Lock()
	close(t.events)
	t.mu.Unlock()
	return err
}
