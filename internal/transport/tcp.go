package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"decaf/internal/obs"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// The TCP transport frames the binary wire codec:
//
//	frame   := u32 big-endian payload length | payload
//	payload := kind byte | body          (empty payload = keepalive probe)
//	hello   := 0x01 | site uvarint | incarnation uvarint   (first frame)
//	data    := 0x02 | firstSeq uvarint | envelope+
//	ack     := 0x03 | incarnation uvarint | cumulative seq uvarint
//	envelope:= from uvarint | sentAt.Time uvarint | sentAt.Site uvarint
//	           | message (self-delimiting, wire.AppendMessage)
//
// Each peer has a bounded outbound queue drained by a dedicated writer
// goroutine: Send never blocks on a socket write, and every envelope
// queued while a flush was in progress rides the next frame, so N queued
// protocol messages cost one syscall.
//
// Resilience. A connection error does not declare the peer dead: the
// writer goroutine redials with exponential backoff + jitter (or waits
// for the peer to dial back in) while accepted envelopes stay queued.
// Envelopes are sequenced per peer and retained until the receiver acks
// them, so everything unacknowledged is retransmitted on the new
// connection and the receiver deduplicates by sequence number — a link
// flap loses nothing and duplicates nothing. Sequence numbers are scoped
// to a peer-session incarnation (a random ID drawn whenever a peer
// record is created, announced in the hello, and echoed in acks), so
// both a peer process restart and a locally recreated sender — a peer
// declared failed whose record is rebuilt on recovery — reset the
// remote's dedup floor instead of silently colliding with the previous
// session's sequences, and a stale ack from a previous incarnation
// cannot prune undelivered envelopes. Only when the configurable
// suspicion policy is exhausted (dial-attempt budget spent or the
// downtime window passed) does the endpoint emit EventSiteFailed, and if
// the peer later reconnects it emits EventSiteRecovered. Control events
// (failure/recovery) are delivered losslessly; message events may still
// be dropped when the receiver is stuck with a full event buffer, as on
// a congested network.

// maxFrame bounds a frame payload: a corrupt or hostile length prefix
// must not provoke an unbounded allocation.
const maxFrame = 64 << 20

// maxDataBytes bounds the encoded envelope bytes coalesced into one
// data frame, leaving headroom for the kind byte and firstSeq varint so
// the payload never reaches the receiver's maxFrame kill threshold.
const maxDataBytes = maxFrame - 16

// defaultQueueSize is the per-peer outbound queue bound, mirroring the
// simulated network's default QueueSize.
const defaultQueueSize = 4096

// defaultMaxBatch bounds how many envelopes coalesce into one frame.
const defaultMaxBatch = 512

// defaultRetainLimit bounds the per-peer retransmit window (encoded
// envelopes held until acked). It also caps how many envelopes can be in
// flight before the writer must wait for an ack, so it is sized well
// above QueueSize to keep the pipe full at loopback message rates.
const defaultRetainLimit = 32768

// dialTimeout bounds a single connection attempt.
const dialTimeout = 10 * time.Second

// defaultWriteTimeout bounds one frame flush; a peer that accepted the
// connection but stopped reading looks like a broken link after this.
const defaultWriteTimeout = 10 * time.Second

// Frame payload kinds (batched protocol only).
const (
	frameHello byte = 0x01
	frameData  byte = 0x02
	frameAck   byte = 0x03
)

// SuspicionPolicy controls when a run of connection trouble with a peer
// escalates into an EventSiteFailed (the paper's §3.4 fail-stop verdict).
// Until then the writer keeps redialing with exponential backoff and the
// peer's accepted envelopes stay queued. For every field, zero selects
// the default and a negative value disables that bound.
type SuspicionPolicy struct {
	// MaxAttempts is the dial-attempt budget per outage: after this many
	// consecutive failed dials the peer is declared failed (default 6;
	// negative: unlimited). It does not apply to peers with no dialable
	// address (adopted inbound connections), which are governed solely
	// by Window.
	MaxAttempts int
	// Window is the maximum continuous downtime before the peer is
	// declared failed (default 1s; negative: unlimited).
	Window time.Duration
	// BaseDelay is the first reconnect backoff (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 400ms).
	MaxDelay time.Duration
}

func (p SuspicionPolicy) withDefaults() SuspicionPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 6
	}
	if p.Window == 0 {
		p.Window = time.Second
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 400 * time.Millisecond
	}
	return p
}

// backoff returns the jittered delay before dial attempt attempt+1.
func (p SuspicionPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Uniform jitter in [d/2, d] decorrelates reconnect storms.
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int63n(int64(half)+1))
	}
	return d
}

// TCPOptions tune a TCP endpoint. The zero value gives the defaults.
type TCPOptions struct {
	// QueueSize bounds each peer's outbound queue (default 4096).
	QueueSize int
	// RetainLimit bounds each peer's unacknowledged retransmit window —
	// envelopes stay encoded in memory until the peer acks them, and the
	// writer stops pulling from the queue when the window is full
	// (default 32768, which also sets the max envelopes in flight).
	RetainLimit int
	// MaxBatch bounds envelopes per flushed frame (default 512).
	MaxBatch int
	// Suspicion controls reconnect backoff and failure escalation.
	Suspicion SuspicionPolicy
	// ProbeInterval, when positive, makes each peer writer send an empty
	// keepalive frame after that much idle time, so a dead link is
	// noticed (and the suspicion clock started) without waiting for the
	// next protocol message. 0 disables probing.
	ProbeInterval time.Duration
	// AckTimeout bounds how long a writer sits on unacknowledged
	// envelopes before presuming the connection silently died (a kill
	// can land after a flush reached the socket buffer but before the
	// peer read it, leaving no error on either side) and reconnecting to
	// retransmit (default 1s; negative: never).
	AckTimeout time.Duration
	// WriteTimeout bounds one frame flush (default 10s; negative: none).
	WriteTimeout time.Duration
	// Faults, when non-nil, injects faults for tests and benchmarks:
	// refused dials, killed connections, dropped or delayed frames.
	Faults *Faults
	// Legacy selects the pre-batching protocol: gob encoding with a
	// synchronous blocking write per Send under a per-peer mutex, and
	// the original first-error fail-stop verdict (no reconnect). It is
	// retained as a measurement baseline and differential oracle for the
	// benchmarks; both ends of a connection must agree on the mode.
	Legacy bool
	// Observer receives the endpoint's resilience counters and debug
	// state. Pass the same Observer as the site's engine so one scrape
	// covers both layers. nil selects obs.Nop() (counters still back
	// Stats; no debug exposition).
	Observer *obs.Observer
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.QueueSize <= 0 {
		o.QueueSize = defaultQueueSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultMaxBatch
	}
	if o.RetainLimit <= 0 {
		o.RetainLimit = defaultRetainLimit
	}
	if o.RetainLimit < o.MaxBatch {
		o.RetainLimit = o.MaxBatch
	}
	o.Suspicion = o.Suspicion.withDefaults()
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.AckTimeout == 0 {
		o.AckTimeout = time.Second
	}
	return o
}

// TCPStats is a snapshot of an endpoint's resilience counters.
type TCPStats struct {
	// MessagesDropped counts inbound message events dropped because the
	// receiver's event buffer was full (control events are never
	// dropped).
	MessagesDropped uint64
	// SendQueueDrops counts envelopes Send dropped because a live peer's
	// outbound queue was full (congestion shedding).
	SendQueueDrops uint64
	// Unencodable counts envelopes dropped because the message could not
	// be encoded.
	Unencodable uint64
	// Abandoned counts accepted envelopes finally discarded when a
	// peer's suspicion budget ran out and it was declared failed.
	Abandoned uint64
	// Reconnects counts connections re-established to previously
	// connected peers.
	Reconnects uint64
	// Retransmits counts unacknowledged envelopes re-sent after a
	// reconnect.
	Retransmits uint64
	// Keepalives counts idle-probe frames sent.
	Keepalives uint64
	// FailureEvents and RecoveryEvents count emitted control events.
	FailureEvents  uint64
	RecoveryEvents uint64
}

// tcpStatCounters holds the endpoint's registered obs counter handles
// (lock-free atomics); TCPStats is a thin snapshot over them.
type tcpStatCounters struct {
	messagesDropped *obs.Counter
	sendQueueDrops  *obs.Counter
	unencodable     *obs.Counter
	abandoned       *obs.Counter
	reconnects      *obs.Counter
	retransmits     *obs.Counter
	keepalives      *obs.Counter
	failureEvents   *obs.Counter
	recoveryEvents  *obs.Counter
}

// newTCPMetrics registers (or fetches) the transport's counters on reg.
func newTCPMetrics(reg *obs.Registry) tcpStatCounters {
	return tcpStatCounters{
		messagesDropped: reg.Counter("decaf_transport_messages_dropped_total", "inbound message events dropped on a full event buffer"),
		sendQueueDrops:  reg.Counter("decaf_transport_send_queue_drops_total", "envelopes dropped on a full live-peer outbound queue"),
		unencodable:     reg.Counter("decaf_transport_unencodable_total", "envelopes dropped because the message could not be encoded"),
		abandoned:       reg.Counter("decaf_transport_abandoned_total", "accepted envelopes discarded when a peer was declared failed"),
		reconnects:      reg.Counter("decaf_transport_reconnects_total", "connections re-established to previously connected peers"),
		retransmits:     reg.Counter("decaf_transport_retransmits_total", "unacknowledged envelopes re-sent after a reconnect"),
		keepalives:      reg.Counter("decaf_transport_keepalives_total", "idle-probe frames sent"),
		failureEvents:   reg.Counter("decaf_transport_failure_events_total", "EventSiteFailed control events emitted"),
		recoveryEvents:  reg.Counter("decaf_transport_recovery_events_total", "EventSiteRecovered control events emitted"),
	}
}

// tcpEnvelope is the legacy gob-framed envelope.
type tcpEnvelope struct {
	From   vtime.SiteID
	SentAt vtime.VT
	Msg    wire.Message
}

// tcpOut is one queued outbound message.
type tcpOut struct {
	sentAt vtime.VT
	msg    wire.Message
}

// outRec is one sequenced, encoded envelope retained until acked.
type outRec struct {
	seq  uint64
	data []byte
}

// TCP is a real transport over TCP. Every site listens on its own address
// and lazily dials peers from a static address book. Transient connection
// errors are healed by per-peer reconnect; only an exhausted suspicion
// policy surfaces as EventSiteFailed (fail-stop presentation, paper
// §3.4), and a failed peer that comes back surfaces as
// EventSiteRecovered.
type TCP struct {
	site   vtime.SiteID
	ln     net.Listener
	events chan Event
	opts   TCPOptions
	obs    *obs.Observer
	stats  tcpStatCounters
	stopCh chan struct{}

	mu      sync.Mutex
	peers   map[vtime.SiteID]string   // guarded by mu
	conns   map[vtime.SiteID]*tcpPeer // guarded by mu
	inbound []net.Conn                // guarded by mu
	failed  map[vtime.SiteID]bool     // guarded by mu
	closed  bool                      // guarded by mu
	wg      sync.WaitGroup

	// ctrlQ holds pending control events (failure/recovery); a dedicated
	// pump goroutine delivers them with a blocking send so they are
	// never lost to a full event buffer.
	ctrlMu   sync.Mutex
	ctrlQ    []Event // guarded by ctrlMu
	ctrlKick chan struct{}
}

var _ Endpoint = (*TCP)(nil)

// tcpPeer is the outbound side of one peer: a bounded queue drained by a
// writer goroutine (batched mode), or a mutex-guarded gob encoder
// (legacy mode). It also carries the per-peer sequencing state used for
// dedup and acknowledgement of inbound traffic.
type tcpPeer struct {
	t    *TCP
	site vtime.SiteID
	addr string // dial address; empty when adopted from an inbound conn

	queue    chan tcpOut
	kick     chan struct{} // wakes the writer: ack to send/received, conn change
	stop     chan struct{}
	stopOnce sync.Once

	// inc identifies this peer session. The writer numbers envelopes
	// from 1, so every recreated peer record (a peer declared failed and
	// later recovered) must draw a fresh incarnation: under the old
	// session's ID the remote's dedup floor would silently swallow the
	// new sequences and its cumulative acks would prune them locally as
	// if delivered. Announced in the hello, echoed back in acks.
	inc uint64

	// ackedSeq is the highest cumulative ack received from the peer for
	// our envelopes (this peer session's incarnation only).
	ackedSeq atomic.Uint64

	// lastSeq mirrors the writer's highest assigned sequence number and
	// retainedCount its retransmit-window depth; both feed scrape-time
	// gauges and the debug state source (the writer's own copies are
	// goroutine-local).
	lastSeq       atomic.Uint64
	retainedCount atomic.Int64

	// deliverMu serializes inbound accept+deliver so per-peer delivery
	// order is exactly the sequence order, even when a dying connection's
	// read loop races a fresh one. remoteInc is the peer incarnation the
	// dedup floor belongs to; recvSeq is the highest envelope sequence
	// delivered from that incarnation (dedup floor and next ack value).
	deliverMu sync.Mutex
	remoteInc uint64 // guarded by deliverMu
	recvSeq   uint64 // guarded by deliverMu

	mu      sync.Mutex
	conn    net.Conn     // guarded by mu; connection the writer currently owns
	pending net.Conn     // guarded by mu; freshly adopted inbound conn awaiting writer pickup
	broken  bool         // guarded by mu; read side observed an error on conn
	enc     *gob.Encoder // guarded by mu; legacy mode only
}

// ListenTCP starts a TCP endpoint for site on addr with default options.
// peers maps every other site to its dialable address. The returned
// endpoint is ready to send and receive.
func ListenTCP(site vtime.SiteID, addr string, peers map[vtime.SiteID]string) (*TCP, error) {
	return ListenTCPOptions(site, addr, peers, TCPOptions{})
}

// ListenTCPOptions is ListenTCP with explicit options.
func ListenTCPOptions(site vtime.SiteID, addr string, peers map[vtime.SiteID]string, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	book := make(map[vtime.SiteID]string, len(peers))
	for s, a := range peers {
		book[s] = a
	}
	observer := opts.Observer
	if observer == nil {
		observer = obs.Nop()
	}
	t := &TCP{
		site:     site,
		ln:       ln,
		peers:    book,
		events:   make(chan Event, 4096),
		opts:     opts.withDefaults(),
		obs:      observer,
		stats:    newTCPMetrics(observer.Metrics()),
		stopCh:   make(chan struct{}),
		conns:    map[vtime.SiteID]*tcpPeer{},
		failed:   map[vtime.SiteID]bool{},
		ctrlKick: make(chan struct{}, 1),
	}
	t.registerObs()
	t.wg.Add(2)
	go t.acceptLoop()
	go t.ctrlLoop()
	return t, nil
}

// registerObs installs the endpoint's scrape-time gauges and its debug
// state source on the observer.
func (t *TCP) registerObs() {
	reg := t.obs.Metrics()
	reg.GaugeFunc("decaf_transport_events_queue_depth", "inbound events awaiting the site's event loop", func() float64 {
		return float64(len(t.events))
	})
	reg.GaugeFunc("decaf_transport_send_queue_depth", "outbound envelopes queued across all peers", func() float64 {
		n := 0
		t.mu.Lock()
		for _, p := range t.conns {
			n += len(p.queue)
		}
		t.mu.Unlock()
		return float64(n)
	})
	reg.GaugeFunc("decaf_transport_retained_envelopes", "encoded envelopes held in retransmit windows across all peers", func() float64 {
		n := int64(0)
		t.mu.Lock()
		for _, p := range t.conns {
			n += p.retainedCount.Load()
		}
		t.mu.Unlock()
		return float64(n)
	})
	t.obs.RegisterStateSource("transport", t.debugState)
}

// debugState snapshots per-peer transport state for the debug server.
func (t *TCP) debugState() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	peers := map[string]any{}
	for site, p := range t.conns {
		last := p.lastSeq.Load()
		acked := p.ackedSeq.Load()
		lag := uint64(0)
		if last > acked {
			lag = last - acked
		}
		peers[site.String()] = map[string]any{
			"queue_depth":        len(p.queue),
			"retained_envelopes": p.retainedCount.Load(),
			"last_seq":           last,
			"acked_seq":          acked,
			"ack_lag":            lag,
		}
	}
	var failed []string
	for site := range t.failed {
		failed = append(failed, site.String())
	}
	return map[string]any{
		"site":               t.site.String(),
		"events_queue_depth": len(t.events),
		"peers":              peers,
		"failed_sites":       failed,
		"closed":             t.closed,
	}
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Site implements Endpoint.
func (t *TCP) Site() vtime.SiteID { return t.site }

// Events implements Endpoint.
func (t *TCP) Events() <-chan Event { return t.events }

// Stats returns a snapshot of the endpoint's resilience counters. It is
// a thin read over the obs registry: the same counters serve Stats and
// /metrics.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		MessagesDropped: t.stats.messagesDropped.Value(),
		SendQueueDrops:  t.stats.sendQueueDrops.Value(),
		Unencodable:     t.stats.unencodable.Value(),
		Abandoned:       t.stats.abandoned.Value(),
		Reconnects:      t.stats.reconnects.Value(),
		Retransmits:     t.stats.retransmits.Value(),
		Keepalives:      t.stats.keepalives.Value(),
		FailureEvents:   t.stats.failureEvents.Value(),
		RecoveryEvents:  t.stats.recoveryEvents.Value(),
	}
}

// SetPeerAddr adds (or replaces) a peer's dial address in the address
// book. Peers adopted before the address was known keep reconnecting via
// inbound connections only.
func (t *TCP) SetPeerAddr(site vtime.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[site] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound = append(t.inbound, conn)
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// ctrlLoop delivers queued control events with a blocking send, so
// failure/recovery notifications are lossless even when the receiver's
// event buffer is full of messages.
func (t *TCP) ctrlLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.ctrlKick:
		case <-t.stopCh:
			return
		}
		for {
			t.ctrlMu.Lock()
			if len(t.ctrlQ) == 0 {
				t.ctrlMu.Unlock()
				break
			}
			ev := t.ctrlQ[0]
			t.ctrlQ = t.ctrlQ[1:]
			t.ctrlMu.Unlock()
			select {
			case t.events <- ev:
			case <-t.stopCh:
				return
			}
		}
	}
}

// framePool recycles frame payload buffers across writer goroutines and
// read loops.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// readLoop decodes frames from one connection until error. The hello
// frame (or, failing that, the first envelope) identifies the peer; the
// connection is then registered for outbound sends, so a site can reply
// to peers that are not in its static address book (invitees dial the
// inviter; replies reuse the same connection). A read error is reported
// to the peer's writer, which owns the reconnect/suspicion decision; in
// legacy mode it is an immediate fail-stop verdict, as originally.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var from vtime.SiteID
	var peer *tcpPeer
	var connInc uint64 // peer incarnation announced on this connection
	seen := false
	defer func() {
		if !seen {
			return
		}
		t.opts.Faults.untrack(from, conn)
		if t.opts.Legacy {
			t.reportFailure(from)
		} else if peer != nil {
			peer.noteBroken(conn)
		}
	}()
	identify := func(site vtime.SiteID) {
		if seen {
			return
		}
		from, seen = site, true
		peer = t.adoptConn(site, conn)
		t.opts.Faults.track(site, conn)
	}

	if t.opts.Legacy {
		dec := gob.NewDecoder(conn)
		for {
			var env tcpEnvelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			identify(env.From)
			t.deliver(Event{Kind: EventMessage, From: env.From, SentAt: env.SentAt, Msg: env.Msg})
		}
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [4]byte
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			continue // keepalive probe
		}
		if n > maxFrame {
			return
		}
		if cap(*bufp) < int(n) {
			*bufp = make([]byte, n)
		}
		payload := (*bufp)[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		kind, body := payload[0], payload[1:]
		switch kind {
		case frameHello:
			site, used := binary.Uvarint(body)
			if used <= 0 {
				return
			}
			inc, used2 := binary.Uvarint(body[used:])
			if used2 <= 0 {
				return
			}
			connInc = inc
			identify(vtime.SiteID(site))
			if peer != nil {
				peer.observeIncarnation(connInc)
			}
		case frameAck:
			inc, used := binary.Uvarint(body)
			if used <= 0 {
				return
			}
			cum, used2 := binary.Uvarint(body[used:])
			if used2 <= 0 || !seen {
				return
			}
			if peer != nil && inc == peer.inc {
				peer.handleAck(cum)
			}
		case frameData:
			firstSeq, used := binary.Uvarint(body)
			if used <= 0 {
				return
			}
			rest := body[used:]
			i := uint64(0)
			delivered := false
			for len(rest) > 0 {
				envFrom, sentAt, msg, used, err := decodeEnvelope(rest)
				if err != nil {
					return
				}
				rest = rest[used:]
				identify(envFrom)
				seq := firstSeq + i
				i++
				if peer != nil {
					if peer.acceptAndDeliver(connInc, seq,
						Event{Kind: EventMessage, From: envFrom, SentAt: sentAt, Msg: msg}) {
						delivered = true
					}
				}
			}
			if delivered {
				peer.kickWriter() // schedule an ack
			}
		default:
			return // protocol error
		}
	}
}

// appendEnvelope encodes one envelope onto the frame buffer.
func appendEnvelope(b []byte, from vtime.SiteID, sentAt vtime.VT, msg wire.Message) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(from))
	b = binary.AppendUvarint(b, sentAt.Time)
	b = binary.AppendUvarint(b, uint64(sentAt.Site))
	return wire.AppendMessage(b, msg)
}

// decodeEnvelope decodes one envelope from the front of b.
func decodeEnvelope(b []byte) (from vtime.SiteID, sentAt vtime.VT, msg wire.Message, used int, err error) {
	off := 0
	next := func() uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			err = errors.New("transport: truncated envelope")
			return 0
		}
		off += n
		return v
	}
	from = vtime.SiteID(next())
	sentAt.Time = next()
	sentAt.Site = vtime.SiteID(next())
	if err != nil {
		return 0, vtime.VT{}, nil, 0, err
	}
	msg, n, err := wire.DecodeMessage(b[off:])
	if err != nil {
		return 0, vtime.VT{}, nil, 0, err
	}
	return from, sentAt, msg, off + n, nil
}

// adoptConn registers an inbound connection from a now-identified peer:
// it creates the peer record if needed, offers the connection to the
// peer's writer as a reconnect candidate, and un-suspects a peer
// previously declared failed (emitting EventSiteRecovered).
func (t *TCP) adoptConn(from vtime.SiteID, conn net.Conn) *tcpPeer {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	recovered := false
	if t.failed[from] {
		if t.opts.Legacy {
			t.mu.Unlock()
			return nil
		}
		delete(t.failed, from)
		recovered = true
	}
	p, ok := t.conns[from]
	if !ok {
		p = t.newPeer(from, t.peers[from])
		t.conns[from] = p
		if t.opts.Legacy {
			// sendLegacy reads p.conn/p.enc under p.mu from arbitrary
			// goroutines, so installing them must take the same lock
			// (t.mu alone does not order these writes with sendLegacy).
			// Safe against lock inversion: no path holds p.mu while
			// taking t.mu.
			p.mu.Lock()
			p.conn = conn
			p.enc = gob.NewEncoder(conn)
			p.mu.Unlock()
		} else {
			p.offerConn(conn)
			t.wg.Add(1)
			go p.writeLoop()
		}
	} else if !t.opts.Legacy {
		p.offerConn(conn)
	}
	t.mu.Unlock()
	if recovered {
		t.stats.recoveryEvents.Add(1)
		t.deliverControl(Event{Kind: EventSiteRecovered, Failed: from})
	}
	return p
}

func (t *TCP) newPeer(site vtime.SiteID, addr string) *tcpPeer {
	return &tcpPeer{
		t:     t,
		site:  site,
		addr:  addr,
		inc:   randInc(),
		queue: make(chan tcpOut, t.opts.QueueSize),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
}

// randInc draws a nonzero session incarnation (zero means "none yet" on
// the receive side).
func randInc() uint64 {
	for {
		if inc := rand.Uint64(); inc != 0 {
			return inc
		}
	}
}

// deliver hands a message event to the receiver; a full buffer drops it,
// as a congested network would, and counts the drop.
func (t *TCP) deliver(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	select {
	case t.events <- ev:
	default:
		t.stats.messagesDropped.Add(1)
	}
}

// deliverControl queues a failure/recovery event for lossless delivery.
func (t *TCP) deliverControl(ev Event) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.ctrlMu.Lock()
	t.ctrlQ = append(t.ctrlQ, ev)
	t.ctrlMu.Unlock()
	select {
	case t.ctrlKick <- struct{}{}:
	default:
	}
}

// reportFailure emits a single EventSiteFailed per peer and tears down
// its sender. In batched mode it is only called once the suspicion
// policy is exhausted.
func (t *TCP) reportFailure(site vtime.SiteID) {
	t.mu.Lock()
	if t.closed || t.failed[site] {
		t.mu.Unlock()
		return
	}
	t.failed[site] = true
	p, ok := t.conns[site]
	if ok {
		delete(t.conns, site)
	}
	t.mu.Unlock()
	if ok {
		p.shutdown()
	}
	t.stats.failureEvents.Add(1)
	t.deliverControl(Event{Kind: EventSiteFailed, Failed: site})
}

// shutdown stops the peer's writer and closes its connections.
func (p *tcpPeer) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	conn, pending := p.conn, p.pending
	p.conn, p.pending = nil, nil
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if pending != nil {
		pending.Close()
	}
}

// offerConn hands a fresh inbound connection to the writer as a
// reconnect candidate. The writer only picks it up when its current
// connection is gone or broken, so a healthy link is never churned.
func (p *tcpPeer) offerConn(conn net.Conn) {
	p.mu.Lock()
	p.pending = conn
	p.mu.Unlock()
	p.kickWriter()
}

// noteBroken records that the read side saw an error on conn and wakes
// the writer to run its reconnect/suspicion policy.
func (p *tcpPeer) noteBroken(conn net.Conn) {
	p.mu.Lock()
	if p.conn == conn {
		p.broken = true
	}
	if p.pending == conn {
		p.pending = nil
	}
	p.mu.Unlock()
	p.kickWriter()
}

func (p *tcpPeer) kickWriter() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// observeIncarnation records the peer incarnation announced by a hello.
// A new incarnation (peer process restart) resets the dedup floor: the
// fresh endpoint numbers its envelopes from 1 again.
func (p *tcpPeer) observeIncarnation(inc uint64) {
	p.deliverMu.Lock()
	if p.remoteInc != inc {
		p.remoteInc = inc
		p.recvSeq = 0
	}
	p.deliverMu.Unlock()
	p.kickWriter()
}

// acceptAndDeliver delivers envelope seq from the peer unless it is a
// duplicate (a retransmit after reconnect) or arrived on a connection
// from a superseded incarnation. Accept and deliver are one critical
// section so delivery order is exactly sequence order even when two read
// loops (a dying connection and its replacement) race. Sequence gaps are
// accepted: on a live TCP connection they cannot occur, and the retained
// window guarantees everything below an accepted sequence was already
// delivered.
func (p *tcpPeer) acceptAndDeliver(connInc, seq uint64, ev Event) bool {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	if connInc != p.remoteInc || seq <= p.recvSeq {
		return false
	}
	p.recvSeq = seq
	p.t.deliver(ev)
	return true
}

// recvState snapshots the ack the writer owes the peer: the incarnation
// whose envelopes we have been delivering and the cumulative sequence.
func (p *tcpPeer) recvState() (inc, seq uint64) {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	return p.remoteInc, p.recvSeq
}

// handleAck applies a cumulative ack from the peer for our envelopes.
func (p *tcpPeer) handleAck(cum uint64) {
	for {
		cur := p.ackedSeq.Load()
		if cum <= cur {
			return
		}
		if p.ackedSeq.CompareAndSwap(cur, cum) {
			p.kickWriter()
			return
		}
	}
}

// peerFor returns (creating if necessary) the sender record for site.
// No dialing happens on the caller's goroutine; the writer goroutine
// establishes the connection.
func (t *TCP) peerFor(site vtime.SiteID) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.failed[site] {
		return nil, ErrSiteDown
	}
	if p, ok := t.conns[site]; ok {
		return p, nil
	}
	addr, ok := t.peers[site]
	if !ok {
		return nil, ErrUnknownSite
	}
	p := t.newPeer(site, addr)
	t.conns[site] = p
	if !t.opts.Legacy {
		t.wg.Add(1)
		go p.writeLoop()
	}
	return p, nil
}

// Send implements Endpoint. In batched mode it only enqueues: the
// caller's goroutine never blocks on a dial or a socket write.
func (t *TCP) Send(to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	p, err := t.peerFor(to)
	if err != nil {
		return err
	}
	if t.opts.Legacy {
		return t.sendLegacy(p, to, sentAt, msg)
	}
	select {
	case <-p.stop:
		return ErrSiteDown
	case p.queue <- tcpOut{sentAt: sentAt, msg: msg}:
		return nil
	default:
	}
	// Queue full. A dead peer (writer already stopped) is an error; a
	// live but congested one drops silently, matching the simulated
	// network's bounded-buffer semantics.
	select {
	case <-p.stop:
		return ErrSiteDown
	default:
		t.stats.sendQueueDrops.Add(1)
		return nil
	}
}

// SendBatch implements BatchSender: one peer lookup for the whole
// batch, then the per-message enqueue semantics of Send (including its
// overflow drops). Legacy mode falls back to sequential blocking sends.
func (t *TCP) SendBatch(to vtime.SiteID, sentAt vtime.VT, msgs []wire.Message) error {
	p, err := t.peerFor(to)
	if err != nil {
		return err
	}
	for _, msg := range msgs {
		if t.opts.Legacy {
			if err := t.sendLegacy(p, to, sentAt, msg); err != nil {
				return err
			}
			continue
		}
		select {
		case <-p.stop:
			return ErrSiteDown
		case p.queue <- tcpOut{sentAt: sentAt, msg: msg}:
			continue
		default:
		}
		select {
		case <-p.stop:
			return ErrSiteDown
		default:
			t.stats.sendQueueDrops.Add(1)
		}
	}
	return nil
}

// sendLegacy is the pre-batching path: dial if needed, then a blocking
// gob encode straight onto the socket under the peer mutex.
func (t *TCP) sendLegacy(p *tcpPeer, to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	p.mu.Lock()
	if p.conn == nil {
		//decaf:ignore lockedsend legacy mode dials and writes under the peer mutex by design (pre-batching measurement baseline)
		conn, err := net.DialTimeout("tcp", p.addr, dialTimeout)
		if err != nil {
			p.mu.Unlock()
			t.reportFailure(to)
			return fmt.Errorf("transport: dial %s: %w", p.addr, errors.Join(ErrSiteDown, err))
		}
		p.conn = conn
		p.enc = gob.NewEncoder(conn)
		p.mu.Unlock()
		if !t.startReadLoop(conn) {
			conn.Close()
			return ErrSiteDown
		}
		p.mu.Lock()
	}
	//decaf:ignore lockedsend legacy mode writes synchronously under the peer mutex by design (pre-batching measurement baseline)
	err := p.enc.Encode(tcpEnvelope{From: t.site, SentAt: sentAt, Msg: msg})
	p.mu.Unlock()
	if err != nil {
		t.reportFailure(to)
		return fmt.Errorf("transport: send to %s: %w", to, errors.Join(ErrSiteDown, err))
	}
	return nil
}

// startReadLoop launches a read loop for a dialed connection (peers
// answer on the connection the request came in on). Reports false when
// the endpoint is closed.
func (t *TCP) startReadLoop(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.wg.Add(1)
	go t.readLoop(conn)
	return true
}

// errDialRefused is the injected-fault dial error.
var errDialRefused = errors.New("transport: dial refused (injected fault)")

// establish obtains a connection for the writer: a freshly adopted
// inbound connection wins, otherwise the peer is dialed with exponential
// backoff + jitter until the suspicion policy is exhausted. Returns
// (nil, true) when the peer was shut down, (nil, false) when the policy
// says to declare the peer failed.
func (p *tcpPeer) establish() (net.Conn, bool) {
	t := p.t
	pol := t.opts.Suspicion
	downSince := time.Now()
	attempt := 0
	for {
		// A connection the peer dialed to us beats redialing.
		p.mu.Lock()
		if c := p.pending; c != nil {
			p.pending = nil
			p.conn = c
			p.broken = false
			p.mu.Unlock()
			return c, false
		}
		p.mu.Unlock()
		select {
		case <-p.stop:
			return nil, true
		default:
		}
		if p.addr != "" {
			attempt++
			timeout := dialTimeout
			if pol.Window >= 0 {
				if remain := pol.Window - time.Since(downSince); remain < timeout {
					timeout = remain
				}
			}
			var conn net.Conn
			err := errDialRefused
			if !t.opts.Faults.failDial(p.site) && timeout > 0 {
				conn, err = net.DialTimeout("tcp", p.addr, timeout)
			}
			if err == nil {
				p.mu.Lock()
				select {
				case <-p.stop:
					p.mu.Unlock()
					conn.Close()
					return nil, true
				default:
				}
				p.conn = conn
				p.broken = false
				p.mu.Unlock()
				if !t.startReadLoop(conn) {
					conn.Close()
					return nil, true
				}
				return conn, false
			}
			if pol.MaxAttempts >= 0 && attempt >= pol.MaxAttempts {
				return nil, false
			}
		}
		delay := pol.backoff(attempt)
		if pol.Window >= 0 {
			remain := pol.Window - time.Since(downSince)
			if remain <= 0 {
				return nil, false
			}
			if delay > remain {
				delay = remain
			}
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-p.kick:
			timer.Stop()
		case <-p.stop:
			timer.Stop()
			return nil, true
		}
	}
}

// writeLoop drains the peer queue into batched, sequenced frames. Every
// envelope is retained until the peer acknowledges it; on a connection
// error the loop reconnects (establish) and retransmits the
// unacknowledged tail, so accepted envelopes survive link flaps. Only an
// exhausted suspicion policy abandons the queue and declares the peer
// failed.
func (p *tcpPeer) writeLoop() {
	t := p.t
	defer t.wg.Done()
	opts := t.opts
	retainLimit := opts.RetainLimit

	var (
		retained      []outRec
		sentIdx       int
		nextSeq       uint64 = 1
		ackInc        uint64 // peer incarnation the last sent ack was for
		ackSent       uint64
		conn          net.Conn
		bw            *bufio.Writer
		everConnected bool
		hdr           [4]byte
	)

	var probeCh <-chan time.Time
	var probeTimer *time.Timer
	if opts.ProbeInterval > 0 {
		probeTimer = time.NewTimer(opts.ProbeInterval)
		defer probeTimer.Stop()
		probeCh = probeTimer.C
	}
	resetProbe := func() {
		if probeTimer == nil {
			return
		}
		if !probeTimer.Stop() {
			select {
			case <-probeTimer.C:
			default:
			}
		}
		probeTimer.Reset(opts.ProbeInterval)
	}

	// dropConn discards the current connection after an error.
	dropConn := func() {
		if conn == nil {
			return
		}
		opts.Faults.untrack(p.site, conn)
		conn.Close()
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.broken = false
		p.mu.Unlock()
		conn, bw = nil, nil
	}

	// abandon counts everything still accepted but undeliverable, then
	// escalates to the fail-stop verdict.
	abandon := func() {
		n := uint64(len(retained))
	drain:
		for {
			select {
			case <-p.queue:
				n++
			default:
				break drain
			}
		}
		if n > 0 {
			t.stats.abandoned.Add(n)
		}
		t.reportFailure(p.site)
	}

	// enqueueOut sequences and encodes one accepted envelope; only an
	// encodable envelope consumes a sequence number, so retained stays
	// seq-contiguous. An envelope too large for a single frame can never
	// be transmitted (the receiver kills any connection carrying a frame
	// over maxFrame, and a retained record would be resent verbatim
	// after every reconnect — a livelock), so it counts as unencodable.
	enqueueOut := func(e tcpOut) {
		data, err := appendEnvelope(nil, t.site, e.sentAt, e.msg)
		if err != nil || len(data) > maxDataBytes {
			t.stats.unencodable.Add(1)
			return
		}
		retained = append(retained, outRec{seq: nextSeq, data: data})
		p.lastSeq.Store(nextSeq)
		nextSeq++
		p.retainedCount.Store(int64(len(retained)))
	}

	pruneAcked := func() {
		a := p.ackedSeq.Load()
		i := 0
		for i < len(retained) && retained[i].seq <= a {
			i++
		}
		if i > 0 {
			retained = retained[i:]
			if sentIdx -= i; sentIdx < 0 {
				sentIdx = 0
			}
			p.retainedCount.Store(int64(len(retained)))
		}
	}

	writeFrame := func(parts ...[]byte) bool {
		n := 0
		for _, part := range parts {
			n += len(part)
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		if _, err := bw.Write(hdr[:]); err != nil {
			return false
		}
		for _, part := range parts {
			if _, err := bw.Write(part); err != nil {
				return false
			}
		}
		return true
	}

	isBroken := func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.broken
	}

	var scratch [16]byte
	for {
		if conn == nil || isBroken() {
			dropConn()
			c, stopped := p.establish()
			if stopped {
				return
			}
			if c == nil {
				abandon()
				return
			}
			conn = c
			opts.Faults.track(p.site, conn)
			bw = bufio.NewWriterSize(conn, 64<<10)
			if everConnected {
				t.stats.reconnects.Add(1)
				if len(retained) > 0 {
					t.stats.retransmits.Add(uint64(len(retained)))
				}
			}
			everConnected = true
			sentIdx = 0 // the whole unacked tail rides the new connection
			if opts.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
			}
			hello := append(scratch[:0], frameHello)
			hello = binary.AppendUvarint(hello, uint64(t.site))
			hello = binary.AppendUvarint(hello, p.inc)
			if !writeFrame(hello) || bw.Flush() != nil {
				dropConn()
				continue
			}
			resetProbe()
		}

		pruneAcked()
		rInc, recv := p.recvState()
		ackDue := func() bool { return rInc != ackInc || recv > ackSent }
		sendProbe := false
		if sentIdx == len(retained) && !ackDue() {
			// Idle: block until there is something to do. If envelopes
			// sit unacknowledged, bound the wait — a missing ack means
			// the connection silently died (the peer acks every data
			// frame promptly), so reconnect and retransmit.
			var ackCh <-chan time.Time
			var ackTimer *time.Timer
			if len(retained) > 0 && opts.AckTimeout > 0 {
				ackTimer = time.NewTimer(opts.AckTimeout)
				ackCh = ackTimer.C
			}
			// Only take new envelopes while the retransmit window has
			// room: a full window must drain via acks (or hit AckTimeout)
			// before intake resumes, or retained would grow unboundedly
			// against a peer that reads frames but withholds acks.
			intake := p.queue
			if len(retained) >= retainLimit {
				intake = nil
			}
			stale := false
			select {
			case e := <-intake:
				enqueueOut(e)
			case <-p.kick:
			case <-probeCh:
				sendProbe = true
			case <-ackCh:
				stale = true
			case <-p.stop:
				if ackTimer != nil {
					ackTimer.Stop()
				}
				return
			}
			if ackTimer != nil {
				ackTimer.Stop()
			}
			if stale || isBroken() {
				dropConn()
				continue
			}
			pruneAcked()
			rInc, recv = p.recvState()
			if !sendProbe && sentIdx == len(retained) && !ackDue() {
				continue // spurious wakeup
			}
		}
		// Coalesce whatever else is already queued into this flush.
		for len(retained) < retainLimit && len(retained)-sentIdx < opts.MaxBatch {
			select {
			case e := <-p.queue:
				enqueueOut(e)
				continue
			default:
			}
			break
		}

		end := batchEnd(retained, sentIdx, opts.MaxBatch, maxDataBytes)
		if d := opts.Faults.frameDelay(); d > 0 {
			time.Sleep(d)
		}
		if opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		}
		ok := true
		if rInc != 0 && ackDue() {
			ack := append(scratch[:0], frameAck)
			ack = binary.AppendUvarint(ack, rInc)
			ack = binary.AppendUvarint(ack, recv)
			ok = writeFrame(ack)
		}
		if ok && sentIdx < end {
			if opts.Faults.dropFrame(p.site) {
				// Injected loss: the frame vanishes in the "network", but
				// the envelopes stay retained until acked and ride the
				// next reconnect.
			} else {
				head := append(scratch[:0], frameData)
				head = binary.AppendUvarint(head, retained[sentIdx].seq)
				ok = writeFrame(buildParts(head, retained[sentIdx:end])...)
			}
		}
		if ok && sendProbe && sentIdx == end && !ackDue() {
			ok = writeFrame() // empty keepalive frame
			t.stats.keepalives.Add(1)
		}
		if ok {
			ok = bw.Flush() == nil
		}
		if !ok {
			dropConn()
			continue // retained is intact; establish retransmits it
		}
		ackInc, ackSent = rInc, recv
		sentIdx = end
		resetProbe()
	}
}

// batchEnd returns the exclusive end index of the next data frame's
// records: at most maxBatch envelopes starting at sentIdx, holding at
// most maxBytes of encoded envelope data, so the frame payload stays
// under the receiver's maxFrame bound. The first record is always
// admitted (enqueueOut guarantees no single record exceeds
// maxDataBytes), so a full window still makes progress.
func batchEnd(retained []outRec, sentIdx, maxBatch, maxBytes int) int {
	end, bytes := sentIdx, 0
	for end < len(retained) && end-sentIdx < maxBatch {
		bytes += len(retained[end].data)
		if bytes > maxBytes && end > sentIdx {
			break
		}
		end++
	}
	return end
}

// buildParts assembles the writev-style part list for one data frame.
func buildParts(head []byte, recs []outRec) [][]byte {
	parts := make([][]byte, 0, len(recs)+1)
	parts = append(parts, head)
	for _, r := range recs {
		parts = append(parts, r.data)
	}
	return parts
}

// Close implements Endpoint: stops the listener, closes all connections,
// and closes the events channel after all loops exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpPeer, 0, len(t.conns))
	for _, p := range t.conns {
		conns = append(conns, p)
	}
	t.conns = map[vtime.SiteID]*tcpPeer{}
	inbound := t.inbound
	t.inbound = nil
	t.mu.Unlock()

	close(t.stopCh)
	err := t.ln.Close()
	for _, p := range conns {
		p.shutdown()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()

	t.mu.Lock()
	close(t.events)
	t.mu.Unlock()
	return err
}
