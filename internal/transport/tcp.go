package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// tcpEnvelope is the on-the-wire frame for the TCP transport.
type tcpEnvelope struct {
	From   vtime.SiteID
	SentAt vtime.VT
	Msg    wire.Message
}

// TCP is a real transport over TCP using gob encoding. Every site listens
// on its own address and lazily dials peers from a static address book.
// A connection error to a peer surfaces as an EventSiteFailed for that
// peer (fail-stop presentation, paper §3.4).
type TCP struct {
	site   vtime.SiteID
	ln     net.Listener
	peers  map[vtime.SiteID]string
	events chan Event

	mu      sync.Mutex
	conns   map[vtime.SiteID]*tcpPeer
	inbound []net.Conn
	failed  map[vtime.SiteID]bool
	closed  bool
	wg      sync.WaitGroup
}

var _ Endpoint = (*TCP)(nil)

// tcpPeer is an established outbound connection with its gob encoder.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// ListenTCP starts a TCP endpoint for site on addr. peers maps every other
// site to its dialable address. The returned endpoint is ready to send and
// receive.
func ListenTCP(site vtime.SiteID, addr string, peers map[vtime.SiteID]string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		site:   site,
		ln:     ln,
		peers:  peers,
		events: make(chan Event, 4096),
		conns:  map[vtime.SiteID]*tcpPeer{},
		failed: map[vtime.SiteID]bool{},
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Site implements Endpoint.
func (t *TCP) Site() vtime.SiteID { return t.site }

// Events implements Endpoint.
func (t *TCP) Events() <-chan Event { return t.events }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes envelopes from one inbound connection until error.
// The first envelope identifies the peer; the connection is then also
// registered for outbound sends, so a site can reply to peers that are
// not in its static address book (invitees dial the inviter; replies
// reuse the same connection).
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var from vtime.SiteID
	seen := false
	for {
		var env tcpEnvelope
		if err := dec.Decode(&env); err != nil {
			if seen {
				t.reportFailure(from)
			}
			return
		}
		if !seen {
			from, seen = env.From, true
			t.adoptInbound(from, conn)
		}
		t.deliver(Event{Kind: EventMessage, From: env.From, SentAt: env.SentAt, Msg: env.Msg})
	}
}

// adoptInbound registers an inbound connection for outbound use when no
// connection to that peer exists yet.
func (t *TCP) adoptInbound(from vtime.SiteID, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.failed[from] {
		return
	}
	if _, ok := t.conns[from]; ok {
		return
	}
	t.conns[from] = &tcpPeer{conn: conn, enc: gob.NewEncoder(conn)}
}

func (t *TCP) deliver(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	select {
	case t.events <- ev:
	default: // receiver stuck; drop as a real network would
	}
}

// reportFailure emits a single EventSiteFailed per peer.
func (t *TCP) reportFailure(site vtime.SiteID) {
	t.mu.Lock()
	if t.closed || t.failed[site] {
		t.mu.Unlock()
		return
	}
	t.failed[site] = true
	if p, ok := t.conns[site]; ok {
		delete(t.conns, site)
		p.conn.Close()
	}
	t.mu.Unlock()
	t.deliver(Event{Kind: EventSiteFailed, Failed: site})
}

// peer returns (dialing if necessary) the outbound connection to site.
func (t *TCP) peer(site vtime.SiteID) (*tcpPeer, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrSiteDown
	}
	if t.failed[site] {
		t.mu.Unlock()
		return nil, ErrSiteDown
	}
	if p, ok := t.conns[site]; ok {
		t.mu.Unlock()
		return p, nil
	}
	addr, ok := t.peers[site]
	t.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSite
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.reportFailure(site)
		return nil, fmt.Errorf("transport: dial %s: %w", addr, errors.Join(ErrSiteDown, err))
	}
	p := &tcpPeer{conn: conn, enc: gob.NewEncoder(conn)}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrSiteDown
	}
	if existing, ok := t.conns[site]; ok {
		t.mu.Unlock()
		conn.Close() // lost a dial race; reuse the winner
		return existing, nil
	}
	t.conns[site] = p
	t.wg.Add(1)
	t.mu.Unlock()
	// Read replies arriving over the outbound connection (peers answer
	// on the connection the request came in on).
	go t.readLoop(conn)
	return p, nil
}

// Send implements Endpoint.
func (t *TCP) Send(to vtime.SiteID, sentAt vtime.VT, msg wire.Message) error {
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	p.mu.Lock()
	err = p.enc.Encode(tcpEnvelope{From: t.site, SentAt: sentAt, Msg: msg})
	p.mu.Unlock()
	if err != nil {
		t.reportFailure(to)
		return fmt.Errorf("transport: send to %s: %w", to, errors.Join(ErrSiteDown, err))
	}
	return nil
}

// Close implements Endpoint: stops the listener, closes all connections,
// and closes the events channel after all loops exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpPeer, 0, len(t.conns))
	for _, p := range t.conns {
		conns = append(conns, p)
	}
	t.conns = map[vtime.SiteID]*tcpPeer{}
	inbound := t.inbound
	t.inbound = nil
	t.mu.Unlock()

	err := t.ln.Close()
	for _, p := range conns {
		p.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()

	t.mu.Lock()
	close(t.events)
	t.mu.Unlock()
	return err
}
