package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// tcpPair builds two connected TCP endpoints with the given options on
// the sender (site 2). Both address books are complete so either side
// can redial the other.
func tcpPair(t *testing.T, optsA, optsB TCPOptions) (a, b *TCP) {
	t.Helper()
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, optsA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err = ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: a.Addr().String()}, optsB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.SetPeerAddr(2, b.Addr().String())
	return a, b
}

// collect drains events from ep into slices until the returned stop
// function is called.
func collect(ep Endpoint) (stop func() (msgs []Event, ctrl []Event)) {
	var mu sync.Mutex
	var msgs, ctrl []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ep.Events() {
			mu.Lock()
			if ev.Kind == EventMessage {
				msgs = append(msgs, ev)
			} else {
				ctrl = append(ctrl, ev)
			}
			mu.Unlock()
		}
	}()
	return func() ([]Event, []Event) {
		ep.Close()
		<-done
		mu.Lock()
		defer mu.Unlock()
		return msgs, ctrl
	}
}

func TestResilienceReconnectAfterKillNoFailure(t *testing.T) {
	faults := NewFaults()
	a, b := tcpPair(t, TCPOptions{}, TCPOptions{Faults: faults})

	const count = 50
	drain := collect(a)
	for i := uint64(0); i < count; i++ {
		if err := b.Send(1, vtime.Zero, msg(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i == 20 {
			// Let the first batch reach the wire, then cut the link
			// mid-stream.
			time.Sleep(20 * time.Millisecond)
			if n := faults.KillConnections(1); n == 0 {
				t.Fatal("no live connection to kill")
			}
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Reconnects == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Wait for the tail to arrive, then inspect.
	time.Sleep(300 * time.Millisecond)
	msgs, ctrl := drain()

	if len(ctrl) != 0 {
		t.Fatalf("control events after transient kill: %+v", ctrl)
	}
	if len(msgs) != count {
		t.Fatalf("delivered %d messages, want %d", len(msgs), count)
	}
	for i, ev := range msgs {
		if got := ev.Msg.(wire.Outcome).TxnVT.Time; got != uint64(i) {
			t.Fatalf("message %d arrived as %d (FIFO violated)", i, got)
		}
	}
	st := b.Stats()
	if st.Reconnects == 0 {
		t.Fatal("expected at least one reconnect")
	}
	if st.FailureEvents != 0 {
		t.Fatalf("sender declared failure: %+v", st)
	}
}

func TestResilienceSuspicionWindowExactlyOneFailure(t *testing.T) {
	// a has no dial address for site 2 (the connection was adopted), so
	// escalation is governed purely by the suspicion window.
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, TCPOptions{
		Suspicion: SuspicionPolicy{Window: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[vtime.SiteID]string{1: a.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	b.Close()

	var failures int
	deadline := time.After(time.Second)
	for done := false; !done; {
		select {
		case ev := <-a.Events():
			if ev.Kind == EventSiteFailed && ev.Failed == 2 {
				failures++
			}
		case <-deadline:
			done = true
		}
	}
	if failures != 1 {
		t.Fatalf("failure events = %d, want exactly 1", failures)
	}
	if err := a.Send(2, vtime.Zero, msg(2)); err != ErrSiteDown {
		t.Fatalf("send after failure: err = %v, want ErrSiteDown", err)
	}
	if st := a.Stats(); st.FailureEvents != 1 {
		t.Fatalf("stats = %+v, want FailureEvents 1", st)
	}
}

func TestResilienceRecoveryEvent(t *testing.T) {
	a, err := ListenTCPOptions(1, "127.0.0.1:0", nil, TCPOptions{
		Suspicion: SuspicionPolicy{Window: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addr := map[vtime.SiteID]string{1: a.Addr().String()}
	b, err := ListenTCP(2, "127.0.0.1:0", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	b.Close()

	if ev := recvOne(t, a, 2*time.Second); ev.Kind != EventSiteFailed || ev.Failed != 2 {
		t.Fatalf("event = %+v, want SiteFailed(2)", ev)
	}

	// Site 2 comes back as a fresh process (new incarnation) and dials
	// in again: a must un-suspect it and accept its traffic.
	b2, err := ListenTCP(2, "127.0.0.1:0", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if err := b2.Send(1, vtime.Zero, msg(7)); err != nil {
		t.Fatal(err)
	}
	var sawRecovered, sawMsg bool
	for !sawRecovered || !sawMsg {
		ev := recvOne(t, a, 2*time.Second)
		switch {
		case ev.Kind == EventSiteRecovered && ev.Failed == 2:
			sawRecovered = true
		case ev.Kind == EventMessage && ev.Msg.(wire.Outcome).TxnVT.Time == 7:
			sawMsg = true
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	// Outbound traffic to the recovered peer flows again over the
	// adopted connection.
	if err := a.Send(2, vtime.Zero, msg(8)); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
	if ev := recvOne(t, b2, 2*time.Second); ev.Msg.(wire.Outcome).TxnVT.Time != 8 {
		t.Fatalf("reply = %+v", ev)
	}
	if st := a.Stats(); st.RecoveryEvents != 1 {
		t.Fatalf("stats = %+v, want RecoveryEvents 1", st)
	}
}

func TestResilienceRefusedDialsThenConnect(t *testing.T) {
	faults := NewFaults()
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: a.Addr().String()},
		TCPOptions{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The first three dials fail; the default budget (6 attempts, 1s)
	// rides out the fault and the queued message survives.
	faults.RefuseDials(1, 3)
	if err := b.Send(1, vtime.Zero, msg(42)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, a, 2*time.Second)
	if ev.Msg.(wire.Outcome).TxnVT.Time != 42 {
		t.Fatalf("event = %+v", ev)
	}
	if got := faults.Refused(); got != 3 {
		t.Fatalf("refused dials = %d, want 3", got)
	}
	if st := b.Stats(); st.FailureEvents != 0 {
		t.Fatalf("transient refusals escalated: %+v", st)
	}
}

func TestResilienceDialBudgetExhausted(t *testing.T) {
	faults := NewFaults()
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: a.Addr().String()},
		TCPOptions{Suspicion: SuspicionPolicy{MaxAttempts: 3, Window: -1}, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	faults.RefuseDials(1, 1000)
	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	ev := recvOne(t, b, 2*time.Second)
	if ev.Kind != EventSiteFailed || ev.Failed != 1 {
		t.Fatalf("event = %+v, want SiteFailed(1)", ev)
	}
	st := b.Stats()
	if st.Abandoned == 0 {
		t.Fatalf("stats = %+v, want Abandoned > 0 for the queued envelope", st)
	}
	if st.FailureEvents != 1 {
		t.Fatalf("stats = %+v, want FailureEvents 1", st)
	}
}

func TestResilienceDroppedFramesRetransmitOnReconnect(t *testing.T) {
	faults := NewFaults()
	a, b := tcpPair(t, TCPOptions{}, TCPOptions{Faults: faults})

	// Establish the link first so the drop hits a data frame.
	if err := b.Send(1, vtime.Zero, msg(0)); err != nil {
		t.Fatal(err)
	}
	if ev := recvOne(t, a, 2*time.Second); ev.Msg.(wire.Outcome).TxnVT.Time != 0 {
		t.Fatalf("event = %+v", ev)
	}

	// The next data frame vanishes in the network; the envelopes stay
	// retained (unacked) and ride the retransmit after the link flaps.
	faults.DropFrames(1, 1)
	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for faults.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if faults.Dropped() != 1 {
		t.Fatal("injected frame drop never happened")
	}
	faults.KillConnections(1)

	ev := recvOne(t, a, 2*time.Second)
	if ev.Kind != EventMessage || ev.Msg.(wire.Outcome).TxnVT.Time != 1 {
		t.Fatalf("event = %+v, want the retransmitted message", ev)
	}
	if st := b.Stats(); st.Retransmits == 0 {
		t.Fatalf("stats = %+v, want Retransmits > 0", st)
	}
}

func TestResilienceKeepaliveProbes(t *testing.T) {
	a, b := tcpPair(t, TCPOptions{}, TCPOptions{ProbeInterval: 20 * time.Millisecond})

	if err := b.Send(1, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)

	// Idle long enough for several probes; the link must stay healthy.
	time.Sleep(150 * time.Millisecond)
	st := b.Stats()
	if st.Keepalives == 0 {
		t.Fatalf("stats = %+v, want Keepalives > 0 after idle period", st)
	}
	if st.FailureEvents != 0 || st.Reconnects != 0 {
		t.Fatalf("idle probing disturbed the link: %+v", st)
	}
	if err := b.Send(1, vtime.Zero, msg(2)); err != nil {
		t.Fatal(err)
	}
	if ev := recvOne(t, a, 2*time.Second); ev.Msg.(wire.Outcome).TxnVT.Time != 2 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestChaosFlapExactlyOnceFIFO(t *testing.T) {
	faults := NewFaults()
	a, b := tcpPair(t, TCPOptions{}, TCPOptions{Faults: faults})

	const count = 2000
	drain := collect(a)

	stopKiller := make(chan struct{})
	var killerDone sync.WaitGroup
	killerDone.Add(1)
	go func() {
		defer killerDone.Done()
		for {
			select {
			case <-stopKiller:
				return
			case <-time.After(15 * time.Millisecond):
				faults.KillConnections(1)
			}
		}
	}()

	for i := uint64(0); i < count; i++ {
		if err := b.Send(1, vtime.Zero, msg(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i%100 == 0 {
			time.Sleep(time.Millisecond) // keep the queue inside its bound
		}
	}
	// Stop flapping and let the tail drain over a stable link.
	close(stopKiller)
	killerDone.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := b.Stats()
		if p := func() *tcpPeer {
			b.mu.Lock()
			defer b.mu.Unlock()
			return b.conns[1]
		}(); p != nil && p.ackedSeq.Load() >= count && st.FailureEvents == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	msgs, ctrl := drain()

	if len(ctrl) != 0 {
		t.Fatalf("control events during flaps: %+v", ctrl)
	}
	if len(msgs) != count {
		t.Fatalf("delivered %d messages, want %d (exactly-once violated)", len(msgs), count)
	}
	for i, ev := range msgs {
		if got := ev.Msg.(wire.Outcome).TxnVT.Time; got != uint64(i) {
			t.Fatalf("position %d holds message %d (FIFO violated)", i, got)
		}
	}
	st := b.Stats()
	if st.Reconnects == 0 {
		t.Fatal("flap test never reconnected — killer was ineffective")
	}
	t.Logf("stats after %d flaps: %+v", faults.Killed(), st)
}

// TestResilienceRecreatedSenderFreshIncarnation reproduces the
// asymmetric teardown: a declares b failed (its sender record and
// sequence state are torn down) while b never suspects a, so b keeps
// its dedup floor for a's old session. When a recovers b and sends
// again, the recreated sender restarts sequences at 1 — it must also
// announce a fresh incarnation, or b swallows the new envelopes as
// duplicates of the old session and its stale cumulative ack makes a
// prune them locally: silent message loss after EventSiteRecovered.
func TestResilienceRecreatedSenderFreshIncarnation(t *testing.T) {
	a, b := tcpPair(t, TCPOptions{}, TCPOptions{})

	var mu sync.Mutex
	var got []uint64
	go func() {
		for ev := range b.Events() {
			if ev.Kind == EventMessage {
				mu.Lock()
				got = append(got, ev.Msg.(wire.Outcome).TxnVT.Time)
				mu.Unlock()
			}
		}
	}()
	delivered := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}
	waitDelivered := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for delivered() < n && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if d := delivered(); d < n {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("delivered %d messages %v, want %d (lost after recovery)", d, got, n)
		}
	}

	// Raise b's dedup floor for a's first session.
	const warm = 5
	for i := uint64(0); i < warm; i++ {
		if err := a.Send(2, vtime.Zero, msg(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitDelivered(warm)

	// a unilaterally declares b failed; b never suspects a. Tearing the
	// sender down closes the link, so b redials and a adopts the new
	// connection, recreating its sender record for b.
	a.reportFailure(2)
	if ev := recvOne(t, a, 2*time.Second); ev.Kind != EventSiteFailed || ev.Failed != 2 {
		t.Fatalf("event = %+v, want SiteFailed(2)", ev)
	}
	if ev := recvOne(t, a, 2*time.Second); ev.Kind != EventSiteRecovered || ev.Failed != 2 {
		t.Fatalf("event = %+v, want SiteRecovered(2)", ev)
	}

	// The recreated sender numbers its envelopes from 1 again — all of
	// them below b's old floor of 5. Every one must still arrive.
	const after = 3
	for i := uint64(0); i < after; i++ {
		if err := a.Send(2, vtime.Zero, msg(100+i)); err != nil {
			t.Fatalf("send after recovery: %v", err)
		}
	}
	waitDelivered(warm + after)

	mu.Lock()
	tail := append([]uint64(nil), got[warm:]...)
	mu.Unlock()
	for i, v := range tail {
		if v != 100+uint64(i) {
			t.Fatalf("post-recovery messages = %v, want [100 101 102]", tail)
		}
	}
	if st := b.Stats(); st.FailureEvents != 0 {
		t.Fatalf("b suspected a: %+v", st)
	}
}

// TestResilienceFullRetainWindowStopsIntake pins the documented bound:
// when the retransmit window is full, the writer stops pulling from the
// queue even on the idle path. The peer here is a raw sink that reads
// frames but never acks, so without the gate the writer would keep
// draining the queue and retained (and the wire) would grow without
// bound.
func TestResilienceFullRetainWindowStopsIntake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var sunk atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 32<<10)
				for {
					n, err := conn.Read(buf)
					sunk.Add(int64(n))
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	const retain = 8
	b, err := ListenTCPOptions(2, "127.0.0.1:0",
		map[vtime.SiteID]string{1: ln.Addr().String()},
		TCPOptions{
			QueueSize:   retain,
			MaxBatch:    4,
			RetainLimit: retain,
			AckTimeout:  -1, // never presume the silent peer dead
			Suspicion:   SuspicionPolicy{MaxAttempts: -1, Window: -1},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	send := func(n int, base uint64) {
		t.Helper()
		for i := uint64(0); i < uint64(n); i++ {
			if err := b.Send(1, vtime.Zero, msg(base+i)); err != nil {
				t.Fatalf("send %d: %v", base+i, err)
			}
		}
	}
	// waitQuiet waits for the wire to stop moving: three consecutive
	// stable reads mean the writer has sent everything it intends to.
	waitQuiet := func() int64 {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		prev, stable := int64(-1), 0
		for time.Now().Before(deadline) {
			cur := sunk.Load()
			if cur == prev {
				if stable++; stable >= 3 {
					return cur
				}
			} else {
				stable = 0
			}
			prev = cur
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatal("sink never went quiet")
		return 0
	}

	// Phase 1: fill the retransmit window (acks never come). The writer
	// pulls exactly RetainLimit envelopes, sends them, and parks.
	send(100, 0)
	quiet := waitQuiet()
	drops := b.Stats().SendQueueDrops

	// Phase 2: with the window full and fully sent, the writer's idle
	// path must not pull — new envelopes can only occupy the queue's
	// free slots (at most QueueSize) and the rest are shed; nothing new
	// may reach the wire. An ungated writer drains the queue and keeps
	// sending, growing the sink.
	const burst = 100
	send(burst, 1000)
	time.Sleep(200 * time.Millisecond)
	st := b.Stats()
	if n := sunk.Load(); n != quiet {
		t.Fatalf("sink grew from %d to %d bytes: writer pulled past a full retransmit window", quiet, n)
	}
	if got := st.SendQueueDrops - drops; got < burst-retain {
		t.Fatalf("queue drops grew by %d, want >= %d: writer made room it must not have", got, burst-retain)
	}
	if st.FailureEvents != 0 {
		t.Fatalf("withheld acks escalated to failure: %+v", st)
	}
}

// TestBatchEndByteCap pins the frame-payload byte bound: a batch splits
// before it would exceed maxBytes, a lone record always makes progress,
// and the envelope-count cap still applies.
func TestBatchEndByteCap(t *testing.T) {
	rec := func(seq uint64, n int) outRec { return outRec{seq: seq, data: make([]byte, n)} }
	retained := []outRec{rec(1, 10), rec(2, 10), rec(3, 50), rec(4, 10)}
	for _, tc := range []struct {
		name                              string
		sentIdx, maxBatch, maxBytes, want int
	}{
		{"bytes split the batch", 0, 512, 25, 2},
		{"oversized head still ships alone", 2, 512, 25, 3},
		{"count cap still applies", 0, 2, 1 << 20, 2},
		{"everything fits", 0, 512, 1 << 20, 4},
		{"empty tail", 4, 512, 1 << 20, 4},
		{"exact fit is not a split", 0, 512, 20, 2},
	} {
		if end := batchEnd(retained, tc.sentIdx, tc.maxBatch, tc.maxBytes); end != tc.want {
			t.Errorf("%s: batchEnd(sentIdx=%d, maxBatch=%d, maxBytes=%d) = %d, want %d",
				tc.name, tc.sentIdx, tc.maxBatch, tc.maxBytes, end, tc.want)
		}
	}
}

func TestChaosNetworkFaultDropDelay(t *testing.T) {
	faults := NewFaults()
	n := NewNetwork(Config{Faults: faults})
	defer n.Close()
	a, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}

	// First frame to site 2 is lost; the second arrives.
	faults.DropFrames(2, 1)
	if err := a.Send(2, vtime.Zero, msg(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, vtime.Zero, msg(2)); err != nil {
		t.Fatal(err)
	}
	if ev := recvOne(t, b, time.Second); ev.Msg.(wire.Outcome).TxnVT.Time != 2 {
		t.Fatalf("event = %+v, want the second message only", ev)
	}

	// Injected delay slows delivery down.
	faults.DelayFrames(60 * time.Millisecond)
	start := time.Now()
	if err := a.Send(2, vtime.Zero, msg(3)); err != nil {
		t.Fatal(err)
	}
	if ev := recvOne(t, b, time.Second); ev.Msg.(wire.Outcome).TxnVT.Time != 3 {
		t.Fatalf("event = %+v", ev)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delayed frame arrived after %v, want >= 50ms", elapsed)
	}
}
