package transport

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"decaf/internal/ids"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// writeCorpus regenerates the committed seed corpus:
//
//	go test ./internal/transport -run TestWriteSeedCorpus -writecorpus
var writeCorpus = flag.Bool("writecorpus", false, "regenerate seed corpora under testdata/fuzz")

// seedEnvelopes returns representative encoded envelopes.
func seedEnvelopes(fatalf func(format string, args ...any)) [][]byte {
	vt := func(t, s uint64) vtime.VT { return vtime.VT{Time: t, Site: vtime.SiteID(s)} }
	msgs := []wire.Message{
		wire.Outcome{TxnVT: vt(4, 1), Committed: true},
		wire.Confirm{TxnVT: vt(4, 1), ReqID: 7, From: 2, OK: false, Transient: true, Reason: "pending"},
		wire.Write{
			TxnVT: vt(3, 1), Origin: 1,
			Updates: []wire.Update{{
				Target: ids.ObjectID{Site: 2, Seq: 5},
				ReadVT: vt(1, 1), GraphVT: vt(2, 2),
				Op: wire.OpSet{Value: int64(42)},
			}},
			NeedsConfirm: true,
		},
		wire.CommitQuery{TxnVT: vt(9, 3), From: 2},
	}
	var out [][]byte
	for i, m := range msgs {
		b, err := appendEnvelope(nil, vtime.SiteID(i+1), vt(uint64(10+i), uint64(i+1)), m)
		if err != nil {
			fatalf("encode seed envelope %d (%s): %v", i, m.Kind(), err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeEnvelope checks that decodeEnvelope never panics on
// arbitrary frame bytes, reports a sane consumed length, and that
// accepted envelopes survive an encode/decode round trip.
func FuzzDecodeEnvelope(f *testing.F) {
	for _, b := range seedEnvelopes(f.Fatalf) {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, sentAt, msg, used, err := decodeEnvelope(data)
		if err != nil {
			return
		}
		if used < 1 || used > len(data) {
			t.Fatalf("decodeEnvelope used %d of %d bytes", used, len(data))
		}
		re, err := appendEnvelope(nil, from, sentAt, msg)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		from2, sentAt2, msg2, used2, err := decodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if used2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", used2, len(re))
		}
		if from2 != from || sentAt2 != sentAt {
			t.Fatalf("round trip changed the header: (%v,%v) -> (%v,%v)", from, sentAt, from2, sentAt2)
		}
		// NaN payloads make DeepEqual lie; byte-identical re-encodings
		// also pass.
		if !reflect.DeepEqual(msg, msg2) {
			re2, err := appendEnvelope(nil, from2, sentAt2, msg2)
			if err != nil || !bytes.Equal(re, re2) {
				t.Fatalf("round trip changed the message:\n first: %#v\nsecond: %#v", msg, msg2)
			}
		}
	})
}

// TestWriteSeedCorpus writes the seed envelopes as a committed corpus in
// the format `go test fuzz v1`. Run with -writecorpus after changing the
// envelope layout or the seed set.
func TestWriteSeedCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("run with -writecorpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeEnvelope")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, b := range seedEnvelopes(t.Fatalf) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
