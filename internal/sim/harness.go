package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"decaf/internal/detorder"
	"decaf/internal/engine"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wal"
	"decaf/internal/wire"
)

// settleTimeout bounds (in wall-clock time) how long the harness waits
// for every site to quiesce between virtual-clock steps. A run that
// trips it is stuck — a deadlock or an event loop spinning without
// scheduling clock work — and fails with the current step for replay.
const settleTimeout = 10 * time.Second

// maxSteps bounds the number of virtual-clock events per run, the
// virtual-time analogue of a watchdog: a retry livelock or a message
// storm that never drains fails loudly instead of hanging the sweep.
const maxSteps = 200_000

// Result is the outcome of one simulated run.
type Result struct {
	Profile string
	Seed    int64
	// Steps is the number of virtual-clock events fired.
	Steps int
	// Killed lists the crashed sites in kill order (empty when the
	// profile has no crash; cascade profiles kill two).
	Killed []vtime.SiteID
	// Trace is the full event schedule: one line per delivery attempt,
	// submit, and fault transition. Byte-identical across runs of the
	// same (profile, seed) — TestSimReplay pins that.
	Trace string
	// Fingerprint summarizes the final committed state of every shared
	// object at the surviving sites, plus the step count. Also
	// byte-identical across replays.
	Fingerprint string
	// Err is non-nil when any invariant failed: non-convergence,
	// counter-identity violation, undecided transaction, stuck run.
	Err error
	// Stats is each site's final counter snapshot (diagnostics; not
	// part of the replay fingerprint because batch-shape counters vary
	// with harness poll timing).
	Stats map[vtime.SiteID]engine.Stats
}

// opKind is one workload transaction flavor.
type opKind int

const (
	opWrite opKind = iota
	opAdd
	opList
	opAbort
)

func (k opKind) String() string {
	switch k {
	case opWrite:
		return "write"
	case opAdd:
		return "add"
	case opList:
		return "list"
	default:
		return "abort"
	}
}

// errProgrammedAbort is the workload's deliberate user abort.
var errProgrammedAbort = errors.New("sim: programmed abort")

// pendingTxn latches a submitted transaction's result so the harness
// can poll completion without consuming the handle's one-shot channel
// twice.
type pendingTxn struct {
	site vtime.SiteID
	kind opKind
	h    *engine.Handle
	res  engine.Result
	done bool
}

func (p *pendingTxn) poll() bool {
	if p.done {
		return true
	}
	select {
	case r := <-p.h.Done():
		p.res, p.done = r, true
		return true
	default:
		return false
	}
}

// world is one simulated universe: a virtual clock, a network driven
// entirely by clock events, and one engine site per member. All of it
// runs in lock-step — the harness fires exactly one clock event, waits
// for every site to go quiescent, then fires the next — so the whole
// run is a deterministic function of (profile, seed).
type world struct {
	profile Profile
	seed    int64
	clock   *Clock
	net     *transport.Network
	faults  *transport.Faults
	sites   map[vtime.SiteID]*engine.Site
	rng     *rand.Rand

	steps   int
	trace   strings.Builder
	killed  []vtime.SiteID
	offline vtime.SiteID
	pending []*pendingTxn
}

// Run executes one simulated run and checks every invariant. It is safe
// to call concurrently with other Runs (each world is self-contained),
// but a single run is internally sequential by design.
//
// An optional inspect hook runs after the schedule drains but before
// shutdown, with the live sites and the per-site refs of each shared
// object ("reg", "ctr", "lst") — debug tooling dumps version histories
// through it.
func Run(p Profile, seed int64, inspect ...func(sites map[vtime.SiteID]*engine.Site, refs map[string][]engine.ObjRef)) (res Result) {
	p = p.withDefaults()
	w := &world{
		profile: p,
		seed:    seed,
		clock:   NewClock(),
		faults:  transport.NewFaults(),
		sites:   map[vtime.SiteID]*engine.Site{},
		// Decorrelate the workload stream from the network's jitter
		// stream (which NewNetwork seeds with the raw seed).
		rng: rand.New(rand.NewSource(seed ^ 0x5bf03635)),
	}
	res = Result{Profile: p.Name, Seed: seed}
	// Named return: the deferred capture below must mutate the value
	// the caller sees, even on early-error returns.
	defer func() {
		res.Steps = w.steps
		res.Killed = w.killed
		res.Trace = w.trace.String()
	}()

	w.net = transport.NewNetwork(transport.Config{
		Latency:   p.Latency,
		Jitter:    p.Jitter,
		Seed:      seed,
		Faults:    w.faults,
		Clock:     w.clock,
		Duplicate: p.Duplicate,
		OnDeliver: w.traceDeliver,
	})
	defer w.net.Close()

	// Offline runs give every site a WAL (anti-entropy ships from it)
	// on scratch disk. SyncNever: the simulation studies interleavings,
	// not fsync cost, and nothing crashes mid-run. File contents are a
	// pure function of the deterministic schedule; paths never enter
	// the trace.
	var logs []*wal.Log
	defer func() {
		for _, l := range logs {
			l.Close()
		}
	}()
	for i := 1; i <= p.Sites; i++ {
		id := vtime.SiteID(i)
		ep, err := w.net.Endpoint(id)
		if err != nil {
			res.Err = fmt.Errorf("sim: endpoint %d: %w", i, err)
			return res
		}
		opts := engine.Options{
			Scheduler:       w.clock,
			RetryDelay:      p.RetryDelay,
			MaxRetries:      p.MaxRetries,
			DisableFastPath: p.DisableFastPath,
			// Pin the commit pipeline width: the default is GOMAXPROCS,
			// which would make behavior machine-shaped.
			CommitWorkers: 2,
		}
		if p.Offline {
			dir, err := os.MkdirTemp("", "decaf-sim-wal-")
			if err != nil {
				res.Err = fmt.Errorf("sim: wal dir for S%d: %w", i, err)
				return res
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				res.Err = fmt.Errorf("sim: wal for S%d: %w", i, err)
				return res
			}
			logs = append(logs, l)
			opts.WAL = l
			// Longer than the outage (span/4 .. 3span/4), so the parked
			// failover is released by the recovery report, exercising
			// the cancel path — not by the grace deadline.
			opts.OfflineGrace = p.Span
		}
		s := engine.NewSite(ep, opts)
		s.Start()
		w.sites[id] = s
	}
	defer func() {
		// ID-sorted so shutdown (which can surface latent races and
		// panics) replays like everything else.
		for _, id := range detorder.Sorted(w.sites) {
			w.sites[id].Stop()
		}
	}()

	refs, err := w.setup()
	if err != nil {
		res.Err = err
		return res
	}

	w.scheduleWorkload(refs)
	w.scheduleFaults()

	if err := w.drain(); err != nil {
		res.Err = err
		return res
	}

	res.Err = w.check(refs)
	res.Fingerprint = w.fingerprint(refs)
	res.Stats = map[vtime.SiteID]engine.Stats{}
	for id, s := range w.sites {
		res.Stats[id] = s.Stats()
	}
	for _, fn := range inspect {
		fn(w.sites, refs)
	}
	return res
}

// traceDeliver records one line per network delivery attempt. It runs
// on the goroutine firing clock events — the harness goroutine — so no
// locking is needed.
func (w *world) traceDeliver(to vtime.SiteID, ev transport.Event) {
	switch ev.Kind {
	case transport.EventMessage:
		fmt.Fprintf(&w.trace, "%5d %9s S%d->S%d %s sent=%s\n",
			w.steps, w.clock.Now(), ev.From, to, msgName(ev.Msg), ev.SentAt)
	case transport.EventSiteFailed:
		fmt.Fprintf(&w.trace, "%5d %9s ->S%d SITE-FAILED S%d\n",
			w.steps, w.clock.Now(), to, ev.Failed)
	case transport.EventSiteRecovered:
		fmt.Fprintf(&w.trace, "%5d %9s ->S%d SITE-RECOVERED S%d\n",
			w.steps, w.clock.Now(), to, ev.Failed)
	default:
		fmt.Fprintf(&w.trace, "%5d %9s ->S%d event=%d\n",
			w.steps, w.clock.Now(), to, ev.Kind)
	}
}

func (w *world) tracef(format string, args ...any) {
	fmt.Fprintf(&w.trace, "%5d %9s %s\n",
		w.steps, w.clock.Now(), fmt.Sprintf(format, args...))
}

func msgName(m wire.Message) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", m), "wire.")
}

// settle waits (in wall-clock time) until every site's event loop is
// parked over empty queues with nothing staged. Between two clock
// events this always terminates: sites only regain work when the
// harness fires the next event.
func (w *world) settle() error {
	// The watchdog deadline is a liveness check on the host, not
	// simulation state: it only decides when a wedged run is declared
	// dead, never what a live run computes.
	deadline := time.Now().Add(settleTimeout) //decaf:ignore wallclock liveness watchdog; never feeds simulation state
	for {
		quiet := true
		for i := 1; i <= w.profile.Sites; i++ {
			if !w.sites[vtime.SiteID(i)].Quiescent() {
				quiet = false
				break
			}
		}
		if quiet {
			return nil
		}
		if time.Now().After(deadline) { //decaf:ignore wallclock liveness watchdog; never feeds simulation state
			return fmt.Errorf("sim: sites never quiesced at step %d (wedged event loop?)", w.steps)
		}
		runtime.Gosched()
	}
}

// stepOne fires the next virtual-clock event; false when the clock has
// drained.
func (w *world) stepOne() bool {
	w.steps++
	if w.clock.Step() {
		return true
	}
	w.steps--
	return false
}

// driveUntil alternates settle and single steps until cond holds;
// cond is evaluated only at quiescent points.
func (w *world) driveUntil(what string, cond func() bool) error {
	for {
		if err := w.settle(); err != nil {
			return err
		}
		if cond() {
			return nil
		}
		if !w.stepOne() {
			return fmt.Errorf("sim: clock drained before %s (step %d)", what, w.steps)
		}
		if w.steps > maxSteps {
			return fmt.Errorf("sim: step budget exceeded waiting for %s", what)
		}
	}
}

// drain runs the schedule to exhaustion: settle, fire, repeat until the
// clock is empty and every site is quiescent.
func (w *world) drain() error {
	for {
		if err := w.settle(); err != nil {
			return err
		}
		if !w.stepOne() {
			return nil
		}
		if w.steps > maxSteps {
			return fmt.Errorf("sim: step budget exceeded (livelock?)")
		}
	}
}

// setup creates the three shared objects at site 1 and joins every
// other site into their replica relationships, driving the clock until
// the replication graphs converge everywhere. The setup traffic is part
// of the deterministic trace.
func (w *world) setup() (map[string][]engine.ObjRef, error) {
	refs := map[string][]engine.ObjRef{}
	for _, obj := range []struct {
		name    string
		kind    engine.Kind
		initial any
	}{
		{"reg", engine.KindInt, int64(0)},
		{"ctr", engine.KindInt, int64(0)},
		{"lst", engine.KindList, nil},
	} {
		bysite := make([]engine.ObjRef, w.profile.Sites+1)
		first, err := w.sites[1].CreateObject(obj.kind, obj.name, obj.initial)
		if err != nil {
			return nil, fmt.Errorf("sim: create %s: %w", obj.name, err)
		}
		bysite[1] = first
		for i := 2; i <= w.profile.Sites; i++ {
			id := vtime.SiteID(i)
			r, err := w.sites[id].CreateObject(obj.kind, obj.name, obj.initial)
			if err != nil {
				return nil, fmt.Errorf("sim: create %s at S%d: %w", obj.name, i, err)
			}
			join := &pendingTxn{site: id, h: w.sites[id].JoinObject(r, 1, first.ID())}
			if err := w.driveUntil("join decision", join.poll); err != nil {
				return nil, err
			}
			if join.res.Err != nil || !join.res.Committed {
				return nil, fmt.Errorf("sim: join %s from S%d: %+v", obj.name, i, join.res)
			}
			bysite[i] = r
		}
		refs[obj.name] = bysite
	}
	// Joins commit at their origin before every member has applied the
	// merged graph; drive until all members agree.
	err := w.driveUntil("replica graphs converged", func() bool {
		for _, bysite := range refs {
			for i := 1; i <= w.profile.Sites; i++ {
				got, err := w.sites[vtime.SiteID(i)].ReplicaSites(bysite[i])
				if err != nil || len(got) != w.profile.Sites {
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	w.tracef("SETUP-DONE sites=%d", w.profile.Sites)
	return refs, nil
}

// scheduleWorkload draws Ops transactions from the mix and schedules
// their submission at seed-chosen virtual times across the span.
func (w *world) scheduleWorkload(refs map[string][]engine.ObjRef) {
	p := w.profile
	for i := 0; i < p.Ops; i++ {
		site := vtime.SiteID(1 + w.rng.Intn(p.Sites))
		at := time.Duration(w.rng.Int63n(int64(p.Span)))
		kind := w.pickOp()
		val := w.rng.Int63n(1000)
		txn := w.buildTxn(kind, site, val, refs)
		n := i
		w.clock.AfterFunc(at, func() {
			w.tracef("SUBMIT S%d op=%s val=%d n=%d", site, kind, val, n)
			w.pending = append(w.pending, &pendingTxn{
				site: site, kind: kind, h: w.sites[site].Submit(txn),
			})
		})
	}
}

func (w *world) pickOp() opKind {
	m := w.profile.Mix
	n := w.rng.Intn(m.total())
	switch {
	case n < m.Write:
		return opWrite
	case n < m.Write+m.Add:
		return opAdd
	case n < m.Write+m.Add+m.List:
		return opList
	default:
		return opAbort
	}
}

func (w *world) buildTxn(kind opKind, site vtime.SiteID, val int64, refs map[string][]engine.ObjRef) *engine.Txn {
	reg := refs["reg"][site]
	ctr := refs["ctr"][site]
	lst := refs["lst"][site]
	switch kind {
	case opWrite:
		return &engine.Txn{Name: "rmw", Execute: func(tx *engine.Tx) error {
			v, err := tx.Read(reg)
			if err != nil {
				return err
			}
			cur, _ := v.(int64)
			return tx.Write(reg, cur+val)
		}}
	case opAdd:
		return &engine.Txn{Name: "add", Execute: func(tx *engine.Tx) error {
			return tx.Add(ctr, val)
		}}
	case opList:
		return &engine.Txn{Name: "append", Execute: func(tx *engine.Tx) error {
			_, err := tx.ListAppend(lst, wire.ChildDecl{Kind: wire.KindInt, Value: val})
			return err
		}}
	default:
		return &engine.Txn{Name: "abort", Execute: func(tx *engine.Tx) error {
			if _, err := tx.Read(reg); err != nil {
				return err
			}
			return errProgrammedAbort
		}}
	}
}

// scheduleFaults schedules the profile's crash and latency flap as
// clock events, so fault timing is part of the seeded schedule.
func (w *world) scheduleFaults() {
	p := w.profile
	if p.Flap {
		// A latency spike through the middle third of the schedule:
		// messages sent during the window land long after later
		// traffic sent outside it (per-pair FIFO still holds).
		on := p.Span/3 + time.Duration(w.rng.Int63n(int64(p.Span/4)))
		off := on + p.Span/4
		spike := 8 * p.Latency
		w.clock.AfterFunc(on, func() {
			w.tracef("FLAP-ON +%s", spike)
			w.faults.DelayFrames(spike)
		})
		w.clock.AfterFunc(off, func() {
			w.tracef("FLAP-OFF")
			w.faults.DelayFrames(0)
		})
	}
	if p.Crash {
		// Kill a seed-chosen site (possibly site 1, every object's
		// initial primary — that path exercises the §3.4 survivor
		// repair consensus) midway through the schedule.
		victim := vtime.SiteID(1 + w.rng.Intn(p.Sites))
		at := p.Span/2 + time.Duration(w.rng.Int63n(int64(p.Span/2)))
		w.clock.AfterFunc(at, func() { w.kill(victim) })
	}
	if p.Cascade {
		// Cascading failure: kill every object's initial primary
		// midway, then kill site 2 — the lowest-ranked survivor, which
		// every peer expects to coordinate site 1's repair — a couple
		// of latency draws later. Depending on the seed the second kill
		// lands while the repair is mid-ballot (forcing a takeover) or
		// just after it decided (forcing a cascaded repair of a graph
		// whose fresh primary is already dead); both must converge.
		first := p.Span / 2
		gap := 2*p.Latency + time.Duration(w.rng.Int63n(int64(4*p.Latency)))
		w.clock.AfterFunc(first, func() { w.kill(1) })
		w.clock.AfterFunc(first+gap, func() { w.kill(2) })
	}
	if p.Offline {
		// A seed-chosen non-primary site goes weakly connected for the
		// middle half of the schedule: partitioned from every peer and
		// falsely suspected, but running the whole time. Site 1 stays
		// out of the draw so every object's primary keeps deciding and
		// the victim accumulates a genuine optimistic tail.
		victim := vtime.SiteID(2 + w.rng.Intn(p.Sites-1))
		w.clock.AfterFunc(p.Span/4, func() {
			w.tracef("OFFLINE S%d", victim)
			w.offline = victim
			for i := 1; i <= p.Sites; i++ {
				id := vtime.SiteID(i)
				if id == victim {
					continue
				}
				w.net.Partition(victim, id)
				w.sites[id].SetPeerDisconnected(victim, true)
				w.sites[victim].SetPeerDisconnected(id, true)
			}
			// Suspect's dispatch path statically reaches the real-timer
			// memLink pump, but only on the clock==nil branch; the
			// harness always injects the virtual clock.
			//decaf:ignore wallclock virtual clock configured; real-time branch unreachable
			w.net.Suspect(victim) //decaf:ignore timers virtual clock configured; real-time branch unreachable
		})
		w.clock.AfterFunc(3*p.Span/4, func() {
			w.tracef("RECONNECT S%d", victim)
			for i := 1; i <= p.Sites; i++ {
				id := vtime.SiteID(i)
				if id == victim {
					continue
				}
				w.net.Heal(victim, id)
				w.sites[id].SetPeerDisconnected(victim, false)
				w.sites[victim].SetPeerDisconnected(id, false)
			}
			// The recovery report reaches every peer, which unparks the
			// deferred failover and starts an anti-entropy session with
			// the returning site.
			//decaf:ignore wallclock virtual clock configured; real-time branch unreachable
			w.net.Unsuspect(victim) //decaf:ignore timers virtual clock configured; real-time branch unreachable
		})
	}
}

// kill crashes victim now: records it, then detaches it from the
// network (which also drops the victim's in-flight messages at their
// delivery time and reports the failure to every peer).
func (w *world) kill(victim vtime.SiteID) {
	w.tracef("KILL S%d", victim)
	w.killed = append(w.killed, victim)
	// Kill's dispatch path statically reaches the real-timer memLink
	// pump, but only on the clock==nil branch; the harness always
	// injects the virtual clock.
	//decaf:ignore wallclock virtual clock configured; real-time branch unreachable
	w.net.Kill(victim) //decaf:ignore timers virtual clock configured; real-time branch unreachable
}

// alive reports whether site survived the run.
func (w *world) alive(site vtime.SiteID) bool {
	for _, k := range w.killed {
		if k == site {
			return false
		}
	}
	return true
}

// KilledLabel renders a kill list for traces and fingerprints.
func KilledLabel(killed []vtime.SiteID) string {
	if len(killed) == 0 {
		return "none"
	}
	parts := make([]string, len(killed))
	for i, k := range killed {
		parts[i] = fmt.Sprintf("S%d", k)
	}
	return strings.Join(parts, ",")
}

// check asserts every end-of-run invariant and returns them joined.
func (w *world) check(refs map[string][]engine.ObjRef) error {
	var problems []string

	// 1. Every transaction submitted at a surviving site reached a
	// decision. (Transactions in flight at the crashed site may hang
	// forever — their site is gone — and are skipped.)
	abandoned := map[vtime.SiteID]uint64{}
	for i, p := range w.pending {
		if !w.alive(p.site) {
			p.poll()
			continue
		}
		if !p.poll() {
			problems = append(problems,
				fmt.Sprintf("txn %d (%s at S%d) undecided after quiescence", i, p.kind, p.site))
			continue
		}
		if errors.Is(p.res.Err, engine.ErrTooManyRetries) {
			abandoned[p.site]++
		}
	}

	// 2. No surviving site holds an undecided guessed transaction.
	for i := 1; i <= w.profile.Sites; i++ {
		id := vtime.SiteID(i)
		if !w.alive(id) {
			continue
		}
		if n := w.sites[id].PendingUndecided(); n != 0 {
			problems = append(problems,
				fmt.Sprintf("S%d: %d transactions still undecided", i, n))
		}
	}

	// 3. Convergence: committed state identical at every surviving
	// site, and current == committed (no optimistic residue survives
	// quiescence — an abandoned residual here is exactly the kind of
	// interleaving bug the sweep exists to catch).
	for _, name := range []string{"reg", "ctr", "lst"} {
		bysite := refs[name]
		want := ""
		for i := 1; i <= w.profile.Sites; i++ {
			id := vtime.SiteID(i)
			if !w.alive(id) {
				continue
			}
			cm, err := w.sites[id].ReadCommitted(bysite[i])
			if err != nil {
				problems = append(problems, fmt.Sprintf("S%d: read committed %s: %v", i, name, err))
				continue
			}
			cur, err := w.sites[id].ReadCurrent(bysite[i])
			if err != nil {
				problems = append(problems, fmt.Sprintf("S%d: read current %s: %v", i, name, err))
				continue
			}
			got := fmt.Sprintf("%#v", cm)
			if want == "" {
				want = got
			} else if got != want {
				problems = append(problems,
					fmt.Sprintf("%s diverged: S%d committed %s, earlier site committed %s", name, i, got, want))
			}
			if curs := fmt.Sprintf("%#v", cur); curs != got {
				problems = append(problems,
					fmt.Sprintf("S%d %s: current %s != committed %s after quiescence", i, name, curs, got))
			}
		}
	}

	// 4. Obs counter identities (PR 4) at every surviving site.
	for i := 1; i <= w.profile.Sites; i++ {
		id := vtime.SiteID(i)
		if !w.alive(id) {
			continue
		}
		st := w.sites[id].Stats()
		for _, v := range st.IdentityViolations(abandoned[id]) {
			problems = append(problems, fmt.Sprintf("S%d: %s", i, v))
		}
	}

	// 5. Offline runs (§13): a disconnected peer is not a failed one —
	// every transport failure report must park, none may run §3.4
	// failover, and at least one report must actually have parked
	// (otherwise the scenario never exercised the suspicion policy).
	if w.profile.Offline {
		var parked uint64
		for i := 1; i <= w.profile.Sites; i++ {
			st := w.sites[vtime.SiteID(i)].Stats()
			parked += st.FailoversParked
			if st.FailoversRun != 0 {
				problems = append(problems,
					fmt.Sprintf("S%d: %d spurious failover(s) ran for the disconnected peer", i, st.FailoversRun))
			}
		}
		if parked == 0 {
			problems = append(problems, "offline: no failover was parked (suspicion never reached the engine)")
		}
	}

	if len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	return fmt.Errorf("sim: %d invariant violation(s):\n  %s",
		len(problems), strings.Join(problems, "\n  "))
}

// fingerprint summarizes final committed state for replay comparison.
func (w *world) fingerprint(refs map[string][]engine.ObjRef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d killed=%s offline=S%d", w.steps, KilledLabel(w.killed), w.offline)
	for _, name := range []string{"reg", "ctr", "lst"} {
		for i := 1; i <= w.profile.Sites; i++ {
			id := vtime.SiteID(i)
			if !w.alive(id) {
				continue
			}
			v, err := w.sites[id].ReadCommitted(refs[name][i])
			if err != nil {
				fmt.Fprintf(&b, " %s@S%d=err:%v", name, i, err)
				continue
			}
			fmt.Fprintf(&b, " %s@S%d=%#v", name, i, v)
		}
	}
	return b.String()
}
