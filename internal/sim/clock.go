// Package sim is the deterministic simulation harness: a seeded
// virtual-time scheduler over the simulated transport.Network, a
// workload/fault driver, and an interleaving explorer.
//
// The core idea (after "Experiments in Model-Checking Optimistic
// Replication Algorithms", PAPERS.md) is to make a whole multi-site run
// a pure function of one RNG seed. Three ingredients:
//
//   - Clock, below: an event-queue virtual clock. Every deferred action
//     — message delivery, failure notification, conflict-retry delay,
//     workload submission, fault injection — is an event on one heap,
//     ordered by (virtual due time, schedule order). Nothing in the
//     system sleeps on a real timer.
//   - Lock-step execution: the harness fires exactly one event, then
//     waits until every site is Quiescent() before firing the next, so
//     sites never race each other and the RNG draw order is fixed.
//   - Deterministic protocol code: engine fan-out iterates site/VT maps
//     in sorted order (see engine's sortedSites/sortedVTs), so the
//     messages a step emits — and hence the whole delivery schedule —
//     depend only on state.
//
// sim is the second sanctioned wall-clock reader (after internal/obs):
// it may read real time for watchdogs and pacing of its own harness,
// never for anything the simulated system observes.
package sim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is a deterministic virtual-time event queue. It implements both
// transport.Clock (message delivery) and engine.Scheduler (retry
// delays), so one seeded schedule drives the entire system.
//
// Virtual time only advances in Step, which pops the earliest scheduled
// event and runs it. Events scheduled for the same instant run in
// schedule order. All methods are safe for concurrent use, but Step is
// meant to be called from a single driver goroutine.
type Clock struct {
	mu   sync.Mutex
	now  time.Duration // guarded by mu
	seq  uint64        // guarded by mu; total events ever scheduled
	live int           // guarded by mu; scheduled minus canceled/run
	heap eventHeap     // guarded by mu
}

type event struct {
	due      time.Duration
	seq      uint64
	fn       func()
	canceled bool
}

// NewClock returns a virtual clock at time zero.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time (an offset from the start of the
// run, not a wall-clock reading).
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn to run at Now()+d (d < 0 reads as 0). fn runs
// on the driver goroutine inside Step, never concurrently with another
// scheduled fn. The returned cancel removes the event if it has not run
// yet.
func (c *Clock) AfterFunc(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	ev := &event{due: c.now + d, seq: c.seq, fn: fn}
	c.seq++
	c.live++
	heap.Push(&c.heap, ev)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if !ev.canceled && ev.fn != nil {
			ev.canceled = true
			ev.fn = nil
			c.live--
		}
	}
}

// Step pops the earliest scheduled event, advances virtual time to its
// due instant, and runs it. It reports false (without side effects)
// when no events remain.
func (c *Clock) Step() bool {
	for {
		c.mu.Lock()
		if c.heap.Len() == 0 {
			c.mu.Unlock()
			return false
		}
		ev := heap.Pop(&c.heap).(*event)
		if ev.canceled {
			c.mu.Unlock()
			continue
		}
		c.now = ev.due
		fn := ev.fn
		ev.fn = nil
		c.live--
		c.mu.Unlock()
		fn()
		return true
	}
}

// Len reports how many scheduled events are pending (canceled events
// excluded).
func (c *Clock) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// eventHeap is a min-heap ordered by (due, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
