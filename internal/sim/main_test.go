package sim

import (
	"testing"

	"decaf/internal/testutil"
)

// TestMain fails the package when a run leaks goroutines — a site or
// network that outlives its world would surface here.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
