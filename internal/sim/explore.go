package sim

// Explore runs every (profile, seed) pair and returns the failing
// results, in order. A failing result carries the seed and the full
// event trace, so one line reproduces it:
//
//	go run ./cmd/decaf-sim -profile <name> -replay <seed>
func Explore(profiles []Profile, seeds []int64) []Result {
	var failures []Result
	for _, p := range profiles {
		for _, seed := range seeds {
			if r := Run(p, seed); r.Err != nil {
				failures = append(failures, r)
			}
		}
	}
	return failures
}

// Seeds returns count consecutive seeds starting at start.
func Seeds(start int64, count int) []int64 {
	out := make([]int64, count)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}
