package sim

import (
	"fmt"
	"strings"
)

// traceTail returns the last n lines of a trace — the compact view a
// failure report prints so the interesting suffix (the events leading
// into the violation) is visible without dumping thousands of lines.
func traceTail(trace string, n int) string {
	lines := strings.Split(strings.TrimRight(trace, "\n"), "\n")
	if len(lines) > n {
		lines = append([]string{fmt.Sprintf("... (%d earlier lines)", len(lines)-n)}, lines[len(lines)-n:]...)
	}
	return strings.Join(lines, "\n")
}

// firstDiff locates the first line where two traces disagree.
func firstDiff(a, b string) string {
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run A: %s\n  run B: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("traces are a prefix of each other (lengths %d vs %d lines)", len(al), len(bl))
}
