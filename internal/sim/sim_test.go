package sim

import (
	"fmt"
	"testing"
)

// TestSimReplay pins determinism: the same (profile, seed) must produce
// a byte-identical event trace and final replica state across two
// independent runs. Any diff means a nondeterminism leak — an unsorted
// map iteration feeding the network, an unserialized RNG draw, a real
// timer — and the diff's first line points at the guilty event.
func TestSimReplay(t *testing.T) {
	cases := []struct {
		profile string
		seed    int64
	}{
		{"smoke", 1},
		{"smoke", 7},
		{"contend", 3},
		{"faulty", 2},
		{"faulty", 11},
		{"fastpath-faulty", 5},
		{"nofast", 4},
		// Weakly connected operation (§13): partition + false suspicion,
		// reconnect, anti-entropy. Pins that the WAL/sync machinery is
		// deterministic under the virtual clock.
		{"offline", 6},
		{"offline", 13},
		// Cascading failure (§14): the primary dies, then the repair
		// coordinator dies mid-ballot (seed 1: S2's RepairPrepare is in
		// flight when it is killed; S3 takes over with a higher ballot,
		// decides, and cascade-repairs S2). Pins that the consensus
		// takeover and the cascaded second repair replay exactly.
		{"cascade", 1},
		{"cascade", 9},
		// Regressions: seeds that found real engine bugs (DESIGN.md §12).
		{"fastpath-faulty", 93}, // drainPending re-entrancy stack overflow
		{"nofast", 107},         // duplicated Write re-folded into GC merge base
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/%d", tc.profile, tc.seed), func(t *testing.T) {
			p, ok := ProfileByName(tc.profile)
			if !ok {
				t.Fatalf("unknown profile %q", tc.profile)
			}
			a := Run(p, tc.seed)
			if a.Err != nil {
				t.Fatalf("seed %d failed invariants:\n%v\ntrace tail:\n%s",
					tc.seed, a.Err, traceTail(a.Trace, 30))
			}
			b := Run(p, tc.seed)
			if a.Trace != b.Trace {
				t.Fatalf("seed %d: traces differ across replays\nfirst diff:\n%s",
					tc.seed, firstDiff(a.Trace, b.Trace))
			}
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("seed %d: fingerprints differ:\n  %s\n  %s",
					tc.seed, a.Fingerprint, b.Fingerprint)
			}
			if a.Trace == "" || a.Fingerprint == "" {
				t.Fatalf("seed %d: empty trace or fingerprint", tc.seed)
			}
		})
	}
}

// TestExploreSweep is the in-tree slice of the exploration sweep: a few
// seeds per profile on every `go test`, more with -short off. The CI
// sim job runs the full 200+-seed budget through cmd/decaf-sim.
func TestExploreSweep(t *testing.T) {
	seeds := Seeds(100, 8)
	if testing.Short() {
		seeds = Seeds(100, 2)
	}
	failures := Explore(Profiles(), seeds)
	for _, f := range failures {
		t.Errorf("profile %s seed %d failed:\n%v\nreplay: go run ./cmd/decaf-sim -profile %s -replay %d\ntrace tail:\n%s",
			f.Profile, f.Seed, f.Err, f.Profile, f.Seed, traceTail(f.Trace, 30))
	}
}

// TestGVTSim drives the baseline GVT protocol under the virtual clock:
// per-site GVT estimates never regress (asserted inside RunGVT at every
// quiescent point) and committed registers converge. Replays must be
// byte-identical, same as the engine runs.
func TestGVTSim(t *testing.T) {
	p := GVTProfile{Name: "ring3", Sites: 3, Jitter: 4e6}
	for _, seed := range []int64{1, 2, 9} {
		a := RunGVT(p, seed)
		if a.Err != nil {
			t.Fatalf("gvt seed %d: %v\ntrace tail:\n%s", seed, a.Err, traceTail(a.Trace, 30))
		}
		b := RunGVT(p, seed)
		if a.Trace != b.Trace {
			t.Fatalf("gvt seed %d: traces differ\nfirst diff:\n%s", seed, firstDiff(a.Trace, b.Trace))
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("gvt seed %d: fingerprints differ:\n  %s\n  %s", seed, a.Fingerprint, b.Fingerprint)
		}
	}
}
