package sim

import "time"

// Mix weights the transaction kinds a workload draws from. Weights are
// relative; a zero weight disables the kind.
type Mix struct {
	// Write is a read-modify-write of one shared register all sites
	// contend on — the guessed (RL) path, conflict-heavy by design.
	Write int
	// Add is a blind increment of a shared counter — the commutative
	// fast path when enabled, an ordinary guess when disabled.
	Add int
	// List appends to a shared list — the composite path (child
	// creation, stable-position ops, structural merge on commit).
	List int
	// Abort reads the register then aborts programmatically —
	// exercises the programmed-abort bookkeeping and rollback.
	Abort int
}

func (m Mix) total() int { return m.Write + m.Add + m.List + m.Abort }

// Profile is one simulated scenario: topology, timing distribution,
// fault plan, and workload shape. Run(profile, seed) is a pure function
// of (Profile, seed) — same inputs, byte-identical event trace.
type Profile struct {
	Name string

	// Sites is the number of engine sites (IDs 1..Sites). Site 1
	// creates every shared object, so it is each object's initial
	// primary.
	Sites int

	// Latency and Jitter parameterize the per-message delay draw;
	// Duplicate re-delivers each message with this probability after
	// one extra latency draw (out of band, past newer messages).
	Latency   time.Duration
	Jitter    time.Duration
	Duplicate float64

	// RetryDelay and MaxRetries configure the engine's conflict-retry
	// loop. With a virtual clock the delay is free, so nonzero values
	// cost nothing and spread retries across the schedule.
	RetryDelay time.Duration
	MaxRetries int

	// Ops transactions are drawn from Mix and scheduled at uniform
	// random virtual times in [0, Span) after setup.
	Ops  int
	Span time.Duration
	Mix  Mix

	// Crash kills one seed-chosen site (possibly the primary, which
	// forces the §3.4 survivor consensus repair) midway through the
	// schedule. Flap injects a latency spike window (DelayFrames on,
	// then off) — the in-memory transport has no retransmit layer, so
	// a hard partition would wedge the protocol rather than test it;
	// a flap reorders aggressively without losing messages.
	Crash bool
	Flap  bool

	// DisableFastPath routes commutative transactions through the
	// ordinary guess/confirm protocol.
	DisableFastPath bool

	// Cascade (needs 3+ sites, meant for 5) kills site 1 — every
	// object's initial primary — midway through the schedule, then
	// kills site 2, the lowest-ranked survivor that every peer expects
	// to coordinate the repair, a couple of latency draws later.
	// Exercises the consensus takeover (a higher ballot from the next
	// survivor) and the cascaded repair of the second failure
	// (DESIGN.md §14).
	Cascade bool

	// Offline takes one seed-chosen non-primary site weakly connected
	// midway through the schedule: a silent partition from every peer
	// plus a failure-detector false positive (Suspect), with the
	// suspicion policy pre-warned via SetPeerDisconnected so the report
	// parks instead of running §3.4 failover. The site reconnects at
	// 3/4 span and anti-entropy syncs (DESIGN.md §13). Every site gets
	// its own WAL; the run must converge with zero failovers run.
	Offline bool
}

// withDefaults fills zero fields with workable values.
func (p Profile) withDefaults() Profile {
	if p.Sites == 0 {
		p.Sites = 3
	}
	if p.Latency == 0 {
		p.Latency = 5 * time.Millisecond
	}
	if p.Ops == 0 {
		p.Ops = 24
	}
	if p.Span == 0 {
		p.Span = 40 * p.Latency
	}
	if p.Mix.total() == 0 {
		p.Mix = Mix{Write: 3, Add: 3, List: 2, Abort: 1}
	}
	return p
}

// Profiles returns the standard exploration set: each profile stresses
// a different protocol surface, and together they cover the guessed,
// fast-path, and composite paths under reordering, duplication, latency
// flaps, and fail-stop crashes.
func Profiles() []Profile {
	return []Profile{
		{
			// Baseline: mixed workload, jittered delivery, no faults.
			Name: "smoke", Sites: 3,
			Latency: 5 * time.Millisecond, Jitter: 4 * time.Millisecond,
			Ops: 24,
		},
		{
			// High contention on one register: guess/confirm conflicts,
			// retries, and retry-budget exhaustion.
			Name: "contend", Sites: 4,
			Latency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond,
			RetryDelay: 4 * time.Millisecond, MaxRetries: 6,
			Ops: 32, Mix: Mix{Write: 6, Add: 1, List: 1},
		},
		{
			// Full fault menu over the mixed workload: crash one site
			// (repair), latency flap (reordering), duplicates.
			Name: "faulty", Sites: 4,
			Latency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond,
			Duplicate: 0.08, RetryDelay: 3 * time.Millisecond,
			Ops: 28, Crash: true, Flap: true,
		},
		{
			// Commutative fast path under faults: mostly adds and list
			// appends, so FastWrite folding races GC merge-bases and
			// demotion races in-flight confirms.
			Name: "fastpath-faulty", Sites: 3,
			Latency: 4 * time.Millisecond, Jitter: 6 * time.Millisecond,
			Duplicate: 0.10,
			Ops:       30, Mix: Mix{Write: 1, Add: 5, List: 3},
			Crash: true, Flap: true,
		},
		{
			// Weakly connected operation (§13): one site goes silent
			// mid-run — partitioned and suspected, but not crashed —
			// then reconnects and anti-entropy syncs from its peers'
			// WALs. Failover must park for the whole outage, never run.
			Name: "offline", Sites: 3,
			Latency: 5 * time.Millisecond, Jitter: 4 * time.Millisecond,
			RetryDelay: 3 * time.Millisecond,
			Ops:        24, Offline: true,
		},
		{
			// Cascading failure: the primary dies mid-schedule, then the
			// repair coordinator dies while that repair is in flight (or
			// freshly decided — the gap is a seeded draw). A survivor
			// must take over the ballot, settle the orphans, and
			// cascade-repair the second failure (DESIGN.md §14).
			Name: "cascade", Sites: 5,
			Latency: 5 * time.Millisecond, Jitter: 4 * time.Millisecond,
			Duplicate: 0.05, RetryDelay: 3 * time.Millisecond,
			Ops: 28, Cascade: true,
		},
		{
			// Same fault menu with the fast path ablated: every
			// commutative op takes the guess/confirm protocol.
			Name: "nofast", Sites: 3,
			Latency: 4 * time.Millisecond, Jitter: 6 * time.Millisecond,
			Duplicate: 0.06, RetryDelay: 2 * time.Millisecond,
			Ops: 24, Crash: true, Flap: true,
			DisableFastPath: true,
		},
	}
}

// ProfileByName returns the standard profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
