package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"decaf/internal/gvt"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// GVTProfile parameterizes a simulated run of the baseline GVT-swept
// protocol (internal/gvt): a token ring of Sites members issuing Writes
// blind writes to a handful of shared registers.
type GVTProfile struct {
	Name    string
	Sites   int
	Latency time.Duration
	Jitter  time.Duration
	Writes  int
	Span    time.Duration
}

func (p GVTProfile) withDefaults() GVTProfile {
	if p.Sites == 0 {
		p.Sites = 3
	}
	if p.Latency == 0 {
		p.Latency = 5 * time.Millisecond
	}
	if p.Writes == 0 {
		p.Writes = 12
	}
	if p.Span == 0 {
		p.Span = 30 * p.Latency
	}
	return p
}

// RunGVT simulates one seeded run of the GVT baseline and asserts its
// two core invariants: every site's GVT estimate is monotonically
// non-decreasing, and once every write has committed the committed
// register maps are identical at all sites.
//
// Unlike the engine, a GVT group never goes globally idle — the sweep
// token circulates forever — so the run is bounded by a step budget and
// terminates on convergence, not on clock exhaustion.
func RunGVT(p GVTProfile, seed int64) (res Result) {
	p = p.withDefaults()
	// Named return: the deferred trace capture must mutate the value
	// the caller sees, even on early-error returns.
	res = Result{Profile: "gvt/" + p.Name, Seed: seed}

	clock := NewClock()
	var trace strings.Builder
	steps := 0
	net := transport.NewNetwork(transport.Config{
		Latency: p.Latency,
		Jitter:  p.Jitter,
		Seed:    seed,
		Clock:   clock,
		OnDeliver: func(to vtime.SiteID, ev transport.Event) {
			if ev.Kind == transport.EventMessage {
				fmt.Fprintf(&trace, "%5d %9s S%d->S%d %s sent=%s\n",
					steps, clock.Now(), ev.From, to, msgName(ev.Msg), ev.SentAt)
			}
		},
	})
	defer net.Close()
	defer func() {
		res.Steps = steps
		res.Trace = trace.String()
	}()

	ring := make([]vtime.SiteID, p.Sites)
	for i := range ring {
		ring[i] = vtime.SiteID(i + 1)
	}
	sites := make([]*gvt.Site, p.Sites+1)
	for i := 1; i <= p.Sites; i++ {
		ep, err := net.Endpoint(vtime.SiteID(i))
		if err != nil {
			res.Err = fmt.Errorf("sim: endpoint %d: %w", i, err)
			return res
		}
		sites[i] = gvt.NewSite(ep, ring)
	}
	for i := 1; i <= p.Sites; i++ {
		sites[i].Start()
	}
	defer func() {
		for i := 1; i <= p.Sites; i++ {
			sites[i].Stop()
		}
	}()

	settle := func() error {
		// Liveness watchdog: decides when a wedged run is declared dead,
		// never what a live run computes.
		deadline := time.Now().Add(settleTimeout) //decaf:ignore wallclock liveness watchdog; never feeds simulation state
		for {
			quiet := true
			for i := 1; i <= p.Sites; i++ {
				if !sites[i].Quiescent() {
					quiet = false
					break
				}
			}
			if quiet {
				return nil
			}
			if time.Now().After(deadline) { //decaf:ignore wallclock liveness watchdog; never feeds simulation state
				return fmt.Errorf("sim: gvt sites never quiesced at step %d", steps)
			}
			runtime.Gosched()
		}
	}

	// Schedule the writes at seeded virtual times.
	rng := rand.New(rand.NewSource(seed ^ 0x5bf03635))
	regs := []string{"a", "b", "c"}
	type pendingWrite struct {
		p    *gvt.Pending
		done bool
	}
	pendings := make([]*pendingWrite, 0, p.Writes)
	for i := 0; i < p.Writes; i++ {
		site := 1 + rng.Intn(p.Sites)
		at := time.Duration(rng.Int63n(int64(p.Span)))
		name := regs[rng.Intn(len(regs))]
		val := rng.Int63n(1000)
		n := i
		clock.AfterFunc(at, func() {
			fmt.Fprintf(&trace, "%5d %9s WRITE S%d %s=%d n=%d\n",
				steps, clock.Now(), site, name, val, n)
			pendings = append(pendings, &pendingWrite{p: sites[site].Write(name, val)})
		})
	}

	// Drive in lock-step, asserting GVT monotonicity at every quiescent
	// point, until every write committed and all sites agree.
	last := make([]vtime.VT, p.Sites+1)
	converged := func() bool {
		if len(pendings) < p.Writes {
			return false
		}
		for _, pd := range pendings {
			if pd.done {
				continue
			}
			select {
			case <-pd.p.Done():
				pd.done = true
			default:
				return false
			}
		}
		for _, name := range regs {
			want := fmt.Sprintf("%#v", sites[1].ReadCommitted(name))
			for i := 2; i <= p.Sites; i++ {
				if got := fmt.Sprintf("%#v", sites[i].ReadCommitted(name)); got != want {
					return false
				}
			}
		}
		return true
	}
	done := false
	for !done {
		if err := settle(); err != nil {
			res.Err = err
			return res
		}
		for i := 1; i <= p.Sites; i++ {
			g := sites[i].GVT()
			if g.Less(last[i]) {
				res.Err = fmt.Errorf("sim: GVT regressed at S%d: %s -> %s (step %d)",
					i, last[i], g, steps)
				return res
			}
			last[i] = g
		}
		if converged() {
			done = true
			break
		}
		steps++
		if !clock.Step() {
			steps--
			res.Err = fmt.Errorf("sim: gvt clock drained before convergence (step %d)", steps)
			return res
		}
		if steps > maxSteps {
			res.Err = fmt.Errorf("sim: gvt step budget exceeded before convergence")
			return res
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d", steps)
	for _, name := range regs {
		fmt.Fprintf(&b, " %s=%#v", name, sites[1].ReadCommitted(name))
	}
	res.Fingerprint = b.String()
	return res
}
