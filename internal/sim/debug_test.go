package sim

import (
	"fmt"
	"os"
	"testing"

	"decaf/internal/engine"
	"decaf/internal/vtime"
)

// TestDebugOneSeed replays one (profile, seed) with full trace output.
// Guarded by an env var; a scratch tool for bug hunts, not part of the
// suite.
func TestDebugOneSeed(t *testing.T) {
	prof := os.Getenv("SIM_PROFILE")
	if prof == "" {
		t.Skip("set SIM_PROFILE and SIM_SEED to run")
	}
	var seed int64
	fmt.Sscanf(os.Getenv("SIM_SEED"), "%d", &seed)
	p, ok := ProfileByName(prof)
	if !ok {
		t.Fatalf("unknown profile %q", prof)
	}
	inspect := func(sites map[vtime.SiteID]*engine.Site, refs map[string][]engine.ObjRef) {
		obj := os.Getenv("SIM_INSPECT")
		if obj == "" {
			return
		}
		for i := 1; i <= p.Sites; i++ {
			d, err := sites[vtime.SiteID(i)].DescribeVersions(refs[obj][i])
			if err != nil {
				fmt.Printf("S%d: %v\n", i, err)
				continue
			}
			fmt.Println(d)
		}
	}
	r := Run(p, seed, inspect)
	fmt.Printf("steps=%d killed=%s err=%v\n", r.Steps, KilledLabel(r.Killed), r.Err)
	fmt.Printf("fingerprint: %s\n", r.Fingerprint)
	for i := 1; i <= p.Sites; i++ {
		st := r.Stats[vtime.SiteID(i)]
		fmt.Printf("S%d: submitted=%d commits=%d fast=%d confl=%d prog=%d retries=%d updates=%d\n",
			i, st.Submitted, st.Commits, st.FastpathCommits, st.ConflictAborts,
			st.ProgrammedAborts, st.Retries, st.UpdatesApplied)
	}
	if os.Getenv("SIM_TRACE") != "" {
		fmt.Println(r.Trace)
	}
}
