package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

// benchMessages is a representative protocol mix: the WRITE/CONFIRM/COMMIT
// triple that dominates steady-state traffic, plus a view confirmation.
func benchMessages() []Message {
	vt := vtime.VT{Time: 12345, Site: 2}
	target := ids.ObjectID{Site: 3, Seq: 7}
	return []Message{
		Write{
			TxnVT:  vt,
			Origin: 2,
			Updates: []Update{
				{Target: target, ReadVT: vt, GraphVT: vtime.VT{Time: 3, Site: 1}, Op: OpSet{Value: int64(42)}},
				{Target: ids.ObjectID{Site: 1, Seq: 9}, ReadVT: vt, Op: OpSet{Value: "hello world"}},
			},
			Checks:       []ReadCheck{{Target: target, ReadVT: vt, GraphVT: vt}},
			NeedsConfirm: true,
		},
		Confirm{TxnVT: vt, From: 3, OK: true},
		Outcome{TxnVT: vt, Committed: true},
		ConfirmRead{TxnVT: vt, Origin: 2, ReqID: 77, Checks: []ReadCheck{{Target: target, ReadVT: vt}}},
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	msgs := benchMessages()
	var buf []byte
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		for _, m := range msgs {
			if buf, err = AppendMessage(buf, m); err != nil {
				b.Fatal(err)
			}
		}
		bytesOut += int64(len(buf))
	}
	b.ReportMetric(float64(bytesOut)/float64(b.N)/float64(len(msgs)), "wire-bytes/msg")
}

func BenchmarkEncodeGob(b *testing.B) {
	msgs := benchMessages()
	// One long-lived encoder per connection is how the transport used
	// gob, so type descriptors amortize — the fairest baseline.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	wrap := struct{ M Message }{}
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := buf.Len()
		for _, m := range msgs {
			wrap.M = m
			if err := enc.Encode(&wrap); err != nil {
				b.Fatal(err)
			}
		}
		bytesOut += int64(buf.Len() - start)
		if buf.Len() > 1<<24 {
			buf.Reset()
			enc = gob.NewEncoder(&buf)
		}
	}
	b.ReportMetric(float64(bytesOut)/float64(b.N)/float64(len(msgs)), "wire-bytes/msg")
}

func BenchmarkDecodeBinary(b *testing.B) {
	msgs := benchMessages()
	var buf []byte
	for _, m := range msgs {
		var err error
		if buf, err = AppendMessage(buf, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rest := buf
		for len(rest) > 0 {
			_, n, err := DecodeMessage(rest)
			if err != nil {
				b.Fatal(err)
			}
			rest = rest[n:]
		}
	}
}

func BenchmarkDecodeGob(b *testing.B) {
	msgs := benchMessages()
	// Pre-encode one long stream so the decoder, like a connection's,
	// sees type descriptors once.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	const rounds = 1024
	for i := 0; i < rounds; i++ {
		for _, m := range msgs {
			wrap := struct{ M Message }{M: m}
			if err := enc.Encode(&wrap); err != nil {
				b.Fatal(err)
			}
		}
	}
	stream := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	dec := gob.NewDecoder(bytes.NewReader(stream))
	decoded := 0
	for i := 0; i < b.N; i++ {
		var wrap struct{ M Message }
		if err := dec.Decode(&wrap); err != nil {
			b.Fatal(err)
		}
		decoded++
		if decoded == rounds*len(msgs) {
			dec = gob.NewDecoder(bytes.NewReader(stream))
			decoded = 0
		}
	}
}
