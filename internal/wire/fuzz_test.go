package wire

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"decaf/internal/consensus"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// writeCorpus regenerates the committed seed corpus:
//
//	go test ./internal/wire -run TestWriteSeedCorpus -writecorpus
var writeCorpus = flag.Bool("writecorpus", false, "regenerate seed corpora under testdata/fuzz")

func fvt(t, s uint64) vtime.VT      { return vtime.VT{Time: t, Site: vtime.SiteID(s)} }
func fobj(s, q uint64) ids.ObjectID { return ids.ObjectID{Site: vtime.SiteID(s), Seq: q} }

// seedMessages returns one representative message per wire tag, with
// every optional field populated at least once across the set.
func seedMessages() []Message {
	tag := ElemTag{VT: fvt(7, 1), N: 2}
	path := Path{{IsKey: true, Key: "k"}, {Tag: tag}}
	graph := repgraph.Wire{
		Nodes:  []repgraph.WireNode{{Obj: fobj(1, 1), Site: 1}, {Obj: fobj(2, 3), Site: 2}},
		Edges:  []repgraph.WireEdge{{Edge: repgraph.Edge{A: fobj(1, 1), B: fobj(2, 3)}, Count: 2}},
		Anchor: fobj(1, 1),
	}
	snap := CompositeSnapshot{
		Kind: KindTuple,
		Elems: []SnapshotElem{
			{Key: "x", Child: ChildDecl{Kind: KindInt, Value: int64(4)}},
			{Key: "l", Child: ChildDecl{Kind: KindList}, Nested: &CompositeSnapshot{
				Kind:  KindList,
				Elems: []SnapshotElem{{Tag: tag, Child: ChildDecl{Kind: KindString, Value: "s"}}},
			}},
		},
		IsSorted: true,
	}
	return []Message{
		Write{
			TxnVT:  fvt(3, 1),
			Origin: 1,
			Updates: []Update{{
				Target: fobj(2, 5), Path: path,
				ReadVT: fvt(1, 1), GraphVT: fvt(2, 2),
				Op: OpSet{Value: int64(42)},
			}},
			Checks:       []ReadCheck{{Target: fobj(2, 5), ReadVT: fvt(1, 1), CommittedOnly: true, NoReserve: true}},
			NeedsConfirm: true,
			Delegate:     &Delegation{Sites: []vtime.SiteID{2, 3}},
		},
		Write{
			TxnVT: fvt(9, 2), Origin: 2,
			Updates: []Update{
				{Target: fobj(1, 1), Op: OpListInsert{Tag: tag, Index: 1, Child: ChildDecl{Kind: KindFloat, Value: float64(1.5)}, After: tag}},
				{Target: fobj(1, 1), Op: OpListRemove{Tag: tag}},
				{Target: fobj(1, 1), Op: OpTupleSet{Key: "k", Child: ChildDecl{Kind: KindBool, Value: true}, At: fvt(8, 2)}},
				{Target: fobj(1, 1), Op: OpTupleRemove{Key: "k", Of: fvt(5, 1)}},
				{Target: fobj(1, 1), Op: OpGraph{Graph: graph}},
				{Target: fobj(1, 1), Op: OpAssoc{Relationships: []Relationship{
					{Name: "doc", Members: []Member{{Site: 1, Obj: fobj(1, 1), Desc: "a"}, {Site: 2, Obj: fobj(2, 3), Desc: "b"}}},
				}}},
			},
		},
		ConfirmRead{TxnVT: fvt(4, 1), Origin: 1, ReqID: 77, Checks: []ReadCheck{{Target: fobj(2, 5), Path: path, ReadVT: fvt(2, 2), GraphVT: fvt(1, 1)}}},
		Confirm{TxnVT: fvt(4, 1), ReqID: 77, From: 2, OK: false, Transient: true, Reason: "pending version in interval"},
		Outcome{TxnVT: fvt(4, 1), Committed: true},
		JoinRequest{TxnVT: fvt(6, 3), Origin: 3, ReqID: 9, AObj: fobj(3, 1), BObj: fobj(1, 1), GraphA: graph},
		JoinReply{
			TxnVT: fvt(6, 3), ReqID: 9, From: 1, OK: true,
			BObj: fobj(1, 1), BValue: snap, GraphB: graph,
			PendingGraphTxn: fvt(5, 2), ConfirmSites: []vtime.SiteID{1, 2},
		},
		JoinReply{TxnVT: fvt(6, 3), ReqID: 10, From: 1, OK: false, Reason: "busy", Retryable: true},
		PromoteQuery{ReqID: 11, Origin: 2, Target: fobj(1, 1), Path: path},
		PromoteReply{ReqID: 11, From: 1, OK: true, Child: fobj(1, 9)},
		CommitQuery{TxnVT: fvt(12, 1), From: 2},
		CommitQueryReply{TxnVT: fvt(12, 1), From: 3, Known: true, Committed: true},
		RepairPropose{Epoch: 2, FailedSite: 1, From: 2, GraphVT: fvt(20, 2), Survivors: []vtime.SiteID{2, 3}},
		RepairAck{EpochN: 2, FailedSite: 1, From: 3, KnownCommitted: []vtime.VT{fvt(18, 1), fvt(19, 3)}},
		RepairDecide{EpochN: 2, FailedSite: 1, From: 2, GraphVT: fvt(20, 2), Commit: []vtime.VT{fvt(18, 1)}},
		RepairPrepare{FailedSite: 1, From: 2, Ballot: consensus.Ballot{Round: 1, Site: 2},
			Members: []vtime.SiteID{2, 3, 4}},
		RepairPromise{FailedSite: 1, From: 3, Ballot: consensus.Ballot{Round: 1, Site: 2},
			OK: true, HasAccepted: true, AcceptedBallot: consensus.Ballot{Round: 1, Site: 3},
			Accepted:       RepairValue{FailedSite: 1, GraphVT: fvt(20, 3), Survivors: []vtime.SiteID{2, 3}, Commit: []vtime.VT{fvt(18, 1)}},
			KnownCommitted: []vtime.VT{fvt(18, 1), fvt(19, 1)}},
		RepairPromise{FailedSite: 1, From: 3, Ballot: consensus.Ballot{Round: 1, Site: 2},
			OK: false, Promised: consensus.Ballot{Round: 2, Site: 4}},
		RepairAccept{FailedSite: 1, From: 2, Ballot: consensus.Ballot{Round: 1, Site: 2},
			Value:   RepairValue{FailedSite: 1, GraphVT: fvt(20, 2), Survivors: []vtime.SiteID{2, 3, 4}, Commit: []vtime.VT{fvt(18, 1)}},
			Members: []vtime.SiteID{2, 3, 4}},
		RepairAccepted{FailedSite: 1, From: 4, Ballot: consensus.Ballot{Round: 1, Site: 2}, OK: true},
		RepairLearn{FailedSite: 1, From: 2, Ballot: consensus.Ballot{Round: 1, Site: 2},
			Value: RepairValue{FailedSite: 1, GraphVT: fvt(20, 2), Survivors: []vtime.SiteID{2, 3, 4}, Commit: []vtime.VT{fvt(18, 1)}}},
	}
}

// seedEncodings encodes every seed message.
func seedEncodings(fatalf func(format string, args ...any)) [][]byte {
	var out [][]byte
	for i, m := range seedMessages() {
		b, err := AppendMessage(nil, m)
		if err != nil {
			fatalf("encode seed %d (%s): %v", i, m.Kind(), err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeMessage checks that DecodeMessage never panics on arbitrary
// input, never reads past its buffer, and that anything it accepts
// survives an encode/decode round trip.
func FuzzDecodeMessage(f *testing.F) {
	for _, b := range seedEncodings(f.Fatalf) {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if used < 1 || used > len(data) {
			t.Fatalf("DecodeMessage used %d of %d bytes", used, len(data))
		}
		re, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", m.Kind(), err)
		}
		m2, used2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", m.Kind(), err)
		}
		if used2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", used2, len(re))
		}
		// Structural equality is the goal; NaN payloads make DeepEqual
		// lie (NaN != NaN), so byte-identical re-encodings also pass.
		if !reflect.DeepEqual(m, m2) {
			re2, err := AppendMessage(nil, m2)
			if err != nil || !bytes.Equal(re, re2) {
				t.Fatalf("round trip changed the message:\n first: %#v\nsecond: %#v", m, m2)
			}
		}
	})
}

// TestWriteSeedCorpus writes the seed encodings as a committed corpus in
// the format `go test fuzz v1`. Run with -writecorpus after changing the
// codec or the seed set.
func TestWriteSeedCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("run with -writecorpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMessage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, b := range seedEncodings(t.Fatalf) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
