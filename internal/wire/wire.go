// Package wire defines the message protocol spoken between DECAF sites:
// update propagation (WRITE), guess confirmation (CONFIRM-READ / CONFIRM),
// summary transaction outcomes (COMMIT / ABORT), the collaboration-join
// protocol, and the failure-handling messages of paper §3.4.
//
// All messages are gob-encodable so the same protocol runs over the
// in-memory simulated network and the TCP transport.
package wire

import (
	"encoding/gob"
	"fmt"

	"decaf/internal/consensus"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// Message is implemented by every DECAF protocol message.
type Message interface {
	isMessage()
	// Kind returns a short human-readable message kind for logs.
	Kind() string
}

// ---------------------------------------------------------------------------
// Operations: the state-update payloads carried by WRITE messages.
// ---------------------------------------------------------------------------

// Op is a state-update operation applied to a model object. For scalar
// objects the final value is distributed; for composite objects the change
// is distributed as an incremental operation (paper §3.1 footnote).
type Op interface {
	isOp()
	// Describe returns a short human-readable description for logs.
	Describe() string
}

// OpSet replaces a scalar object's value.
type OpSet struct {
	Value any
}

func (OpSet) isOp()              {}
func (o OpSet) Describe() string { return fmt.Sprintf("set(%v)", o.Value) }

// OpAdd increments a numeric scalar object by Delta (int64 or float64).
// Unlike OpSet it commutes with every other OpAdd, so transactions built
// solely from adds qualify for the commutative fast path: they commit at
// their VT stamp without a reservation and merge deterministically at every
// replica regardless of arrival order.
type OpAdd struct {
	Delta any
}

func (OpAdd) isOp()              {}
func (o OpAdd) Describe() string { return fmt.Sprintf("add(%v)", o.Delta) }

// ChildKind enumerates the kinds of model objects that can be embedded in
// composites or created standalone.
type ChildKind int

// Model-object kinds.
const (
	KindInt ChildKind = iota + 1
	KindFloat
	KindString
	KindBool
	KindList
	KindTuple
	KindAssociation
)

// String implements fmt.Stringer.
func (k ChildKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindList:
		return "list"
	case KindTuple:
		return "tuple"
	case KindAssociation:
		return "association"
	default:
		return fmt.Sprintf("ChildKind(%d)", int(k))
	}
}

// ChildDecl describes a child object being embedded into a composite, so
// that remote replicas can instantiate an equivalent replica child.
type ChildDecl struct {
	Kind  ChildKind
	Value any // initial scalar value; nil for composites
}

// OpListInsert inserts a new child into a list object. Tag is the unique
// element tag (the inserting transaction's VT plus an ordinal for multiple
// inserts by one transaction); Index is the position at the originating
// site, disambiguated at receivers by the tags of preceding elements.
type OpListInsert struct {
	Tag   ElemTag
	Index int
	Child ChildDecl
	// After identifies the element the insert follows (zero tag = list
	// head). Receivers position by After rather than raw index when
	// concurrent structural updates reordered indices.
	After ElemTag
}

func (OpListInsert) isOp() {}

// Describe implements Op.
func (o OpListInsert) Describe() string {
	return fmt.Sprintf("list-insert(%v@%d)", o.Tag, o.Index)
}

// OpListInsertAfter inserts a new child into a list at a stable position:
// directly after the element tagged After (zero tag = list head), with ties
// between concurrent same-position inserts broken by Tag order (RGA). It
// carries no index, so it commutes with every concurrent structural update
// and qualifies for the commutative fast path. This is the sanctioned op
// for concurrent editing; index-based OpListInsert resolves its index at
// the origin and can interleave surprisingly under concurrency.
type OpListInsertAfter struct {
	Tag   ElemTag
	Child ChildDecl
	After ElemTag
}

func (OpListInsertAfter) isOp() {}

// Describe implements Op.
func (o OpListInsertAfter) Describe() string {
	return fmt.Sprintf("list-insert-after(%v after %v)", o.Tag, o.After)
}

// OpListRemove removes the element with the given tag from a list.
type OpListRemove struct {
	Tag ElemTag
}

func (OpListRemove) isOp() {}

// Describe implements Op.
func (o OpListRemove) Describe() string { return fmt.Sprintf("list-remove(%v)", o.Tag) }

// OpTupleSet embeds (or replaces) the child under Key in a tuple object.
// At, when nonzero, pins the entry's insert identity (used when a join
// ships an existing structure: the joiner's copy must carry the ORIGINAL
// insert VT so paths pinned to it resolve at the new replica).
type OpTupleSet struct {
	Key   string
	Child ChildDecl
	At    vtime.VT
}

func (OpTupleSet) isOp() {}

// Describe implements Op.
func (o OpTupleSet) Describe() string { return fmt.Sprintf("tuple-set(%s)", o.Key) }

// OpTupleRemove removes one specific child under Key from a tuple
// object. Of is the insert VT of the entry being removed, so concurrent
// re-sets of the same key are not clobbered by a remove that targeted
// their predecessor (add-wins), and all replicas remove the same entry.
type OpTupleRemove struct {
	Key string
	Of  vtime.VT
}

func (OpTupleRemove) isOp() {}

// Describe implements Op.
func (o OpTupleRemove) Describe() string { return fmt.Sprintf("tuple-remove(%s)", o.Key) }

// OpGraph replaces a model object's replication graph (join, leave, site
// failure repair). Graph updates flow through the same concurrency-control
// machinery as value updates, validated against the graph's own
// reservation table at the graph's primary.
type OpGraph struct {
	Graph repgraph.Wire
}

func (OpGraph) isOp() {}

// Describe implements Op.
func (o OpGraph) Describe() string { return fmt.Sprintf("graph(%d nodes)", len(o.Graph.Nodes)) }

// OpAssoc updates an association object's value: the set of replica
// relationships bundled for an application purpose (paper §2.1, §2.6).
type OpAssoc struct {
	Relationships []Relationship
}

func (OpAssoc) isOp() {}

// Describe implements Op.
func (o OpAssoc) Describe() string { return fmt.Sprintf("assoc(%d rels)", len(o.Relationships)) }

// OpAssocInsert adds (or replaces, add-wins by VT order) a single named
// relationship in an association object. Inserts under distinct names
// commute, and concurrent inserts under the same name converge to the
// merge-order winner, so this op qualifies for the commutative fast path —
// unlike OpAssoc, which replaces the whole relationship set.
type OpAssocInsert struct {
	Rel Relationship
}

func (OpAssocInsert) isOp() {}

// Describe implements Op.
func (o OpAssocInsert) Describe() string { return fmt.Sprintf("assoc-insert(%s)", o.Rel.Name) }

// Relationship names one replica relationship within an association: the
// set of member objects with their sites.
type Relationship struct {
	Name    string
	Members []Member
}

// Member is one model object participating in a replica relationship.
type Member struct {
	Site vtime.SiteID
	Obj  ids.ObjectID
	// Desc is the human-readable object description published in the
	// association (paper §2.1: "together with their sites and object
	// descriptions").
	Desc string
}

// ---------------------------------------------------------------------------
// Paths for indirect propagation through composites (paper §3.2).
// ---------------------------------------------------------------------------

// ElemTag uniquely identifies a list element: the VT of the inserting
// transaction plus an ordinal distinguishing multiple inserts by the same
// transaction into the same list. This is the paper's "VT used as a tag to
// the index", making path names robust against concurrent reordering.
type ElemTag struct {
	VT vtime.VT
	N  uint32
}

// IsZero reports whether the tag is the zero tag (used for "list head").
func (t ElemTag) IsZero() bool { return t == ElemTag{} }

// String implements fmt.Stringer.
func (t ElemTag) String() string { return fmt.Sprintf("%s#%d", t.VT, t.N) }

// PathElem is one step of a composite path: either a tagged list element
// or a tuple key.
type PathElem struct {
	// IsKey selects between tuple (key) and list (tag) addressing.
	IsKey bool
	Key   string
	Tag   ElemTag
}

// String implements fmt.Stringer.
func (p PathElem) String() string {
	if p.IsKey {
		return "[" + p.Key + "]"
	}
	return "[" + p.Tag.String() + "]"
}

// Path addresses an object embedded within a composite, from the root down.
type Path []PathElem

// String implements fmt.Stringer.
func (p Path) String() string {
	s := ""
	for _, e := range p {
		s += e.String()
	}
	return s
}

// ---------------------------------------------------------------------------
// Transaction propagation messages (paper §3.1).
// ---------------------------------------------------------------------------

// Update is one object modification carried by a Write message. Target is
// the destination site's replica object; for indirect propagation Target
// is the composite root there and Path walks down to the modified child.
type Update struct {
	Target ids.ObjectID
	Path   Path // empty for direct updates to Target itself
	// ReadVT is tR: the VT of the value the transaction read before
	// writing (equal to the transaction VT for blind writes).
	ReadVT vtime.VT
	// GraphVT is tG: the VT at which the object's replication graph was
	// last changed, as known to the originating site.
	GraphVT vtime.VT
	Op      Op
}

// ReadCheck asks a primary copy to validate an RL guess: that the interval
// (ReadVT, tT] was write-free for Target (and (GraphVT, tT] free of graph
// changes).
type ReadCheck struct {
	Target  ids.ObjectID
	Path    Path
	ReadVT  vtime.VT
	GraphVT vtime.VT
	// CommittedOnly restricts the check to committed versions — the
	// pessimistic-view form of the RL guess (paper §4.2). The endpoint
	// tT itself is excluded from the check for committed-only checks.
	CommittedOnly bool
	// NoReserve answers the check without reserving the interval:
	// optimistic view snapshots tolerate stragglers (a superseding
	// notification repairs them, §4.1) and must not abort writers.
	NoReserve bool
}

// Delegation requests the single remote primary site to commit the whole
// transaction on the origin's behalf (paper §3.1 optimization): the
// message carries the identifiers of all sites affected by the
// transaction so the delegate can send the summary outcome everywhere.
type Delegation struct {
	// Sites to which the delegate must send the Outcome (excluding the
	// delegate itself; including the origin).
	Sites []vtime.SiteID
}

// Write propagates a transaction's modifications to a replica site. The
// primary site additionally performs the RL and NC guess checks and
// responds with a Confirm (paper §3.1). Non-primary sites simply apply.
type Write struct {
	TxnVT   vtime.VT
	Origin  vtime.SiteID
	Updates []Update
	// Checks carries RL read-checks for objects this site is primary
	// for; piggybacked on the Write when the site receives updates too.
	Checks []ReadCheck
	// NeedsConfirm is set when the destination is a primary site that
	// must validate and reply with Confirm.
	NeedsConfirm bool
	// Delegate, when non-nil, transfers commit responsibility to the
	// destination (which must be the single remote primary site).
	Delegate *Delegation
}

func (Write) isMessage() {}

// Kind implements Message.
func (Write) Kind() string { return "WRITE" }

// FastWrite propagates a commutatively-committed transaction: every update
// is a provably commutative op, so the transaction committed locally at its
// VT stamp without guesses, reservations, or a confirm exchange. Receivers
// apply the updates as already-committed via deterministic merge — there is
// no NeedsConfirm, no Checks, and no Outcome follow-up.
type FastWrite struct {
	TxnVT   vtime.VT
	Origin  vtime.SiteID
	Updates []Update
}

func (FastWrite) isMessage() {}

// Kind implements Message.
func (FastWrite) Kind() string { return "FAST-WRITE" }

// SyncFloor names the highest transaction time a site holds, contiguously,
// from a given origin. "Contiguous" is the load-bearing word: a site may
// have received later updates from that origin directly, but it only
// advances the floor when an anti-entropy session proves there is no gap
// below them (DESIGN.md §13).
type SyncFloor struct {
	Site vtime.SiteID
	Time uint64
}

// SyncRequest opens a pairwise anti-entropy session (DESIGN.md §13): the
// requester advertises its version floors and asks the peer for every
// logged update above them.
type SyncRequest struct {
	From   vtime.SiteID
	ReqID  uint64
	Floors []SyncFloor
}

func (SyncRequest) isMessage() {}

// Kind implements Message.
func (SyncRequest) Kind() string { return "SYNC-REQUEST" }

// SyncUpdates ships the missing updates of an anti-entropy session:
// wire-encoded Write/FastWrite/Outcome messages (already remapped into the
// receiver's object-ID namespace), in shipping order — outcomes first, then
// data records in log order. Floors are the sender's own floors so the
// receiver can reply with the reverse leg when WantReply is set.
type SyncUpdates struct {
	From      vtime.SiteID
	ReqID     uint64
	WantReply bool
	Floors    []SyncFloor
	Records   [][]byte
}

func (SyncUpdates) isMessage() {}

// Kind implements Message.
func (SyncUpdates) Kind() string { return "SYNC-UPDATES" }

// ConfirmRead asks a primary site to validate RL guesses for objects that
// were read but not written — by a transaction (paper §3.1) or by a view
// snapshot (paper §4). ReqID routes the Confirm back to the right waiter.
type ConfirmRead struct {
	TxnVT  vtime.VT
	Origin vtime.SiteID
	ReqID  uint64
	Checks []ReadCheck
}

func (ConfirmRead) isMessage() {}

// Kind implements Message.
func (ConfirmRead) Kind() string { return "CONFIRM-READ" }

// Confirm is a primary site's verdict on the guesses in a Write or
// ConfirmRead.
type Confirm struct {
	TxnVT vtime.VT
	ReqID uint64 // echoes ConfirmRead.ReqID; 0 for Write confirmations
	From  vtime.SiteID
	OK    bool
	// Transient marks a denial that may succeed after in-flight
	// transactions settle (a pending version in a committed-only check
	// interval); the requester should retry rather than abort.
	Transient bool
	Reason    string
}

func (Confirm) isMessage() {}

// Kind implements Message.
func (Confirm) Kind() string { return "CONFIRM" }

// Outcome is the summary commit/abort for a transaction, broadcast by the
// originating site (or its delegate) to every involved site.
type Outcome struct {
	TxnVT     vtime.VT
	Committed bool
}

func (Outcome) isMessage() {}

// Kind implements Message.
func (o Outcome) Kind() string {
	if o.Committed {
		return "COMMIT"
	}
	return "ABORT"
}

// ---------------------------------------------------------------------------
// Collaboration establishment (paper §3.3).
// ---------------------------------------------------------------------------

// JoinRequest is A's remote call to B: "object AObj (graph GraphA) wants
// to join BObj's replica relationship".
type JoinRequest struct {
	TxnVT  vtime.VT
	Origin vtime.SiteID
	ReqID  uint64
	AObj   ids.ObjectID
	BObj   ids.ObjectID
	GraphA repgraph.Wire
}

func (JoinRequest) isMessage() {}

// Kind implements Message.
func (JoinRequest) Kind() string { return "JOIN-REQUEST" }

// JoinReply returns B's value and replication graph(s) to A. If B's
// current graph value is uncommitted, PendingGraphTxn carries the
// transaction A must additionally wait for (an RC guess).
type JoinReply struct {
	TxnVT  vtime.VT
	ReqID  uint64
	From   vtime.SiteID
	OK     bool
	Reason string
	// Retryable marks a denial caused by a transient concurrency-control
	// conflict; the joiner re-executes with a fresh virtual time, like
	// any other conflicted transaction.
	Retryable bool
	BObj      ids.ObjectID
	// BValue is B's current value, shipped so A's replica starts
	// mirrored. For composites this is a structured snapshot.
	BValue any
	GraphB repgraph.Wire
	// PendingGraphTxn, when nonzero, is the uncommitted transaction that
	// wrote gB; A must wait for it to commit (RC guess).
	PendingGraphTxn vtime.VT
	// ConfirmSites lists primary sites whose confirmations B requested on
	// A's behalf; A must wait for a Confirm from each before committing.
	ConfirmSites []vtime.SiteID
}

func (JoinReply) isMessage() {}

// Kind implements Message.
func (JoinReply) Kind() string { return "JOIN-REPLY" }

// ---------------------------------------------------------------------------
// Direct propagation for embedded objects (paper §3.2.2).
// ---------------------------------------------------------------------------

// PromoteQuery asks a site hosting a replica of a composite to reveal the
// object ID of the child at Path below Target. Switching an embedded
// object to direct propagation requires a propagation graph over the
// child's counterparts at every replica site, whose IDs are local to each
// site (paper §3.2.2: "that node switches to direct propagation, and a
// propagation graph is sent to all replicas").
type PromoteQuery struct {
	ReqID  uint64
	Origin vtime.SiteID
	Target ids.ObjectID
	Path   Path
}

func (PromoteQuery) isMessage() {}

// Kind implements Message.
func (PromoteQuery) Kind() string { return "PROMOTE-QUERY" }

// PromoteReply carries the counterpart child's identity.
type PromoteReply struct {
	ReqID uint64
	From  vtime.SiteID
	OK    bool
	Child ids.ObjectID
}

func (PromoteReply) isMessage() {}

// Kind implements Message.
func (PromoteReply) Kind() string { return "PROMOTE-REPLY" }

// ---------------------------------------------------------------------------
// Failure handling (paper §3.4).
// ---------------------------------------------------------------------------

// CommitQuery asks whether the receiver knows the outcome of a transaction
// whose originating site failed before broadcasting a summary outcome.
type CommitQuery struct {
	TxnVT vtime.VT
	From  vtime.SiteID
}

func (CommitQuery) isMessage() {}

// Kind implements Message.
func (CommitQuery) Kind() string { return "COMMIT-QUERY" }

// CommitQueryReply reports what the receiver knows about the transaction.
type CommitQueryReply struct {
	TxnVT vtime.VT
	From  vtime.SiteID
	// Known is true when the receiver saw a summary outcome for TxnVT.
	Known     bool
	Committed bool
}

func (CommitQueryReply) isMessage() {}

// Kind implements Message.
func (CommitQueryReply) Kind() string { return "COMMIT-QUERY-REPLY" }

// RepairPropose starts (or restarts, with a higher Epoch) the survivor
// consensus that commits a replication-graph update after the graph's
// primary site failed (paper §3.4). The coordinator is the lowest
// surviving site; survivors respond with RepairAck.
type RepairPropose struct {
	Epoch      uint64
	FailedSite vtime.SiteID
	From       vtime.SiteID
	// GraphVT is the common virtual time at which the repaired graphs
	// will be applied.
	GraphVT vtime.VT
	// Survivors lists the sites participating in this repair round.
	Survivors []vtime.SiteID
}

func (RepairPropose) isMessage() {}

// Kind implements Message.
func (RepairPropose) Kind() string { return "REPAIR-PROPOSE" }

// RepairAck is a survivor's acknowledgement, carrying the outcomes it
// knows for transactions that conflict with the repair.
type RepairAck struct {
	EpochN     uint64
	FailedSite vtime.SiteID
	From       vtime.SiteID
	// KnownCommitted lists in-flight transactions this site knows to
	// have committed.
	KnownCommitted []vtime.VT
}

func (RepairAck) isMessage() {}

// Kind implements Message.
func (RepairAck) Kind() string { return "REPAIR-ACK" }

// RepairDecide completes the repair: every survivor commits the listed
// transactions, aborts every other in-flight transaction involving the
// failed site, and applies the graph update at GraphVT.
type RepairDecide struct {
	EpochN     uint64
	FailedSite vtime.SiteID
	From       vtime.SiteID
	GraphVT    vtime.VT
	Commit     []vtime.VT
}

func (RepairDecide) isMessage() {}

// Kind implements Message.
func (RepairDecide) Kind() string { return "REPAIR-DECIDE" }

// ---------------------------------------------------------------------------
// Consensus-backed graph repair (DESIGN.md §14).
//
// The legacy RepairPropose/RepairAck/RepairDecide exchange above is a
// one-shot epoch protocol kept for wire compatibility. New sites run the
// single-decree consensus below (internal/consensus): any survivor can
// take over a stalled repair with a higher ballot, and a quorum of the
// pre-failure membership must accept before a repair commits.
// ---------------------------------------------------------------------------

// RepairValue is the value a repair instance decides: the virtual time
// at which the repaired graphs apply, the surviving member set, and the
// resolved outcomes of the failed site's in-flight transactions (every
// listed VT commits; every other in-flight transaction of the failed
// originator aborts). One instance exists per failed site; the decided
// value is identical at every survivor, so parked retries resume against
// the same repaired graphs everywhere.
type RepairValue struct {
	FailedSite vtime.SiteID
	GraphVT    vtime.VT
	Survivors  []vtime.SiteID
	Commit     []vtime.VT
}

// RepairPrepare is consensus phase 1a: a survivor claims Ballot for the
// repair of FailedSite. Members carries the instance's member set (the
// pre-failure graph membership minus the failed site) so receivers that
// have not yet noticed the failure can instantiate an identical
// acceptor.
type RepairPrepare struct {
	FailedSite vtime.SiteID
	From       vtime.SiteID
	Ballot     consensus.Ballot
	Members    []vtime.SiteID
}

func (RepairPrepare) isMessage() {}

// Kind implements Message.
func (RepairPrepare) Kind() string { return "REPAIR-PREPARE" }

// RepairPromise is consensus phase 1b. A grant (OK) carries any value
// the acceptor already accepted under an earlier ballot, plus the
// acceptor's commit knowledge for the failed site's in-flight
// transactions (KnownCommitted) so the eventual proposal commits a
// transaction iff ANY promising survivor saw its COMMIT (paper §3.4).
// A refusal reports Promised, the ballot the acceptor is bound to.
type RepairPromise struct {
	FailedSite     vtime.SiteID
	From           vtime.SiteID
	Ballot         consensus.Ballot
	OK             bool
	Promised       consensus.Ballot
	HasAccepted    bool
	AcceptedBallot consensus.Ballot
	Accepted       RepairValue
	KnownCommitted []vtime.VT
}

func (RepairPromise) isMessage() {}

// Kind implements Message.
func (RepairPromise) Kind() string { return "REPAIR-PROMISE" }

// RepairAccept is consensus phase 2a: the proposer asks the members to
// accept Value under Ballot.
type RepairAccept struct {
	FailedSite vtime.SiteID
	From       vtime.SiteID
	Ballot     consensus.Ballot
	Value      RepairValue
	Members    []vtime.SiteID
}

func (RepairAccept) isMessage() {}

// Kind implements Message.
func (RepairAccept) Kind() string { return "REPAIR-ACCEPT" }

// RepairAccepted is consensus phase 2b: the acceptor's verdict on a
// RepairAccept.
type RepairAccepted struct {
	FailedSite vtime.SiteID
	From       vtime.SiteID
	Ballot     consensus.Ballot
	OK         bool
	Promised   consensus.Ballot
}

func (RepairAccepted) isMessage() {}

// Kind implements Message.
func (RepairAccepted) Kind() string { return "REPAIR-ACCEPTED" }

// RepairLearn broadcasts a decided repair. It is also WAL-logged and
// replayed on recovery, and answers stale consensus traffic for repairs
// that already decided.
type RepairLearn struct {
	FailedSite vtime.SiteID
	From       vtime.SiteID
	Ballot     consensus.Ballot
	Value      RepairValue
}

func (RepairLearn) isMessage() {}

// Kind implements Message.
func (RepairLearn) Kind() string { return "REPAIR-LEARN" }

// ---------------------------------------------------------------------------
// Gob registration.
// ---------------------------------------------------------------------------

// RegisterGob registers every message and operation type with
// encoding/gob. Safe to call more than once (gob.Register panics only on
// inconsistent re-registration).
func RegisterGob() {
	gob.Register(Write{})
	gob.Register(FastWrite{})
	gob.Register(ConfirmRead{})
	gob.Register(Confirm{})
	gob.Register(Outcome{})
	gob.Register(JoinRequest{})
	gob.Register(JoinReply{})
	gob.Register(CommitQuery{})
	gob.Register(CommitQueryReply{})
	gob.Register(PromoteQuery{})
	gob.Register(PromoteReply{})
	gob.Register(RepairPropose{})
	gob.Register(RepairAck{})
	gob.Register(RepairDecide{})
	gob.Register(RepairPrepare{})
	gob.Register(RepairPromise{})
	gob.Register(RepairAccept{})
	gob.Register(RepairAccepted{})
	gob.Register(RepairLearn{})
	gob.Register(SyncRequest{})
	gob.Register(SyncUpdates{})

	gob.Register(OpSet{})
	gob.Register(OpAdd{})
	gob.Register(OpListInsert{})
	gob.Register(OpListInsertAfter{})
	gob.Register(OpAssocInsert{})
	gob.Register(OpListRemove{})
	gob.Register(OpTupleSet{})
	gob.Register(OpTupleRemove{})
	gob.Register(OpGraph{})
	gob.Register(OpAssoc{})

	// Scalar value payloads.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(CompositeSnapshot{})
	gob.Register([]Relationship(nil))
}

func init() { RegisterGob() }

// CompositeSnapshot is the structured value of a composite object shipped
// in JoinReply: enough to reconstruct the composite and its children.
type CompositeSnapshot struct {
	Kind     ChildKind
	Elems    []SnapshotElem // list elements in order, or tuple entries
	IsSorted bool           // tuples ship entries sorted by key
}

// SnapshotElem is one child in a CompositeSnapshot.
type SnapshotElem struct {
	Tag   ElemTag // list element tag
	Key   string  // tuple key
	Child ChildDecl
	// Nested holds the snapshot of a composite child.
	Nested *CompositeSnapshot
}
