package wire

// Hand-rolled binary codec for the DECAF wire protocol.
//
// The TCP transport originally gob-encoded every message. Gob is driven by
// reflection and ships type descriptors, which makes the per-message CPU
// and byte cost large relative to the payload for the small, frequent
// messages this protocol exchanges (WRITE / CONFIRM / COMMIT). This codec
// encodes each registered message type by hand with encoding/binary
// varints: one tag byte selects the message type, fixed layouts follow.
// Gob remains the differential oracle in tests and the fallback encoding
// for dynamically typed payload values outside the registered scalar set.
//
// Layout conventions:
//
//   - unsigned integers (times, sites, sequence numbers, lengths) are
//     uvarints; signed integers are zigzag varints
//   - float64 is 8 little-endian bytes of its IEEE-754 bits
//   - strings and byte blobs are length-prefixed (uvarint count + bytes)
//   - slices are a uvarint count followed by the elements; a zero count
//     decodes as a nil slice (matching gob's empty/nil normalization)
//   - dynamically typed values (OpSet.Value, ChildDecl.Value,
//     JoinReply.BValue, baseline payloads) carry a one-byte value tag

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"

	"decaf/internal/consensus"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// Message type tags. Stable: these are the on-the-wire protocol.
const (
	tagWrite byte = iota + 1
	tagConfirmRead
	tagConfirm
	tagOutcome
	tagJoinRequest
	tagJoinReply
	tagPromoteQuery
	tagPromoteReply
	tagCommitQuery
	tagCommitQueryReply
	tagRepairPropose
	tagRepairAck
	tagRepairDecide
	tagGVTUpdate
	tagGVTAck
	tagGVTToken
	tagCenWrite
	tagCenEcho
	tagFastWrite
	tagSyncRequest
	tagSyncUpdates
	tagRepairPrepare
	tagRepairPromise
	tagRepairAccept
	tagRepairAccepted
	tagRepairLearn

	// tagGobMessage escapes to a gob-encoded message: a length-prefixed
	// gob stream. Used only for message types the hand codec does not
	// know, so protocol extensions keep working before they get a layout.
	tagGobMessage byte = 0xFF
)

// Operation tags.
const (
	opTagSet byte = iota + 1
	opTagListInsert
	opTagListRemove
	opTagTupleSet
	opTagTupleRemove
	opTagGraph
	opTagAssoc
	opTagAdd
	opTagListInsertAfter
	opTagAssocInsert
)

// Dynamic value tags.
const (
	valNil byte = iota
	valInt64
	valFloat64
	valString
	valFalse
	valTrue
	valSnapshot
	valRelationships

	// valGob escapes to a length-prefixed gob blob for values outside the
	// registered scalar set.
	valGob byte = 0xFF
)

// gobBufPool recycles scratch buffers for the gob escape hatches.
var gobBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// ---------------------------------------------------------------------------
// Append-style encoding.
// ---------------------------------------------------------------------------

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendVT(b []byte, v vtime.VT) []byte {
	b = binary.AppendUvarint(b, v.Time)
	return binary.AppendUvarint(b, uint64(v.Site))
}

func appendSite(b []byte, s vtime.SiteID) []byte {
	return binary.AppendUvarint(b, uint64(s))
}

func appendSites(b []byte, sites []vtime.SiteID) []byte {
	b = binary.AppendUvarint(b, uint64(len(sites)))
	for _, s := range sites {
		b = appendSite(b, s)
	}
	return b
}

func appendBallot(b []byte, bal consensus.Ballot) []byte {
	b = binary.AppendUvarint(b, bal.Round)
	return appendSite(b, bal.Site)
}

func appendRepairValue(b []byte, v RepairValue) []byte {
	b = appendSite(b, v.FailedSite)
	b = appendVT(b, v.GraphVT)
	b = appendSites(b, v.Survivors)
	return appendVTs(b, v.Commit)
}

func appendSyncFloors(b []byte, floors []SyncFloor) []byte {
	b = binary.AppendUvarint(b, uint64(len(floors)))
	for _, f := range floors {
		b = appendSite(b, f.Site)
		b = binary.AppendUvarint(b, f.Time)
	}
	return b
}

func appendVTs(b []byte, vts []vtime.VT) []byte {
	b = binary.AppendUvarint(b, uint64(len(vts)))
	for _, v := range vts {
		b = appendVT(b, v)
	}
	return b
}

func appendObj(b []byte, o ids.ObjectID) []byte {
	b = binary.AppendUvarint(b, uint64(o.Site))
	return binary.AppendUvarint(b, o.Seq)
}

func appendTag(b []byte, t ElemTag) []byte {
	b = appendVT(b, t.VT)
	return binary.AppendUvarint(b, uint64(t.N))
}

func appendPath(b []byte, p Path) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	for _, e := range p {
		b = appendBool(b, e.IsKey)
		if e.IsKey {
			b = appendString(b, e.Key)
		} else {
			b = appendTag(b, e.Tag)
		}
	}
	return b
}

func appendGraph(b []byte, g repgraph.Wire) []byte {
	b = binary.AppendUvarint(b, uint64(len(g.Nodes)))
	for _, n := range g.Nodes {
		b = appendObj(b, n.Obj)
		b = appendSite(b, n.Site)
	}
	b = binary.AppendUvarint(b, uint64(len(g.Edges)))
	for _, e := range g.Edges {
		b = appendObj(b, e.Edge.A)
		b = appendObj(b, e.Edge.B)
		b = binary.AppendVarint(b, int64(e.Count))
	}
	return appendObj(b, g.Anchor)
}

func appendSnapshot(b []byte, s CompositeSnapshot) []byte {
	var err error
	b = binary.AppendUvarint(b, uint64(s.Kind))
	b = appendBool(b, s.IsSorted)
	b = binary.AppendUvarint(b, uint64(len(s.Elems)))
	for _, e := range s.Elems {
		b = appendTag(b, e.Tag)
		b = appendString(b, e.Key)
		b, err = appendChildDecl(b, e.Child)
		if err != nil {
			// ChildDecl values are scalars; the gob escape below absorbs
			// anything else, so this cannot fail in practice. Encode nil
			// to keep the stream well-formed.
			b = append(b, valNil)
		}
		if e.Nested != nil {
			b = appendBool(b, true)
			b = appendSnapshot(b, *e.Nested)
		} else {
			b = appendBool(b, false)
		}
	}
	return b
}

func appendRelationships(b []byte, rels []Relationship) []byte {
	b = binary.AppendUvarint(b, uint64(len(rels)))
	for _, r := range rels {
		b = appendString(b, r.Name)
		b = binary.AppendUvarint(b, uint64(len(r.Members)))
		for _, m := range r.Members {
			b = appendSite(b, m.Site)
			b = appendObj(b, m.Obj)
			b = appendString(b, m.Desc)
		}
	}
	return b
}

// appendValue encodes a dynamically typed payload value. The registered
// scalar set gets compact layouts; anything else escapes to gob.
func appendValue(b []byte, v any) ([]byte, error) {
	switch v := v.(type) {
	case nil:
		return append(b, valNil), nil
	case int64:
		b = append(b, valInt64)
		return binary.AppendVarint(b, v), nil
	case float64:
		b = append(b, valFloat64)
		return appendFloat(b, v), nil
	case string:
		b = append(b, valString)
		return appendString(b, v), nil
	case bool:
		if v {
			return append(b, valTrue), nil
		}
		return append(b, valFalse), nil
	case CompositeSnapshot:
		b = append(b, valSnapshot)
		return appendSnapshot(b, v), nil
	case []Relationship:
		b = append(b, valRelationships)
		return appendRelationships(b, v), nil
	default:
		blob, err := gobValueBlob(v)
		if err != nil {
			return b, fmt.Errorf("wire: encode value %T: %w", v, err)
		}
		b = append(b, valGob)
		b = binary.AppendUvarint(b, uint64(len(blob)))
		return append(b, blob...), nil
	}
}

// gobValueBlob gob-encodes a value wrapped so interface dynamics survive.
func gobValueBlob(v any) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	buf.Reset()
	wrap := struct{ V any }{V: v}
	if err := gob.NewEncoder(buf).Encode(&wrap); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

func appendChildDecl(b []byte, c ChildDecl) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(c.Kind))
	return appendValue(b, c.Value)
}

func appendCheck(b []byte, c ReadCheck) []byte {
	b = appendObj(b, c.Target)
	b = appendPath(b, c.Path)
	b = appendVT(b, c.ReadVT)
	b = appendVT(b, c.GraphVT)
	b = appendBool(b, c.CommittedOnly)
	return appendBool(b, c.NoReserve)
}

func appendOp(b []byte, op Op) ([]byte, error) {
	switch op := op.(type) {
	case OpSet:
		b = append(b, opTagSet)
		return appendValue(b, op.Value)
	case OpListInsert:
		b = append(b, opTagListInsert)
		b = appendTag(b, op.Tag)
		b = binary.AppendVarint(b, int64(op.Index))
		var err error
		b, err = appendChildDecl(b, op.Child)
		if err != nil {
			return b, err
		}
		return appendTag(b, op.After), nil
	case OpListRemove:
		b = append(b, opTagListRemove)
		return appendTag(b, op.Tag), nil
	case OpTupleSet:
		b = append(b, opTagTupleSet)
		b = appendString(b, op.Key)
		var err error
		b, err = appendChildDecl(b, op.Child)
		if err != nil {
			return b, err
		}
		return appendVT(b, op.At), nil
	case OpTupleRemove:
		b = append(b, opTagTupleRemove)
		b = appendString(b, op.Key)
		return appendVT(b, op.Of), nil
	case OpGraph:
		b = append(b, opTagGraph)
		return appendGraph(b, op.Graph), nil
	case OpAssoc:
		b = append(b, opTagAssoc)
		return appendRelationships(b, op.Relationships), nil
	case OpAdd:
		b = append(b, opTagAdd)
		return appendValue(b, op.Delta)
	case OpListInsertAfter:
		b = append(b, opTagListInsertAfter)
		b = appendTag(b, op.Tag)
		var err error
		b, err = appendChildDecl(b, op.Child)
		if err != nil {
			return b, err
		}
		return appendTag(b, op.After), nil
	case OpAssocInsert:
		b = append(b, opTagAssocInsert)
		return appendRelationships(b, []Relationship{op.Rel}), nil
	default:
		return b, fmt.Errorf("wire: unknown op type %T", op)
	}
}

func appendUpdate(b []byte, u Update) ([]byte, error) {
	b = appendObj(b, u.Target)
	b = appendPath(b, u.Path)
	b = appendVT(b, u.ReadVT)
	b = appendVT(b, u.GraphVT)
	return appendOp(b, u.Op)
}

// AppendMessage appends the binary encoding of m to b and returns the
// extended buffer. The encoding is self-delimiting: DecodeMessage reports
// how many bytes it consumed, so messages can be concatenated back to
// back in one frame.
func AppendMessage(b []byte, m Message) ([]byte, error) {
	var err error
	switch m := m.(type) {
	case Write:
		b = append(b, tagWrite)
		b = appendVT(b, m.TxnVT)
		b = appendSite(b, m.Origin)
		b = binary.AppendUvarint(b, uint64(len(m.Updates)))
		for _, u := range m.Updates {
			if b, err = appendUpdate(b, u); err != nil {
				return b, err
			}
		}
		b = binary.AppendUvarint(b, uint64(len(m.Checks)))
		for _, c := range m.Checks {
			b = appendCheck(b, c)
		}
		b = appendBool(b, m.NeedsConfirm)
		if m.Delegate != nil {
			b = appendBool(b, true)
			b = appendSites(b, m.Delegate.Sites)
		} else {
			b = appendBool(b, false)
		}
		return b, nil
	case FastWrite:
		b = append(b, tagFastWrite)
		b = appendVT(b, m.TxnVT)
		b = appendSite(b, m.Origin)
		b = binary.AppendUvarint(b, uint64(len(m.Updates)))
		for _, u := range m.Updates {
			if b, err = appendUpdate(b, u); err != nil {
				return b, err
			}
		}
		return b, nil
	case SyncRequest:
		b = append(b, tagSyncRequest)
		b = appendSite(b, m.From)
		b = binary.AppendUvarint(b, m.ReqID)
		return appendSyncFloors(b, m.Floors), nil
	case SyncUpdates:
		b = append(b, tagSyncUpdates)
		b = appendSite(b, m.From)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendBool(b, m.WantReply)
		b = appendSyncFloors(b, m.Floors)
		b = binary.AppendUvarint(b, uint64(len(m.Records)))
		for _, rec := range m.Records {
			b = binary.AppendUvarint(b, uint64(len(rec)))
			b = append(b, rec...)
		}
		return b, nil
	case ConfirmRead:
		b = append(b, tagConfirmRead)
		b = appendVT(b, m.TxnVT)
		b = appendSite(b, m.Origin)
		b = binary.AppendUvarint(b, m.ReqID)
		b = binary.AppendUvarint(b, uint64(len(m.Checks)))
		for _, c := range m.Checks {
			b = appendCheck(b, c)
		}
		return b, nil
	case Confirm:
		b = append(b, tagConfirm)
		b = appendVT(b, m.TxnVT)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendSite(b, m.From)
		b = appendBool(b, m.OK)
		b = appendBool(b, m.Transient)
		return appendString(b, m.Reason), nil
	case Outcome:
		b = append(b, tagOutcome)
		b = appendVT(b, m.TxnVT)
		return appendBool(b, m.Committed), nil
	case JoinRequest:
		b = append(b, tagJoinRequest)
		b = appendVT(b, m.TxnVT)
		b = appendSite(b, m.Origin)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendObj(b, m.AObj)
		b = appendObj(b, m.BObj)
		return appendGraph(b, m.GraphA), nil
	case JoinReply:
		b = append(b, tagJoinReply)
		b = appendVT(b, m.TxnVT)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendSite(b, m.From)
		b = appendBool(b, m.OK)
		b = appendString(b, m.Reason)
		b = appendBool(b, m.Retryable)
		b = appendObj(b, m.BObj)
		if b, err = appendValue(b, m.BValue); err != nil {
			return b, err
		}
		b = appendGraph(b, m.GraphB)
		b = appendVT(b, m.PendingGraphTxn)
		return appendSites(b, m.ConfirmSites), nil
	case PromoteQuery:
		b = append(b, tagPromoteQuery)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendSite(b, m.Origin)
		b = appendObj(b, m.Target)
		return appendPath(b, m.Path), nil
	case PromoteReply:
		b = append(b, tagPromoteReply)
		b = binary.AppendUvarint(b, m.ReqID)
		b = appendSite(b, m.From)
		b = appendBool(b, m.OK)
		return appendObj(b, m.Child), nil
	case CommitQuery:
		b = append(b, tagCommitQuery)
		b = appendVT(b, m.TxnVT)
		return appendSite(b, m.From), nil
	case CommitQueryReply:
		b = append(b, tagCommitQueryReply)
		b = appendVT(b, m.TxnVT)
		b = appendSite(b, m.From)
		b = appendBool(b, m.Known)
		return appendBool(b, m.Committed), nil
	case RepairPropose:
		b = append(b, tagRepairPropose)
		b = binary.AppendUvarint(b, m.Epoch)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendVT(b, m.GraphVT)
		return appendSites(b, m.Survivors), nil
	case RepairAck:
		b = append(b, tagRepairAck)
		b = binary.AppendUvarint(b, m.EpochN)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		return appendVTs(b, m.KnownCommitted), nil
	case RepairDecide:
		b = append(b, tagRepairDecide)
		b = binary.AppendUvarint(b, m.EpochN)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendVT(b, m.GraphVT)
		return appendVTs(b, m.Commit), nil
	case RepairPrepare:
		b = append(b, tagRepairPrepare)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendBallot(b, m.Ballot)
		return appendSites(b, m.Members), nil
	case RepairPromise:
		b = append(b, tagRepairPromise)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendBallot(b, m.Ballot)
		b = appendBool(b, m.OK)
		b = appendBallot(b, m.Promised)
		b = appendBool(b, m.HasAccepted)
		b = appendBallot(b, m.AcceptedBallot)
		b = appendRepairValue(b, m.Accepted)
		return appendVTs(b, m.KnownCommitted), nil
	case RepairAccept:
		b = append(b, tagRepairAccept)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendBallot(b, m.Ballot)
		b = appendRepairValue(b, m.Value)
		return appendSites(b, m.Members), nil
	case RepairAccepted:
		b = append(b, tagRepairAccepted)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendBallot(b, m.Ballot)
		b = appendBool(b, m.OK)
		return appendBallot(b, m.Promised), nil
	case RepairLearn:
		b = append(b, tagRepairLearn)
		b = appendSite(b, m.FailedSite)
		b = appendSite(b, m.From)
		b = appendBallot(b, m.Ballot)
		return appendRepairValue(b, m.Value), nil
	case GVTUpdate:
		b = append(b, tagGVTUpdate)
		b = appendVT(b, m.VT)
		b = appendSite(b, m.From)
		b = appendString(b, m.Name)
		return appendValue(b, m.Value)
	case GVTAck:
		b = append(b, tagGVTAck)
		b = appendVT(b, m.VT)
		return appendSite(b, m.From), nil
	case GVTToken:
		b = append(b, tagGVTToken)
		b = binary.AppendUvarint(b, m.Round)
		b = appendVT(b, m.Min)
		b = appendBool(b, m.MinValid)
		return appendVT(b, m.GVT), nil
	case CenWrite:
		b = append(b, tagCenWrite)
		b = binary.AppendUvarint(b, m.Seq)
		b = appendSite(b, m.From)
		b = appendString(b, m.Name)
		return appendValue(b, m.Value)
	case CenEcho:
		b = append(b, tagCenEcho)
		b = binary.AppendUvarint(b, m.Seq)
		b = appendString(b, m.Name)
		return appendValue(b, m.Value)
	default:
		// Unknown message type: gob escape so protocol extensions that
		// have not been given a hand layout yet still travel.
		blob, gerr := gobMessageBlob(m)
		if gerr != nil {
			return b, fmt.Errorf("wire: encode message %T: %w", m, gerr)
		}
		b = append(b, tagGobMessage)
		b = binary.AppendUvarint(b, uint64(len(blob)))
		return append(b, blob...), nil
	}
}

func gobMessageBlob(m Message) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	defer gobBufPool.Put(buf)
	buf.Reset()
	wrap := struct{ M Message }{M: m}
	if err := gob.NewEncoder(buf).Encode(&wrap); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

// reader walks a byte slice accumulating the first error. All getters
// return zero values after an error, so decode paths stay linear.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

var errShortBuffer = fmt.Errorf("wire: truncated message")

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(errShortBuffer)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(errShortBuffer)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byte_() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(errShortBuffer)
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) bool_() bool { return r.byte_() != 0 }

func (r *reader) bytes_(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(errShortBuffer)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) string_() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		r.fail(errShortBuffer)
		return ""
	}
	return string(r.bytes_(int(n)))
}

func (r *reader) float() float64 {
	s := r.bytes_(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s))
}

func (r *reader) vt() vtime.VT {
	t := r.uvarint()
	s := r.uvarint()
	return vtime.VT{Time: t, Site: vtime.SiteID(s)}
}

func (r *reader) site() vtime.SiteID { return vtime.SiteID(r.uvarint()) }

func (r *reader) ballot() consensus.Ballot {
	round := r.uvarint()
	return consensus.Ballot{Round: round, Site: r.site()}
}

// count reads a slice length and sanity-checks it against the bytes that
// remain, so corrupt input cannot provoke a huge allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(errShortBuffer)
		return 0
	}
	return int(n)
}

func (r *reader) sites() []vtime.SiteID {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]vtime.SiteID, n)
	for i := range out {
		out[i] = r.site()
	}
	return out
}

func (r *reader) syncFloors() []SyncFloor {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]SyncFloor, n)
	for i := range out {
		out[i] = SyncFloor{Site: r.site(), Time: r.uvarint()}
	}
	return out
}

// byteSlices reads a count-prefixed list of length-prefixed byte blobs
// (anti-entropy record transfer). Each blob copies out of the input.
func (r *reader) byteSlices() [][]byte {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		ln := r.count()
		blob := r.bytes_(ln)
		if r.err != nil {
			return nil
		}
		out = append(out, append([]byte(nil), blob...))
	}
	return out
}

func (r *reader) vts() []vtime.VT {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]vtime.VT, n)
	for i := range out {
		out[i] = r.vt()
	}
	return out
}

func (r *reader) repairValue() RepairValue {
	return RepairValue{
		FailedSite: r.site(),
		GraphVT:    r.vt(),
		Survivors:  r.sites(),
		Commit:     r.vts(),
	}
}

func (r *reader) obj() ids.ObjectID {
	s := r.uvarint()
	q := r.uvarint()
	return ids.ObjectID{Site: vtime.SiteID(s), Seq: q}
}

func (r *reader) tag() ElemTag {
	v := r.vt()
	n := r.uvarint()
	return ElemTag{VT: v, N: uint32(n)}
}

func (r *reader) path() Path {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make(Path, n)
	for i := range out {
		if r.bool_() {
			out[i] = PathElem{IsKey: true, Key: r.string_()}
		} else {
			out[i] = PathElem{Tag: r.tag()}
		}
	}
	return out
}

func (r *reader) graph() repgraph.Wire {
	var g repgraph.Wire
	if n := r.count(); n > 0 {
		g.Nodes = make([]repgraph.WireNode, n)
		for i := range g.Nodes {
			g.Nodes[i] = repgraph.WireNode{Obj: r.obj(), Site: r.site()}
		}
	}
	if n := r.count(); n > 0 {
		g.Edges = make([]repgraph.WireEdge, n)
		for i := range g.Edges {
			a := r.obj()
			b := r.obj()
			g.Edges[i] = repgraph.WireEdge{Edge: repgraph.Edge{A: a, B: b}, Count: int(r.varint())}
		}
	}
	g.Anchor = r.obj()
	return g
}

func (r *reader) snapshot() CompositeSnapshot {
	var s CompositeSnapshot
	s.Kind = ChildKind(r.uvarint())
	s.IsSorted = r.bool_()
	if n := r.count(); n > 0 {
		s.Elems = make([]SnapshotElem, n)
		for i := range s.Elems {
			e := SnapshotElem{Tag: r.tag(), Key: r.string_(), Child: r.childDecl()}
			if r.bool_() {
				nested := r.snapshot()
				e.Nested = &nested
			}
			s.Elems[i] = e
		}
	}
	return s
}

func (r *reader) relationships() []Relationship {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]Relationship, n)
	for i := range out {
		out[i].Name = r.string_()
		if m := r.count(); m > 0 {
			out[i].Members = make([]Member, m)
			for j := range out[i].Members {
				out[i].Members[j] = Member{Site: r.site(), Obj: r.obj(), Desc: r.string_()}
			}
		}
	}
	return out
}

func (r *reader) value() any {
	switch t := r.byte_(); t {
	case valNil:
		return nil
	case valInt64:
		return r.varint()
	case valFloat64:
		return r.float()
	case valString:
		return r.string_()
	case valFalse:
		return false
	case valTrue:
		return true
	case valSnapshot:
		return r.snapshot()
	case valRelationships:
		return r.relationships()
	case valGob:
		n := r.count()
		blob := r.bytes_(n)
		if r.err != nil {
			return nil
		}
		var wrap struct{ V any }
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&wrap); err != nil {
			r.fail(fmt.Errorf("wire: decode gob value: %w", err))
			return nil
		}
		return wrap.V
	default:
		r.fail(fmt.Errorf("wire: unknown value tag %d", t))
		return nil
	}
}

func (r *reader) childDecl() ChildDecl {
	k := ChildKind(r.uvarint())
	return ChildDecl{Kind: k, Value: r.value()}
}

func (r *reader) check() ReadCheck {
	return ReadCheck{
		Target:        r.obj(),
		Path:          r.path(),
		ReadVT:        r.vt(),
		GraphVT:       r.vt(),
		CommittedOnly: r.bool_(),
		NoReserve:     r.bool_(),
	}
}

func (r *reader) checks() []ReadCheck {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]ReadCheck, n)
	for i := range out {
		out[i] = r.check()
	}
	return out
}

func (r *reader) op() Op {
	switch t := r.byte_(); t {
	case opTagSet:
		return OpSet{Value: r.value()}
	case opTagListInsert:
		return OpListInsert{
			Tag:   r.tag(),
			Index: int(r.varint()),
			Child: r.childDecl(),
			After: r.tag(),
		}
	case opTagListRemove:
		return OpListRemove{Tag: r.tag()}
	case opTagTupleSet:
		return OpTupleSet{Key: r.string_(), Child: r.childDecl(), At: r.vt()}
	case opTagTupleRemove:
		return OpTupleRemove{Key: r.string_(), Of: r.vt()}
	case opTagGraph:
		return OpGraph{Graph: r.graph()}
	case opTagAssoc:
		return OpAssoc{Relationships: r.relationships()}
	case opTagAdd:
		return OpAdd{Delta: r.value()}
	case opTagListInsertAfter:
		return OpListInsertAfter{
			Tag:   r.tag(),
			Child: r.childDecl(),
			After: r.tag(),
		}
	case opTagAssocInsert:
		rels := r.relationships()
		if len(rels) != 1 {
			r.fail(fmt.Errorf("wire: assoc-insert carries %d relationships", len(rels)))
			return nil
		}
		return OpAssocInsert{Rel: rels[0]}
	default:
		r.fail(fmt.Errorf("wire: unknown op tag %d", t))
		return nil
	}
}

func (r *reader) update() Update {
	return Update{
		Target:  r.obj(),
		Path:    r.path(),
		ReadVT:  r.vt(),
		GraphVT: r.vt(),
		Op:      r.op(),
	}
}

// DecodeMessage decodes one message from the front of b, returning the
// message and the number of bytes consumed.
func DecodeMessage(b []byte) (Message, int, error) {
	r := &reader{b: b}
	var m Message
	switch t := r.byte_(); t {
	case tagWrite:
		w := Write{TxnVT: r.vt(), Origin: r.site()}
		if n := r.count(); n > 0 {
			w.Updates = make([]Update, n)
			for i := range w.Updates {
				w.Updates[i] = r.update()
			}
		}
		w.Checks = r.checks()
		w.NeedsConfirm = r.bool_()
		if r.bool_() {
			w.Delegate = &Delegation{Sites: r.sites()}
		}
		m = w
	case tagFastWrite:
		w := FastWrite{TxnVT: r.vt(), Origin: r.site()}
		if n := r.count(); n > 0 {
			w.Updates = make([]Update, n)
			for i := range w.Updates {
				w.Updates[i] = r.update()
			}
		}
		m = w
	case tagSyncRequest:
		m = SyncRequest{From: r.site(), ReqID: r.uvarint(), Floors: r.syncFloors()}
	case tagSyncUpdates:
		m = SyncUpdates{
			From: r.site(), ReqID: r.uvarint(), WantReply: r.bool_(),
			Floors: r.syncFloors(), Records: r.byteSlices(),
		}
	case tagConfirmRead:
		m = ConfirmRead{TxnVT: r.vt(), Origin: r.site(), ReqID: r.uvarint(), Checks: r.checks()}
	case tagConfirm:
		m = Confirm{
			TxnVT: r.vt(), ReqID: r.uvarint(), From: r.site(),
			OK: r.bool_(), Transient: r.bool_(), Reason: r.string_(),
		}
	case tagOutcome:
		m = Outcome{TxnVT: r.vt(), Committed: r.bool_()}
	case tagJoinRequest:
		m = JoinRequest{
			TxnVT: r.vt(), Origin: r.site(), ReqID: r.uvarint(),
			AObj: r.obj(), BObj: r.obj(), GraphA: r.graph(),
		}
	case tagJoinReply:
		m = JoinReply{
			TxnVT: r.vt(), ReqID: r.uvarint(), From: r.site(),
			OK: r.bool_(), Reason: r.string_(), Retryable: r.bool_(),
			BObj: r.obj(), BValue: r.value(), GraphB: r.graph(),
			PendingGraphTxn: r.vt(), ConfirmSites: r.sites(),
		}
	case tagPromoteQuery:
		m = PromoteQuery{ReqID: r.uvarint(), Origin: r.site(), Target: r.obj(), Path: r.path()}
	case tagPromoteReply:
		m = PromoteReply{ReqID: r.uvarint(), From: r.site(), OK: r.bool_(), Child: r.obj()}
	case tagCommitQuery:
		m = CommitQuery{TxnVT: r.vt(), From: r.site()}
	case tagCommitQueryReply:
		m = CommitQueryReply{TxnVT: r.vt(), From: r.site(), Known: r.bool_(), Committed: r.bool_()}
	case tagRepairPropose:
		m = RepairPropose{
			Epoch: r.uvarint(), FailedSite: r.site(), From: r.site(),
			GraphVT: r.vt(), Survivors: r.sites(),
		}
	case tagRepairAck:
		m = RepairAck{
			EpochN: r.uvarint(), FailedSite: r.site(), From: r.site(),
			KnownCommitted: r.vts(),
		}
	case tagRepairDecide:
		m = RepairDecide{
			EpochN: r.uvarint(), FailedSite: r.site(), From: r.site(),
			GraphVT: r.vt(), Commit: r.vts(),
		}
	case tagRepairPrepare:
		m = RepairPrepare{
			FailedSite: r.site(), From: r.site(), Ballot: r.ballot(),
			Members: r.sites(),
		}
	case tagRepairPromise:
		m = RepairPromise{
			FailedSite: r.site(), From: r.site(), Ballot: r.ballot(),
			OK: r.bool_(), Promised: r.ballot(), HasAccepted: r.bool_(),
			AcceptedBallot: r.ballot(), Accepted: r.repairValue(),
			KnownCommitted: r.vts(),
		}
	case tagRepairAccept:
		m = RepairAccept{
			FailedSite: r.site(), From: r.site(), Ballot: r.ballot(),
			Value: r.repairValue(), Members: r.sites(),
		}
	case tagRepairAccepted:
		m = RepairAccepted{
			FailedSite: r.site(), From: r.site(), Ballot: r.ballot(),
			OK: r.bool_(), Promised: r.ballot(),
		}
	case tagRepairLearn:
		m = RepairLearn{
			FailedSite: r.site(), From: r.site(), Ballot: r.ballot(),
			Value: r.repairValue(),
		}
	case tagGVTUpdate:
		m = GVTUpdate{VT: r.vt(), From: r.site(), Name: r.string_(), Value: r.value()}
	case tagGVTAck:
		m = GVTAck{VT: r.vt(), From: r.site()}
	case tagGVTToken:
		m = GVTToken{Round: r.uvarint(), Min: r.vt(), MinValid: r.bool_(), GVT: r.vt()}
	case tagCenWrite:
		m = CenWrite{Seq: r.uvarint(), From: r.site(), Name: r.string_(), Value: r.value()}
	case tagCenEcho:
		m = CenEcho{Seq: r.uvarint(), Name: r.string_(), Value: r.value()}
	case tagGobMessage:
		n := r.count()
		blob := r.bytes_(n)
		if r.err == nil {
			var wrap struct{ M Message }
			if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&wrap); err != nil {
				r.fail(fmt.Errorf("wire: decode gob message: %w", err))
			} else {
				m = wrap.M
			}
		}
	default:
		return nil, 0, fmt.Errorf("wire: unknown message tag %d", t)
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	return m, r.off, nil
}

// EncodeMessage is AppendMessage into a fresh buffer.
func EncodeMessage(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, 128), m)
}
