package wire

import (
	"encoding/gob"

	"decaf/internal/vtime"
)

// Messages for the baseline systems the paper compares against:
//
//   - GVT* messages implement a Jefferson-style Global-Virtual-Time sweep
//     commit (Time Warp / ORESTE / COAST lineage, paper §5.1.3 and §6):
//     updates apply optimistically everywhere and commit only when a
//     token-ring sweep proves no straggler below their VT can exist.
//
//   - Cen* messages implement the non-replicated (centralized)
//     architecture of paper §1: a single server owns the state and every
//     client action round-trips to it.

// GVTUpdate propagates a baseline write to all sites of the group.
type GVTUpdate struct {
	VT    vtime.VT
	From  vtime.SiteID
	Name  string
	Value any
}

func (GVTUpdate) isMessage() {}

// Kind implements Message.
func (GVTUpdate) Kind() string { return "GVT-UPDATE" }

// GVTAck acknowledges receipt of a GVTUpdate; the writer keeps the
// transaction in its uncommitted set until every peer acknowledged, which
// makes the token sweep sound with respect to in-transit messages.
type GVTAck struct {
	VT   vtime.VT
	From vtime.SiteID
}

func (GVTAck) isMessage() {}

// Kind implements Message.
func (GVTAck) Kind() string { return "GVT-ACK" }

// GVTToken circulates the ring accumulating the minimum uncommitted VT;
// when a round completes, the accumulated minimum becomes the new global
// virtual time and rides the next token so every site can commit below it.
type GVTToken struct {
	Round uint64
	// Min accumulates the minimum uncommitted VT seen this round.
	Min vtime.VT
	// MinValid distinguishes "no uncommitted work" from the zero VT.
	MinValid bool
	// GVT is the last completed round's result.
	GVT vtime.VT
}

func (GVTToken) isMessage() {}

// Kind implements Message.
func (GVTToken) Kind() string { return "GVT-TOKEN" }

// CenWrite asks the central server to apply an update.
type CenWrite struct {
	Seq   uint64
	From  vtime.SiteID
	Name  string
	Value any
}

func (CenWrite) isMessage() {}

// Kind implements Message.
func (CenWrite) Kind() string { return "CEN-WRITE" }

// CenEcho is the server's state notification to clients (including the
// writer, whose GUI updates only on the echo — the responsiveness cost of
// the non-replicated architecture).
type CenEcho struct {
	Seq   uint64
	Name  string
	Value any
}

func (CenEcho) isMessage() {}

// Kind implements Message.
func (CenEcho) Kind() string { return "CEN-ECHO" }

func init() {
	gob.Register(GVTUpdate{})
	gob.Register(GVTAck{})
	gob.Register(GVTToken{})
	gob.Register(CenWrite{})
	gob.Register(CenEcho{})
}
