package wire

import (
	"encoding/binary"
	"fmt"

	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// Checkpoint codec (paper §5.3, DESIGN.md §13). Version 2 moves
// checkpoints off encoding/gob onto the hand codec; the engine still
// loads version-1 gob checkpoints (the stream is sniffed: a v2
// checkpoint starts with a 0x00 byte, which no gob stream can — gob's
// leading message-length uvarint is always nonzero).

// CheckpointVersion is the current on-disk checkpoint format version.
const CheckpointVersion = 2

// checkpointMagic prefixes a v2 checkpoint: 0x00 (gob-impossible
// sentinel), "DCAFCP", then the format version byte.
var checkpointMagic = [8]byte{0x00, 'D', 'C', 'A', 'F', 'C', 'P', CheckpointVersion}

// Checkpoint is a serialized site: every top-level model object with its
// latest committed value, replication graph, and the site's clock and
// counters. Seq pairs the checkpoint with the RecordMark the engine
// appends to its WAL at capture time, so recovery knows where in the log
// the checkpoint's coverage ends. Floors persist the site's anti-entropy
// version floors across restarts.
type Checkpoint struct {
	Site    vtime.SiteID
	NextSeq uint64
	Clock   vtime.VT
	Seq     uint64
	Floors  []SyncFloor
	Objects []CheckpointObject
}

// CheckpointObject is one persisted top-level model object.
type CheckpointObject struct {
	ID      ids.ObjectID
	Kind    ChildKind
	Desc    string
	Value   any // scalar value or []Relationship; nil for composites
	ValueVT vtime.VT
	Graph   repgraph.Wire
	GraphVT vtime.VT
	// Children carries composite structure, recursively.
	Children []CheckpointChild
}

// CheckpointChild is one embedded composite child with its identity tags.
type CheckpointChild struct {
	Tag      ElemTag // list element tag (zero for tuple entries)
	Key      string  // tuple key (empty for list elements)
	InsertVT vtime.VT
	Kind     ChildKind
	Value    any
	ValueVT  vtime.VT
	Children []CheckpointChild
}

// IsCheckpoint reports whether b starts with the v2 checkpoint magic.
func IsCheckpoint(b []byte) bool {
	return len(b) >= len(checkpointMagic) && [8]byte(b[:8]) == checkpointMagic
}

// AppendCheckpoint encodes cp onto b.
func AppendCheckpoint(b []byte, cp Checkpoint) ([]byte, error) {
	var err error
	b = append(b, checkpointMagic[:]...)
	b = appendSite(b, cp.Site)
	b = binary.AppendUvarint(b, cp.NextSeq)
	b = appendVT(b, cp.Clock)
	b = binary.AppendUvarint(b, cp.Seq)
	b = appendSyncFloors(b, cp.Floors)
	b = binary.AppendUvarint(b, uint64(len(cp.Objects)))
	for _, oc := range cp.Objects {
		if b, err = appendCheckpointObject(b, oc); err != nil {
			return b, err
		}
	}
	return b, nil
}

func appendCheckpointObject(b []byte, oc CheckpointObject) ([]byte, error) {
	var err error
	b = appendObj(b, oc.ID)
	b = binary.AppendUvarint(b, uint64(oc.Kind))
	b = appendString(b, oc.Desc)
	if b, err = appendValue(b, oc.Value); err != nil {
		return b, err
	}
	b = appendVT(b, oc.ValueVT)
	b = appendGraph(b, oc.Graph)
	b = appendVT(b, oc.GraphVT)
	return appendCheckpointChildren(b, oc.Children)
}

func appendCheckpointChildren(b []byte, children []CheckpointChild) ([]byte, error) {
	var err error
	b = binary.AppendUvarint(b, uint64(len(children)))
	for _, cc := range children {
		b = appendTag(b, cc.Tag)
		b = appendString(b, cc.Key)
		b = appendVT(b, cc.InsertVT)
		b = binary.AppendUvarint(b, uint64(cc.Kind))
		if b, err = appendValue(b, cc.Value); err != nil {
			return b, err
		}
		b = appendVT(b, cc.ValueVT)
		if b, err = appendCheckpointChildren(b, cc.Children); err != nil {
			return b, err
		}
	}
	return b, nil
}

// EncodeCheckpoint is AppendCheckpoint into a fresh buffer.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) {
	return AppendCheckpoint(make([]byte, 0, 1024), cp)
}

// DecodeCheckpoint decodes a v2 checkpoint from b (the whole buffer).
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	if !IsCheckpoint(b) {
		return Checkpoint{}, fmt.Errorf("wire: not a v%d checkpoint", CheckpointVersion)
	}
	r := &reader{b: b, off: len(checkpointMagic)}
	cp := Checkpoint{
		Site:    r.site(),
		NextSeq: r.uvarint(),
		Clock:   r.vt(),
		Seq:     r.uvarint(),
		Floors:  r.syncFloors(),
	}
	if n := r.count(); n > 0 {
		cp.Objects = make([]CheckpointObject, n)
		for i := range cp.Objects {
			cp.Objects[i] = r.checkpointObject()
		}
	}
	if r.err != nil {
		return Checkpoint{}, fmt.Errorf("wire: decode checkpoint: %w", r.err)
	}
	return cp, nil
}

func (r *reader) checkpointObject() CheckpointObject {
	oc := CheckpointObject{
		ID:   r.obj(),
		Kind: ChildKind(r.uvarint()),
		Desc: r.string_(),
	}
	oc.Value = r.value()
	oc.ValueVT = r.vt()
	oc.Graph = r.graph()
	oc.GraphVT = r.vt()
	oc.Children = r.checkpointChildren()
	return oc
}

func (r *reader) checkpointChildren() []CheckpointChild {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]CheckpointChild, n)
	for i := range out {
		out[i] = CheckpointChild{
			Tag:      r.tag(),
			Key:      r.string_(),
			InsertVT: r.vt(),
			Kind:     ChildKind(r.uvarint()),
		}
		out[i].Value = r.value()
		out[i].ValueVT = r.vt()
		out[i].Children = r.checkpointChildren()
		if r.err != nil {
			return nil
		}
	}
	return out
}
