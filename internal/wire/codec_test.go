package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"decaf/internal/consensus"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// gobRoundTrip pushes m through gob — the reference encoding — and
// returns the result. Gob normalizes empty slices to nil, so comparing a
// binary round trip against a GOB round trip (rather than the original)
// checks semantic equality under the same normalization.
func gobRoundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	in := struct{ M Message }{M: m}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("gob encode %T: %v", m, err)
	}
	var out struct{ M Message }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", m, err)
	}
	return out.M
}

// binRoundTrip pushes m through the binary codec.
func binRoundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("binary encode %T: %v", m, err)
	}
	got, n, err := DecodeMessage(b)
	if err != nil {
		t.Fatalf("binary decode %T: %v", m, err)
	}
	if n != len(b) {
		t.Fatalf("decode %T consumed %d of %d bytes", m, n, len(b))
	}
	return got
}

// ---------------------------------------------------------------------------
// Random message generation.
// ---------------------------------------------------------------------------

type gen struct{ rng *rand.Rand }

func (g *gen) vt() vtime.VT {
	return vtime.VT{Time: g.rng.Uint64() >> g.rng.Intn(64), Site: g.site()}
}

func (g *gen) site() vtime.SiteID { return vtime.SiteID(g.rng.Intn(1 << 16)) }

func (g *gen) obj() ids.ObjectID {
	return ids.ObjectID{Site: g.site(), Seq: g.rng.Uint64() >> g.rng.Intn(64)}
}

func (g *gen) str() string {
	n := g.rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(g.rng.Intn(256))
	}
	return string(b)
}

func (g *gen) tag() ElemTag {
	return ElemTag{VT: g.vt(), N: uint32(g.rng.Intn(1 << 20))}
}

func (g *gen) path() Path {
	n := g.rng.Intn(4)
	if n == 0 {
		return nil
	}
	p := make(Path, n)
	for i := range p {
		if g.rng.Intn(2) == 0 {
			p[i] = PathElem{IsKey: true, Key: g.str()}
		} else {
			p[i] = PathElem{Tag: g.tag()}
		}
	}
	return p
}

func (g *gen) sites() []vtime.SiteID {
	n := g.rng.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]vtime.SiteID, n)
	for i := range out {
		out[i] = g.site()
	}
	return out
}

func (g *gen) vts() []vtime.VT {
	n := g.rng.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]vtime.VT, n)
	for i := range out {
		out[i] = g.vt()
	}
	return out
}

func (g *gen) graph() repgraph.Wire {
	gr := repgraph.NewGraph(g.obj(), g.site())
	for i := 0; i < g.rng.Intn(4); i++ {
		gr.AddNode(g.obj(), g.site())
	}
	nodes := gr.Nodes()
	for i := 0; i+1 < len(nodes); i++ {
		_ = gr.AddEdge(nodes[i], nodes[i+1])
	}
	return gr.ToWire()
}

// scalar returns a value from the registered dynamic-value set.
func (g *gen) scalar() any {
	switch g.rng.Intn(5) {
	case 0:
		return g.rng.Int63() - (1 << 62)
	case 1:
		return g.rng.NormFloat64() // normal floats only: NaN breaks DeepEqual
	case 2:
		return g.str()
	case 3:
		return g.rng.Intn(2) == 0
	default:
		return nil
	}
}

func (g *gen) childDecl() ChildDecl {
	return ChildDecl{Kind: ChildKind(1 + g.rng.Intn(7)), Value: g.scalar()}
}

func (g *gen) snapshot(depth int) CompositeSnapshot {
	s := CompositeSnapshot{
		Kind:     ChildKind(1 + g.rng.Intn(7)),
		IsSorted: g.rng.Intn(2) == 0,
	}
	n := g.rng.Intn(4)
	for i := 0; i < n; i++ {
		e := SnapshotElem{Tag: g.tag(), Key: g.str(), Child: g.childDecl()}
		if depth > 0 && g.rng.Intn(3) == 0 {
			nested := g.snapshot(depth - 1)
			e.Nested = &nested
		}
		s.Elems = append(s.Elems, e)
	}
	return s
}

func (g *gen) relationships() []Relationship {
	n := 1 + g.rng.Intn(3)
	out := make([]Relationship, n)
	for i := range out {
		out[i].Name = g.str()
		for j := 0; j < g.rng.Intn(3); j++ {
			out[i].Members = append(out[i].Members, Member{Site: g.site(), Obj: g.obj(), Desc: g.str()})
		}
	}
	return out
}

// value returns any dynamic value, including composite payloads.
func (g *gen) value() any {
	switch g.rng.Intn(7) {
	case 5:
		return g.snapshot(2)
	case 6:
		return g.relationships()
	default:
		return g.scalar()
	}
}

func (g *gen) op() Op {
	switch g.rng.Intn(10) {
	case 0:
		return OpSet{Value: g.value()}
	case 1:
		return OpListInsert{Tag: g.tag(), Index: g.rng.Intn(100) - 50, Child: g.childDecl(), After: g.tag()}
	case 2:
		return OpListRemove{Tag: g.tag()}
	case 3:
		return OpTupleSet{Key: g.str(), Child: g.childDecl(), At: g.vt()}
	case 4:
		return OpTupleRemove{Key: g.str(), Of: g.vt()}
	case 5:
		return OpGraph{Graph: g.graph()}
	case 6:
		if g.rng.Intn(2) == 0 {
			return OpAdd{Delta: g.rng.Int63() - (1 << 62)}
		}
		return OpAdd{Delta: g.rng.NormFloat64()}
	case 7:
		return OpListInsertAfter{Tag: g.tag(), Child: g.childDecl(), After: g.tag()}
	case 8:
		return OpAssocInsert{Rel: g.relationships()[0]}
	default:
		return OpAssoc{Relationships: g.relationships()}
	}
}

func (g *gen) check() ReadCheck {
	return ReadCheck{
		Target:        g.obj(),
		Path:          g.path(),
		ReadVT:        g.vt(),
		GraphVT:       g.vt(),
		CommittedOnly: g.rng.Intn(2) == 0,
		NoReserve:     g.rng.Intn(2) == 0,
	}
}

func (g *gen) checks() []ReadCheck {
	n := g.rng.Intn(3)
	if n == 0 {
		return nil
	}
	out := make([]ReadCheck, n)
	for i := range out {
		out[i] = g.check()
	}
	return out
}

func (g *gen) update() Update {
	return Update{Target: g.obj(), Path: g.path(), ReadVT: g.vt(), GraphVT: g.vt(), Op: g.op()}
}

// message produces a random instance of the i-th message type.
func (g *gen) message(i int) Message {
	switch i % 26 {
	case 0:
		w := Write{TxnVT: g.vt(), Origin: g.site(), NeedsConfirm: g.rng.Intn(2) == 0, Checks: g.checks()}
		for j := 0; j < 1+g.rng.Intn(4); j++ {
			w.Updates = append(w.Updates, g.update())
		}
		if g.rng.Intn(2) == 0 {
			w.Delegate = &Delegation{Sites: g.sites()}
		}
		return w
	case 1:
		return ConfirmRead{TxnVT: g.vt(), Origin: g.site(), ReqID: g.rng.Uint64(), Checks: g.checks()}
	case 2:
		return Confirm{TxnVT: g.vt(), ReqID: g.rng.Uint64(), From: g.site(),
			OK: g.rng.Intn(2) == 0, Transient: g.rng.Intn(2) == 0, Reason: g.str()}
	case 3:
		return Outcome{TxnVT: g.vt(), Committed: g.rng.Intn(2) == 0}
	case 4:
		return JoinRequest{TxnVT: g.vt(), Origin: g.site(), ReqID: g.rng.Uint64(),
			AObj: g.obj(), BObj: g.obj(), GraphA: g.graph()}
	case 5:
		return JoinReply{TxnVT: g.vt(), ReqID: g.rng.Uint64(), From: g.site(),
			OK: g.rng.Intn(2) == 0, Reason: g.str(), Retryable: g.rng.Intn(2) == 0,
			BObj: g.obj(), BValue: g.value(), GraphB: g.graph(),
			PendingGraphTxn: g.vt(), ConfirmSites: g.sites()}
	case 6:
		return PromoteQuery{ReqID: g.rng.Uint64(), Origin: g.site(), Target: g.obj(), Path: g.path()}
	case 7:
		return PromoteReply{ReqID: g.rng.Uint64(), From: g.site(), OK: g.rng.Intn(2) == 0, Child: g.obj()}
	case 8:
		return CommitQuery{TxnVT: g.vt(), From: g.site()}
	case 9:
		return CommitQueryReply{TxnVT: g.vt(), From: g.site(),
			Known: g.rng.Intn(2) == 0, Committed: g.rng.Intn(2) == 0}
	case 10:
		return RepairPropose{Epoch: g.rng.Uint64(), FailedSite: g.site(), From: g.site(),
			GraphVT: g.vt(), Survivors: g.sites()}
	case 11:
		return RepairAck{EpochN: g.rng.Uint64(), FailedSite: g.site(), From: g.site(),
			KnownCommitted: g.vts()}
	case 12:
		return RepairDecide{EpochN: g.rng.Uint64(), FailedSite: g.site(), From: g.site(),
			GraphVT: g.vt(), Commit: g.vts()}
	case 13:
		return GVTUpdate{VT: g.vt(), From: g.site(), Name: g.str(), Value: g.scalar()}
	case 14:
		return GVTAck{VT: g.vt(), From: g.site()}
	case 15:
		return GVTToken{Round: g.rng.Uint64(), Min: g.vt(), MinValid: g.rng.Intn(2) == 0, GVT: g.vt()}
	case 16:
		return CenWrite{Seq: g.rng.Uint64(), From: g.site(), Name: g.str(), Value: g.scalar()}
	case 17:
		return CenEcho{Seq: g.rng.Uint64(), Name: g.str(), Value: g.scalar()}
	case 18:
		return SyncRequest{From: g.site(), ReqID: g.rng.Uint64(), Floors: g.syncFloors()}
	case 19:
		return SyncUpdates{From: g.site(), ReqID: g.rng.Uint64(),
			WantReply: g.rng.Intn(2) == 0, Floors: g.syncFloors(), Records: g.blobs()}
	case 20:
		return RepairPrepare{FailedSite: g.site(), From: g.site(),
			Ballot: g.ballot(), Members: g.sites()}
	case 21:
		return RepairPromise{FailedSite: g.site(), From: g.site(),
			Ballot: g.ballot(), OK: g.rng.Intn(2) == 0, Promised: g.ballot(),
			HasAccepted: g.rng.Intn(2) == 0, AcceptedBallot: g.ballot(),
			Accepted: g.repairValue(), KnownCommitted: g.vts()}
	case 22:
		return RepairAccept{FailedSite: g.site(), From: g.site(),
			Ballot: g.ballot(), Value: g.repairValue(), Members: g.sites()}
	case 23:
		return RepairAccepted{FailedSite: g.site(), From: g.site(),
			Ballot: g.ballot(), OK: g.rng.Intn(2) == 0, Promised: g.ballot()}
	case 24:
		return RepairLearn{FailedSite: g.site(), From: g.site(),
			Ballot: g.ballot(), Value: g.repairValue()}
	default:
		w := FastWrite{TxnVT: g.vt(), Origin: g.site()}
		for j := 0; j < 1+g.rng.Intn(4); j++ {
			w.Updates = append(w.Updates, g.update())
		}
		return w
	}
}

func (g *gen) ballot() consensus.Ballot {
	return consensus.Ballot{Round: g.rng.Uint64() >> g.rng.Intn(60), Site: g.site()}
}

func (g *gen) repairValue() RepairValue {
	return RepairValue{FailedSite: g.site(), GraphVT: g.vt(), Survivors: g.sites(), Commit: g.vts()}
}

func (g *gen) syncFloors() []SyncFloor {
	n := g.rng.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]SyncFloor, n)
	for i := range out {
		out[i] = SyncFloor{Site: g.site(), Time: g.rng.Uint64() >> g.rng.Intn(40)}
	}
	return out
}

func (g *gen) blobs() [][]byte {
	n := g.rng.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		// Records are wire-encoded messages, never empty in practice.
		blob := make([]byte, 1+g.rng.Intn(31))
		g.rng.Read(blob)
		out[i] = blob
	}
	return out
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

// TestBinaryCodecDifferential generates random messages of every type and
// asserts the binary round trip equals the gob round trip (the oracle).
func TestBinaryCodecDifferential(t *testing.T) {
	g := &gen{rng: rand.New(rand.NewSource(7))}
	const perType = 50
	for i := 0; i < 26*perType; i++ {
		m := g.message(i)
		want := gobRoundTrip(t, m)
		got := binRoundTrip(t, m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("differential mismatch for %T:\n binary %#v\n gob    %#v\n input  %#v", m, got, want, m)
		}
	}
}

// TestBinaryCodecFixedMessages round-trips the same hand-picked message
// set the gob tests use, so a representative instance of every field is
// covered deterministically.
func TestBinaryCodecFixedMessages(t *testing.T) {
	vt := vtime.VT{Time: 100, Site: 2}
	target := ids.ObjectID{Site: 3, Seq: 7}
	msgs := []Message{
		Write{
			TxnVT:  vt,
			Origin: 2,
			Updates: []Update{
				{Target: target, ReadVT: vtime.VT{Time: 40, Site: 1}, Op: OpSet{Value: int64(9)}},
				{Target: target, Path: Path{{IsKey: true, Key: "john"}, {Tag: ElemTag{VT: vt, N: 1}}}, Op: OpSet{Value: "x"}},
				{Target: target, Op: OpListInsert{Tag: ElemTag{VT: vt, N: 2}, Index: 1, Child: ChildDecl{Kind: KindString, Value: "v"}}},
				{Target: target, Op: OpGraph{Graph: sampleGraph()}},
			},
			Checks:       []ReadCheck{{Target: target, ReadVT: vt, CommittedOnly: true, NoReserve: true}},
			NeedsConfirm: true,
			Delegate:     &Delegation{Sites: []vtime.SiteID{1, 4}},
		},
		FastWrite{
			TxnVT:  vt,
			Origin: 2,
			Updates: []Update{
				{Target: target, ReadVT: vt, Op: OpAdd{Delta: int64(3)}},
				{Target: target, ReadVT: vt, Op: OpAdd{Delta: 1.5}},
				{Target: target, Op: OpListInsertAfter{Tag: ElemTag{VT: vt, N: 1}, Child: ChildDecl{Kind: KindString, Value: "v"}, After: ElemTag{VT: vt, N: 0}}},
				{Target: target, Op: OpAssocInsert{Rel: Relationship{Name: "r", Members: []Member{{Site: 1, Obj: target, Desc: "d"}}}}},
			},
		},
		ConfirmRead{TxnVT: vt, Origin: 2, ReqID: 9, Checks: []ReadCheck{{Target: target, ReadVT: vt}}},
		Confirm{TxnVT: vt, ReqID: 9, From: 3, OK: false, Transient: true, Reason: "pending straggler"},
		Outcome{TxnVT: vt, Committed: true},
		JoinRequest{TxnVT: vt, Origin: 2, ReqID: 1, AObj: target, BObj: ids.ObjectID{Site: 1, Seq: 2}, GraphA: sampleGraph()},
		JoinReply{TxnVT: vt, ReqID: 1, From: 1, OK: true, BValue: "hello", GraphB: sampleGraph(), PendingGraphTxn: vt},
		JoinReply{TxnVT: vt, ReqID: 2, From: 1, OK: true, BValue: CompositeSnapshot{
			Kind: KindTuple,
			Elems: []SnapshotElem{
				{Key: "k", Child: ChildDecl{Kind: KindInt, Value: int64(3)}},
				{Key: "nested", Child: ChildDecl{Kind: KindList}, Nested: &CompositeSnapshot{Kind: KindList}},
			},
			IsSorted: true,
		}},
		PromoteQuery{ReqID: 4, Origin: 2, Target: target, Path: Path{{IsKey: true, Key: "a"}}},
		PromoteReply{ReqID: 4, From: 3, OK: true, Child: target},
		CommitQuery{TxnVT: vt, From: 4},
		CommitQueryReply{TxnVT: vt, From: 4, Known: true, Committed: false},
		RepairPropose{Epoch: 3, FailedSite: 9, From: 1, GraphVT: vt, Survivors: []vtime.SiteID{1, 2}},
		RepairAck{EpochN: 3, FailedSite: 9, From: 2, KnownCommitted: []vtime.VT{vt}},
		RepairDecide{EpochN: 3, FailedSite: 9, From: 1, GraphVT: vt, Commit: []vtime.VT{vt}},
		RepairPrepare{FailedSite: 9, From: 1, Ballot: consensus.Ballot{Round: 2, Site: 1},
			Members: []vtime.SiteID{1, 2, 3}},
		RepairPromise{FailedSite: 9, From: 2, Ballot: consensus.Ballot{Round: 2, Site: 1},
			OK: true, HasAccepted: true, AcceptedBallot: consensus.Ballot{Round: 1, Site: 2},
			Accepted:       RepairValue{FailedSite: 9, GraphVT: vt, Survivors: []vtime.SiteID{1, 2}, Commit: []vtime.VT{vt}},
			KnownCommitted: []vtime.VT{vt}},
		RepairPromise{FailedSite: 9, From: 2, Ballot: consensus.Ballot{Round: 1, Site: 1},
			OK: false, Promised: consensus.Ballot{Round: 3, Site: 2}},
		RepairAccept{FailedSite: 9, From: 1, Ballot: consensus.Ballot{Round: 2, Site: 1},
			Value:   RepairValue{FailedSite: 9, GraphVT: vt, Survivors: []vtime.SiteID{1, 2}},
			Members: []vtime.SiteID{1, 2, 3}},
		RepairAccepted{FailedSite: 9, From: 3, Ballot: consensus.Ballot{Round: 2, Site: 1}, OK: true},
		RepairLearn{FailedSite: 9, From: 1, Ballot: consensus.Ballot{Round: 2, Site: 1},
			Value: RepairValue{FailedSite: 9, GraphVT: vt, Survivors: []vtime.SiteID{1, 2}, Commit: []vtime.VT{vt}}},
		GVTUpdate{VT: vt, From: 2, Name: "x", Value: int64(5)},
		GVTAck{VT: vt, From: 2},
		GVTToken{Round: 8, Min: vt, MinValid: true, GVT: vtime.VT{Time: 90, Site: 1}},
		CenWrite{Seq: 11, From: 2, Name: "y", Value: 2.5},
		CenEcho{Seq: 11, Name: "y", Value: 2.5},
		SyncRequest{From: 4, ReqID: 12, Floors: []SyncFloor{{Site: 1, Time: 50}, {Site: 2, Time: 0}}},
		SyncUpdates{From: 1, ReqID: 12, WantReply: true,
			Floors:  []SyncFloor{{Site: 4, Time: 9}},
			Records: [][]byte{{1, 2, 3}, {0xFF}}},
	}
	for _, m := range msgs {
		t.Run(m.Kind()+"/"+reflect.TypeOf(m).Name(), func(t *testing.T) {
			want := gobRoundTrip(t, m)
			got := binRoundTrip(t, m)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
			}
		})
	}
}

// TestBinaryCodecConcatenation checks self-delimiting framing: several
// messages appended back to back decode in order from one buffer.
func TestBinaryCodecConcatenation(t *testing.T) {
	g := &gen{rng: rand.New(rand.NewSource(42))}
	var msgs []Message
	var buf []byte
	var err error
	for i := 0; i < 60; i++ {
		m := g.message(i)
		msgs = append(msgs, m)
		buf, err = AppendMessage(buf, m)
		if err != nil {
			t.Fatalf("append %T: %v", m, err)
		}
	}
	rest := buf
	for i, want := range msgs {
		got, n, err := DecodeMessage(rest)
		if err != nil {
			t.Fatalf("decode message %d: %v", i, err)
		}
		rest = rest[n:]
		if !reflect.DeepEqual(got, gobRoundTrip(t, want)) {
			t.Fatalf("message %d mismatch: got %#v want %#v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all messages", len(rest))
	}
}

// TestBinaryCodecTruncation ensures decoding any strict prefix of a valid
// encoding errors out instead of panicking or fabricating a message.
func TestBinaryCodecTruncation(t *testing.T) {
	g := &gen{rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 36; i++ {
		m := g.message(i)
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		for cut := 0; cut < len(b); cut++ {
			_, n, err := DecodeMessage(b[:cut])
			if err == nil && n > cut {
				t.Fatalf("decode of %d/%d bytes of %T claimed %d consumed", cut, len(b), m, n)
			}
		}
	}
}

// TestBinaryCodecCorruptInput throws random bytes at the decoder; it must
// return an error or a message, never panic or over-read.
func TestBinaryCodecCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		m, n, err := DecodeMessage(b)
		if err == nil && (n > len(b) || m == nil) {
			t.Fatalf("decode of junk %x returned m=%v n=%d without error", b, m, n)
		}
	}
}

// TestBinaryCodecGobFallbackValue checks that a dynamic value outside the
// registered scalar set survives via the gob escape hatch.
func TestBinaryCodecGobFallbackValue(t *testing.T) {
	gob.Register(map[string]int64{})
	m := GVTUpdate{VT: vtime.VT{Time: 1, Site: 1}, From: 1, Name: "m",
		Value: map[string]int64{"a": 1, "b": 2}}
	got := binRoundTrip(t, m).(GVTUpdate)
	if !reflect.DeepEqual(got.Value, m.Value) {
		t.Fatalf("fallback value mismatch: got %#v want %#v", got.Value, m.Value)
	}
}
