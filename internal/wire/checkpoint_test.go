package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

func sampleCheckpoint() Checkpoint {
	vt := vtime.VT{Time: 42, Site: 3}
	return Checkpoint{
		Site:    3,
		NextSeq: 17,
		Clock:   vtime.VT{Time: 99, Site: 3},
		Seq:     5,
		Floors:  []SyncFloor{{Site: 1, Time: 80}, {Site: 2, Time: 0}},
		Objects: []CheckpointObject{
			{
				ID:      ids.ObjectID{Site: 1, Seq: 1},
				Kind:    KindInt,
				Desc:    "reg",
				Value:   int64(7),
				ValueVT: vt,
				Graph:   sampleGraph(),
				GraphVT: vt,
			},
			{
				ID:   ids.ObjectID{Site: 1, Seq: 2},
				Kind: KindTuple,
				Desc: "tup",
				Children: []CheckpointChild{
					{Key: "name", InsertVT: vt, Kind: KindString, Value: "x", ValueVT: vt},
					{Key: "inner", InsertVT: vt, Kind: KindList, Children: []CheckpointChild{
						{Tag: ElemTag{VT: vt, N: 1}, InsertVT: vt, Kind: KindInt, Value: int64(1), ValueVT: vt},
					}},
				},
			},
		},
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	b, err := EncodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCheckpoint(b) {
		t.Fatal("encoded checkpoint not recognized by IsCheckpoint")
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestCheckpointCodecDeterministic(t *testing.T) {
	cp := sampleCheckpoint()
	a, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoint encoding is not deterministic")
	}
}

// TestCheckpointMagicDisjointFromGob pins the version-sniffing invariant:
// a gob stream can never start with 0x00 (its leading message-length
// uvarint is nonzero), so IsCheckpoint never misfires on a v1 checkpoint.
func TestCheckpointMagicDisjointFromGob(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == 0 {
		t.Fatal("gob stream starts with 0x00; magic sniffing is unsound")
	}
	if IsCheckpoint(buf.Bytes()) {
		t.Fatal("gob stream misidentified as v2 checkpoint")
	}
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Fatal("DecodeCheckpoint(nil) should fail")
	}
}

func TestCheckpointCorruptInput(t *testing.T) {
	b, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(checkpointMagic); cut < len(b); cut += 3 {
		if _, err := DecodeCheckpoint(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}
