package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
)

// roundTrip encodes and decodes a Message through gob, as both transports
// may do, and returns the decoded message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	var in struct{ M Message }
	in.M = m
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	var out struct{ M Message }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return out.M
}

func sampleGraph() repgraph.Wire {
	g := repgraph.NewGraph(ids.ObjectID{Site: 1, Seq: 1}, 1)
	g.AddNode(ids.ObjectID{Site: 2, Seq: 4}, 2)
	_ = g.AddEdge(ids.ObjectID{Site: 1, Seq: 1}, ids.ObjectID{Site: 2, Seq: 4})
	return g.ToWire()
}

func TestGobRoundTripAllMessages(t *testing.T) {
	vt := vtime.VT{Time: 100, Site: 2}
	target := ids.ObjectID{Site: 3, Seq: 7}
	msgs := []Message{
		Write{
			TxnVT:  vt,
			Origin: 2,
			Updates: []Update{
				{Target: target, ReadVT: vtime.VT{Time: 40, Site: 1}, Op: OpSet{Value: int64(9)}},
				{Target: target, Path: Path{{IsKey: true, Key: "john"}, {Tag: ElemTag{VT: vt, N: 1}}}, Op: OpSet{Value: "x"}},
			},
			Checks:       []ReadCheck{{Target: target, ReadVT: vt, CommittedOnly: true}},
			NeedsConfirm: true,
			Delegate:     &Delegation{Sites: []vtime.SiteID{1, 4}},
		},
		ConfirmRead{TxnVT: vt, Origin: 2, ReqID: 9, Checks: []ReadCheck{{Target: target, ReadVT: vt}}},
		Confirm{TxnVT: vt, ReqID: 9, From: 3, OK: false, Transient: true, Reason: "pending straggler"},
		Outcome{TxnVT: vt, Committed: true},
		JoinRequest{TxnVT: vt, Origin: 2, ReqID: 1, AObj: target, BObj: ids.ObjectID{Site: 1, Seq: 2}, GraphA: sampleGraph()},
		JoinReply{TxnVT: vt, ReqID: 1, From: 1, OK: true, BValue: "hello", GraphB: sampleGraph(), PendingGraphTxn: vt},
		CommitQuery{TxnVT: vt, From: 4},
		CommitQueryReply{TxnVT: vt, From: 4, Known: true, Committed: false},
		RepairPropose{Epoch: 3, FailedSite: 9, From: 1, GraphVT: vt, Survivors: []vtime.SiteID{1, 2}},
		RepairAck{EpochN: 3, FailedSite: 9, From: 2, KnownCommitted: []vtime.VT{vt}},
		RepairDecide{EpochN: 3, FailedSite: 9, From: 1, GraphVT: vt, Commit: []vtime.VT{vt}},
	}
	for _, m := range msgs {
		t.Run(m.Kind()+"/"+reflect.TypeOf(m).Name(), func(t *testing.T) {
			got := roundTrip(t, m)
			if !reflect.DeepEqual(got, m) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

func TestGobRoundTripOps(t *testing.T) {
	vt := vtime.VT{Time: 5, Site: 1}
	ops := []Op{
		OpSet{Value: int64(-3)},
		OpSet{Value: 2.5},
		OpSet{Value: "s"},
		OpSet{Value: true},
		OpListInsert{Tag: ElemTag{VT: vt, N: 2}, Index: 1, Child: ChildDecl{Kind: KindString, Value: "v"}, After: ElemTag{VT: vt, N: 1}},
		OpListRemove{Tag: ElemTag{VT: vt}},
		OpTupleSet{Key: "k", Child: ChildDecl{Kind: KindList}},
		OpTupleRemove{Key: "k"},
		OpGraph{Graph: sampleGraph()},
		OpAssoc{Relationships: []Relationship{{
			Name:    "accounts",
			Members: []Member{{Site: 1, Obj: ids.ObjectID{Site: 1, Seq: 1}, Desc: "checking"}},
		}}},
	}
	for _, op := range ops {
		var buf bytes.Buffer
		var in struct{ O Op }
		in.O = op
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode %T: %v", op, err)
		}
		var out struct{ O Op }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", op, err)
		}
		if !reflect.DeepEqual(out.O, op) {
			t.Errorf("op round trip mismatch:\n got %#v\nwant %#v", out.O, op)
		}
	}
}

func TestOutcomeKind(t *testing.T) {
	if (Outcome{Committed: true}).Kind() != "COMMIT" {
		t.Error("committed outcome should be COMMIT")
	}
	if (Outcome{}).Kind() != "ABORT" {
		t.Error("uncommitted outcome should be ABORT")
	}
}

func TestPathString(t *testing.T) {
	p := Path{
		{IsKey: true, Key: "john"},
		{Tag: ElemTag{VT: vtime.VT{Time: 40, Site: 1}, N: 0}},
	}
	want := "[john][40@s1#0]"
	if got := p.String(); got != want {
		t.Errorf("Path.String() = %q, want %q", got, want)
	}
}

func TestChildKindString(t *testing.T) {
	kinds := map[ChildKind]string{
		KindInt: "int", KindFloat: "float", KindString: "string",
		KindBool: "bool", KindList: "list", KindTuple: "tuple",
		KindAssociation: "association",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestElemTagZero(t *testing.T) {
	if !(ElemTag{}).IsZero() {
		t.Error("zero tag should be zero")
	}
	if (ElemTag{N: 1}).IsZero() {
		t.Error("nonzero tag reported zero")
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	// Must not panic when called again after init().
	RegisterGob()
	RegisterGob()
}
