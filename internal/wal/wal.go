// Package wal implements the durable write-ahead update log from
// DESIGN.md §13: an append-only, segmented, CRC-framed log of
// wire-encoded updates (Write/FastWrite/Outcome) plus checkpoint
// markers, with a configurable fsync policy, GVT-floor-based
// truncation, and torn-tail recovery.
//
// Concurrency contract: the log is SINGLE-WRITER. All mutating calls
// (Append, Mark, Sync, TruncateBelow, Close) and Replay must come from
// one goroutine — in the engine that is the event-loop goroutine, which
// already owns all site state. Because of that the log holds no mutex
// around file I/O, which keeps os.File.Write/Sync out of any lock
// region (enforced repo-wide by the decaf-vet lockedsend analyzer).
// The only cross-goroutine surface is Stats(), which reads atomics.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"decaf/internal/vtime"
)

// Record kinds. A record's payload is opaque to the log; the engine
// stores wire-encoded messages in RecordMessage records and a
// checkpoint sequence number in RecordMark records.
const (
	// RecordMessage frames one wire-encoded protocol message
	// (Write, FastWrite, or Outcome).
	RecordMessage = byte(1)
	// RecordMark is a checkpoint marker: everything before it is
	// captured by the checkpoint with the matching sequence number,
	// so recovery replays only the records after it.
	RecordMark = byte(2)
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append. Safest, slowest.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs only on explicit Sync() calls; the engine
	// calls Sync once per event-loop batch, amortizing the fsync
	// over every message handled in the batch.
	SyncBatch
	// SyncNever leaves flushing to the OS. Crash recovery still
	// works up to whatever the kernel persisted (the torn tail is
	// detected and truncated); used by the deterministic simulator
	// where the "disk" never outlives the process anyway.
	SyncNever
)

// Record is one framed log entry. Origin/Time carry the transaction
// VT of the framed message so the log can answer floor queries
// ("everything from origin o up to time t") without decoding payloads.
type Record struct {
	Kind    byte
	Origin  vtime.SiteID
	Time    uint64
	Payload []byte
}

// Options tunes a Log. Zero value = 4 MiB segments, SyncAlways.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size. Default 4 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy. Default SyncAlways.
	Sync SyncPolicy
}

const (
	defaultSegmentBytes = 4 << 20
	headerSize          = 8       // per-segment magic
	frameHeader         = 4 + 4   // u32 length + u32 crc32(payload)
	maxRecordBytes      = 1 << 26 // sanity bound on a single record
)

// segMagic begins every segment file: "DCAFWAL" + format version 1.
var segMagic = [headerSize]byte{'D', 'C', 'A', 'F', 'W', 'A', 'L', 1}

type segment struct {
	index   uint64 // from the file name
	path    string
	bytes   int64
	records int64
	maxTime uint64 // max Record.Time in the segment (0 if none)
	marks   int64  // RecordMark records in the segment
}

// Log is a durable append-only record log backed by a directory of
// segment files. See the package comment for the concurrency contract.
type Log struct {
	dir  string
	opts Options

	segments []segment // closed segments + the active one, ascending index
	active   *os.File  // file backing segments[len-1]

	lastMarkSeq uint64 // newest checkpoint marker sequence (0 = none)
	markSegIdx  uint64 // segment index holding that marker

	// Gauges readable from any goroutine (obs exports them).
	statRecords atomic.Int64
	statBytes   atomic.Int64
	statSegs    atomic.Int64
	statSyncs   atomic.Int64
}

// Stats is a point-in-time snapshot of log gauges.
type Stats struct {
	Records  int64
	Bytes    int64
	Segments int64
	Syncs    int64
}

// Open opens (or creates) the log in dir. It scans every segment,
// validating CRC frames. A torn tail — a short or corrupt frame at the
// end of the NEWEST segment, the expected result of a crash mid-append
// — is truncated away. Corruption anywhere else is an error.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segments) == 0 {
		if err := l.rotate(1); err != nil {
			return nil, err
		}
	} else {
		// Reopen the newest segment for appending.
		last := &l.segments[len(l.segments)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", last.path, err)
		}
		if _, err := f.Seek(last.bytes, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek %s: %w", last.path, err)
		}
		l.active = f
	}
	l.refreshStats()
	return l, nil
}

func segName(index uint64) string { return fmt.Sprintf("wal-%08d.seg", index) }

// scan reads the segment directory, validates every frame, truncates a
// torn tail on the newest segment, and rebuilds per-segment metadata.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var segs []segment
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.seg", &idx); n != 1 {
			continue
		}
		segs = append(segs, segment{index: idx, path: filepath.Join(l.dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i := range segs {
		final := i == len(segs)-1
		if err := l.scanSegment(&segs[i], final); err != nil {
			return err
		}
	}
	l.segments = segs
	return nil
}

// scanSegment validates seg frame by frame. If final, a bad tail is
// truncated (crash mid-append); otherwise it is corruption.
func (l *Log) scanSegment(seg *segment, final bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", seg.path, err)
	}
	if len(data) < headerSize || [headerSize]byte(data[:headerSize]) != segMagic {
		if final && len(data) < headerSize {
			// Crash while writing the header of a fresh segment:
			// nothing in it yet, rewrite the header.
			if err := os.WriteFile(seg.path, segMagic[:], 0o644); err != nil {
				return fmt.Errorf("wal: rewrite header %s: %w", seg.path, err)
			}
			seg.bytes = headerSize
			return nil
		}
		return fmt.Errorf("wal: %s: bad segment magic", seg.path)
	}
	off := int64(headerSize)
	for {
		rec, n, err := parseFrame(data[off:])
		if err == errFrameEOF {
			break
		}
		if err != nil {
			if !final {
				return fmt.Errorf("wal: %s: corrupt record at offset %d: %w", seg.path, off, err)
			}
			// Torn tail: truncate the file back to the last good frame.
			if terr := os.Truncate(seg.path, off); terr != nil {
				return fmt.Errorf("wal: truncate torn tail %s: %w", seg.path, terr)
			}
			break
		}
		seg.records++
		if rec.Time > seg.maxTime {
			seg.maxTime = rec.Time
		}
		if rec.Kind == RecordMark {
			seg.marks++
			seq, _ := binary.Uvarint(rec.Payload)
			if seq >= l.lastMarkSeq {
				l.lastMarkSeq = seq
				l.markSegIdx = seg.index
			}
		}
		off += int64(n)
	}
	seg.bytes = off
	return nil
}

var errFrameEOF = fmt.Errorf("wal: end of segment")

// parseFrame decodes one frame from b. Returns errFrameEOF at a clean
// end (b empty); any other error means a short or corrupt frame.
func parseFrame(b []byte) (Record, int, error) {
	if len(b) == 0 {
		return Record{}, 0, errFrameEOF
	}
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if size == 0 || size > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("implausible record length %d", size)
	}
	if len(b) < frameHeader+int(size) {
		return Record{}, 0, fmt.Errorf("short record body (%d of %d bytes)", len(b)-frameHeader, size)
	}
	payload := b[frameHeader : frameHeader+int(size)]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, fmt.Errorf("crc mismatch")
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeader + int(size), nil
}

// payload layout: kind(1) | origin uvarint | time uvarint | body.
func appendPayload(b []byte, rec Record) []byte {
	b = append(b, rec.Kind)
	b = binary.AppendUvarint(b, uint64(rec.Origin))
	b = binary.AppendUvarint(b, rec.Time)
	return append(b, rec.Payload...)
}

func decodePayload(p []byte) (Record, error) {
	if len(p) < 1 {
		return Record{}, fmt.Errorf("empty payload")
	}
	rec := Record{Kind: p[0]}
	p = p[1:]
	origin, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, fmt.Errorf("bad origin varint")
	}
	p = p[n:]
	t, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, fmt.Errorf("bad time varint")
	}
	rec.Origin = vtime.SiteID(origin)
	rec.Time = t
	rec.Payload = p[n:]
	return rec, nil
}

// rotate closes the active segment (if any) and opens a new one with
// the given index.
func (l *Log) rotate(index uint64) error {
	if l.active != nil {
		if l.opts.Sync != SyncNever {
			if err := l.active.Sync(); err != nil {
				return fmt.Errorf("wal: sync before rotate: %w", err)
			}
			l.statSyncs.Add(1)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.active = nil
	}
	path := filepath.Join(l.dir, segName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.active = f
	l.segments = append(l.segments, segment{index: index, path: path, bytes: headerSize})
	l.statSegs.Store(int64(len(l.segments)))
	return nil
}

// Append frames rec and writes it to the active segment, rotating
// first if the segment is full. Under SyncAlways the record is fsynced
// before Append returns.
func (l *Log) Append(rec Record) error {
	if l.active == nil {
		return fmt.Errorf("wal: log closed")
	}
	cur := &l.segments[len(l.segments)-1]
	if cur.bytes >= l.opts.SegmentBytes {
		if err := l.rotate(cur.index + 1); err != nil {
			return err
		}
		cur = &l.segments[len(l.segments)-1]
	}
	payload := appendPayload(make([]byte, 0, len(rec.Payload)+16), rec)
	frame := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	cur.bytes += int64(len(frame))
	cur.records++
	if rec.Time > cur.maxTime {
		cur.maxTime = rec.Time
	}
	if rec.Kind == RecordMark {
		cur.marks++
		seq, _ := binary.Uvarint(rec.Payload)
		if seq >= l.lastMarkSeq {
			l.lastMarkSeq = seq
			l.markSegIdx = cur.index
		}
	}
	l.statRecords.Add(1)
	l.statBytes.Add(int64(len(frame)))
	if l.opts.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.statSyncs.Add(1)
	}
	return nil
}

// Mark appends a checkpoint marker with the given sequence number.
// Markers are always fsynced (unless SyncNever): a checkpoint must not
// claim coverage the log cannot prove.
func (l *Log) Mark(seq uint64) error {
	payload := binary.AppendUvarint(nil, seq)
	if err := l.Append(Record{Kind: RecordMark, Payload: payload}); err != nil {
		return err
	}
	if l.opts.Sync == SyncBatch {
		return l.Sync()
	}
	return nil
}

// MarkSeq extracts the checkpoint sequence number carried by a
// RecordMark. It returns false for non-marker records or a malformed
// payload.
func MarkSeq(rec Record) (uint64, bool) {
	if rec.Kind != RecordMark {
		return 0, false
	}
	seq, n := binary.Uvarint(rec.Payload)
	if n <= 0 {
		return 0, false
	}
	return seq, true
}

// Sync fsyncs the active segment. Used by the engine once per
// event-loop batch under SyncBatch.
func (l *Log) Sync() error {
	if l.active == nil || l.opts.Sync == SyncNever {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.statSyncs.Add(1)
	return nil
}

// LastMarkSeq returns the newest checkpoint marker sequence in the
// log, or 0 if no marker has been written.
func (l *Log) LastMarkSeq() uint64 { return l.lastMarkSeq }

// Replay streams every record in log order through fn. Replay must not
// be interleaved with Append from another goroutine (single-writer
// contract). Returning a non-nil error from fn stops the replay.
func (l *Log) Replay(fn func(Record) error) error {
	for i := range l.segments {
		seg := &l.segments[i]
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		// Bound by the scanned/accounted size: the final segment file
		// is also the active write target.
		if int64(len(data)) > seg.bytes {
			data = data[:seg.bytes]
		}
		off := int64(headerSize)
		for off < int64(len(data)) {
			rec, n, err := parseFrame(data[off:])
			if err != nil {
				return fmt.Errorf("wal: replay %s at offset %d: %w", seg.path, off, err)
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += int64(n)
		}
	}
	return nil
}

// TruncateBelow deletes whole segments whose every record has
// Time < floor — but never the segment holding the newest checkpoint
// marker or anything after it, and never the active segment. This is
// the GVT-floor-based truncation from DESIGN.md §13: once the commit
// floor passes a segment's max VT time and a newer checkpoint covers
// it, the segment can no longer be needed for recovery or anti-entropy
// shipping of undelivered updates.
func (l *Log) TruncateBelow(floor uint64) error {
	if l.active == nil {
		return fmt.Errorf("wal: log closed")
	}
	keep := l.segments[:0]
	removed := false
	for i := range l.segments {
		seg := l.segments[i]
		last := i == len(l.segments)-1
		droppable := !last && seg.maxTime < floor &&
			(l.lastMarkSeq > 0 && seg.index < l.markSegIdx)
		if droppable && !removed {
			// Only drop a clean prefix; stop at the first keeper so
			// the log never has holes.
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		removed = true
		keep = append(keep, seg)
	}
	l.segments = keep
	l.refreshStats()
	return nil
}

// Close syncs (per policy) and closes the active segment.
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	var err error
	if l.opts.Sync != SyncNever {
		err = l.active.Sync()
	}
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// Dir returns the directory backing the log.
func (l *Log) Dir() string { return l.dir }

// Stats returns current gauges; safe from any goroutine.
func (l *Log) Stats() Stats {
	return Stats{
		Records:  l.statRecords.Load(),
		Bytes:    l.statBytes.Load(),
		Segments: l.statSegs.Load(),
		Syncs:    l.statSyncs.Load(),
	}
}

func (l *Log) refreshStats() {
	var recs, bytes int64
	for i := range l.segments {
		recs += l.segments[i].records
		bytes += l.segments[i].bytes
	}
	l.statRecords.Store(recs)
	l.statBytes.Store(bytes)
	l.statSegs.Store(int64(len(l.segments)))
}
