package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"decaf/internal/vtime"
)

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Kind:    RecordMessage,
			Origin:  vtime.SiteID(1 + i%3),
			Time:    uint64(10 + i),
			Payload: []byte(fmt.Sprintf("payload-%04d", i)),
		})
	}
	return recs
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var got []Record
	if err := l.Replay(func(r Record) error {
		cp := r
		cp.Payload = append([]byte(nil), r.Payload...)
		got = append(got, cp)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Origin != b[i].Origin ||
			a[i].Time != b[i].Time || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(50)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); !sameRecords(got, want) {
		t.Fatalf("replay mismatch: got %d records", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay again: durability across process restarts.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); !sameRecords(got, want) {
		t.Fatalf("replay after reopen mismatch: got %d records", len(got))
	}
	st := l2.Stats()
	if st.Records != int64(len(want)) {
		t.Fatalf("stats records = %d, want %d", st.Records, len(want))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(40)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if got := collect(t, l); !sameRecords(got, want) {
		t.Fatal("replay mismatch across segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); !sameRecords(got, want) {
		t.Fatal("replay mismatch after reopen")
	}
}

func TestMarkTracking(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if l.LastMarkSeq() != 0 {
		t.Fatal("fresh log should have no mark")
	}
	for _, r := range testRecords(5) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Mark(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Mark(2); err != nil {
		t.Fatal(err)
	}
	if l.LastMarkSeq() != 2 {
		t.Fatalf("LastMarkSeq = %d, want 2", l.LastMarkSeq())
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastMarkSeq() != 2 {
		t.Fatalf("LastMarkSeq after reopen = %d, want 2", l2.LastMarkSeq())
	}
}

func TestTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(30) // times 10..39, several segments
	for _, r := range recs[:20] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Mark(1); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[20:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats().Segments

	// Floor above the early records: segments wholly below the floor
	// AND before the mark's segment are dropped.
	if err := l.TruncateBelow(25); err != nil {
		t.Fatal(err)
	}
	after := l.Stats().Segments
	if after >= before {
		t.Fatalf("expected truncation: %d -> %d segments", before, after)
	}
	// Every surviving record with Time >= 25 must still be there, and
	// the mark must survive.
	var times []uint64
	marks := 0
	if err := l.Replay(func(r Record) error {
		if r.Kind == RecordMark {
			marks++
		} else {
			times = append(times, r.Time)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if marks != 1 {
		t.Fatalf("mark lost by truncation (marks=%d)", marks)
	}
	kept := make(map[uint64]bool)
	for _, tm := range times {
		kept[tm] = true
	}
	for _, r := range recs {
		if r.Time >= 25 && !kept[r.Time] {
			t.Fatalf("record at time %d lost by truncation", r.Time)
		}
	}
	l.Close()

	// Reopen after truncation still works.
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastMarkSeq() != 1 {
		t.Fatalf("mark seq after truncate+reopen = %d", l2.LastMarkSeq())
	}
}

func TestTruncateNeverDropsAfterMark(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Mark(1); err != nil {
		t.Fatal(err)
	}
	want := testRecords(30)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Floor above everything: nothing after the newest mark may go.
	if err := l.TruncateBelow(1 << 40); err != nil {
		t.Fatal(err)
	}
	var got []Record
	for _, r := range collect(t, l) {
		if r.Kind == RecordMessage {
			got = append(got, r)
		}
	}
	if !sameRecords(got, want) {
		t.Fatalf("records after mark dropped: %d of %d survive", len(got), len(want))
	}
}

// walBytes flattens the log directory into (ordered file list, bytes
// per file) for the torn-write tests.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestTornTailEveryBoundary simulates a crash at EVERY byte boundary of
// the final segment: for each prefix length, copy the log directory,
// truncate the last segment to that length, Open, and assert that (a)
// recovery succeeds, (b) exactly the fully-written records survive,
// and (c) the log accepts appends afterwards.
func TestTornTailEveryBoundary(t *testing.T) {
	src := t.TempDir()
	l, err := Open(src, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(8)
	// Record the segment size after each append so we know which
	// records are complete at any given cut point.
	sizes := []int64{headerSize}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, l.segments[0].bytes)
	}
	l.Close()
	files := walFiles(t, src)
	if len(files) != 1 {
		t.Fatalf("expected a single segment, got %d", len(files))
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	completeAt := func(cut int64) int {
		n := 0
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= cut {
				n = i
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		got := collect(t, rl)
		wantN := completeAt(cut)
		if !sameRecords(got, want[:wantN]) {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		// The log must keep working after recovery.
		extra := Record{Kind: RecordMessage, Origin: 9, Time: 999, Payload: []byte("post-crash")}
		if err := rl.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		got = collect(t, rl)
		if len(got) != wantN+1 || !bytes.Equal(got[len(got)-1].Payload, extra.Payload) {
			t.Fatalf("cut=%d: post-recovery append not replayable", cut)
		}
		rl.Close()
	}
}

// TestTornTailBitFlip corrupts one byte at every offset of the final
// segment's last record and asserts recovery drops exactly that record.
func TestTornTailBitFlip(t *testing.T) {
	src := t.TempDir()
	l, err := Open(src, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(6)
	var beforeLast int64
	for i, r := range want {
		if i == len(want)-1 {
			beforeLast = l.segments[0].bytes
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	files := walFiles(t, src)
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	for off := beforeLast; off < int64(len(full)); off++ {
		dir := t.TempDir()
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0xA5
		if err := os.WriteFile(filepath.Join(dir, segName(1)), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("off=%d: open: %v", off, err)
		}
		got := collect(t, rl)
		// A flipped byte in the length field can make the frame claim
		// to extend past EOF (short body -> truncated, fine) or create
		// a shorter frame whose CRC fails. Either way the tail from
		// the corrupted record on must be gone, and no record may be
		// silently altered.
		if len(got) > len(want)-1 {
			t.Fatalf("off=%d: corrupted record survived (got %d)", off, len(got))
		}
		if !sameRecords(got, want[:len(got)]) {
			t.Fatalf("off=%d: surviving records altered", off)
		}
		rl.Close()
	}
}

// TestCorruptionInClosedSegmentFails: corruption before the final
// segment is NOT a torn write and must fail loudly.
func TestCorruptionInClosedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(30) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("need at least 2 segments")
	}
	l.Close()
	files := walFiles(t, dir)
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	first[headerSize+2] ^= 0xFF
	if err := os.WriteFile(files[0], first, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("expected open to fail on mid-log corruption")
	}
}

func TestMarkVarintRoundTrip(t *testing.T) {
	payload := binary.AppendUvarint(nil, 777)
	seq, n := binary.Uvarint(payload)
	if n <= 0 || seq != 777 {
		t.Fatal("uvarint round trip broken")
	}
}
