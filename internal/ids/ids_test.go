package ids

import (
	"sort"
	"testing"

	"decaf/internal/vtime"
)

func oid(site vtime.SiteID, seq uint64) ObjectID { return ObjectID{Site: site, Seq: seq} }

func TestLessOrdersBySiteThenSeq(t *testing.T) {
	ordered := []ObjectID{
		oid(0, 0), oid(0, 1), oid(0, 2),
		oid(1, 0), oid(1, 5),
		oid(2, 0), oid(2, 1),
	}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Less(b)
			want := i < j
			if got != want {
				t.Errorf("%v.Less(%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestLessTotalOrder checks the strict-weak-order laws Less must satisfy
// for the deterministic primary-copy function to be well defined: the
// primary of a replication graph is the minimum node under Less, so an
// inconsistency here would make two sites disagree on the primary.
func TestLessTotalOrder(t *testing.T) {
	ids := []ObjectID{
		{}, oid(0, 1), oid(1, 0), oid(1, 1), oid(1, 2), oid(2, 0), oid(3, 7),
	}
	for _, a := range ids {
		if a.Less(a) {
			t.Errorf("%v.Less(itself) = true", a)
		}
		for _, b := range ids {
			if a.Less(b) && b.Less(a) {
				t.Errorf("Less not antisymmetric for %v, %v", a, b)
			}
			if a != b && !a.Less(b) && !b.Less(a) {
				t.Errorf("distinct %v, %v are unordered", a, b)
			}
			for _, c := range ids {
				if a.Less(b) && b.Less(c) && !a.Less(c) {
					t.Errorf("Less not transitive: %v < %v < %v but not %v < %v", a, b, c, a, c)
				}
			}
		}
	}
}

func TestMinimumIsDeterministic(t *testing.T) {
	nodes := []ObjectID{oid(3, 1), oid(1, 9), oid(2, 0), oid(1, 2)}
	perm := append([]ObjectID(nil), nodes...)
	sort.Slice(perm, func(i, j int) bool { return perm[i].Less(perm[j]) })
	if want := oid(1, 2); perm[0] != want {
		t.Fatalf("minimum = %v, want %v", perm[0], want)
	}
}

func TestIsZero(t *testing.T) {
	if !(ObjectID{}).IsZero() {
		t.Error("zero ObjectID not IsZero")
	}
	for _, o := range []ObjectID{oid(1, 0), oid(0, 1), oid(2, 7)} {
		if o.IsZero() {
			t.Errorf("%+v reported IsZero", o)
		}
	}
}

func TestString(t *testing.T) {
	got := oid(2, 7).String()
	if got != "s2/7" {
		t.Errorf("String() = %q, want %q", got, "s2/7")
	}
}
