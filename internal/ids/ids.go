// Package ids defines globally unique identifiers for model objects.
//
// Every model object is created at exactly one site and identified by the
// pair (creating site, per-site sequence number). Replicas at different
// sites are distinct model objects (the paper's A and A′) joined in a
// replica relationship; the replication graph's nodes are these object
// identifiers.
package ids

import (
	"fmt"

	"decaf/internal/vtime"
)

// ObjectID uniquely identifies one model object across the whole
// collaboration.
type ObjectID struct {
	Site vtime.SiteID // the site that created (and hosts) the object
	Seq  uint64       // per-site creation sequence number
}

// Less orders ObjectIDs first by site then by sequence. The order is the
// basis of the deterministic primary-copy function: the primary copy of a
// replication graph is its minimum node under this order, so every site
// maps the same graph to the same primary without negotiation (paper §3.3).
func (o ObjectID) Less(p ObjectID) bool {
	if o.Site != p.Site {
		return o.Site < p.Site
	}
	return o.Seq < p.Seq
}

// IsZero reports whether o is the zero ObjectID (no object).
func (o ObjectID) IsZero() bool { return o == ObjectID{} }

// String implements fmt.Stringer, e.g. "s2/7".
func (o ObjectID) String() string {
	return fmt.Sprintf("%s/%d", o.Site, o.Seq)
}
