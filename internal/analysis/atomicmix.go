package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags two ways of breaking sync/atomic's contract:
//
//  1. Mixed access: a struct field that is passed to sync/atomic
//     functions (atomic.AddUint64(&x.f, …)) somewhere and read or
//     written with plain loads/stores elsewhere. Plain accesses do not
//     synchronize with the atomic ones, so the "mostly atomic" field is
//     still a data race.
//
//  2. By-value passing: a function receiver, parameter, or result whose
//     type is a struct containing sync/atomic typed fields
//     (atomic.Uint64 & friends). Copying such a struct copies the
//     counter out from under concurrent writers and silently forks its
//     value; these structs must travel by pointer.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "flags fields accessed both atomically and plainly, and by-value passing of structs containing atomics",
	}
	a.Run = func(pass *Pass) {
		checkMixedAccess(pass)
		checkByValueAtomics(pass)
	}
	return a
}

// atomicFuncPrefixes are the sync/atomic pointer-argument function
// families.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// checkMixedAccess finds fields used through sync/atomic calls and
// reports every plain access to the same field in the package.
func checkMixedAccess(pass *Pass) {
	info := pass.Pkg.Info

	// First pass: fields whose address is taken for a sync/atomic call,
	// and the positions of those sanctioned selector uses.
	atomicFields := map[*types.Var]token.Position{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(info, call)
			if pkg != "sync/atomic" || !hasAnyPrefix(name, atomicFuncPrefixes) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			if obj, ok := selection.Obj().(*types.Var); ok {
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = pass.Pkg.Fset.Position(call.Pos())
				}
				sanctioned[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Second pass: any other selector touching those fields is a plain
	// (unsynchronized) access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			selection := info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			obj, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			atomicAt, isAtomic := atomicFields[obj]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed with sync/atomic at %s:%d but with a plain load/store here; every access must be atomic",
				obj.Name(), shortPath(atomicAt.Filename), atomicAt.Line)
			return true
		})
	}
}

// checkByValueAtomics flags receivers, parameters, and results whose
// struct type contains sync/atomic fields but is passed by value.
func checkByValueAtomics(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, fd := range funcDecls(f) {
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			if fd.Type.Results != nil {
				fields = append(fields, fd.Type.Results.List...)
			}
			for _, field := range fields {
				t := info.Types[field.Type].Type
				if t == nil {
					continue
				}
				if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
					continue
				}
				if name := atomicStructName(t); name != "" {
					pass.Reportf(field.Type.Pos(),
						"%s is passed by value but contains sync/atomic fields; pass *%s so counters are not copied out from under concurrent writers",
						name, name)
				}
			}
		}
	}
}

// atomicStructName returns the named struct's name when t is (or embeds,
// recursively through struct and array fields) a sync/atomic type.
func atomicStructName(t types.Type) string {
	named, ok := derefNamed(t)
	if !ok {
		return ""
	}
	if containsAtomic(named, map[types.Type]bool{}) {
		return named.Obj().Name()
	}
	return ""
}

func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
		return containsAtomic(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// shortPath trims a path to its final two elements for compact
// diagnostics.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
