package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockedSend flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, selects without a
// default case, and calls known to block (socket reads/writes, dials,
// gob encoding onto a connection, time.Sleep, WaitGroup.Wait, ...).
//
// This is the PR-2 transport bug class: a send on an unbuffered channel
// or a socket write under a peer mutex stalls every other goroutine
// needing that mutex for as long as the peer is slow, and can deadlock
// outright when the unblocking party needs the same lock. The check is
// intraprocedural and syntax-ordered (best effort across branches);
// deliberate blocking-under-lock (the legacy transport's documented
// synchronous path) is suppressed with //decaf:ignore lockedsend.
func LockedSend() *Analyzer {
	a := &Analyzer{
		Name: "lockedsend",
		Doc:  "flags blocking operations (channel ops, socket I/O, dials, sleeps) while a mutex is held",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, fd := range funcDecls(f) {
				w := &lockWalker{pass: pass, held: map[string]token.Pos{}}
				w.walk(fd.Body)
			}
		}
	}
	return a
}

// lockWalker tracks the set of held mutexes through one function body in
// source order. Mutexes are keyed by the printed form of the receiver
// expression ("p.mu"), which distinguishes locks on different objects
// even when the field names collide.
type lockWalker struct {
	pass *Pass
	held map[string]token.Pos
}

func (w *lockWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine does not hold the spawner's locks.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				w.detached(lit.Body)
			}
			return false
		case *ast.DeferStmt:
			// Deferred unlocks keep the mutex held for the rest of the
			// function; deferred bodies run at return, outside this
			// walk's source order. Neither changes the held set.
			return false
		case *ast.FuncLit:
			// Closures are usually invoked later, without the locks.
			w.detached(n.Body)
			return false
		case *ast.SelectStmt:
			w.selectStmt(n)
			return false
		case *ast.SendStmt:
			if len(w.held) > 0 {
				w.pass.Reportf(n.Arrow, "channel send while %s is held", w.heldNames())
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(w.held) > 0 {
				w.pass.Reportf(n.OpPos, "channel receive while %s is held", w.heldNames())
			}
			return true
		case *ast.CallExpr:
			if w.mutexOp(n) {
				return true
			}
			if len(w.held) > 0 {
				if desc := blockingCall(w.pass.Pkg.Info, n); desc != "" {
					w.pass.Reportf(n.Pos(), "potentially blocking call to %s while %s is held", desc, w.heldNames())
				}
			}
			return true
		}
		return true
	})
}

// detached walks a nested function body with a fresh held set.
func (w *lockWalker) detached(body ast.Node) {
	inner := &lockWalker{pass: w.pass, held: map[string]token.Pos{}}
	inner.walk(body)
}

// selectStmt handles a select: with a default case every comm clause is
// non-blocking, so only the clause bodies are inspected; without one the
// select itself blocks.
func (w *lockWalker) selectStmt(sel *ast.SelectStmt) {
	hasDefault := false
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(w.held) > 0 {
		w.pass.Reportf(sel.Select, "blocking select (no default case) while %s is held", w.heldNames())
	}
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, s := range cc.Body {
			w.walk(s)
		}
	}
}

// mutexOp updates the held set for mu.Lock/RLock/Unlock/RUnlock calls
// and reports whether the call was one.
func (w *lockWalker) mutexOp(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false
	}
	if !isMutexType(w.pass.Pkg.Info.Types[sel.X].Type) {
		return false
	}
	key := types.ExprString(sel.X)
	switch name {
	case "Lock", "RLock":
		w.held[key] = call.Pos()
	case "Unlock", "RUnlock":
		delete(w.held, key)
	}
	return true
}

func (w *lockWalker) heldNames() string {
	names := make([]string, 0, len(w.held))
	for k := range w.held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// blockingPkgFuncs are package-level functions known to block.
var blockingPkgFuncs = map[[2]string]bool{
	{"time", "Sleep"}:       true,
	{"net", "Dial"}:         true,
	{"net", "DialTimeout"}:  true,
	{"net", "DialTCP"}:      true,
	{"net", "DialUDP"}:      true,
	{"net", "Listen"}:       true,
	{"net", "ListenTCP"}:    true,
	{"net", "ListenPacket"}: true,
	{"io", "ReadFull"}:      true,
	{"io", "Copy"}:          true,
	{"io", "ReadAll"}:       true,
}

// blockingMethods maps (package path, method name) to the blocking
// verdict; "" as type name means any type from the package.
var blockingMethods = map[[2]string][]string{
	{"net", ""}:                   {"Read", "Write", "Accept", "ReadFrom", "WriteTo"},
	{"bufio", ""}:                 {"Read", "Write", "Flush", "ReadByte", "ReadString", "WriteString"},
	{"encoding/gob", "Encoder"}:   {"Encode"},
	{"encoding/gob", "Decoder"}:   {"Decode"},
	{"sync", "WaitGroup"}:         {"Wait"},
	{"sync", "Cond"}:              {"Wait"},
	{"os", "File"}:                {"Read", "Write", "Sync"},
	{"net/http", ""}:              {"Do", "Get", "Post"},
	{"golang.org/x/net/ipv4", ""}: {"ReadFrom", "WriteTo"},
}

// blockingCall reports a short description ("net.Conn.Write") when the
// call is known to block, else "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	if pkg, name := pkgFunc(info, call); pkg != "" {
		if blockingPkgFuncs[[2]string{pkg, name}] {
			return pkg + "." + name
		}
		return ""
	}
	pkg, typeName, method := methodCall(info, call)
	if pkg == "" || method == "" {
		return ""
	}
	for _, key := range [][2]string{{pkg, typeName}, {pkg, ""}} {
		for _, m := range blockingMethods[key] {
			if m == method {
				return pkg + "." + typeName + "." + method
			}
		}
	}
	return ""
}
