package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultDeterministic lists the packages (by import-path suffix) whose
// behavior must be a pure function of protocol events: the virtual-time
// machinery and everything whose state is ordered by it. Reading the
// wall clock in these packages would make transaction ordering, history
// pruning, or GVT sweeps depend on scheduling, which breaks replay
// determinism and the paper's correctness argument.
//
// Two packages are sanctioned wall-clock readers and deliberately NOT
// in this list. internal/obs: the deterministic packages obtain wall
// stamps exclusively through obs.Observer.NowNanos / ObserveSince,
// which return 0 / record nothing when timing is off, so wall time
// feeds latency metrics only and never protocol state. internal/sim:
// the simulation harness reads the wall clock solely as a liveness
// watchdog — a deadline that fails a run whose sites never quiesce —
// while everything the run's trace and final state depend on advances
// on the harness's virtual clock.
var DefaultDeterministic = []string{
	"internal/engine",
	"internal/history",
	"internal/gvt",
	"internal/vtime",
}

// wallclockBanned are the time-package functions that read the wall
// clock. Timer construction (time.After, time.NewTimer) is deliberately
// not banned: delaying an action is scheduling, not state; only state
// derived from the current time is a determinism hazard.
var wallclockBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Wallclock forbids wall-clock reads (time.Now, time.Since, time.Until)
// in the named deterministic packages. Matching is by import-path
// suffix. A justified exception is allowlisted in place with
// //decaf:ignore wallclock <reason>.
func Wallclock(protected ...string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "forbids time.Now/Since/Until in deterministic packages (engine, history, gvt, vtime)",
	}
	a.Run = func(pass *Pass) {
		if !pathProtected(pass.Pkg.ImportPath, protected) {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if !wallclockBanned[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"wall-clock read time.%s in deterministic package %s; derive state from virtual time or move the timing concern to the caller",
					fn.Name(), pass.Pkg.Types.Name())
				return true
			})
		}
	}
	return a
}

func pathProtected(importPath string, protected []string) bool {
	for _, p := range protected {
		if importPath == p || strings.HasSuffix(importPath, "/"+strings.TrimPrefix(p, "/")) || strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return false
}
