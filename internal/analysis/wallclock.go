package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultDeterministic lists the packages (by import-path suffix) whose
// behavior must be a pure function of protocol events: the virtual-time
// machinery, everything whose state is ordered by it, and the
// simulation harness whose runs must replay bit-for-bit from (profile,
// seed). Reading the wall clock in these packages would make
// transaction ordering, history pruning, GVT sweeps, or simulated
// schedules depend on real time, which breaks replay determinism and
// the paper's correctness argument.
//
// internal/sim is in the list even though it legitimately reads the
// wall clock as a liveness watchdog (a deadline that fails a run whose
// sites never quiesce): those reads are the exception, not the rule,
// so each one carries a reasoned //decaf:ignore wallclock directive in
// place — the analyzer audits them instead of exempting the package
// wholesale.
var DefaultDeterministic = []string{
	"internal/engine",
	"internal/consensus",
	"internal/history",
	"internal/gvt",
	"internal/vtime",
	"internal/sim",
}

// DefaultSanctioned lists packages (by import-path suffix) that are
// deliberate wall-clock/timer wrappers: calls INTO them from
// deterministic code are fine and taint does not propagate through
// them. internal/obs qualifies because the deterministic packages
// obtain wall stamps exclusively through obs.Observer.NowNanos /
// ObserveSince, which return 0 / record nothing when timing is off, so
// wall time feeds latency metrics only and never protocol state.
var DefaultSanctioned = []string{
	"internal/obs",
}

// wallclockBanned are the time-package functions that read the wall
// clock. Timer construction (time.After, time.NewTimer) is deliberately
// not banned here: delaying an action is scheduling, not state; the
// schedule itself is the timers analyzer's concern.
var wallclockBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Wallclock forbids wall-clock reads (time.Now, time.Since, time.Until)
// in the named deterministic packages — both direct calls and calls to
// module helpers that transitively reach one (resolved over the static
// call graph; interface dispatch and function values are not followed).
// Matching is by import-path suffix. A justified exception is
// allowlisted in place with //decaf:ignore wallclock <reason>.
func Wallclock(protected ...string) *Analyzer {
	return WallclockSanctioned(DefaultSanctioned, protected...)
}

// WallclockSanctioned is Wallclock with an explicit sanctioned-wrapper
// package list (see DefaultSanctioned); tests use it to exercise the
// barrier behavior on fixture packages.
func WallclockSanctioned(sanctioned []string, protected ...string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "forbids time.Now/Since/Until in deterministic packages (engine, history, gvt, vtime, sim), including indirectly through module helpers (call-graph reachability)",
	}
	a.Run = func(pass *Pass) {
		runReachAnalyzer(pass, reachConfig{
			protected:  protected,
			sanctioned: sanctioned,
			banned:     wallclockBanned,
			directFmt:  "wall-clock read time.%s in deterministic package %s; derive state from virtual time or move the timing concern to the caller",
			reachWord:  "a wall-clock read",
		})
	}
	return a
}

// reachConfig parameterizes the shared direct+interprocedural scan used
// by the wallclock and timers analyzers.
type reachConfig struct {
	protected  []string
	sanctioned []string
	// banned names the time-package entry points being policed.
	banned map[string]bool
	// directFmt formats a direct-use diagnostic (verb name, package name).
	directFmt string
	// reachWord names the hazard class in indirect diagnostics.
	reachWord string
}

// runReachAnalyzer reports direct uses of banned time functions in a
// protected package, plus call sites whose (module-declared,
// unprotected, unsanctioned) callee transitively reaches one.
func runReachAnalyzer(pass *Pass, cfg reachConfig) {
	if !pathProtected(pass.Pkg.ImportPath, cfg.protected) {
		return
	}
	info := pass.Pkg.Info

	// Direct uses: any mention of the banned functions, including taking
	// their value (f := time.Now).
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !bannedTimeFunc(fn, cfg.banned) {
				return true
			}
			pass.Reportf(sel.Pos(), cfg.directFmt, fn.Name(), pass.Pkg.Types.Name())
			return true
		})
	}

	// Indirect uses, over the call graph.
	g := pass.Graph
	if g == nil {
		return
	}
	target := func(fn *types.Func) bool {
		return bannedTimeFunc(fn, cfg.banned)
	}
	blocked := func(fn *types.Func) bool {
		return fn.Pkg() != nil && pathProtected(fn.Pkg().Path(), cfg.sanctioned)
	}
	r := g.newReacher(target, blocked)
	for _, f := range pass.Pkg.Files {
		for _, fd := range funcDecls(f) {
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sites := append(append([]CallSite{}, g.Calls[fn]...), g.Spawns[fn]...)
			for _, site := range sites {
				callee := site.Callee
				if target(callee) {
					continue // the direct scan already reported it
				}
				if g.DeclPkg[callee] == nil {
					continue // no body in the module: nothing to reach
				}
				calleePkg := callee.Pkg().Path()
				if pathProtected(calleePkg, cfg.protected) {
					continue // flagged inside its own package instead
				}
				if pathProtected(calleePkg, cfg.sanctioned) {
					continue
				}
				if !r.reaches(callee) {
					continue
				}
				chain := append([]*types.Func{callee}, r.path(callee)...)
				pass.Reportf(site.Pos,
					"call to %s reaches %s from deterministic package %s (%s); hoist the time dependency out or inject it",
					funcLabel(callee), cfg.reachWord, pass.Pkg.Types.Name(), chainLabel(chain))
			}
		}
	}
}

// bannedTimeFunc reports whether fn is one of the policed package-level
// time functions. The receiver check matters: time.Time has methods
// named After/Since-alikes (t.After(u) is a comparison, not a timer)
// that must not trip the analyzers.
func bannedTimeFunc(fn *types.Func, banned map[string]bool) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func pathProtected(importPath string, protected []string) bool {
	for _, p := range protected {
		if importPath == p || strings.HasSuffix(importPath, "/"+strings.TrimPrefix(p, "/")) || strings.HasSuffix(importPath, p) {
			return true
		}
	}
	return false
}
