package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// update rewrites the fixture golden files instead of comparing against
// them: go test ./internal/analysis -run TestFixtures -update
var update = flag.Bool("update", false, "rewrite expect.txt golden files")

// The loader is shared across tests: it caches type-checked std packages,
// so the second and later fixtures load in milliseconds.
var (
	loaderOnce sync.Once
	sharedLd   *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLd, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLd
}

// loadFixture loads testdata/src/<name> (plus any sub-packages, which
// are registered under synthetic import paths so the parent's imports
// resolve) and returns the loaded packages, parent first.
func loadFixture(t *testing.T, name string, subpkgs ...string) []*Package {
	t.Helper()
	loader := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", name)
	for _, sub := range subpkgs {
		loader.RegisterSynthetic("fixture/"+name+"/"+sub, filepath.Join(dir, sub))
	}
	pkgs := make([]*Package, 0, 1+len(subpkgs))
	pkg, err := loader.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	pkgs = append(pkgs, pkg)
	for _, sub := range subpkgs {
		sp, err := loader.LoadDir(filepath.Join(dir, sub), "fixture/"+name+"/"+sub)
		if err != nil {
			t.Fatalf("load fixture %s/%s: %v", name, sub, err)
		}
		pkgs = append(pkgs, sp)
	}
	return pkgs
}

// TestFixtures runs each analyzer against its fixture package under
// testdata/src and compares the rendered diagnostics against the
// package's expect.txt. Every fixture also contains a function named
// "suppressed" carrying a //decaf:ignore directive; the goldens prove
// suppression works because no diagnostic appears on those lines.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []*Analyzer
		subpkgs   []string
	}{
		{"lockedsend", []*Analyzer{LockedSend()}, nil},
		{"guardedby", []*Analyzer{GuardedBy()}, nil},
		{"rawvt", []*Analyzer{RawVT()}, nil},
		// The production suite protects internal/{engine,history,gvt,
		// vtime,sim}; here the fixture's synthetic import path is
		// protected instead.
		{"wallclock", []*Analyzer{Wallclock("fixture/wallclock")}, nil},
		{"timers", []*Analyzer{Timers("fixture/timers")}, nil},
		{"atomicmix", []*Analyzer{AtomicMix()}, nil},
		{"fastpath", []*Analyzer{Fastpath()}, nil},
		{"maporder", []*Analyzer{Maporder("fixture/maporder")}, nil},
		{"lockorder", []*Analyzer{Lockorder()}, nil},
		// The interprocedural fixture: hazards live one package away in
		// clockutil; obswrap is the sanctioned taint barrier.
		{"callgraph", []*Analyzer{
			WallclockSanctioned([]string{"fixture/callgraph/obswrap"}, "fixture/callgraph"),
			TimersSanctioned([]string{"fixture/callgraph/obswrap"}, "fixture/callgraph"),
		}, []string{"clockutil", "obswrap"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkgs := loadFixture(t, tc.name, tc.subpkgs...)
			var got []string
			for _, d := range Run(tc.analyzers, pkgs) {
				got = append(got, d.Render(abs))
			}
			golden := filepath.Join(dir, "expect.txt")
			if *update {
				content := strings.Join(got, "\n")
				if content != "" {
					content += "\n"
				}
				if err := os.WriteFile(golden, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			want := splitLines(string(data))
			if len(got) != len(want) {
				t.Errorf("got %d diagnostics, want %d", len(got), len(want))
			}
			for i := 0; i < len(got) || i < len(want); i++ {
				var g, w string
				if i < len(got) {
					g = got[i]
				}
				if i < len(want) {
					w = want[i]
				}
				if g != w {
					t.Errorf("diagnostic %d:\n  got  %q\n  want %q", i, g, w)
				}
			}
		})
	}
}

func splitLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

// TestWallclockUnprotectedPackage checks that the wallclock analyzer
// stays quiet outside its protected set: time.Now is legal in, say, the
// transport, and the fixture must not be flagged when the protected list
// names some other package.
func TestWallclockUnprotectedPackage(t *testing.T) {
	pkgs := loadFixture(t, "wallclock")
	diags := Run([]*Analyzer{Wallclock("internal/engine")}, pkgs)
	if len(diags) != 0 {
		t.Fatalf("wallclock flagged an unprotected package: %v", diags)
	}
}

// TestInterproceduralDelta pins the reason the call graph exists. The
// pre-v2 wallclock/timers analyzers scanned one package at a time, so a
// hazard hidden behind a helper in another package was invisible —
// exactly the situation modeled by the callgraph fixture, where every
// time dependency sits in the clockutil sub-package. Running the same
// analyzer over the same fixture with and without the helper package in
// the analysis set shows the delta: the package-local view (old
// behavior) reports nothing, the module view reports every indirect
// call site.
func TestInterproceduralDelta(t *testing.T) {
	pkgs := loadFixture(t, "callgraph", "clockutil", "obswrap")
	parent := pkgs[:1]
	mk := func() []*Analyzer {
		return []*Analyzer{
			WallclockSanctioned([]string{"fixture/callgraph/obswrap"}, "fixture/callgraph"),
			TimersSanctioned([]string{"fixture/callgraph/obswrap"}, "fixture/callgraph"),
		}
	}
	if got := Run(mk(), parent); len(got) != 0 {
		t.Fatalf("package-local analysis (the pre-v2 view) should be blind here, got:\n%v", got)
	}
	got := Run(mk(), pkgs)
	if len(got) == 0 {
		t.Fatal("interprocedural analysis caught nothing; the call graph is not being consulted")
	}
	for _, d := range got {
		if !strings.Contains(d.Message, "reaches") {
			t.Errorf("expected only indirect (reachability) findings, got: %s", d)
		}
	}
}

// TestBareIgnoreWarning checks that a //decaf:ignore directive without a
// reason still suppresses its diagnostic but is surfaced as a warning.
func TestBareIgnoreWarning(t *testing.T) {
	pkgs := loadFixture(t, "maporder")
	res := RunSuite([]*Analyzer{Maporder("fixture/maporder")}, pkgs)
	if len(res.BareIgnores) != 1 {
		t.Fatalf("got %d bare-ignore warnings, want 1: %+v", len(res.BareIgnores), res.BareIgnores)
	}
	if b := res.BareIgnores[0]; b.Analyzer != "maporder" {
		t.Fatalf("bare ignore attributed to %q, want maporder", b.Analyzer)
	}
	// The reasoned directive in the same fixture must NOT be counted.
	for _, d := range res.Diags {
		if strings.Contains(d.Pos.Filename, "suppressed") {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
}

// TestVetSelfClean runs the full production suite over the entire module
// and requires zero findings AND zero bare ignores — the same gate CI
// applies via decaf-vet. Any intentional exception in the tree must
// carry a //decaf:ignore directive with a reason.
func TestVetSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	loader := fixtureLoader(t)
	pkgs, err := loader.LoadAll(loader.ModRoot)
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	res := RunSuite(DefaultAnalyzers(), pkgs)
	for _, d := range res.Diags {
		t.Errorf("%s", d.Render(loader.ModRoot))
	}
	for _, b := range res.BareIgnores {
		t.Errorf("%s", b.Render(loader.ModRoot))
	}
}
