package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// update rewrites the fixture golden files instead of comparing against
// them: go test ./internal/analysis -run TestFixtures -update
var update = flag.Bool("update", false, "rewrite expect.txt golden files")

// The loader is shared across tests: it caches type-checked std packages,
// so the second and later fixtures load in milliseconds.
var (
	loaderOnce sync.Once
	sharedLd   *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLd, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLd
}

// TestFixtures runs each analyzer against its fixture package under
// testdata/src and compares the rendered diagnostics against the
// package's expect.txt. Every fixture also contains a function named
// "suppressed" carrying a //decaf:ignore directive; the goldens prove
// suppression works because no diagnostic appears on those lines.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
	}{
		{"lockedsend", LockedSend()},
		{"guardedby", GuardedBy()},
		{"rawvt", RawVT()},
		// The production suite protects internal/{engine,history,gvt,vtime};
		// here the fixture's synthetic import path is protected instead.
		{"wallclock", Wallclock("fixture/wallclock")},
		{"timers", Timers("fixture/timers")},
		{"atomicmix", AtomicMix()},
		{"fastpath", Fastpath()},
	}
	loader := fixtureLoader(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDir(dir, "fixture/"+tc.name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			var got []string
			for _, d := range Run([]*Analyzer{tc.analyzer}, []*Package{pkg}) {
				got = append(got, d.Render(abs))
			}
			golden := filepath.Join(dir, "expect.txt")
			if *update {
				content := strings.Join(got, "\n")
				if content != "" {
					content += "\n"
				}
				if err := os.WriteFile(golden, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			want := splitLines(string(data))
			if len(got) != len(want) {
				t.Errorf("got %d diagnostics, want %d", len(got), len(want))
			}
			for i := 0; i < len(got) || i < len(want); i++ {
				var g, w string
				if i < len(got) {
					g = got[i]
				}
				if i < len(want) {
					w = want[i]
				}
				if g != w {
					t.Errorf("diagnostic %d:\n  got  %q\n  want %q", i, g, w)
				}
			}
		})
	}
}

func splitLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

// TestWallclockUnprotectedPackage checks that the wallclock analyzer
// stays quiet outside its protected set: time.Now is legal in, say, the
// transport, and the fixture must not be flagged when the protected list
// names some other package.
func TestWallclockUnprotectedPackage(t *testing.T) {
	loader := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", "wallclock")
	pkg, err := loader.LoadDir(dir, "fixture/wallclock")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run([]*Analyzer{Wallclock("internal/engine")}, []*Package{pkg})
	if len(diags) != 0 {
		t.Fatalf("wallclock flagged an unprotected package: %v", diags)
	}
}

// TestModuleClean runs the full production suite over the entire module
// and requires zero findings — the same gate CI applies via decaf-vet.
// Any intentional exception in the tree must carry a //decaf:ignore
// directive with a reason.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	loader := fixtureLoader(t)
	pkgs, err := loader.LoadAll(loader.ModRoot)
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	diags := Run(DefaultAnalyzers(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d.Render(loader.ModRoot))
	}
}
