package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DefaultOrderSensitive lists the packages (by import-path suffix) in
// which ranging over a Go map with an order-sensitive loop body is a
// determinism bug. Go randomizes map iteration order per range
// statement, so anything the loop order feeds — protocol fan-out,
// snapshot encoding, trace/debug output, escaping slices — varies run
// to run, breaking the simulation harness's (profile, seed) replay
// contract and byte-identical persistence.
var DefaultOrderSensitive = []string{
	"internal/engine",
	"internal/consensus",
	"internal/history",
	"internal/gvt",
	"internal/vtime",
	"internal/sim",
}

// Maporder flags `range` statements over map types in the named
// packages whose body is order-sensitive: it appends to an escaping
// slice, mutates escaping state through an index/selector, sends on a
// channel, deletes from an escaping map, makes a statement-level call
// for its side effects (message sends, trace/persist output), or
// returns a value picked by iteration order.
//
// Deliberately NOT flagged, because they are order-independent folds:
// plain assignments to escaping scalars (min/max accumulation),
// numeric += / ++ (commutative addition, including on map elements),
// and map writes indexed by the loop's own key variable (distinct keys
// commute).
//
// The sanctioned fix is to range over a sorted key slice instead —
// internal/detorder (or the engine's sortedVTs/sortedSites/
// sortedObjectIDs wrappers) — which sidesteps the analyzer because the
// range is then over a slice. A body that is provably commutative for
// some other reason carries //decaf:ignore maporder <reason> on the
// range line.
func Maporder(protected ...string) *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "forbids order-sensitive bodies under range-over-map in engine, history, gvt, vtime, sim; iterate a sorted key slice (internal/detorder) instead",
	}
	a.Run = func(pass *Pass) {
		if !pathProtected(pass.Pkg.ImportPath, protected) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(pass.Pkg.Info.Types[rs.X].Type) {
					return true
				}
				m := newMaporderScan(pass, rs)
				m.scan(rs.Body)
				m.report()
				return true
			})
		}
	}
	return a
}

// isMapType reports whether t (possibly named, possibly behind a
// pointer) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// maporderScan walks one map-range body collecting order-sensitivity
// triggers.
type maporderScan struct {
	pass *Pass
	rs   *ast.RangeStmt
	info *types.Info

	triggers []string
	firstPos token.Pos
}

func newMaporderScan(pass *Pass, rs *ast.RangeStmt) *maporderScan {
	return &maporderScan{pass: pass, rs: rs, info: pass.Pkg.Info}
}

// loopLocal reports whether the identifier resolves to an object
// declared inside the range statement (including the key/value
// variables and body locals).
func (m *maporderScan) loopLocal(id *ast.Ident) bool {
	obj := m.info.Uses[id]
	if obj == nil {
		obj = m.info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= m.rs.Pos() && obj.Pos() < m.rs.End()
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, or nil when the base is not a plain identifier (a call
// result, a composite literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// escapes reports whether the expression's root identifier outlives the
// loop body. Unresolvable roots count as escaping (conservative).
func (m *maporderScan) escapes(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return true
	}
	return !m.loopLocal(root)
}

// keyIdent returns the range statement's key variable identifier, if
// it has one.
func (m *maporderScan) keyIdent() *ast.Ident {
	if id, ok := m.rs.Key.(*ast.Ident); ok && id.Name != "_" {
		return id
	}
	return nil
}

// add records one trigger.
func (m *maporderScan) add(pos token.Pos, format string, args ...any) {
	if m.firstPos == token.NoPos {
		m.firstPos = pos
	}
	m.triggers = append(m.triggers, fmt.Sprintf(format, args...))
}

// report emits at most one diagnostic per range statement, anchored on
// the range line so a single //decaf:ignore maporder covers the loop.
func (m *maporderScan) report() {
	if len(m.triggers) == 0 {
		return
	}
	mapType := types.TypeString(m.info.Types[m.rs.X].Type, types.RelativeTo(m.pass.Pkg.Types))
	detail := m.triggers[0]
	if n := len(m.triggers) - 1; n > 0 {
		detail = fmt.Sprintf("%s; +%d more trigger(s)", detail, n)
	}
	m.pass.Reportf(m.rs.For,
		"iteration order of map %s is random but the loop body is order-sensitive (%s); range over a sorted key slice (internal/detorder) or justify with //decaf:ignore maporder <reason>",
		mapType, detail)
}

// scan walks the loop body.
func (m *maporderScan) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			m.assign(n)
		case *ast.IncDecStmt:
			// ++/-- is commutative addition wherever it lands.
		case *ast.SendStmt:
			m.add(n.Arrow, "channel send at line %d", m.line(n.Arrow))
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				m.callStmt(call, "")
			}
		case *ast.GoStmt:
			m.callStmt(n.Call, "go ")
		case *ast.DeferStmt:
			m.callStmt(n.Call, "defer ")
		case *ast.ReturnStmt:
			m.returnStmt(n)
		}
		return true
	})
}

// line is shorthand for the source line of pos.
func (m *maporderScan) line(pos token.Pos) int {
	return m.pass.Pkg.Fset.Position(pos).Line
}

// assign classifies one assignment statement.
func (m *maporderScan) assign(n *ast.AssignStmt) {
	if n.Tok == token.DEFINE {
		return // fresh loop-locals
	}
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		m.assignOne(n, lhs, rhs)
	}
}

func (m *maporderScan) assignOne(n *ast.AssignStmt, lhs, rhs ast.Expr) {
	if !m.escapes(lhs) {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// Escaping scalar. Appends accumulate in iteration order; string
		// concatenation likewise; everything else is treated as a
		// commutative fold (min/max/flag accumulation).
		if isAppendCall(m.info, rhs) {
			m.add(lhs.Pos(), "append to escaping slice %q at line %d", l.Name, m.line(lhs.Pos()))
			return
		}
		if n.Tok == token.ADD_ASSIGN && isStringType(m.info.Types[lhs].Type) {
			m.add(lhs.Pos(), "string concatenation onto escaping %q at line %d", l.Name, m.line(lhs.Pos()))
		}
	case *ast.IndexExpr:
		// Writing m[k] where k is the loop's own key variable touches
		// distinct keys per iteration: commutative.
		if key := m.keyIdent(); key != nil {
			if idx, ok := ast.Unparen(l.Index).(*ast.Ident); ok && m.info.Uses[idx] != nil && m.info.Uses[idx] == m.info.Defs[key] {
				return
			}
		}
		m.add(lhs.Pos(), "write through escaping index expression at line %d", m.line(lhs.Pos()))
	default:
		m.add(lhs.Pos(), "write to escaping %s at line %d", exprKind(lhs), m.line(lhs.Pos()))
	}
}

// callStmt classifies a statement-level call (its value is discarded,
// so it exists for its side effects — which then happen in iteration
// order).
func (m *maporderScan) callStmt(call *ast.CallExpr, prefix string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch m.builtinName(id) {
		case "delete":
			if len(call.Args) > 0 && m.escapes(call.Args[0]) {
				m.add(call.Pos(), "delete from escaping map at line %d", m.line(call.Pos()))
			}
			return
		case "panic", "print", "println", "close", "clear", "copy", "recover", "":
			// panic/recover are failure paths; close is idempotent-ish
			// and flagged better by lockedsend/leak tooling; print family
			// is debug-only. clear/copy on loop-locals are folds.
			if m.builtinName(id) != "" {
				return
			}
		}
	}
	callee := calleeFunc(m.info, call)
	label := "function value"
	if callee != nil {
		label = funcLabel(callee)
	}
	m.add(call.Pos(), "%scall to %s for effect at line %d", prefix, label, m.line(call.Pos()))
}

// builtinName returns the name of the builtin id resolves to, or "".
func (m *maporderScan) builtinName(id *ast.Ident) string {
	if obj := m.info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Builtin); ok {
			return obj.Name()
		}
	}
	return ""
}

// returnStmt flags returns whose results mention the loop variables: a
// "first match wins" exit picks a random matching entry.
func (m *maporderScan) returnStmt(n *ast.ReturnStmt) {
	loopVars := map[types.Object]bool{}
	for _, v := range []ast.Expr{m.rs.Key, m.rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := m.info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	for _, res := range n.Results {
		found := false
		ast.Inspect(res, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && loopVars[m.info.Uses[id]] {
				found = true
				return false
			}
			return true
		})
		if found {
			m.add(n.Pos(), "return of loop variable at line %d (first match depends on order)", m.line(n.Pos()))
			return
		}
	}
}

// isAppendCall reports whether e is (or contains at its head) a call to
// the builtin append.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exprKind names an expression class for diagnostics.
func exprKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.StarExpr:
		return "pointer target"
	case *ast.SelectorExpr:
		return "field"
	default:
		return "location"
	}
}
