package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// vtimePath is the package that owns the virtual-time total order.
const vtimePath = "decaf/internal/vtime"

// RawVT flags raw comparisons on the fields of a vtime.VT outside the
// vtime package itself. A VT is ordered first by Lamport time and then
// by site (the tie-break that makes the order total); comparing v.Time
// or v.Site directly bypasses the tie-break and silently reintroduces
// the partial order the paper's algorithms are built to avoid. All
// ordering must go through the comparator API (VT.Less, VT.LessEq,
// VT.Compare, VT.Max) or helpers exported by the vtime package.
//
// Two comparisons are deliberately allowed: whole-value equality
// (v == w, v == vtime.Zero), because struct equality agrees with the
// total order's notion of "same instant", and equality on .Site alone
// (vt.Site == failedSite), because that asks "which site stamped this
// VT" — origin identity, not ordering.
func RawVT() *Analyzer {
	a := &Analyzer{
		Name: "rawvt",
		Doc:  "flags raw <, <=, ==, … comparisons on vtime.VT fields outside internal/vtime",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.ImportPath == vtimePath || strings.HasSuffix(pass.Pkg.ImportPath, "internal/vtime") {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				ordering := false
				switch be.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
					ordering = true
				case token.EQL, token.NEQ:
				default:
					return true
				}
				for _, operand := range []ast.Expr{be.X, be.Y} {
					field := vtField(info, operand)
					if field == "" {
						continue
					}
					// Equality on .Site is origin identity, not ordering.
					if field == "Site" && !ordering {
						continue
					}
					pass.Reportf(be.OpPos,
						"raw %s comparison on vtime.VT field .%s bypasses the VT tie-break; use the vtime comparator API (Less/LessEq/Compare)",
						be.Op, field)
					return true // one diagnostic per comparison
				}
				return true
			})
		}
	}
	return a
}

// vtField returns the field name when e selects .Time or .Site from a
// value of type vtime.VT, else "".
func vtField(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Time" && sel.Sel.Name != "Site" {
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	if !namedFrom(selection.Recv(), vtimePath, "VT") {
		return ""
	}
	return sel.Sel.Name
}
