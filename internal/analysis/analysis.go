// Package analysis implements decaf-vet, a repo-specific static analyzer
// suite for DECAF's concurrency and determinism invariants.
//
// The Go compiler cannot see the invariants this codebase rests on:
// virtual-time ordering must go through the vtime comparator API, the
// deterministic packages (engine, history, gvt, vtime) must never read
// the wall clock, and mutex-guarded state must never be touched unlocked
// or held across a blocking send. Each analyzer in this package checks
// one such invariant over the type-checked AST of every package in the
// module, reporting file:line diagnostics.
//
// The suite is deliberately stdlib-only (go/ast, go/parser, go/types,
// go/importer): it must run in CI and developer checkouts with no
// dependencies beyond the toolchain.
//
// # Suppressing a finding
//
// A documented false positive is silenced with an ignore directive:
//
//	//decaf:ignore <analyzer> [reason...]
//
// The directive suppresses diagnostics from the named analyzer (or from
// every analyzer, with the name "all") on the directive's own line and on
// the line immediately below it, so it works both as a trailing comment
// and as a comment line above the offending statement. Directives should
// carry a reason; bare ignores are legal but frowned upon in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic as "file:line:col: [analyzer] message"
// with the file path relative to root (when possible).
func (d Diagnostic) String() string { return d.Render("") }

// Render renders the diagnostic with the file path made relative to root
// (when root is non-empty and the file lies under it).
func (d Diagnostic) Render(root string) string {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the analyzer's short name, used in diagnostics and in
	// //decaf:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run analyzes one package.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "//decaf:ignore"

// ignoreIndex records, per file and line, which analyzers are ignored.
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans a package's comments for ignore directives.
func buildIgnoreIndex(pkg *Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				// The first field is the analyzer name; the rest is the
				// human reason, which the driver does not interpret.
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line above.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// (non-suppressed) diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		idx := buildIgnoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !idx.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// DefaultAnalyzers returns the production suite run by decaf-vet.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		LockedSend(),
		GuardedBy(),
		RawVT(),
		Wallclock(DefaultDeterministic...),
		Timers(DefaultTimerFree...),
		AtomicMix(),
		Fastpath(),
	}
}

// funcDecls returns a file's function declarations that have bodies.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
