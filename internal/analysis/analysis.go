// Package analysis implements decaf-vet, a repo-specific static analyzer
// suite for DECAF's concurrency and determinism invariants.
//
// The Go compiler cannot see the invariants this codebase rests on:
// virtual-time ordering must go through the vtime comparator API, the
// deterministic packages (engine, history, gvt, vtime) must never read
// the wall clock, and mutex-guarded state must never be touched unlocked
// or held across a blocking send. Each analyzer in this package checks
// one such invariant over the type-checked AST of every package in the
// module, reporting file:line diagnostics.
//
// The suite is deliberately stdlib-only (go/ast, go/parser, go/types,
// go/importer): it must run in CI and developer checkouts with no
// dependencies beyond the toolchain.
//
// # Suppressing a finding
//
// A documented false positive is silenced with an ignore directive:
//
//	//decaf:ignore <analyzer> [reason...]
//
// The directive suppresses diagnostics from the named analyzer (or from
// every analyzer, with the name "all") on the directive's own line and on
// the line immediately below it, so it works both as a trailing comment
// and as a comment line above the offending statement. Directives should
// carry a reason; bare ignores are legal but frowned upon in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic as "file:line:col: [analyzer] message"
// with the file path relative to root (when possible).
func (d Diagnostic) String() string { return d.Render("") }

// Render renders the diagnostic with the file path made relative to root
// (when root is non-empty and the file lies under it).
func (d Diagnostic) Render(root string) string {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the analyzer's short name, used in diagnostics and in
	// //decaf:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run analyzes one package.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Graph is the module-wide call graph over every package of the
	// current Run, for interprocedural analyzers. The same *CallGraph is
	// shared by all passes of one Run, so analyzers may key memoized
	// whole-module state on it.
	Graph *CallGraph

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "//decaf:ignore"

// directive is one parsed //decaf:ignore comment.
type directive struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// ignoreIndex records, per file and line, which analyzers are ignored.
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans a package's comments for ignore directives,
// returning the suppression index and the raw directive list (for
// bare-ignore auditing).
func buildIgnoreIndex(pkg *Package) (ignoreIndex, []directive) {
	idx := ignoreIndex{}
	var dirs []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				// The first field is the analyzer name; the rest is the
				// human reason, which the driver records but does not
				// interpret.
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
				dirs = append(dirs, directive{
					Pos:      pos,
					Analyzer: fields[0],
					Reason:   strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
				})
			}
		}
	}
	return idx, dirs
}

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line above.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// BareIgnore is a //decaf:ignore directive carrying no reason text. A
// suppression without a recorded justification defeats the audit trail
// the directive exists to create, so decaf-vet counts these as warnings
// and TestVetSelfClean fails on them.
type BareIgnore struct {
	Pos      token.Position
	Analyzer string
}

// Render renders the warning with the file path made relative to root.
func (b BareIgnore) Render(root string) string {
	d := Diagnostic{Pos: b.Pos, Analyzer: b.Analyzer, Message: "bare //decaf:ignore (no reason); add a justification"}
	return d.Render(root)
}

// Result is the outcome of one suite run.
type Result struct {
	// Diags are the surviving (non-suppressed) diagnostics, sorted by
	// position.
	Diags []Diagnostic
	// BareIgnores are reason-less //decaf:ignore directives, sorted by
	// position. They are warnings, not findings: the suppression still
	// applies.
	BareIgnores []BareIgnore
}

// Run applies every analyzer to every package and returns the surviving
// (non-suppressed) diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	return RunSuite(analyzers, pkgs).Diags
}

// RunSuite applies every analyzer to every package. A module-wide call
// graph over pkgs is built once and shared by all passes, so
// interprocedural analyzers (wallclock, timers, lockorder) see the
// whole module even though each pass reports into one package.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) Result {
	graph := BuildCallGraph(pkgs)
	var res Result
	for _, pkg := range pkgs {
		idx, dirs := buildIgnoreIndex(pkg)
		for _, d := range dirs {
			if d.Reason == "" {
				res.BareIgnores = append(res.BareIgnores, BareIgnore{Pos: d.Pos, Analyzer: d.Analyzer})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Graph: graph}
			a.Run(pass)
			for _, d := range pass.diags {
				if !idx.suppressed(d) {
					res.Diags = append(res.Diags, d)
				}
			}
		}
	}
	byPos := func(a, b token.Position) bool {
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos != b.Pos {
			return byPos(a.Pos, b.Pos)
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(res.BareIgnores, func(i, j int) bool {
		return byPos(res.BareIgnores[i].Pos, res.BareIgnores[j].Pos)
	})
	return res
}

// DefaultAnalyzers returns the production suite run by decaf-vet.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		LockedSend(),
		GuardedBy(),
		RawVT(),
		Wallclock(DefaultDeterministic...),
		Timers(DefaultTimerFree...),
		AtomicMix(),
		Fastpath(),
		Maporder(DefaultOrderSensitive...),
		Lockorder(),
	}
}

// funcDecls returns a file's function declarations that have bodies.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
