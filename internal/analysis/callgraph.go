package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a module-wide static call graph over the type-checked
// ASTs of the analyzed packages. Nodes are *types.Func objects; only
// functions declared in the analyzed packages have outgoing edges
// (standard-library functions appear as leaf callees). Resolution is
// purely static: direct calls to package functions and methods with a
// concrete receiver. Calls through interface values, function-typed
// variables, and reflection are not resolved — analyzers built on the
// graph are "best effort over declared call structure", which is the
// right trade for invariant checking (a miss is a missed diagnostic,
// never a false one).
//
// Calls made inside function literals are attributed to the enclosing
// declared function: a closure runs with its creator's determinism
// obligations. Calls inside `go` statements are recorded on a separate
// edge list (Spawns) because a spawned goroutine does not run *during*
// the caller — lock-order analysis must not treat locks it takes as
// nested under the caller's held set, while taint analyses still want
// to see them.
type CallGraph struct {
	// Pkgs are the packages the graph was built from.
	Pkgs []*Package
	// Calls maps a declared function to its resolved synchronous call
	// sites, in source order.
	Calls map[*types.Func][]CallSite
	// Spawns maps a declared function to call sites that start a new
	// goroutine (the `go f(...)` statement's call, and every call made
	// inside the spawned literal's body).
	Spawns map[*types.Func][]CallSite
	// DeclPkg maps each declared function to its defining package.
	DeclPkg map[*types.Func]*Package
	// decls maps each declared function to its body, for analyzers that
	// need to re-walk with graph context.
	decls map[*types.Func]*ast.FuncDecl
}

// CallSite is one resolved call edge.
type CallSite struct {
	// Callee is the called function or method.
	Callee *types.Func
	// Pos is the call expression's position.
	Pos token.Pos
}

// BuildCallGraph constructs the call graph over pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Pkgs:    pkgs,
		Calls:   map[*types.Func][]CallSite{},
		Spawns:  map[*types.Func][]CallSite{},
		DeclPkg: map[*types.Func]*Package{},
		decls:   map[*types.Func]*ast.FuncDecl{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, fd := range funcDecls(f) {
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.DeclPkg[fn] = pkg
				g.decls[fn] = fd
				g.collect(pkg, fn, fd.Body, false)
			}
		}
	}
	return g
}

// collect records the call sites in body, attributing them to fn.
// spawned marks bodies that run on a new goroutine.
func (g *CallGraph) collect(pkg *Package, fn *types.Func, body ast.Node, spawned bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned call and everything under it goes to Spawns.
			g.addCall(pkg, fn, n.Call, true)
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				g.collect(pkg, fn, lit.Body, true)
			}
			for _, arg := range n.Call.Args {
				g.collect(pkg, fn, arg, spawned)
			}
			return false
		case *ast.CallExpr:
			g.addCall(pkg, fn, n, spawned)
			return true
		}
		return true
	})
}

// addCall resolves one call expression to a *types.Func edge, if it is
// a direct call.
func (g *CallGraph) addCall(pkg *Package, fn *types.Func, call *ast.CallExpr, spawned bool) {
	callee := calleeFunc(pkg.Info, call)
	if callee == nil {
		return
	}
	site := CallSite{Callee: callee, Pos: call.Pos()}
	if spawned {
		g.Spawns[fn] = append(g.Spawns[fn], site)
	} else {
		g.Calls[fn] = append(g.Calls[fn], site)
	}
}

// calleeFunc resolves a call expression's target to a function object:
// package functions, methods on concrete receivers, and locally
// referenced function identifiers. Interface-method calls resolve to
// the interface's method object (which has no body in the graph) and
// are kept — an analyzer that needs concrete bodies simply finds no
// edges beyond them.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Body returns the declaration body of a function declared in the
// analyzed packages, or nil.
func (g *CallGraph) Body(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// reacher answers whether functions transitively reach a target set
// through the graph's synchronous and spawned call edges. Taint flows
// through goroutine spawns: code a deterministic package runs on a
// fresh goroutine is still that package's code. Reachability is
// computed once by reverse-edge fixpoint, so cycles in the call graph
// are handled exactly.
type reacher struct {
	g       *CallGraph
	target  func(*types.Func) bool
	blocked func(*types.Func) bool
	tainted map[*types.Func]bool
}

// newReacher builds a reachability oracle for the target predicate.
// The predicate is consulted on every callee, including functions with
// no body in the graph (standard-library leaves). blocked (optional)
// names functions that act as taint barriers: they are never considered
// tainted and taint does not propagate through them — used to model
// sanctioned wrappers (internal/obs) whose API contains the hazard.
func (g *CallGraph) newReacher(target, blocked func(*types.Func) bool) *reacher {
	if blocked == nil {
		blocked = func(*types.Func) bool { return false }
	}
	r := &reacher{g: g, target: target, blocked: blocked, tainted: map[*types.Func]bool{}}
	// Reverse adjacency over declared functions.
	rev := map[*types.Func][]*types.Func{}
	var work []*types.Func
	seed := func(fn *types.Func, sites []CallSite) {
		for _, site := range sites {
			if r.blocked(site.Callee) {
				continue
			}
			rev[site.Callee] = append(rev[site.Callee], fn)
			if target(site.Callee) && !r.tainted[fn] {
				r.tainted[fn] = true
				work = append(work, fn)
			}
		}
	}
	for fn := range g.DeclPkg {
		if r.blocked(fn) {
			continue
		}
		seed(fn, g.Calls[fn])
		seed(fn, g.Spawns[fn])
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range rev[fn] {
			if !r.tainted[caller] && !r.blocked(caller) {
				r.tainted[caller] = true
				work = append(work, caller)
			}
		}
	}
	return r
}

// reaches reports whether fn is a target itself or transitively calls
// one.
func (r *reacher) reaches(fn *types.Func) bool {
	return r.target(fn) || r.tainted[fn]
}

// path returns a call chain from fn (exclusive) down to a target
// function (inclusive), or nil when fn cannot reach the target set. A
// direct target hit returns a one-element chain. Edge choice is
// deterministic (first qualifying call site in source order).
func (r *reacher) path(fn *types.Func) []*types.Func {
	if r.target(fn) {
		return []*types.Func{fn}
	}
	if !r.tainted[fn] {
		return nil
	}
	var chain []*types.Func
	visited := map[*types.Func]bool{fn: true}
	cur := fn
	for {
		next := (*types.Func)(nil)
		sites := append(append([]CallSite{}, r.g.Calls[cur]...), r.g.Spawns[cur]...)
		for _, site := range sites {
			if r.target(site.Callee) && !r.blocked(site.Callee) {
				return append(chain, site.Callee)
			}
		}
		for _, site := range sites {
			if r.tainted[site.Callee] && !visited[site.Callee] {
				next = site.Callee
				break
			}
		}
		if next == nil {
			// Tainted only through an on-path cycle; the chain so far
			// still ends somewhere tainted — return what we have.
			return chain
		}
		visited[next] = true
		chain = append(chain, next)
		cur = next
	}
}

// funcLabel renders a function for diagnostics: "pkg.Func" or
// "(pkg.Type).Method".
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		_, typeName := namedPkgPath(sig.Recv().Type())
		if typeName != "" {
			if pkgName != "" {
				return "(" + pkgName + "." + typeName + ")." + name
			}
			return "(" + typeName + ")." + name
		}
	}
	if pkgName != "" {
		return pkgName + "." + name
	}
	return name
}

// chainLabel renders a call chain "a → b → c" for diagnostics.
func chainLabel(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		parts[i] = funcLabel(fn)
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

// sortedFuncs returns the graph's declared functions in a deterministic
// order (by position), for analyzers that iterate the whole graph.
func (g *CallGraph) sortedFuncs() []*types.Func {
	out := make([]*types.Func, 0, len(g.DeclPkg))
	for fn := range g.DeclPkg {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
