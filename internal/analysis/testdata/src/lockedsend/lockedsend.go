// Package lockedsend is a fixture exercising the lockedsend analyzer.
package lockedsend

import (
	"net"
	"os"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

type rbox struct {
	rw sync.RWMutex
	ch chan int
}

func badSend(b *box) {
	b.mu.Lock()
	b.ch <- 1
	b.mu.Unlock()
}

func badDeferred(b *box, conn net.Conn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond)
	conn.Write([]byte("x"))
}

func badRecvUnderRLock(r *rbox) {
	r.rw.RLock()
	<-r.ch
	r.rw.RUnlock()
}

func badBlockingSelect(b *box, stop chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-stop:
	case b.ch <- 1:
	}
}

func goodNonBlockingSelect(b *box) {
	b.mu.Lock()
	select {
	case b.ch <- 1:
	default:
	}
	b.mu.Unlock()
}

func goodAfterUnlock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

func goodGoroutine(b *box) {
	b.mu.Lock()
	go func() { b.ch <- 1 }()
	b.mu.Unlock()
}

func suppressed(b *box) {
	b.mu.Lock()
	//decaf:ignore lockedsend ch is buffered and drained by the fixture harness
	b.ch <- 1
	b.mu.Unlock()
}

// The WAL single-writer contract (DESIGN.md §13): fsync is disk I/O and
// must never run while an engine mutex is held.
func badFsyncUnderLock(b *box, f *os.File) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f.Sync()
}

func goodFsyncAfterUnlock(b *box, f *os.File) {
	b.mu.Lock()
	b.ch = nil
	b.mu.Unlock()
	f.Sync()
}
