// Package atomicmix is a fixture exercising the atomicmix analyzer.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

func badPlainRead(c *counters) uint64 {
	return c.hits
}

func goodAtomicRead(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func goodPlainOnly(c *counters) uint64 {
	return c.misses
}

type gauges struct {
	val atomic.Int64
}

func badByValue(g gauges) int64 {
	return g.val.Load()
}

func goodByPointer(g *gauges) int64 {
	return g.val.Load()
}

func suppressed(c *counters) uint64 {
	//decaf:ignore atomicmix single-threaded teardown path
	return c.hits
}
