// Package maporder is a fixture exercising the maporder analyzer.
package maporder

type state struct {
	last  uint32
	seen  map[uint32]bool
	ready bool
}

func (s *state) emit(k uint32) { s.last = k }

// badAppend accumulates keys in iteration order into an escaping slice.
func badAppend(m map[uint32]int) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	return out
}

// badSend publishes keys on a channel in iteration order.
func badSend(m map[uint32]int, sink chan uint32) {
	for k := range m {
		sink <- k
	}
}

// badDelete sweeps another escaping map in iteration order.
func badDelete(m map[uint32]int, other map[uint32]bool) {
	for k := range m {
		delete(other, k)
	}
}

// badCallEffect makes a statement-level call per entry: the side effects
// land in iteration order.
func badCallEffect(m map[uint32]int, s *state) {
	for k := range m {
		s.emit(k)
	}
}

// badFieldWrite mutates escaping state through a selector.
func badFieldWrite(m map[uint32]int, s *state) {
	for k := range m {
		if k > s.last {
			s.last = k
		}
	}
}

// badReturn exits on the first matching entry — which entry that is
// depends on iteration order.
func badReturn(m map[uint32]int) uint32 {
	for k, v := range m {
		if v > 10 {
			return k
		}
	}
	return 0
}

// badConcat builds a string in iteration order.
func badConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}

// goodCount folds into a plain scalar with ++: commutative.
func goodCount(m map[uint32]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodScalarFold assigns a plain escaping scalar (min/max folds): the
// final value does not depend on visit order.
func goodScalarFold(m map[uint32]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// goodKeyIndexedWrite writes a map entry indexed by the loop's own key:
// distinct keys commute.
func goodKeyIndexedWrite(m map[uint32]int) map[uint32]int {
	out := map[uint32]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// maxInt and score are helpers for the cross-function case below.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func score(k uint32) int { return int(k % 7) }

// goodValueCall is the cross-function case the analyzer must NOT flag:
// the body calls other functions, but only in value position feeding a
// commutative fold — there is no statement-level effect and nothing
// escapes in iteration order.
func goodValueCall(m map[uint32]int) int {
	best := 0
	for k := range m {
		best = maxInt(best, score(k))
	}
	return best
}

// goodLocalOnly mutates only loop-local state.
func goodLocalOnly(m map[uint32][]int) int {
	total := 0
	for _, vs := range m {
		sum := 0
		for _, v := range vs {
			sum += v
		}
		total += sum
	}
	return total
}

// suppressed documents a proven-commutative body in place.
func suppressed(m map[uint32]int, other map[uint32]bool) {
	//decaf:ignore maporder fixture: delete-only sweep leaves the same final map for any order
	for k := range m {
		delete(other, k)
	}
}

// suppressedBare carries a reason-less directive: the suppression still
// applies (no diagnostic in expect.txt) but RunSuite surfaces it as a
// bare-ignore warning — TestBareIgnoreWarning pins that.
func suppressedBare(m map[uint32]int, sink chan uint32) {
	//decaf:ignore maporder
	for k := range m {
		sink <- k
	}
}
