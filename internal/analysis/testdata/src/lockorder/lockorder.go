// Package lockorder is a fixture exercising the lockorder analyzer.
package lockorder

import "sync"

type accountA struct{ mu sync.Mutex }

type accountB struct{ mu sync.Mutex }

// badAB takes A's lock, then B's.
func badAB(a *accountA, b *accountB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

// badBA takes B's lock, then A's: together with badAB this is the
// classic AB/BA deadlock shape.
func badBA(a *accountA, b *accountB) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

type outer struct{ mu sync.Mutex }

type inner struct{ mu sync.Mutex }

func (i *inner) grab() {
	i.mu.Lock()
	defer i.mu.Unlock()
}

func (o *outer) grab() {
	o.mu.Lock()
	defer o.mu.Unlock()
}

// badCallIn holds outer's lock across a call that acquires inner's:
// the edge is interprocedural (outer -> inner via grab).
func badCallIn(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.grab()
}

// badCallOut holds inner's lock across a call that acquires outer's,
// closing the interprocedural cycle.
func badCallOut(o *outer, i *inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.grab()
}

type parent struct{ mu sync.Mutex }

type child struct{ mu sync.Mutex }

// goodNested always orders parent before child: an edge, but no cycle,
// so nothing is reported.
func goodNested(p *parent, c *child) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

type front struct{ mu sync.Mutex }

type back struct{ mu sync.Mutex }

// goodSpawn and goodSpawnReverse are the cross-function case the
// analyzer must NOT flag: the second lock is taken on a goroutine
// spawned while the first is held. A spawned goroutine's acquisitions
// are not nested under the spawner's held set, so the apparent AB/BA
// pair is not a synchronous ordering cycle.
func goodSpawn(f *front, b *back) {
	f.mu.Lock()
	defer f.mu.Unlock()
	go func() {
		b.mu.Lock()
		defer b.mu.Unlock()
	}()
}

func goodSpawnReverse(f *front, b *back) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		f.mu.Lock()
		defer f.mu.Unlock()
	}()
}

// goodSequential releases the first lock before taking the second in
// both orders: nothing is held at either second Lock, so no edges.
func goodSequential(f *front, b *back) {
	f.mu.Lock()
	f.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func goodSequentialReverse(f *front, b *back) {
	b.mu.Lock()
	b.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

type registry struct{ mu sync.Mutex }

// suppressed re-locks the same lock class on a second instance — a
// self-loop in the class graph, legal here because the caller orders
// instances out of band.
func suppressed(r1, r2 *registry) {
	r1.mu.Lock()
	defer r1.mu.Unlock()
	//decaf:ignore lockorder fixture: instances are address-ordered by the caller
	r2.mu.Lock()
	r2.mu.Unlock()
}
