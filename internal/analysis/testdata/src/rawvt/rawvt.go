// Package rawvt is a fixture exercising the rawvt analyzer.
package rawvt

import "decaf/internal/vtime"

func badOrdering(a, b vtime.VT) bool {
	return a.Time < b.Time
}

func badTieBreak(a, b vtime.VT) bool {
	return a.Time == b.Time && a.Site < b.Site
}

func good(a, b vtime.VT) bool {
	if a == b || a.Less(b) {
		return false
	}
	return a.LessEq(b)
}

func goodOriginIdentity(a vtime.VT, failed vtime.SiteID) bool {
	return a.Site == failed
}

func goodArithmetic(a vtime.VT) uint64 {
	return a.Time + 1
}

func suppressed(a vtime.VT) bool {
	//decaf:ignore rawvt fixture demonstrating the ignore directive
	return a.Time == 0
}
