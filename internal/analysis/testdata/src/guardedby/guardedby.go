// Package guardedby is a fixture exercising the guardedby analyzer.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type other struct {
	mu sync.Mutex
}

func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodRLockName(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func bad(c *counter) int {
	return c.n
}

func wrongReceiver(c *counter, o *other) {
	o.mu.Lock()
	c.n++
	o.mu.Unlock()
}

func suppressed(c *counter) int {
	//decaf:ignore guardedby read happens before any goroutine shares c
	return c.n
}
