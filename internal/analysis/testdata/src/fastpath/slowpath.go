package fastpath

// The same calls are fine outside commute.go: this is the ordinary
// guessed path, where the reservation/confirm machinery belongs.

func (s *site) slowPathMayReserve() bool {
	s.res.Reserve(10, 20)
	if !s.primaryCheck(21) {
		return false
	}
	s.propagate()
	return !s.res.Conflicts(22)
}
