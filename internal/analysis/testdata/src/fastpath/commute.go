// Package fastpath is a fixture exercising the fastpath analyzer: this
// file is named commute.go, so every function in it is fast-path code
// and must not call the reservation/confirm machinery.
package fastpath

type reservations struct{}

func (reservations) Reserve(lo, hi uint64)           {}
func (reservations) Conflicts(vt uint64) bool        { return false }
func (reservations) Intersecting(vt uint64) []uint64 { return nil }

type site struct{ res reservations }

func (s *site) propagate()                  {}
func (s *site) primaryCheck(vt uint64) bool { return true }

func (s *site) badReserve() {
	s.res.Reserve(1, 2)
}

func (s *site) badCheckThenPropagate() bool {
	if !s.primaryCheck(7) {
		return false
	}
	s.propagate()
	return true
}

func (s *site) badConflicts() bool {
	return s.res.Conflicts(9)
}

func (s *site) goodDemotionSweep() []uint64 {
	// Read-only inspection of the reservation table is allowed: guess
	// demotion needs it, and it never reserves or round-trips.
	return s.res.Intersecting(3)
}

func (s *site) suppressed() {
	//decaf:ignore fastpath fixture demonstrating the ignore directive
	s.res.Reserve(4, 5)
}
