// Package wallclock is a fixture exercising the wallclock analyzer.
package wallclock

import "time"

func badNow() time.Time {
	return time.Now()
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func goodTimer(d time.Duration) <-chan time.Time {
	return time.After(d)
}

func suppressed() time.Time {
	//decaf:ignore wallclock fixture demonstrating the explicit allowlist
	return time.Now()
}
