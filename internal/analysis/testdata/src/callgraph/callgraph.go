// Package callgraph is a fixture exercising the interprocedural layer
// of the wallclock and timers analyzers: every hazard here is hidden
// behind a call into the clockutil sub-package, so a purely local scan
// (the pre-v2 analyzers) finds nothing — TestInterproceduralDelta pins
// that difference.
package callgraph

import (
	"fixture/callgraph/clockutil"
	"fixture/callgraph/obswrap"
)

// badIndirectStamp reaches time.Now through clockutil.Stamp.
func badIndirectStamp() int64 {
	return clockutil.Stamp()
}

// badIndirectSleep reaches time.Sleep through clockutil.Relax.
func badIndirectSleep() {
	clockutil.Relax()
}

// badSpawnedStamp reaches the clock on a goroutine this package spawns:
// still this package's determinism obligation.
func badSpawnedStamp(out chan<- int64) {
	go func() {
		out <- clockutil.Stamp()
	}()
}

// localStamp funnels the clock through a same-package helper. The
// diagnostic lands here — on the package-boundary crossing — not on
// helperViaLocal, so each hazard is reported exactly once.
func localStamp() int64 { return clockutil.Stamp() }

// helperViaLocal calls a protected-package-internal helper; the helper
// is flagged at its own clockutil call instead (see localStamp).
func helperViaLocal() int64 { return localStamp() }

// goodPure is the cross-function case the analyzer must NOT flag: the
// callee crosses the same package boundary but never reaches time.
func goodPure() int { return clockutil.Pure(1, 2) }

// goodDescribe handles time.Duration values via a time-free helper.
func goodDescribe() string { return clockutil.Describe(3) }

// goodSanctioned calls the sanctioned wrapper package: it reads the
// wall clock by design, and the taint barrier keeps callers clean.
func goodSanctioned() int64 { return obswrap.NowNanos() }

// suppressed documents a justified indirect read in place.
func suppressed() int64 {
	//decaf:ignore wallclock fixture demonstrating the explicit allowlist
	return clockutil.Stamp()
}
