// Package obswrap models a sanctioned wall-clock wrapper (the fixture
// analogue of internal/obs): it reads the wall clock on purpose, and
// deterministic callers are not tainted through it.
package obswrap

import "time"

// NowNanos reads the wall clock for metrics only.
func NowNanos() int64 { return time.Now().UnixNano() }
