// Package clockutil models an unprotected helper package whose
// functions reach the wall clock and real timers. The callgraph fixture
// package calls into it; the interprocedural wallclock/timers analyzers
// must see through the package boundary.
package clockutil

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Relax blocks on a real timer.
func Relax() { time.Sleep(time.Millisecond) }

// Pure never touches time at all.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Describe handles time values without reading the clock.
func Describe(d time.Duration) string { return d.String() }
