// Package timers is a fixture exercising the timers analyzer.
package timers

import "time"

func badAfter(d time.Duration) <-chan time.Time {
	return time.After(d)
}

func badAfterFunc(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f)
}

func badSleep(d time.Duration) {
	time.Sleep(d)
}

func badTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}

func goodDuration(d time.Duration) time.Duration {
	// Arithmetic on durations is fine; only constructing a real timer
	// escapes the virtual clock.
	return 2 * d
}

func suppressed(d time.Duration) <-chan time.Time {
	//decaf:ignore timers fixture demonstrating the explicit allowlist
	return time.After(d)
}
