package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path ("decaf/internal/engine"),
	// or a synthetic path for packages loaded from outside the module
	// (test fixtures).
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset positions all of the package's files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Loader loads and type-checks the packages of one Go module using only
// the standard library: module-internal imports resolve by walking the
// module tree, everything else (the standard library) resolves through
// go/importer's source importer. Loaded packages are cached, so a Loader
// amortizes the cost of type-checking std dependencies across packages.
type Loader struct {
	// ModRoot is the directory containing go.mod.
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	std       types.ImporterFrom
	pkgs      map[string]*Package // by import path
	loading   map[string]bool     // cycle detection
	synthetic map[string]string   // registered fixture import path -> dir
}

// NewLoader creates a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot:   root,
		ModPath:   path,
		Fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
		synthetic: map[string]string{},
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source inside the module, everything else delegates to the
// standard library's source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.synthetic[path]; ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// RegisterSynthetic teaches the loader to resolve a non-module import
// path from a directory on disk. Test fixtures use it to build
// multi-package fixture trees ("fixture/callgraph" importing
// "fixture/callgraph/clockutil") without living inside the module.
func (l *Loader) RegisterSynthetic(importPath, dir string) {
	l.synthetic[importPath] = dir
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Load loads the package in dir, deriving its import path from the
// module layout.
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(dir, path)
}

// LoadDir loads and type-checks the package in dir under the given
// import path (which may be synthetic, e.g. for test fixtures).
// Only non-test files are loaded.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %w", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadAll loads every package under root (which must lie inside the
// module), in deterministic directory order. Directories named testdata
// or vendor, and hidden or underscore-prefixed directories, are skipped,
// matching the go tool's matching rules.
func (l *Loader) LoadAll(root string) ([]*Package, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// packageDirs returns every directory under root holding at least one
// non-test Go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goFiles lists dir's non-test Go files, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
