package analysis

// DefaultTimerFree lists the packages (by import-path suffix) that must
// not construct real timers. The engine routes every delayed action —
// retry backoff, batched notification flushes — through its injectable
// Scheduler, which the simulation harness (internal/sim) replaces with a
// virtual clock; the other virtual-time packages take no delayed actions
// at all, and the harness itself must never fall back to a real timer
// or its lock-step schedule stops being a pure function of (profile,
// seed). A raw time.After/AfterFunc/Sleep in any of them would fire on
// the wall clock even under simulation, reintroducing real-time
// interleavings into runs that must replay exactly. This is one notch
// stricter than the wallclock analyzer: there, timer construction is
// tolerated because "delaying an action is scheduling, not state" —
// true for determinism of protocol state, but not for deterministic
// REPLAY, which needs the schedule itself under the virtual clock.
var DefaultTimerFree = []string{
	"internal/engine",
	"internal/consensus",
	"internal/history",
	"internal/gvt",
	"internal/vtime",
	"internal/sim",
}

// timersBanned are the time-package entry points that create a real
// timer or block on real time.
var timersBanned = map[string]bool{
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Sleep":     true,
}

// Timers forbids real-timer construction (time.After, time.AfterFunc,
// time.NewTimer, time.NewTicker, time.Tick, time.Sleep) in the named
// packages — both direct calls and calls to module helpers that
// transitively reach one (resolved over the static call graph). Delays
// there must go through the engine's Scheduler so the simulation
// harness can drive them on its virtual clock. Matching is by
// import-path suffix; a justified exception is allowlisted in place
// with //decaf:ignore timers <reason>.
func Timers(protected ...string) *Analyzer {
	return TimersSanctioned(DefaultSanctioned, protected...)
}

// TimersSanctioned is Timers with an explicit sanctioned-wrapper
// package list; tests use it to exercise the barrier behavior on
// fixture packages.
func TimersSanctioned(sanctioned []string, protected ...string) *Analyzer {
	a := &Analyzer{
		Name: "timers",
		Doc:  "forbids real-timer construction (time.After/AfterFunc/NewTimer/NewTicker/Tick/Sleep) in engine, history, gvt, vtime, sim, including indirectly through module helpers; delays must use the injectable Scheduler",
	}
	a.Run = func(pass *Pass) {
		runReachAnalyzer(pass, reachConfig{
			protected:  protected,
			sanctioned: sanctioned,
			banned:     timersBanned,
			directFmt:  "real timer time.%s in timer-free package %s; schedule the delay through the injectable Scheduler so simulation can drive it on the virtual clock",
			reachWord:  "real-timer construction",
		})
	}
	return a
}
