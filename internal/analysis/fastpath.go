package analysis

import (
	"go/ast"
	"path/filepath"
)

// fastpathForbidden maps each reservation/confirm entry point to the
// machinery it belongs to. The commutative fast path's whole claim is
// that these are unnecessary: its transactions cannot fail validation in
// any serialization, so a call to any of them from fast-path code means
// the classification in tryFastPath has been broken (or the fast path
// has quietly grown a round-trip and stopped being fast).
var fastpathForbidden = map[string]string{
	"Reserve":             "reservation table write",
	"Conflicts":           "NC reservation check",
	"rememberReservation": "RL reservation bookkeeping",
	"primaryCheck":        "RL/NC guess validation",
	"primaryCheckOpts":    "RL/NC guess validation",
	"checkWriteAtPrimary": "RL/NC guess validation",
	"checkReadAtPrimary":  "RL guess validation",
	"validateAsPrimary":   "remote guess validation",
	"runReadCheck":        "RL guess validation",
	"propagate":           "guessed-path confirm exchange",
}

// Fastpath flags calls into the reservation/confirm machinery from
// commutative fast-path code — any function declared in a file named
// commute.go. Read-only inspection of the reservation table
// (Intersecting, used by guess demotion) is deliberately allowed: it
// never blocks, reserves, or round-trips.
//
// This enforces the invariant documented at the top of
// internal/engine/commute.go: the fast path stays fast, and honest, by
// construction. The check is syntactic on the callee name, scoped to
// commute.go files, so a false positive (an unrelated method that
// happens to be called Reserve) is possible but loud — suppress a
// documented one with //decaf:ignore fastpath.
func Fastpath() *Analyzer {
	a := &Analyzer{
		Name: "fastpath",
		Doc:  "flags reservation/confirm machinery calls from commutative fast-path code (commute.go)",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			pos := pass.Pkg.Fset.Position(f.Package)
			if filepath.Base(pos.Filename) != "commute.go" {
				continue
			}
			for _, fd := range funcDecls(f) {
				fd := fd
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name := calleeName(call)
					why, bad := fastpathForbidden[name]
					if !bad {
						return true
					}
					pass.Reportf(call.Pos(),
						"fast-path %s calls %s (%s); commute.go must not touch the reservation/confirm machinery",
						fd.Name.Name, name, why)
					return true
				})
			}
		}
	}
	return a
}

// calleeName returns the bare name a call expression invokes: the method
// or function identifier, with any receiver/package qualifier stripped.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
