package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GuardedBy enforces "guarded by" field annotations. A struct field
// documented with a comment containing "guarded by <mu>" (case
// insensitive) may only be read or written inside a function that locks
// that mutex on the same receiver expression:
//
//	type tcpPeer struct {
//		mu   sync.Mutex
//		conn net.Conn // guarded by mu
//	}
//
// An access p.conn is then legal only in functions that contain
// p.mu.Lock() (or p.mu.RLock()). The check is function-granular — it
// does not prove the lock is held at the access — but it catches the
// real-world bug shape where a whole function forgets the lock, and the
// receiver-expression matching distinguishes p.mu from t.mu even though
// both fields are named "mu". Loop-confined or init-time accesses are
// suppressed with //decaf:ignore guardedby.
func GuardedBy() *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc:  "flags accesses to 'guarded by <mu>' fields in functions that never lock <mu> on the same receiver",
	}
	a.Run = func(pass *Pass) {
		guarded := collectGuardedFields(pass.Pkg)
		if len(guarded) == 0 {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, fd := range funcDecls(f) {
				checkGuardedAccesses(pass, fd, guarded)
			}
		}
	}
	return a
}

// guardInfo describes one guarded field.
type guardInfo struct {
	structName string
	fieldName  string
	muName     string
}

var guardedByRe = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// collectGuardedFields scans struct declarations for guarded-by field
// comments, keyed by the field's types.Var object.
func collectGuardedFields(pkg *Package) map[*types.Var]guardInfo {
	out := map[*types.Var]guardInfo{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
							out[obj] = guardInfo{
								structName: ts.Name.Name,
								fieldName:  name.Name,
								muName:     mu,
							}
						}
					}
				}
			}
		}
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or returns "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses flags guarded-field selectors in fd whose guard
// mutex is never locked (on the same receiver expression) anywhere in fd.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardInfo) {
	info := pass.Pkg.Info

	// locked collects "base.mu" keys for every mutex lock call in the
	// function, closures included: function granularity, by design.
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if !isMutexType(info.Types[sel.X].Type) {
			return true
		}
		locked[types.ExprString(sel.X)] = true
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		obj, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[obj]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if locked[base+"."+g.muName] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s, but this function never locks %s.%s",
			g.structName, g.fieldName, g.muName, base, g.muName)
		return true
	})
}
