package analysis

import (
	"go/ast"
	"go/types"
)

// derefNamed unwraps pointers and aliases down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// namedFrom reports whether t (after deref) is the named type
// pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	n, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedPkgPath returns the defining package path and type name of t
// (after deref), or "", "".
func namedPkgPath(t types.Type) (pkgPath, name string) {
	n, ok := derefNamed(t)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	return namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex")
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("time", "Sleep"), or "", "".
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

// methodCall resolves a call to a method and returns the receiver
// type's defining package path, type name, and the method name.
func methodCall(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", ""
	}
	pkgPath, typeName = namedPkgPath(sig.Recv().Type())
	if typeName == "" {
		// Interface method expressions may not carry a named receiver;
		// fall back to the selector base expression's type.
		pkgPath, typeName = namedPkgPath(info.Types[sel.X].Type)
	}
	return pkgPath, typeName, fn.Name()
}
