package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder extracts a module-wide mutex-acquisition order graph and
// reports cycles — the static shape of an AB/BA deadlock.
//
// A lock is identified structurally, not per-instance: a mutex field is
// "(pkgpath.Type).field" and a package-level mutex is "pkgpath.name".
// That is the right granularity for order analysis: two goroutines
// deadlock when they take two *classes* of lock in opposite orders, and
// per-instance aliasing is not decidable statically.
//
// Within each function, acquisitions are tracked in source order:
// x.Lock()/x.RLock() pushes, x.Unlock()/x.RUnlock() pops the matching
// entry, and a deferred unlock keeps the lock held to function end.
// Every acquisition of M while L is held adds the edge L→M. Calls made
// while holding locks add edges from each held lock to every lock the
// callee transitively acquires on the synchronous path (propagated over
// the module call graph; interface dispatch is not resolved). Function
// literals spawned with `go` start with an empty held set — locks taken
// on a fresh goroutine are not nested under the spawner's — but still
// contribute their own internal edges.
//
// Any strongly connected component in the resulting graph (including a
// self-loop: re-acquiring a held lock class) is reported at each of the
// component's edge sites. A site that is safe for an out-of-band reason
// (runtime-enforced ordering, instance disjointness proven by
// construction) carries //decaf:ignore lockorder <reason>.
func Lockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "builds the module's mutex-acquisition order graph (locks held at each Lock site, propagated over the call graph) and reports cycles — the static shape of an AB/BA deadlock",
	}
	// The graph is module-wide; compute it once per suite run, keyed on
	// the shared CallGraph, and let each per-package pass report only the
	// edges that live in its files.
	var (
		memoGraph *CallGraph
		memoEdges []lockEdge
		memoCycle map[string]string // lock id -> rendered cycle it is part of
	)
	a.Run = func(pass *Pass) {
		g := pass.Graph
		if g == nil {
			g = BuildCallGraph([]*Package{pass.Pkg})
		}
		if g != memoGraph {
			memoGraph = g
			memoEdges, memoCycle = lockorderAnalyze(g)
		}
		for _, e := range memoEdges {
			if e.pkg != pass.Pkg {
				continue
			}
			cycle, ok := memoCycle[e.from]
			if !ok || memoCycle[e.to] != cycle {
				continue // edge not inside a cyclic component
			}
			via := ""
			if e.via != "" {
				via = fmt.Sprintf(" (via call to %s)", e.via)
			}
			pass.Reportf(e.pos,
				"acquires %s while holding %s%s, completing lock-order cycle %s; impose a global acquisition order or drop one lock first",
				e.to, e.from, via, cycle)
		}
	}
	return a
}

// lockEdge is one observed ordering: `to` acquired while `from` held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	// via labels the callee for interprocedural edges ("" for a direct
	// Lock() in the same body).
	via string
}

// lockAcquire is one Lock/RLock site with the held set at that point.
type lockAcquire struct {
	id   string
	held []string
	pos  token.Pos
}

// lockCallSite is a synchronous call made while holding locks.
type lockCallSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

// lockFuncFacts is the per-function harvest of one body walk.
type lockFuncFacts struct {
	pkg      *Package
	acquires []lockAcquire
	calls    []lockCallSite
	// direct is the set of locks this function acquires on its
	// synchronous path (spawned-goroutine acquisitions excluded).
	direct map[string]bool
}

// lockorderAnalyze walks every declared function, computes transitive
// acquire sets, materializes the ordering edges, and labels the lock
// classes that sit on a cycle.
func lockorderAnalyze(g *CallGraph) ([]lockEdge, map[string]string) {
	funcs := g.sortedFuncs()
	facts := map[*types.Func]*lockFuncFacts{}
	for _, fn := range funcs {
		fd := g.Body(fn)
		if fd == nil || fd.Body == nil {
			continue
		}
		f := &lockFuncFacts{pkg: g.DeclPkg[fn], direct: map[string]bool{}}
		walkLocks(g.DeclPkg[fn], fd.Body, f, nil, true)
		facts[fn] = f
	}

	// Transitive synchronous acquire sets, by fixpoint over call edges
	// (cycles in the call graph converge because sets only grow).
	trans := map[*types.Func]map[string]bool{}
	for fn, f := range facts {
		t := map[string]bool{}
		for id := range f.direct {
			t[id] = true
		}
		trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			f := facts[fn]
			if f == nil {
				continue
			}
			t := trans[fn]
			for _, site := range g.Calls[fn] {
				for id := range trans[site.Callee] {
					if !t[id] {
						t[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges.
	var edges []lockEdge
	seen := map[lockEdge]bool{}
	add := func(e lockEdge) {
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for _, fn := range funcs {
		f := facts[fn]
		if f == nil {
			continue
		}
		for _, acq := range f.acquires {
			for _, held := range acq.held {
				add(lockEdge{from: held, to: acq.id, pos: acq.pos, pkg: f.pkg})
			}
		}
		for _, call := range f.calls {
			ids := sortedKeys(trans[call.callee])
			for _, id := range ids {
				for _, held := range call.held {
					add(lockEdge{from: held, to: id, pos: call.pos, pkg: f.pkg, via: funcLabel(call.callee)})
				}
			}
		}
	}

	// Cycle detection: strongly connected components over the lock-class
	// graph. A component with two or more locks — or a self-loop — can
	// deadlock.
	adj := map[string]map[string]bool{}
	selfLoop := map[string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			selfLoop[e.from] = true
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	cycle := map[string]string{}
	for _, comp := range lockSCCs(adj) {
		if len(comp) < 2 && !selfLoop[comp[0]] {
			continue
		}
		sort.Strings(comp)
		label := strings.Join(comp, " -> ") + " -> " + comp[0]
		for _, id := range comp {
			cycle[id] = label
		}
	}
	return edges, cycle
}

// walkLocks walks one body in source order, tracking the held-lock
// stack. sync is false inside bodies that run on a new goroutine (their
// acquisitions do not join the enclosing function's direct set).
func walkLocks(pkg *Package, body ast.Node, f *lockFuncFacts, held []string, sync bool) []string {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Arguments evaluate synchronously; the spawned body starts
			// with nothing held.
			for _, arg := range n.Call.Args {
				held = walkLocks(pkg, arg, f, held, sync)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				walkLocks(pkg, lit.Body, f, nil, false)
			}
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end (so:
			// no pop). Other deferred calls run at an indeterminate point;
			// their arguments still evaluate here.
			for _, arg := range n.Call.Args {
				held = walkLocks(pkg, arg, f, held, sync)
			}
			return false
		case *ast.FuncLit:
			// A literal that is not `go`-spawned (assigned, passed,
			// immediately invoked) conservatively runs where it is
			// written, with the current held set — but acquisitions
			// inside it must not look "still held" after the literal.
			walkLocks(pkg, n.Body, f, append([]string(nil), held...), sync)
			return false
		case *ast.CallExpr:
			if id, method, ok := mutexOp(pkg.Info, n); ok {
				switch method {
				case "Lock", "RLock":
					f.acquires = append(f.acquires, lockAcquire{
						id:   id,
						held: append([]string(nil), held...),
						pos:  n.Pos(),
					})
					if sync {
						f.direct[id] = true
					}
					held = append(held, id)
				case "Unlock", "RUnlock":
					held = popLock(held, id)
				}
				return true
			}
			if callee := calleeFunc(pkg.Info, n); callee != nil && len(held) > 0 {
				f.calls = append(f.calls, lockCallSite{
					callee: callee,
					held:   append([]string(nil), held...),
					pos:    n.Pos(),
				})
			}
			return true
		}
		return true
	})
	return held
}

// mutexOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the lock class identity.
func mutexOp(info *types.Info, call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	id = lockClassID(info, sel.X)
	if id == "" {
		return "", "", false
	}
	return id, fn.Name(), true
}

// lockClassID names the lock class of the expression a Lock/Unlock is
// called on: "(pkgpath.Type).field" for a mutex field, "pkgpath.name"
// for a package-level mutex, "" when the class cannot be determined
// (function-local mutexes, which cannot participate in a cross-function
// ordering cycle by class).
func lockClassID(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		pkgPath, typeName := namedPkgPath(info.Types[e.X].Type)
		if typeName == "" {
			return ""
		}
		if pkgPath != "" {
			return fmt.Sprintf("(%s.%s).%s", pkgPath, typeName, e.Sel.Name)
		}
		return fmt.Sprintf("(%s).%s", typeName, e.Sel.Name)
	case *ast.Ident:
		obj := info.Uses[e]
		if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	}
	return ""
}

// popLock removes the innermost held entry matching id (unbalanced
// unlocks are ignored).
func popLock(held []string, id string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// sortedKeys returns a map's keys sorted, for deterministic edge order.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockSCCs computes strongly connected components of the lock graph
// (iterative Tarjan), deterministically ordered by sorted node name.
func lockSCCs(adj map[string]map[string]bool) [][]string {
	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	order := sortedKeys(nodes)
	succ := map[string][]string{}
	for from, tos := range adj {
		succ[from] = sortedKeys(tos)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node string
		succ []string
		i    int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root, succ: succ[root]}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.i < len(fr.succ) {
				w := fr.succ[fr.i]
				fr.i++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: succ[w]})
				} else if onStack[w] {
					if index[w] < low[fr.node] {
						low[fr.node] = index[w]
					}
				}
				continue
			}
			// fr done: maybe pop an SCC, then propagate lowlink up.
			v := fr.node
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return comps
}
