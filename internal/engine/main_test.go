package engine

import (
	"testing"

	"decaf/internal/testutil"
)

// TestMain fails the package when a test leaks goroutines — a site that
// is never Closed keeps its notifier and GC goroutines alive.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
