package engine

import (
	"errors"
	"fmt"

	"decaf/internal/ids"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Authorization monitors (paper §1: "users may also code authorization
// monitors to restrict access to sensitive objects"). A monitor is a
// per-site policy hook consulted whenever a REMOTE site tries to act on a
// local object:
//
//   - AuthJoin: a remote object asks to join a local object's replica
//     relationship (the §2.6/§3.3 flow);
//   - AuthWrite: a remote transaction's update targets a local object
//     whose primary copy is here (denial makes the whole transaction
//     abort at its origin, keeping replicas consistent);
//   - AuthRead: a remote transaction or view snapshot asks this primary
//     to confirm a read.
//
// Local transactions are the application's own code and are not filtered.

// AuthKind classifies an access request.
type AuthKind int

// Access kinds.
const (
	AuthJoin AuthKind = iota + 1
	AuthWrite
	AuthRead
)

// String implements fmt.Stringer.
func (k AuthKind) String() string {
	switch k {
	case AuthJoin:
		return "join"
	case AuthWrite:
		return "write"
	case AuthRead:
		return "read"
	default:
		return fmt.Sprintf("AuthKind(%d)", int(k))
	}
}

// AuthRequest describes one remote access for the monitor to vet.
type AuthRequest struct {
	Kind AuthKind
	// Object is the local object being accessed.
	Object ids.ObjectID
	// Desc is the local object's description.
	Desc string
	// Requester is the remote site performing the access.
	Requester vtime.SiteID
}

// Authorizer is an authorization monitor. Returning a non-nil error
// denies the access; the error text travels to the requester.
type Authorizer func(req AuthRequest) error

// ErrUnauthorized is the sentinel wrapped into authorization denials.
var ErrUnauthorized = errors.New("engine: unauthorized")

// SetAuthorizer installs (or, with nil, removes) the site's authorization
// monitor.
func (s *Site) SetAuthorizer(a Authorizer) {
	_ = s.call(func() { s.authorizer = a })
}

// authorize consults the monitor for a remote access to obj.
func (s *Site) authorize(kind AuthKind, obj *object, requester vtime.SiteID) error {
	if s.authorizer == nil || requester == s.id {
		return nil
	}
	if err := s.authorizer(AuthRequest{Kind: kind, Object: obj.id, Desc: obj.desc, Requester: requester}); err != nil {
		return fmt.Errorf("%w: %s of %s by %s: %w", ErrUnauthorized, kind, obj.id, requester, err)
	}
	return nil
}

// authorizeChecks vets a batch of read checks against the monitor.
func (s *Site) authorizeChecks(checks []wire.ReadCheck, requester vtime.SiteID) error {
	if s.authorizer == nil || requester == s.id {
		return nil
	}
	for _, c := range checks {
		if root, ok := s.objects[c.Target]; ok {
			if err := s.authorize(AuthRead, root, requester); err != nil {
				return err
			}
		}
	}
	return nil
}

// authorizeUpdates vets a batch of updates against the monitor.
func (s *Site) authorizeUpdates(updates []wire.Update, requester vtime.SiteID) error {
	if s.authorizer == nil || requester == s.id {
		return nil
	}
	for _, u := range updates {
		if root, ok := s.objects[u.Target]; ok {
			if err := s.authorize(AuthWrite, root, requester); err != nil {
				return err
			}
		}
	}
	return nil
}
