package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
)

// TestFig45UpdatePropagation reproduces the paper's running example
// (Figs. 4 and 5): four sites; W and X replicated at sites 1, 2, 3 with
// primary site 1; Y and Z replicated at sites 2, 3, 4 with primary site 4.
// A transaction T initiated at site 2 reads W and X, blind-writes Y := 2,
// and read-writes Z := 9.
//
// Per §3.1: site 2 sends CONFIRM-READ for W, X to site 1; WRITE for Y, Z
// to sites 3 and 4; site 1 checks and reserves the read intervals; site 4
// checks RL and NC for Z (and NC for Y) and reserves; site 2 collects both
// confirmations and sends COMMIT to all other involved sites.
func TestFig45UpdatePropagation(t *testing.T) {
	// GC disabled so the reservation tables can be inspected afterwards.
	h := newHarnessOpts(t, 4, transport.Config{Latency: 2 * time.Millisecond}, Options{DisableGC: true})

	// W, X rooted (anchored) at site 1, replicated at 1, 2, 3.
	w := h.joined(KindInt, "W", int64(4), 1, 2, 3)
	x := h.joined(KindInt, "X", int64(2), 1, 2, 3)
	// Y, Z rooted at site 4, replicated at 2, 3, 4.
	y := h.joined(KindInt, "Y", int64(3), 4, 2, 3)
	z := h.joined(KindInt, "Z", int64(6), 4, 2, 3)

	for name, tc := range map[string]struct {
		ref  ObjRef
		site int
		want int
	}{
		"W": {w[2], 2, 1}, "X": {x[2], 2, 1},
		"Y": {y[2], 2, 4}, "Z": {z[2], 2, 4},
	} {
		p, err := h.site(tc.site).PrimarySite(tc.ref)
		if err != nil || int(p) != tc.want {
			t.Fatalf("primary of %s = %v (err %v), want site %d", name, p, err, tc.want)
		}
	}

	msgsBefore := h.site(2).Stats().MessagesSent

	// Transaction T at site 2 (paper Fig. 4).
	res := h.site(2).Submit(&Txn{Name: "T", Execute: func(tx *Tx) error {
		if _, err := tx.Read(w[2]); err != nil { // read W
			return err
		}
		if _, err := tx.Read(x[2]); err != nil { // read X
			return err
		}
		if err := tx.Write(y[2], int64(2)); err != nil { // blind write Y = 2
			return err
		}
		zv, err := tx.Read(z[2]) // read Z
		if err != nil {
			return err
		}
		return tx.Write(z[2], zv.(int64)+3) // Z = 9
	}}).Wait()
	if !res.Committed {
		t.Fatalf("T: %+v", res)
	}
	if res.Retries != 0 {
		t.Fatalf("T retried %d times; topology should be settled", res.Retries)
	}

	// Exactly 3 protocol messages leave site 2 before commit: one
	// CONFIRM-READ (site 1), two WRITEs (sites 3, 4); then COMMITs to
	// the 3 involved sites. Total 6.
	msgs := h.site(2).Stats().MessagesSent - msgsBefore
	if msgs != 6 {
		t.Errorf("site 2 sent %d messages, want 6 (1 CONFIRM-READ + 2 WRITE + 3 COMMIT)", msgs)
	}

	// All replicas converge.
	h.eventually(2*time.Second, "replica convergence", func() bool {
		for i := 2; i <= 4; i++ {
			if yv, _ := h.site(i).ReadCommitted(y[i]); yv != int64(2) {
				return false
			}
			if zv, _ := h.site(i).ReadCommitted(z[i]); zv != int64(9) {
				return false
			}
		}
		for i := 1; i <= 3; i++ {
			if wv, _ := h.site(i).ReadCommitted(w[i]); wv != int64(4) {
				return false
			}
		}
		return true
	})

	// Site 1 (primary of W, X) holds write-free reservations from T's
	// confirmed reads; site 4 (primary of Y, Z) from its writes.
	var res1, res4 int
	_ = h.site(1).call(func() {
		res1 = w[1].o.res.Len() + x[1].o.res.Len()
	})
	_ = h.site(4).call(func() {
		res4 = z[4].o.res.Len() // Y was a blind write: empty interval, no reservation
	})
	if res1 < 2 {
		t.Errorf("site 1 reservations = %d, want >= 2 (W and X read intervals)", res1)
	}
	if res4 < 1 {
		t.Errorf("site 4 reservations = %d, want >= 1 (Z's read-write interval)", res4)
	}
}

// TestFig5DelegatedCommit covers the optimization at the end of §3.1: when
// every object's primary is the same single remote site, the origin
// delegates the commit to it, which sends COMMIT directly to all sites.
func TestFig5DelegatedCommit(t *testing.T) {
	h := newHarness(t, 4, transport.Config{Latency: 2 * time.Millisecond})

	// All four objects rooted at site 3 (isomorphic replica graphs).
	w := h.joined(KindInt, "W", int64(4), 3, 1, 2)
	y := h.joined(KindInt, "Y", int64(3), 3, 2, 4)

	res := h.site(2).Submit(&Txn{Name: "T", Execute: func(tx *Tx) error {
		wv, err := tx.Read(w[2])
		if err != nil {
			return err
		}
		return tx.Write(y[2], wv.(int64)*10)
	}}).Wait()
	if !res.Committed {
		t.Fatalf("T: %+v", res)
	}

	// The transaction was delegated: commit arrived at the origin as an
	// Outcome from site 3, not decided locally. Observable effect: all
	// replicas converge and no Confirm round-trip was required.
	h.eventually(2*time.Second, "convergence", func() bool {
		for _, i := range []int{2, 3, 4} {
			if v, _ := h.site(i).ReadCommitted(y[i]); v != int64(40) {
				return false
			}
		}
		return true
	})
}

// TestCommitLatencyMultiples verifies §5.1.1's latency analysis shape: a
// transaction whose objects all have a remote primary commits in ~2t at
// the originating site, and a transaction whose single primary site is the
// origin commits immediately (well under t).
func TestCommitLatencyMultiples(t *testing.T) {
	const lat = 20 * time.Millisecond
	h := newHarness(t, 2, transport.Config{Latency: lat})

	remote := h.joined(KindInt, "r", int64(0), 1, 2) // primary at site 1
	local := h.joined(KindInt, "l", int64(0), 2, 1)  // primary at site 2

	// Remote primary: ~2t (WRITE out, CONFIRM back).
	start := time.Now()
	if res := h.setInt(2, remote[2], 5); !res.Committed {
		t.Fatalf("remote write: %+v", res)
	}
	elapsed := time.Since(start)
	if elapsed < 2*lat || elapsed > 3*lat {
		t.Errorf("remote-primary commit took %v, want ~2t = %v", elapsed, 2*lat)
	}

	// Origin is primary: immediate commit.
	start = time.Now()
	if res := h.setInt(2, local[2], 5); !res.Committed {
		t.Fatalf("local write: %+v", res)
	}
	elapsed = time.Since(start)
	if elapsed > lat/2 {
		t.Errorf("local-primary commit took %v, want immediate (<< t)", elapsed)
	}
}
