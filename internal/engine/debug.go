package engine

import (
	"fmt"
	"strings"
)

// DescribeVersions returns a debug listing of ref's version history —
// one line per version with VT, read interval, status, and value. The
// simulation harness prints it when replicas diverge, so a failing seed
// report shows exactly which version one site holds and another lacks.
func (s *Site) DescribeVersions(ref ObjRef) (string, error) {
	if ref.o == nil {
		return "", ErrInvalidRef
	}
	var b strings.Builder
	err := s.call(func() {
		fmt.Fprintf(&b, "%s %s @S%d", ref.o.kind, ref.o.id, s.id)
		for _, v := range ref.o.hist.Versions() {
			fmt.Fprintf(&b, "\n  vt=%s read=%s %s value=%#v", v.VT, v.ReadVT, v.Status, v.Value)
		}
	})
	return b.String(), err
}
