package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"decaf/internal/transport"
)

// TestShardedPipelineStress drives N sites x M workers through the
// sharded commit pipeline (CommitWorkers forced above 1 so the parallel
// path runs even on a single-core machine) over both disjoint objects
// (each worker owns one, so their Writes stage and validate
// concurrently) and one shared hot object (read-modify-writes that
// conflict, abort, and retry through the serial path). It asserts
// convergence of every replica and the counter identities from the
// observability subsystem:
//
//	Submitted      == Commits + ProgrammedAborts + abandoned
//	ConflictAborts == Retries + abandoned
//
// Run it with -race: the fork-join window is exactly where a stray
// loop/worker access would surface.
func TestShardedPipelineStress(t *testing.T) {
	h, observers := newObsHarness(t, 3, transport.Config{}, Options{CommitWorkers: 4})

	const (
		nDisjoint = 6
		workers   = 3
		perWorker = 20
	)
	sites := []int{1, 2, 3}

	disjoint := make([]map[int]ObjRef, nDisjoint)
	for k := 0; k < nDisjoint; k++ {
		disjoint[k] = h.joined(KindInt, fmt.Sprintf("d%d", k), int64(0), 1, 2, 3)
	}
	shared := h.joined(KindInt, "hot", int64(0), 1, 2, 3)

	var (
		mu        sync.Mutex
		abandoned = map[int]uint64{}
	)
	var wg sync.WaitGroup
	for _, i := range sites {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				own := disjoint[(i*workers+w)%nDisjoint][i]
				hot := shared[i]
				for n := 0; n < perWorker; n++ {
					var txn *Txn
					if n%4 == 3 {
						txn = &Txn{Name: "rmw", Execute: func(tx *Tx) error {
							v, err := tx.Read(hot)
							if err != nil {
								return err
							}
							c, _ := v.(int64)
							return tx.Write(hot, c+1)
						}}
					} else {
						v := int64(i*1000 + w*100 + n)
						txn = &Txn{Name: "set", Execute: func(tx *Tx) error {
							return tx.Write(own, v)
						}}
					}
					res := h.site(i).Submit(txn).Wait()
					switch {
					case res.Committed:
					case errors.Is(res.Err, ErrTooManyRetries):
						mu.Lock()
						abandoned[i]++
						mu.Unlock()
					default:
						t.Errorf("site %d worker %d txn %d: %+v", i, w, n, res)
						return
					}
				}
			}(i, w)
		}
	}
	wg.Wait()

	h.eventually(10*time.Second, "all sites quiescent", func() bool {
		for _, i := range sites {
			if !h.noPendingTxns(i) {
				return false
			}
		}
		return true
	})
	h.eventually(10*time.Second, "replicas converged", func() bool {
		for k := 0; k < nDisjoint; k++ {
			v1 := h.committedInt(1, disjoint[k][1])
			if v1 != h.committedInt(2, disjoint[k][2]) || v1 != h.committedInt(3, disjoint[k][3]) {
				return false
			}
		}
		s1 := h.committedInt(1, shared[1])
		return s1 == h.committedInt(2, shared[2]) && s1 == h.committedInt(3, shared[3])
	})

	shardedTotal := 0.0
	for _, i := range sites {
		st := h.site(i).Stats()
		if st.Submitted != st.Commits+st.ProgrammedAborts+abandoned[i] {
			t.Errorf("site %d: Submitted=%d != Commits=%d + ProgrammedAborts=%d + abandoned=%d",
				i, st.Submitted, st.Commits, st.ProgrammedAborts, abandoned[i])
		}
		if st.ConflictAborts != st.Retries+abandoned[i] {
			t.Errorf("site %d: ConflictAborts=%d != Retries=%d + abandoned=%d",
				i, st.ConflictAborts, st.Retries, abandoned[i])
		}
		reg := observers[i].Metrics()
		if v, ok := reg.Value("decaf_engine_sharded_writes_total"); ok {
			shardedTotal += v
		}
		if v, ok := reg.Value("decaf_engine_batches_total"); !ok || v == 0 {
			t.Errorf("site %d: no event-loop batches recorded", i)
		}
	}
	// The disjoint blind writes are exactly the shard-eligible shape; if
	// none went through the pipeline the feature is off, not just idle.
	if shardedTotal == 0 {
		t.Error("no writes took the sharded pipeline; staging is not engaging")
	}
}

// TestBatchCoalescingUnderLatency checks that the batched loop actually
// coalesces outbound messages: with several transactions submitted
// before the first round trip completes, at least some sends must
// piggyback on a shared batch flush.
func TestBatchCoalescingUnderLatency(t *testing.T) {
	h, observers := newObsHarness(t, 2, transport.Config{Latency: 2 * time.Millisecond}, Options{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	const txns = 40
	handles := make([]*Handle, 0, txns)
	for n := 0; n < txns; n++ {
		v := int64(n)
		ref := refs[2]
		handles = append(handles, h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
			return tx.Write(ref, v)
		}}))
	}
	for _, hd := range handles {
		if res := hd.Wait(); !res.Committed {
			t.Fatalf("txn failed: %+v", res)
		}
	}
	coalesced := 0.0
	for _, i := range []int{1, 2} {
		if v, ok := observers[i].Metrics().Value("decaf_engine_coalesced_sends_total"); ok {
			coalesced += v
		}
	}
	if coalesced == 0 {
		t.Error("no outbound messages were coalesced across 40 concurrent txns")
	}
}
