package engine

import (
	"fmt"

	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Direct propagation for embedded objects (paper §3.2.2): by default an
// object embedded within a composite inherits its root's replication
// graph and its updates propagate indirectly through VT-tagged paths.
// "Once a collaborating node is embedded within another collaborating
// node ..., that node switches to direct propagation, and a propagation
// graph is sent to all replicas."
//
// Switching requires a propagation graph over the child's counterparts at
// every replica site of the root. Counterpart object IDs are local to
// each site, so promotion first collects them (PromoteQuery/PromoteReply,
// addressed through the root with the child's path), then distributes the
// assembled graph as an ordinary replication-graph update validated at
// the root graph's primary. Afterwards the child is its own replication
// root: its updates are addressed directly to the graph's nodes, and it
// can join external objects like any top-level object.
//
// When the ROOT's replica set later changes (a join or leave of the
// tree), the site hosting the direct child's primary copy re-collects the
// counterpart set and refreshes the child's graph, implementing "the
// parent node notifies the collaborating embedded node of all changes to
// its replica graph".

// promoteState tracks one in-flight promotion at the initiating site.
type promoteState struct {
	child   *object
	handle  *Handle
	waiting map[vtime.SiteID]bool
	// collected maps replica site -> counterpart child ID.
	collected map[vtime.SiteID]ids.ObjectID
	// keep preserves existing graph members (a refresh must not drop
	// external collaborators).
	keep *repgraph.Graph
	// anchorSite is the root graph's primary site; the child's anchor is
	// placed there so primary placement follows the tree's.
	anchorSite vtime.SiteID
	failed     bool
}

// Promote switches an embedded object to direct propagation (paper
// §3.2.2). Idempotent: promoting a standalone or already-direct object
// succeeds immediately.
func (s *Site) Promote(ref ObjRef) *Handle {
	h := newHandle()
	s.doOrDrop(
		func() { s.startPromote(ref.o, h) },
		func() { h.finish(Result{Err: ErrSiteStopped}) },
	)
	return h
}

func (s *Site) startPromote(child *object, h *Handle) {
	if child == nil {
		h.finish(Result{Err: fmt.Errorf("%w: invalid object", ErrAborted)})
		return
	}
	if child.graph != nil || child.parent == nil {
		// Already its own replication root.
		h.finish(Result{Committed: true})
		return
	}
	root := child.replicationRoot()
	g := root.graph
	if g == nil || g.NumNodes() <= 1 {
		// Unreplicated tree: a single-node graph suffices.
		s.adoptDirectGraph(child, repgraph.NewGraph(child.id, s.id), nil, h)
		return
	}

	anchorSite, _ := g.PrimarySite()
	ps := &promoteState{
		child:      child,
		handle:     h,
		waiting:    map[vtime.SiteID]bool{},
		collected:  map[vtime.SiteID]ids.ObjectID{s.id: child.id},
		anchorSite: anchorSite,
	}
	path := child.pathFromContainer()
	for _, node := range g.Nodes() {
		nodeSite, _ := g.SiteOf(node)
		if nodeSite == s.id {
			continue
		}
		reqID := s.newReqID()
		ps.waiting[nodeSite] = true
		s.promotes[reqID] = ps
		s.send(nodeSite, wire.PromoteQuery{ReqID: reqID, Origin: s.id, Target: node, Path: path})
	}
	if len(ps.waiting) == 0 {
		s.finishPromote(ps)
	}
}

// handlePromoteQuery reveals the counterpart child's identity.
func (s *Site) handlePromoteQuery(m wire.PromoteQuery) {
	reply := wire.PromoteReply{ReqID: m.ReqID, From: s.id}
	if root, ok := s.objects[m.Target]; ok {
		if child, blocked := root.resolvePathForApply(m.Path); !blocked && child != nil {
			reply.OK = true
			reply.Child = child.id
		}
	}
	s.send(m.Origin, reply)
}

// handlePromoteReply collects counterpart identities.
func (s *Site) handlePromoteReply(m wire.PromoteReply) {
	ps, ok := s.promotes[m.ReqID]
	if !ok {
		return
	}
	delete(s.promotes, m.ReqID)
	if ps.failed {
		return
	}
	delete(ps.waiting, m.From)
	if !m.OK {
		// The counterpart has not materialized there yet (structural op
		// in flight); the caller may retry.
		ps.failed = true
		ps.handle.finish(Result{Err: fmt.Errorf("%w: counterpart not resolvable at %s", ErrAborted, m.From)})
		return
	}
	ps.collected[m.From] = m.Child
	if len(ps.waiting) == 0 {
		s.finishPromote(ps)
	}
}

// finishPromote assembles and distributes the direct propagation graph.
func (s *Site) finishPromote(ps *promoteState) {
	child := ps.child
	if ps.keep == nil && child.graph != nil {
		// A concurrent promotion won the race; nothing to do.
		ps.handle.finish(Result{Committed: true})
		return
	}
	g := repgraph.NewGraph(child.id, s.id)
	// Site-sorted so the assembled graph (which goes out on the wire) has
	// the same node order on every run.
	for _, site := range sortedSites(ps.collected) {
		if id := ps.collected[site]; id != child.id {
			g.AddNode(id, site)
			_ = g.AddEdge(child.id, id)
		}
	}
	if ps.keep != nil {
		g.Merge(ps.keep)
	}
	// The child's primary follows the tree's primary placement.
	if anchorID, ok := ps.collected[ps.anchorSite]; ok {
		g.SetAnchor(anchorID)
	}
	s.adoptDirectGraph(child, g, ps.keep, ps.handle)
}

// adoptDirectGraph distributes the direct graph as an ordinary
// replication-graph update: addressed through the root's graph (the
// counterparts have no graph yet, so indirect paths carry it), validated
// at the root graph's primary like any graph change.
func (s *Site) adoptDirectGraph(child *object, g *repgraph.Graph, keep *repgraph.Graph, h *Handle) {
	txn := &Txn{
		Name: "promote",
		Execute: func(tx *Tx) error {
			if keep != nil && child.graph != nil {
				// Refresh: reach both the old members and the newly
				// collected counterparts (all IDs known, direct
				// addressing).
				targets := child.graph.Clone()
				targets.Merge(g)
				tx.writeGraphUpdateTargets(child, g, targets)
				return nil
			}
			tx.writeGraphUpdate(child, g)
			return nil
		},
	}
	inner := s.Submit(txn)
	go func() {
		select {
		case res := <-inner.Done():
			h.finish(res)
		case <-s.stop:
			h.finish(Result{Err: ErrSiteStopped})
		}
	}()
}

// refreshDirectChildren re-collects counterpart sets for direct children
// under root after the root's replica set changed; only the site hosting
// a child's primary copy initiates (one refresher per child).
func (s *Site) refreshDirectChildren(root *object) {
	root.forEachDescendant(func(o *object) {
		if o == root || o.graph == nil || o.parent == nil {
			return
		}
		primary, ok := o.graph.PrimarySite()
		if !ok || primary != s.id {
			return
		}
		child := o
		rootGraph := root.graph
		if rootGraph == nil {
			return
		}
		anchorSite, _ := rootGraph.PrimarySite()
		ps := &promoteState{
			child:      child,
			handle:     newHandle(),
			waiting:    map[vtime.SiteID]bool{},
			collected:  map[vtime.SiteID]ids.ObjectID{s.id: child.id},
			keep:       child.graph.Clone(),
			anchorSite: anchorSite,
		}
		path := child.pathFromContainer()
		for _, node := range rootGraph.Nodes() {
			nodeSite, _ := rootGraph.SiteOf(node)
			if nodeSite == s.id {
				continue
			}
			reqID := s.newReqID()
			ps.waiting[nodeSite] = true
			s.promotes[reqID] = ps
			s.send(nodeSite, wire.PromoteQuery{ReqID: reqID, Origin: s.id, Target: node, Path: path})
		}
		if len(ps.waiting) == 0 {
			s.finishPromote(ps)
		}
	})
}
