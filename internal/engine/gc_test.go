package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// Garbage-collection behaviour (paper §3: "Histories are garbage-collected
// as transactions commit").

func TestHistoriesStayBoundedUnderSustainedLoad(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	const writes = 200
	for k := 1; k <= writes; k++ {
		if res := h.setInt(2, refs[2], int64(k)); !res.Committed {
			t.Fatalf("write %d: %+v", k, res)
		}
	}
	// Let the trailing outcomes land.
	h.eventually(3*time.Second, "convergence", func() bool {
		return h.committedInt(1, refs[1]) == writes
	})

	for _, i := range []int{1, 2} {
		var histLen, resLen int
		_ = h.site(i).call(func() {
			histLen = refs[i].o.hist.Len()
			resLen = refs[i].o.res.Len()
		})
		if histLen > 8 {
			t.Errorf("site %d history grew to %d versions after %d committed writes", i, histLen, writes)
		}
		if resLen > 16 {
			t.Errorf("site %d reservations grew to %d", i, resLen)
		}
	}
}

func TestDisableGCRetainsHistory(t *testing.T) {
	h := newHarnessOpts(t, 1, transport.Config{}, Options{DisableGC: true})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	const writes = 20
	for k := 1; k <= writes; k++ {
		if res := h.setInt(1, ref, int64(k)); !res.Committed {
			t.Fatal("write failed")
		}
	}
	var histLen int
	_ = h.site(1).call(func() { histLen = ref.o.hist.Len() })
	if histLen != writes+1 { // initial version + every write
		t.Fatalf("history = %d versions, want %d", histLen, writes+1)
	}
}

func TestGCPreservesOutstandingSnapshotReads(t *testing.T) {
	// An attached pessimistic view holds the GC floor down so its
	// snapshots can still read; committed values it has not yet consumed
	// are never pruned out from under it.
	h := newHarness(t, 2, transport.Config{Latency: 2 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{refs[1]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		if res := h.setInt(2, refs[2], int64(k)); !res.Committed {
			t.Fatal("write failed")
		}
	}
	// Lossless delivery despite concurrent GC.
	h.eventually(3*time.Second, "all values notified", func() bool {
		ups, _ := rec.snapshot()
		seen := map[int64]bool{}
		for _, u := range ups {
			if v, ok := u.Values[refs[1].ID()].(int64); ok {
				seen[v] = true
			}
		}
		for k := int64(1); k <= 10; k++ {
			if !seen[k] {
				return false
			}
		}
		return true
	})
}

func TestOutcomeTableDrivesLateUpdates(t *testing.T) {
	// Outcomes are retained so update messages arriving after the summary
	// COMMIT are applied as committed (paper §3.1). Force the ordering
	// with a delegated commit whose COMMIT beats the WRITE to a third
	// site.
	h := newHarness(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		if from == 2 && to == 3 {
			return 30 * time.Millisecond // the WRITE dawdles
		}
		return time.Millisecond
	}})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// Origin site 2; single remote primary site 1 (delegation): site 1
	// sends COMMIT to site 3 quickly while site 2's WRITE to site 3 is
	// slow — the outcome arrives first.
	if res := h.setInt(2, refs[2], 77); !res.Committed {
		t.Fatalf("write: %+v", res)
	}
	h.eventually(2*time.Second, "late update applied as committed", func() bool {
		return h.committedInt(3, refs[3]) == 77
	})
}
