package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"strings"

	"decaf/internal/repgraph"
)

// DescribeCheckpoint renders a human-readable summary of a persisted
// checkpoint without loading it into a site (the decaf-inspect tool).
func DescribeCheckpoint(r io.Reader) (string, error) {
	var cp siteCheckpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return "", fmt.Errorf("engine: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return "", fmt.Errorf("engine: checkpoint version %d unsupported", cp.Version)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint of site %s (format v%d)\n", cp.Site, cp.Version)
	fmt.Fprintf(&b, "clock %s, next object seq %d, %d top-level objects\n",
		cp.Clock, cp.NextSeq, len(cp.Objects))
	for _, oc := range cp.Objects {
		fmt.Fprintf(&b, "\n%s %q (%s)\n", oc.ID, oc.Desc, oc.Kind)
		if oc.Value != nil || !oc.ValueVT.IsZero() {
			fmt.Fprintf(&b, "  value %v (committed at %s)\n", oc.Value, oc.ValueVT)
		}
		if len(oc.Graph.Nodes) > 0 {
			g := repgraph.FromWire(oc.Graph)
			fmt.Fprintf(&b, "  replicas %v, primary at ", g.Sites())
			if ps, ok := g.PrimarySite(); ok {
				fmt.Fprintf(&b, "site %s", ps)
			} else {
				b.WriteString("(none)")
			}
			fmt.Fprintf(&b, " (graph changed at %s)\n", oc.GraphVT)
		}
		describeChildren(&b, oc.Children, "  ")
	}
	return b.String(), nil
}

func describeChildren(b *strings.Builder, children []childCheckpoint, indent string) {
	for _, cc := range children {
		label := cc.Key
		if label == "" {
			label = cc.Tag.String()
		}
		fmt.Fprintf(b, "%s[%s] %s", indent, label, cc.Kind)
		if cc.Value != nil {
			fmt.Fprintf(b, " = %v", cc.Value)
		}
		fmt.Fprintf(b, " (embedded at %s)\n", cc.InsertVT)
		describeChildren(b, cc.Children, indent+"  ")
	}
}
