package engine

import (
	"fmt"
	"io"
	"strings"

	"decaf/internal/repgraph"
	"decaf/internal/wire"
)

// DescribeCheckpoint renders a human-readable summary of a persisted
// checkpoint without loading it into a site (the decaf-inspect tool).
// Both the current wire-codec format and legacy v1 gob checkpoints are
// accepted.
func DescribeCheckpoint(r io.Reader) (string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", fmt.Errorf("engine: read checkpoint: %w", err)
	}
	version := checkpointVersionV1
	if wire.IsCheckpoint(data) {
		version = wire.CheckpointVersion
	}
	cp, err := decodeAnyCheckpoint(data)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "checkpoint of site %s (format v%d)\n", cp.Site, version)
	fmt.Fprintf(&b, "clock %s, next object seq %d, %d top-level objects\n",
		cp.Clock, cp.NextSeq, len(cp.Objects))
	if cp.Seq != 0 {
		fmt.Fprintf(&b, "wal marker seq %d\n", cp.Seq)
	}
	for _, f := range cp.Floors {
		fmt.Fprintf(&b, "sync floor: origin %s up to time %d\n", f.Site, f.Time)
	}
	for _, oc := range cp.Objects {
		fmt.Fprintf(&b, "\n%s %q (%s)\n", oc.ID, oc.Desc, oc.Kind)
		if oc.Value != nil || !oc.ValueVT.IsZero() {
			fmt.Fprintf(&b, "  value %v (committed at %s)\n", oc.Value, oc.ValueVT)
		}
		if len(oc.Graph.Nodes) > 0 {
			g := repgraph.FromWire(oc.Graph)
			fmt.Fprintf(&b, "  replicas %v, primary at ", g.Sites())
			if ps, ok := g.PrimarySite(); ok {
				fmt.Fprintf(&b, "site %s", ps)
			} else {
				b.WriteString("(none)")
			}
			fmt.Fprintf(&b, " (graph changed at %s)\n", oc.GraphVT)
		}
		describeChildren(&b, oc.Children, "  ")
	}
	return b.String(), nil
}

func describeChildren(b *strings.Builder, children []wire.CheckpointChild, indent string) {
	for _, cc := range children {
		label := cc.Key
		if label == "" {
			label = cc.Tag.String()
		}
		fmt.Fprintf(b, "%s[%s] %s", indent, label, cc.Kind)
		if cc.Value != nil {
			fmt.Fprintf(b, " = %v", cc.Value)
		}
		fmt.Fprintf(b, " (embedded at %s)\n", cc.InsertVT)
		describeChildren(b, cc.Children, indent+"  ")
	}
}
