package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// addInt runs a pure-add transaction at site i.
func (h *harness) addInt(i int, ref ObjRef, delta int64) Result {
	h.t.Helper()
	return h.site(i).Submit(&Txn{
		Name:    "add",
		Execute: func(tx *Tx) error { return tx.Add(ref, delta) },
	}).Wait()
}

// TestFastPathCommitsWithoutRoundTrip: a pure-add transaction must commit
// locally without waiting out the primary round-trip, even when the
// primary is two slow hops away.
func TestFastPathCommitsWithoutRoundTrip(t *testing.T) {
	const lat = 60 * time.Millisecond
	h := newHarness(t, 2, transport.Config{Latency: lat})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	// Site 2 is not the primary: a guessed write from here would wait
	// ~2*lat for its confirmation.
	start := time.Now()
	res := h.addInt(2, refs[2], 5)
	elapsed := time.Since(start)
	if !res.Committed || res.Err != nil {
		t.Fatalf("add result = %+v", res)
	}
	if elapsed >= lat {
		t.Fatalf("fast-path commit took %v, want well under one-way latency %v", elapsed, lat)
	}
	if st := h.site(2).Stats(); st.FastpathCommits != 1 {
		t.Fatalf("FastpathCommits = %d, want 1", st.FastpathCommits)
	}

	h.eventually(3*time.Second, "add replicated", func() bool {
		return h.committedInt(1, refs[1]) == 5 && h.committedInt(2, refs[2]) == 5
	})
}

// TestFastPathDisabled: with the ablation switch on, the same transaction
// goes through the ordinary guess/confirm protocol.
func TestFastPathDisabled(t *testing.T) {
	h := newHarnessOpts(t, 2, transport.Config{}, Options{DisableFastPath: true})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	if res := h.addInt(2, refs[2], 5); !res.Committed || res.Err != nil {
		t.Fatalf("add result = %+v", res)
	}
	if st := h.site(2).Stats(); st.FastpathCommits != 0 {
		t.Fatalf("FastpathCommits = %d, want 0 with DisableFastPath", st.FastpathCommits)
	}
	h.eventually(3*time.Second, "add replicated", func() bool {
		return h.committedInt(1, refs[1]) == 5
	})
}

// TestFastPathConcurrentAddsConverge: concurrent adds from every site
// merge to the total at every replica — no ordering agreement needed.
func TestFastPathConcurrentAddsConverge(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 42})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	const perSite = 20
	var handles []*Handle
	for k := 0; k < perSite; k++ {
		for _, i := range []int{1, 2, 3} {
			ref := refs[i]
			handles = append(handles, h.site(i).Submit(&Txn{
				Name:    "add",
				Execute: func(tx *Tx) error { return tx.Add(ref, 1) },
			}))
		}
	}
	for _, hd := range handles {
		if res := hd.Wait(); !res.Committed {
			t.Fatalf("add failed: %+v", res)
		}
	}
	const want = int64(3 * perSite)
	h.eventually(5*time.Second, "all replicas at the total", func() bool {
		for _, i := range []int{1, 2, 3} {
			if h.committedInt(i, refs[i]) != want {
				return false
			}
		}
		return true
	})
	var fast uint64
	for _, i := range []int{1, 2, 3} {
		fast += h.site(i).Stats().FastpathCommits
	}
	if fast != uint64(3*perSite) {
		t.Fatalf("sum of FastpathCommits = %d, want %d", fast, 3*perSite)
	}
}

// TestFastPathFoldsRepeatedAdds: several adds (and add-over-set) by one
// transaction fold into a single op with the combined effect.
func TestFastPathFoldsRepeatedAdds(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	res := h.site(2).Submit(&Txn{Name: "add3", Execute: func(tx *Tx) error {
		if err := tx.Add(refs[2], 2); err != nil {
			return err
		}
		if err := tx.Add(refs[2], 3); err != nil {
			return err
		}
		return tx.Add(refs[2], 5)
	}}).Wait()
	if !res.Committed {
		t.Fatalf("add3 result = %+v", res)
	}
	if st := h.site(2).Stats(); st.FastpathCommits != 1 {
		t.Fatalf("FastpathCommits = %d, want 1", st.FastpathCommits)
	}
	h.eventually(3*time.Second, "folded add replicated", func() bool {
		return h.committedInt(1, refs[1]) == 10 && h.committedInt(2, refs[2]) == 10
	})

	// Add over the transaction's own Set stays absolute (and therefore off
	// the fast path).
	res = h.site(2).Submit(&Txn{Name: "setadd", Execute: func(tx *Tx) error {
		if err := tx.Write(refs[2], int64(100)); err != nil {
			return err
		}
		return tx.Add(refs[2], 7)
	}}).Wait()
	if !res.Committed {
		t.Fatalf("setadd result = %+v", res)
	}
	h.eventually(3*time.Second, "set+add replicated", func() bool {
		return h.committedInt(1, refs[1]) == 107
	})
}

// TestFastPathDemotionRigged: a fast-path commit landing inside an open
// reservation interval must demote the reservation's guess. The
// reservation is rigged directly at the primary (the owner VT names a
// remote site), so the demotion sweep and the confirmation retraction are
// exercised deterministically.
func TestFastPathDemotionRigged(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	owner := vtime.VT{Time: 1 << 41, Site: 2}
	_ = h.site(1).call(func() {
		o := refs[1].o
		o.res.Reserve(vtime.Interval{Lo: vtime.Zero, Hi: vtime.VT{Time: 1 << 40, Site: 2}}, owner)
	})

	if res := h.addInt(2, refs[2], 3); !res.Committed {
		t.Fatalf("add result = %+v", res)
	}
	h.eventually(3*time.Second, "demotion recorded at primary", func() bool {
		return h.site(1).Stats().FastpathDemotions >= 1
	})
	h.eventually(3*time.Second, "add replicated", func() bool {
		return h.committedInt(1, refs[1]) == 3
	})
}

// TestFastPathDemotesOpenGuess is the end-to-end demotion scenario: a
// guessed read-modify-write holds an open reservation at the primary
// (still waiting on a confirm from a slow second primary) when a
// commutative add from a site with a lagging clock commits inside the
// reserved interval. The guess must be demoted to re-validation — abort,
// retry, and re-read of the merged value — and every replica must
// converge on add-then-rmw.
func TestFastPathDemotesOpenGuess(t *testing.T) {
	slowLinks := func(from, to vtime.SiteID) time.Duration {
		// Links to/from site 3 are slow (they keep the guess undecided);
		// so is site2->site4, which hides the guess's high VT from site 4
		// until after its low-VT add is submitted.
		if from == 3 || to == 3 || (from == 2 && to == 4) {
			return 60 * time.Millisecond
		}
		return time.Millisecond
	}
	h := newHarnessOpts(t, 4, transport.Config{LatencyFn: slowLinks}, Options{DisableDelegation: true})

	// x: primary at site 1, replicated at 2 and 4. y: primary at the slow
	// site 3, replicated at 2 — the anchor that keeps site 2's guess open.
	xs := h.joined(KindInt, "x", int64(0), 1, 2, 4)
	ys := h.joined(KindInt, "y", int64(0), 3, 2)

	// Push site 2's Lamport clock well past site 4's so the later add gets
	// the SMALLER virtual time (cross-site clock skew is the only way a
	// fast commit lands inside an open interval).
	bump, err := h.site(2).CreateObject(KindInt, "bump", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		if res := h.setInt(2, bump, int64(k)); !res.Committed {
			t.Fatalf("bump %d: %+v", k, res)
		}
	}

	// The guess: RMW over x and y. Its x-confirm comes back in ~2ms, but
	// the y-confirm needs ~120ms, so the x reservation stays open.
	guess := h.site(2).Submit(&Txn{Name: "rmw", Execute: func(tx *Tx) error {
		vx, err := tx.Read(xs[2])
		if err != nil {
			return err
		}
		if err := tx.Write(xs[2], vx.(int64)+1); err != nil {
			return err
		}
		vy, err := tx.Read(ys[2])
		if err != nil {
			return err
		}
		return tx.Write(ys[2], vy.(int64)+1)
	}})

	// Let the guess's Write reach the primary and open the reservation.
	time.Sleep(20 * time.Millisecond)

	if res := h.addInt(4, xs[4], 10); !res.Committed {
		t.Fatalf("fast add: %+v", res)
	}

	if res := guess.Wait(); !res.Committed || res.Retries == 0 {
		t.Fatalf("guess result = %+v, want committed after >= 1 retry", res)
	}

	h.eventually(5*time.Second, "replicas converged on add-then-rmw", func() bool {
		for _, i := range []int{1, 2, 4} {
			if h.committedInt(i, xs[i]) != 11 {
				return false
			}
		}
		return true
	})
	if st := h.site(1).Stats(); st.FastpathDemotions == 0 {
		t.Fatalf("primary recorded no demotions; stats = %+v", st)
	}
	if st := h.site(2).Stats(); st.Retries == 0 {
		t.Fatalf("origin recorded no retries; stats = %+v", st)
	}
}

// TestFastPathVersionDeniesLaterGuess: the converse interleaving. The
// fast-path version is already in the primary's history when a guessed
// RMW that read the pre-add value validates; the ordinary RL scan must
// deny the guess even though no reservation ever covered the fast write.
func TestFastPathVersionDeniesLaterGuess(t *testing.T) {
	slow12 := func(from, to vtime.SiteID) time.Duration {
		if (from == 1 && to == 2) || (from == 2 && to == 1) {
			return 50 * time.Millisecond
		}
		return time.Millisecond
	}
	h := newHarnessOpts(t, 3, transport.Config{LatencyFn: slow12}, Options{DisableDelegation: true})
	xs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// Site 2's clock runs ahead so the fast add's VT sits inside the
	// guess's (tR, tT] interval.
	bump, err := h.site(2).CreateObject(KindInt, "bump", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		if res := h.setInt(2, bump, int64(k)); !res.Committed {
			t.Fatalf("bump %d: %+v", k, res)
		}
	}

	// The fast add reaches the primary in ~1ms; the guess's Write needs
	// ~50ms, so validation sees the committed fast version first.
	guess := h.site(2).Submit(&Txn{Name: "rmw", Execute: func(tx *Tx) error {
		vx, err := tx.Read(xs[2])
		if err != nil {
			return err
		}
		return tx.Write(xs[2], vx.(int64)+1)
	}})
	if res := h.addInt(3, xs[3], 10); !res.Committed {
		t.Fatalf("fast add: %+v", res)
	}

	if res := guess.Wait(); !res.Committed || res.Retries == 0 {
		t.Fatalf("guess result = %+v, want committed after >= 1 retry", res)
	}
	h.eventually(5*time.Second, "replicas converged", func() bool {
		for _, i := range []int{1, 2, 3} {
			if h.committedInt(i, xs[i]) != 11 {
				return false
			}
		}
		return true
	})
	if st := h.site(2).Stats(); st.ConflictAborts == 0 {
		t.Fatalf("origin recorded no conflict aborts; stats = %+v", st)
	}
}

// TestFastPathMixedWorkloadStress is the CI -race workload: three sites
// mixing commutative adds with guessed read-modify-writes over one shared
// counter. Asserts convergence: after quiescence every replica holds the
// identical committed value. (The exact value is not asserted: an add
// whose fast write races a guessed Set's in-flight confirmation can be
// absorbed by the later absolute write — the documented residual window
// of mixing commutative and absolute ops; see DESIGN.md §11.)
func TestFastPathMixedWorkloadStress(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 7})
	refs := h.joined(KindInt, "c", int64(0), 1, 2, 3)

	const perSite = 30
	var handles []*Handle
	byHandle := map[*Handle]bool{} // true = add
	for k := 0; k < perSite; k++ {
		for _, i := range []int{1, 2, 3} {
			ref := refs[i]
			var txn *Txn
			isAdd := k%10 < 7 // 70% commutative, 30% guessed
			if isAdd {
				txn = &Txn{Name: "add", Execute: func(tx *Tx) error { return tx.Add(ref, 1) }}
			} else {
				txn = &Txn{Name: "rmw", Execute: func(tx *Tx) error {
					v, err := tx.Read(ref)
					if err != nil {
						return err
					}
					return tx.Write(ref, v.(int64)+1)
				}}
			}
			hd := h.site(i).Submit(txn)
			byHandle[hd] = isAdd
			handles = append(handles, hd)
		}
	}
	var adds uint64
	for _, hd := range handles {
		res := hd.Wait()
		switch {
		case res.Committed && byHandle[hd]:
			adds++
		case res.Committed:
			// Guessed RMW committed.
		case res.Err == nil:
			t.Fatalf("transaction neither committed nor errored: %+v", res)
		}
		// RMWs may exhaust retries under heavy conflict; that surfaces as
		// an ErrTooManyRetries result, which is fine for this workload.
	}

	// Quiescence, then replica agreement: every site must hold the same
	// committed value, and it must reflect at least some of the work.
	h.eventually(10*time.Second, "all sites quiescent", func() bool {
		for _, i := range []int{1, 2, 3} {
			if !h.noPendingTxns(i) {
				return false
			}
		}
		return true
	})
	h.eventually(10*time.Second, "all replicas converged to one value", func() bool {
		v := h.committedInt(1, refs[1])
		return v > 0 &&
			h.committedInt(2, refs[2]) == v &&
			h.committedInt(3, refs[3]) == v
	})

	var fast uint64
	for _, i := range []int{1, 2, 3} {
		st := h.site(i).Stats()
		fast += st.FastpathCommits
		if st.FastpathCommits > st.Commits {
			t.Errorf("site %d: FastpathCommits=%d > Commits=%d", i, st.FastpathCommits, st.Commits)
		}
	}
	if fast != adds {
		t.Errorf("sum of FastpathCommits = %d, want %d (every committed add is fast-path)", fast, adds)
	}
}

// TestListInsertAfterConvergesAcrossSites: concurrent stable-position
// inserts anchored on the same element converge to one deterministic
// order at every replica — the sanctioned concurrent-editing path.
func TestListInsertAfterConvergesAcrossSites(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: 5 * time.Millisecond})
	lists := h.joined(KindList, "L", nil, 1, 2)

	// Seed one committed anchor element from site 1.
	res := h.site(1).Submit(&Txn{Name: "seed", Execute: func(tx *Tx) error {
		_, err := tx.ListInsertAfter(lists[1], wire.ElemTag{}, wire.ChildDecl{Kind: KindInt, Value: int64(100)})
		return err
	}}).Wait()
	if !res.Committed {
		t.Fatalf("seed: %+v", res)
	}
	h.eventually(3*time.Second, "anchor replicated", func() bool {
		return len(h.committedList(2, lists[2])) == 1
	})

	// Both sites concurrently insert after the same anchor.
	insert := func(i int, v int64) *Handle {
		return h.site(i).Submit(&Txn{Name: "ins", Execute: func(tx *Tx) error {
			tag, err := tx.ListTagAt(lists[i], 0)
			if err != nil {
				return err
			}
			_, err = tx.ListInsertAfter(lists[i], tag, wire.ChildDecl{Kind: KindInt, Value: int64(v)})
			return err
		}})
	}
	h1, h2 := insert(1, 1), insert(2, 2)
	if r := h1.Wait(); !r.Committed {
		t.Fatalf("site 1 insert: %+v", r)
	}
	if r := h2.Wait(); !r.Committed {
		t.Fatalf("site 2 insert: %+v", r)
	}

	h.eventually(5*time.Second, "lists converged", func() bool {
		a := h.committedList(1, lists[1])
		b := h.committedList(2, lists[2])
		if len(a) != 3 || len(b) != 3 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return a[0] == int64(100)
	})
}

// TestListIndexInsertRaceConverges is the satellite regression test for
// index-based inserts under concurrent submitters: two sites inserting
// "at index 1" resolve the index against different local states, so
// element placement follows each site's view — but the replicas must
// still converge to one identical order. (For intent-preserving
// concurrent editing, anchor on an element with ListInsertAfter instead.)
func TestListIndexInsertRaceConverges(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: 5 * time.Millisecond})
	lists := h.joined(KindList, "L", nil, 1, 2)

	res := h.site(1).Submit(&Txn{Name: "seed", Execute: func(tx *Tx) error {
		if _, err := tx.ListInsert(lists[1], 0, wire.ChildDecl{Kind: KindInt, Value: int64(100)}); err != nil {
			return err
		}
		_, err := tx.ListInsert(lists[1], 1, wire.ChildDecl{Kind: KindInt, Value: int64(200)})
		return err
	}}).Wait()
	if !res.Committed {
		t.Fatalf("seed: %+v", res)
	}
	h.eventually(3*time.Second, "seed replicated", func() bool {
		return len(h.committedList(2, lists[2])) == 2
	})

	insertAt1 := func(i int, v int64) *Handle {
		return h.site(i).Submit(&Txn{Name: "ins", Execute: func(tx *Tx) error {
			_, err := tx.ListInsert(lists[i], 1, wire.ChildDecl{Kind: KindInt, Value: int64(v)})
			return err
		}})
	}
	h1, h2 := insertAt1(1, 1), insertAt1(2, 2)
	r1, r2 := h1.Wait(), h2.Wait()
	if !r1.Committed && r1.Err == nil {
		t.Fatalf("site 1 insert: %+v", r1)
	}
	if !r2.Committed && r2.Err == nil {
		t.Fatalf("site 2 insert: %+v", r2)
	}
	want := 2
	if r1.Committed {
		want++
	}
	if r2.Committed {
		want++
	}

	h.eventually(5*time.Second, "lists converged to one order", func() bool {
		a := h.committedList(1, lists[1])
		b := h.committedList(2, lists[2])
		if len(a) != want || len(b) != want {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	})
}

// committedList reads the committed list structure at site i.
func (h *harness) committedList(i int, ref ObjRef) []any {
	h.t.Helper()
	v, err := h.site(i).ReadCommitted(ref)
	if err != nil {
		h.t.Fatal(err)
	}
	out, _ := v.([]any)
	return out
}
