package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
	"time"

	"decaf/internal/ids"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

func TestCheckpointRestoreScalars(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	s := h.site(1)
	i1, _ := s.CreateObject(KindInt, "n", int64(0))
	s1, _ := s.CreateObject(KindString, "s", "initial")
	f1, _ := s.CreateObject(KindFloat, "f", 2.5)
	if res := s.Submit(&Txn{Execute: func(tx *Tx) error {
		if err := tx.Write(i1, int64(42)); err != nil {
			return err
		}
		return tx.Write(s1, "written")
	}}).Wait(); !res.Committed {
		t.Fatal("setup txn failed")
	}

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh site with the same ID on a new network.
	net2 := transport.NewNetwork(transport.Config{})
	defer net2.Close()
	ep, _ := net2.Endpoint(1)
	s2 := NewSite(ep, Options{})
	s2.Start()
	defer s2.Stop()
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	// Same IDs, same committed values.
	for _, tc := range []struct {
		ref  ObjRef
		want any
	}{{i1, int64(42)}, {s1, "written"}, {f1, 2.5}} {
		r2, ok := s2.Object(tc.ref.ID())
		if !ok {
			t.Fatalf("object %v missing after restore", tc.ref.ID())
		}
		v, _ := s2.ReadCommitted(r2)
		if v != tc.want {
			t.Fatalf("restored %v = %v, want %v", tc.ref.ID(), v, tc.want)
		}
	}

	// The restored site keeps working: new transactions commit.
	r2, _ := s2.Object(i1.ID())
	if res := s2.Submit(&Txn{Execute: func(tx *Tx) error {
		v, _ := tx.Read(r2)
		return tx.Write(r2, v.(int64)+1)
	}}).Wait(); !res.Committed {
		t.Fatalf("post-restore txn: %+v", res)
	}
	if v, _ := s2.ReadCommitted(r2); v != int64(43) {
		t.Fatalf("post-restore value = %v", v)
	}
}

func TestCheckpointRestoreComposites(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	s := h.site(1)
	lst, _ := s.CreateObject(KindList, "todo", nil)
	if res := s.Submit(&Txn{Execute: func(tx *Tx) error {
		if _, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: "a"}); err != nil {
			return err
		}
		item, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindTuple})
		if err != nil {
			return err
		}
		if _, err := tx.TupleSet(item, "k", wire.ChildDecl{Kind: KindInt, Value: int64(7)}); err != nil {
			return err
		}
		return nil
	}}).Wait(); !res.Committed {
		t.Fatal("setup failed")
	}
	want, _ := s.ReadCommitted(lst)

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	net2 := transport.NewNetwork(transport.Config{})
	defer net2.Close()
	ep, _ := net2.Endpoint(1)
	s2 := NewSite(ep, Options{})
	s2.Start()
	defer s2.Stop()
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	r2, ok := s2.Object(lst.ID())
	if !ok {
		t.Fatal("list missing after restore")
	}
	got, _ := s2.ReadCommitted(r2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored list = %v, want %v", got, want)
	}
}

func TestRestoredCollaborationResumes(t *testing.T) {
	// Both members checkpoint a quiesced collaboration; a "cold restart"
	// restores both, and because object IDs and graphs persist, the
	// replica relationship resumes without a new join.
	net := transport.NewNetwork(transport.Config{Latency: time.Millisecond})
	ep1, _ := net.Endpoint(1)
	ep2, _ := net.Endpoint(2)
	s1 := NewSite(ep1, Options{})
	s2 := NewSite(ep2, Options{})
	s1.Start()
	s2.Start()

	r1, _ := s1.CreateObject(KindInt, "x", int64(0))
	r2, _ := s2.CreateObject(KindInt, "x", int64(0))
	if res := s2.JoinObject(r2, 1, r1.ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}
	if res := s1.Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(r1, int64(9)) }}).Wait(); !res.Committed {
		t.Fatal("write failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := s2.ReadCommitted(r2); v == int64(9) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var cp1, cp2 bytes.Buffer
	if err := s1.Checkpoint(&cp1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(&cp2); err != nil {
		t.Fatal(err)
	}
	s1.Stop()
	s2.Stop()
	net.Close()

	// Cold restart on a new network.
	net2 := transport.NewNetwork(transport.Config{Latency: time.Millisecond})
	defer net2.Close()
	ep1b, _ := net2.Endpoint(1)
	ep2b, _ := net2.Endpoint(2)
	s1b := NewSite(ep1b, Options{})
	s2b := NewSite(ep2b, Options{})
	s1b.Start()
	s2b.Start()
	defer s1b.Stop()
	defer s2b.Stop()
	if err := s1b.Restore(&cp1); err != nil {
		t.Fatal(err)
	}
	if err := s2b.Restore(&cp2); err != nil {
		t.Fatal(err)
	}

	r1b, ok := s1b.Object(r1.ID())
	if !ok {
		t.Fatal("r1 missing")
	}
	r2b, ok := s2b.Object(r2.ID())
	if !ok {
		t.Fatal("r2 missing")
	}
	sites, _ := s1b.ReplicaSites(r1b)
	if len(sites) != 2 {
		t.Fatalf("restored graph = %v, want 2 sites", sites)
	}

	// Replication works immediately after restore.
	if res := s2b.Submit(&Txn{Execute: func(tx *Tx) error {
		v, _ := tx.Read(r2b)
		return tx.Write(r2b, v.(int64)+1)
	}}).Wait(); !res.Committed {
		t.Fatalf("post-restore replicated txn: %+v", res)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := s1b.ReadCommitted(r1b); v == int64(10) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := s1b.ReadCommitted(r1b)
	t.Fatalf("post-restore replication failed: site 1 sees %v, want 10", v)
}

func TestRestoreRejectsWrongSite(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	var buf bytes.Buffer
	if err := h.site(1).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := h.site(2).Restore(&buf); err == nil {
		t.Fatal("restore into wrong site succeeded")
	}
}

func TestRestoreRejectsNonFreshSite(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	var buf bytes.Buffer
	if err := h.site(1).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// The site already has... nothing. Create one object, then restore
	// must fail.
	if _, err := h.site(1).CreateObject(KindInt, "x", int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := h.site(1).Restore(&buf); err == nil {
		t.Fatal("restore into non-fresh site succeeded")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	if err := h.site(1).Restore(bytes.NewBufferString("not a checkpoint")); err == nil {
		t.Fatal("garbage restore succeeded")
	}
}

func TestObjectsListing(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	a, _ := h.site(1).CreateObject(KindInt, "a", int64(0))
	b, _ := h.site(1).CreateObject(KindList, "b", nil)
	refs, err := h.site(1).Objects()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("Objects() = %d refs, want 2", len(refs))
	}
	if refs[0].ID() != a.ID() || refs[1].ID() != b.ID() {
		t.Fatalf("Objects() order: %v, %v", refs[0].ID(), refs[1].ID())
	}
}

// TestCheckpointDeterministic pins the maporder fix in Checkpoint:
// encoding iterates s.objects in ID order, so checkpointing the same
// state repeatedly yields byte-identical output. Before the fix the
// object section followed Go's randomized map order and the bytes
// differed between calls (with ~12 objects, the odds of two identical
// orders are below 1e-8).
func TestCheckpointDeterministic(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	s := h.site(1)
	for i := 0; i < 12; i++ {
		if _, err := s.CreateObject(KindInt, fmt.Sprintf("n%02d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lst, _ := s.CreateObject(KindList, "todo", nil)
	if res := s.Submit(&Txn{Execute: func(tx *Tx) error {
		_, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: "x"})
		return err
	}}).Wait(); !res.Committed {
		t.Fatal("setup failed")
	}

	var first bytes.Buffer
	if err := s.Checkpoint(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("checkpoint %d is not byte-identical to the first (nondeterministic encode order)", i+2)
		}
	}
}

// TestRestoreV1GobCheckpoint pins cross-version compatibility: a legacy
// version-1 gob checkpoint (written before the wire-codec migration)
// still loads into the current engine, and the version sniffing
// distinguishes the two formats on real streams.
func TestRestoreV1GobCheckpoint(t *testing.T) {
	v1 := siteCheckpoint{
		Version: checkpointVersionV1,
		Site:    1,
		NextSeq: 3,
		Clock:   vtime.VT{Time: 40, Site: 1},
		Objects: []objCheckpoint{
			{ID: ids.ObjectID{Site: 1, Seq: 1}, Kind: KindInt, Desc: "n",
				Value: int64(42), ValueVT: vtime.VT{Time: 7, Site: 1}},
			{ID: ids.ObjectID{Site: 1, Seq: 2}, Kind: KindTuple, Desc: "cfg",
				Children: []childCheckpoint{
					{Key: "name", InsertVT: vtime.VT{Time: 9, Site: 1},
						Kind: KindString, Value: "hello", ValueVT: vtime.VT{Time: 9, Site: 1}},
				}},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1); err != nil {
		t.Fatal(err)
	}
	if wire.IsCheckpoint(buf.Bytes()) {
		t.Fatal("gob v1 checkpoint misidentified as v2")
	}

	net := transport.NewNetwork(transport.Config{})
	defer net.Close()
	ep, _ := net.Endpoint(1)
	s := NewSite(ep, Options{})
	s.Start()
	defer s.Stop()
	if err := s.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	r, ok := s.Object(ids.ObjectID{Site: 1, Seq: 1})
	if !ok {
		t.Fatal("scalar missing after v1 restore")
	}
	if v, _ := s.ReadCommitted(r); v != int64(42) {
		t.Fatalf("restored scalar = %v, want 42", v)
	}
	tup, ok := s.Object(ids.ObjectID{Site: 1, Seq: 2})
	if !ok {
		t.Fatal("tuple missing after v1 restore")
	}
	got, _ := s.ReadCommitted(tup)
	if m, ok := got.(map[string]any); !ok || m["name"] != "hello" {
		t.Fatalf("restored tuple = %#v", got)
	}

	// Re-checkpointing the restored site writes the current format.
	var buf2 bytes.Buffer
	if err := s.Checkpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !wire.IsCheckpoint(buf2.Bytes()) {
		t.Fatal("re-checkpoint is not in the v2 format")
	}
}

// TestCheckpointRoundTripStable: checkpoint -> restore into a fresh
// same-ID site -> checkpoint again must reproduce the same object
// section. Restore rebuilds s.objects as a map, so this fails if either
// encode leaks map iteration order. Site-local header fields that
// legitimately move (the clock advances on restore) are normalized
// before comparing.
func TestCheckpointRoundTripStable(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	s := h.site(1)
	for i := 0; i < 12; i++ {
		if _, err := s.CreateObject(KindInt, fmt.Sprintf("m%02d", i), int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf1 bytes.Buffer
	if err := s.Checkpoint(&buf1); err != nil {
		t.Fatal(err)
	}
	raw1 := append([]byte(nil), buf1.Bytes()...)

	net2 := transport.NewNetwork(transport.Config{})
	defer net2.Close()
	ep, _ := net2.Endpoint(1)
	s2 := NewSite(ep, Options{})
	s2.Start()
	defer s2.Stop()
	if err := s2.Restore(&buf1); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := s2.Checkpoint(&buf2); err != nil {
		t.Fatal(err)
	}

	normalize := func(raw []byte) []byte {
		cp, err := wire.DecodeCheckpoint(raw)
		if err != nil {
			t.Fatal(err)
		}
		cp.Clock = vtime.VT{}
		cp.NextSeq = 0
		out, err := wire.EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(normalize(raw1), normalize(buf2.Bytes())) {
		t.Fatal("object section changed across checkpoint/restore round trip")
	}
}
