package engine

import (
	"errors"
	"fmt"
	"strconv"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// txnStatus is the lifecycle state of a transaction at a site.
type txnStatus int

const (
	// txnExecuting: user code is running at the originating site.
	txnExecuting txnStatus = iota + 1
	// txnWaiting: the originating site awaits confirmations / RC deps.
	txnWaiting
	// txnApplied: a remote site applied the updates; outcome unknown.
	txnApplied
	txnCommitted
	txnAborted
)

// Txn is a user transaction as seen by the engine: Execute runs atomically
// against model objects through the Tx context; OnAbort is invoked for
// programmed aborts (Execute returned an error or panicked), mirroring the
// paper's handleAbort() (§2.4).
type Txn struct {
	Name    string
	Execute func(tx *Tx) error
	OnAbort func(err error)
}

// Result is the final outcome of a submitted transaction.
type Result struct {
	Committed bool
	// Err is non-nil for programmed aborts (wrapping the user error) and
	// for transactions that exhausted their retry budget.
	Err error
	// Retries counts automatic re-executions due to conflicts.
	Retries int
	// VT is the virtual time of the (final) execution.
	VT vtime.VT
}

// Handle tracks a submitted transaction.
type Handle struct {
	applied chan struct{}
	done    chan Result
	// submittedWall is the Observer.NowNanos stamp taken at Submit (0
	// with timing disabled); commit latency is measured from it so the
	// histogram spans retries.
	submittedWall int64
}

func newHandle() *Handle {
	return &Handle{
		applied: make(chan struct{}),
		done:    make(chan Result, 1),
	}
}

// Applied is closed when the transaction's updates have been applied
// locally at the originating site (the moment optimistic views see them).
func (h *Handle) Applied() <-chan struct{} { return h.applied }

// Done delivers the final Result exactly once.
func (h *Handle) Done() <-chan Result { return h.done }

// Wait blocks until the final Result.
func (h *Handle) Wait() Result { return <-h.done }

func (h *Handle) markApplied() {
	select {
	case <-h.applied:
	default:
		close(h.applied)
	}
}

func (h *Handle) finish(r Result) {
	h.markApplied()
	select {
	case h.done <- r:
	default:
	}
}

// Errors reported through Result.Err.
var (
	// ErrAborted wraps the user error of a programmed abort.
	ErrAborted = errors.New("engine: transaction aborted")
	// ErrTooManyRetries reports an exhausted automatic retry budget.
	ErrTooManyRetries = errors.New("engine: transaction exceeded retry budget")
)

// readRec records one model-object read: the read time tR and graph time
// tG of paper §3.1.
type readRec struct {
	obj      *object
	readVT   vtime.VT // tR: VT at which the read value was written
	graphVT  vtime.VT // tG: VT at which the object's graph last changed
	absorbed bool     // the object was subsequently written; check rides the update
}

// writeRec records one model-object modification.
type writeRec struct {
	obj     *object
	readVT  vtime.VT // tR (equal to the txn VT for blind writes)
	graphVT vtime.VT
	ops     []wire.Op
	// targetGraph, when non-nil, overrides the propagation targets (a
	// graph update must reach the members of the graph as it was BEFORE
	// the update — e.g. a leave still informs the site being left).
	targetGraph *repgraph.Graph
	// pathOverride, when non-nil, fixes the addressing path captured at
	// write time (a promotion changes the object's replication root
	// mid-transaction, which would otherwise change the computed path).
	pathOverride *wire.Path
}

// appliedUpdate is one locally applied modification with its undo and
// (optional) commit action. A nil commit defaults to committing the
// object's value-history version at the transaction's VT.
type appliedUpdate struct {
	obj    *object
	undo   func()
	commit func()
}

// commitApplied finalizes every applied modification.
func (st *txnState) commitApplied() {
	for _, a := range st.applied {
		if a.commit != nil {
			a.commit()
			continue
		}
		a.obj.hist.Commit(st.vt)
	}
}

// txnState is the per-site implementation object of one transaction
// (paper §3: "transaction implementation objects are created at those
// sites").
type txnState struct {
	vt     vtime.VT
	origin vtime.SiteID
	status txnStatus

	// Originating-site state.
	txn          *Txn
	handle       *Handle
	reads        []*readRec
	writes       []*writeRec
	rcDeps       map[vtime.VT]bool
	waitConfirms map[vtime.SiteID]bool
	involved     map[vtime.SiteID]bool
	delegatedTo  vtime.SiteID
	retries      int
	denied       bool
	deniedReason string
	// extraPending counts additional completion predicates used by the
	// join protocol (paper §3.3) before the transaction may commit.
	extraPending int
	// earlyConfirms records confirmations that arrived before the join
	// reply told us to expect them (site -> verdict).
	earlyConfirms map[vtime.SiteID]bool
	// retryFn, when set, re-executes protocol-level transactions (joins)
	// after a concurrency-control abort, instead of the standard
	// Txn.Execute path.
	retryFn func(retries int)
	// parkOnAbort defers the retry until a graph repair commits (the
	// transaction depends on a failed primary site).
	parkOnAbort bool
	// hasGraphOp marks transactions carrying replication-graph updates;
	// their commit unparks deferred retries.
	hasGraphOp bool
	// graphObjs are the local objects whose graphs this transaction
	// changed (drives direct-child refresh after commit, §3.2.2).
	graphObjs []*object

	// State kept at every site that applied updates.
	applied []appliedUpdate
	// blockedRemaining counts this transaction's indirect updates still
	// blocked on unseen structural ops at this site; onUnblocked runs
	// when the count reaches zero (deferred primary validation).
	blockedRemaining int
	onUnblocked      func()
	// reservedObjs are objects at this site on which this transaction
	// holds primary-copy reservations (released on abort).
	reservedObjs []*object
	// appliedWall is the Observer.NowNanos stamp of the first remote
	// update application (0 with timing disabled); remote commit latency
	// is measured from it.
	appliedWall int64

	// sentMsgs retains the propagation messages sent per destination
	// while the transaction waits (WAL-attached sites only): an
	// anti-entropy session re-sends them so a transaction whose
	// confirmations were lost in a partition still reaches its §3
	// decision. Cleared once the transaction decides.
	sentMsgs map[vtime.SiteID][]wire.Message
}

// Tx is the execution context handed to Txn.Execute. Model-object
// accessors on the facade types funnel through it so reads and writes are
// recorded for concurrency control. A Tx is only valid during Execute.
type Tx struct {
	s  *Site
	st *txnState
	// err latches an internal error (e.g. structural misuse) that turns
	// into a programmed abort when Execute returns.
	err error
}

// VT returns the transaction's virtual time.
func (tx *Tx) VT() vtime.VT { return tx.st.vt }

// Site returns the originating site's identifier.
func (tx *Tx) Site() vtime.SiteID { return tx.s.id }

// fail latches an internal error.
func (tx *Tx) fail(err error) {
	if tx.err == nil {
		tx.err = err
	}
}

// findRead returns the read record for obj, if any.
func (tx *Tx) findRead(obj *object) *readRec {
	for _, r := range tx.st.reads {
		if r.obj == obj {
			return r
		}
	}
	return nil
}

// findWrite returns the write record for obj, if any.
func (tx *Tx) findWrite(obj *object) *writeRec {
	for _, w := range tx.st.writes {
		if w.obj == obj {
			return w
		}
	}
	return nil
}

// recordRead notes that the transaction read obj's current value,
// registering tR, tG, and any RC dependencies on uncommitted versions.
// It returns the version read.
func (tx *Tx) recordRead(obj *object) history.Version {
	cur, ok := obj.hist.Current()
	if !ok {
		cur = history.Version{VT: vtime.Zero, Value: defaultValue(obj.kind), Status: history.Committed}
	}
	if w := tx.findWrite(obj); w != nil {
		// Read-your-writes: no new read record, no RC dependency (the
		// version is ours).
		return cur
	}
	if r := tx.findRead(obj); r != nil {
		return cur
	}
	root := obj.replicationRoot()
	r := &readRec{obj: obj, readVT: cur.VT, graphVT: root.graphVT}
	tx.st.reads = append(tx.st.reads, r)
	if cur.Status == history.Pending && cur.VT != tx.st.vt {
		tx.st.rcDeps[cur.VT] = true
	}
	// RC guess on the replication graph value, if it is uncommitted.
	if gcur, ok := root.graphHist.Current(); ok && gcur.Status == history.Pending && gcur.VT != tx.st.vt {
		tx.st.rcDeps[gcur.VT] = true
	}
	// Path RC guesses (paper §3.2.1): transactions that created the path
	// components must commit.
	tx.recordPathDeps(obj)
	return cur
}

// recordPathDeps adds RC dependencies on the uncommitted structural
// transactions that embedded obj's ancestors.
func (tx *Tx) recordPathDeps(obj *object) {
	for cur := obj; cur.parent != nil; cur = cur.parent {
		parent := cur.parent
		var insertVT vtime.VT
		if cur.parentLink.IsKey {
			for i := range parent.entries {
				if parent.entries[i].child == cur {
					insertVT = parent.entries[i].insertVT
				}
			}
		} else {
			if _, le := parent.findChildByTag(cur.parentLink.Tag); le != nil {
				insertVT = le.insertVT
			}
		}
		if insertVT.IsZero() {
			continue
		}
		if v, ok := parent.hist.Get(insertVT); ok && v.Status == history.Pending && insertVT != tx.st.vt {
			tx.st.rcDeps[insertVT] = true
		}
	}
}

// ReadScalar returns obj's current value, recording the read.
func (tx *Tx) ReadScalar(obj *object) any {
	return tx.recordRead(obj).Value
}

// WriteScalar overwrites obj's value at the transaction's VT, applying the
// update locally at once (optimistic execution).
func (tx *Tx) WriteScalar(obj *object, value any) {
	vt := tx.st.vt
	if w := tx.findWrite(obj); w != nil {
		// Second write by the same transaction: replace in place.
		if !obj.hist.SetValue(vt, value) {
			tx.fail(fmt.Errorf("engine: lost own version of %s at %s", obj.id, vt))
			return
		}
		w.ops = []wire.Op{wire.OpSet{Value: value}}
		return
	}
	readVT := vt // blind write: tR = tT (paper §3.1)
	if r := tx.findRead(obj); r != nil {
		readVT = r.readVT
		r.absorbed = true // the RL check rides the update message
	}
	root := obj.replicationRoot()
	w := &writeRec{obj: obj, readVT: readVT, graphVT: root.graphVT, ops: []wire.Op{wire.OpSet{Value: value}}}
	tx.st.writes = append(tx.st.writes, w)
	if err := obj.hist.InsertRead(vt, value, history.Pending, readVT); err != nil {
		tx.fail(fmt.Errorf("engine: apply write: %w", err))
		return
	}
	tx.st.applied = append(tx.st.applied, appliedUpdate{
		obj:  obj,
		undo: func() { obj.hist.Abort(vt) },
	})
	tx.recordPathDeps(obj)
}

// AddScalar applies a commutative numeric increment to obj at the
// transaction's VT. Unlike WriteScalar, an add that reads nothing is
// order-independent: it becomes a merge version in the history and — when
// the whole transaction is commutative — commits on the fast path without
// the primary round-trip.
func (tx *Tx) AddScalar(obj *object, delta any) {
	vt := tx.st.vt
	if w := tx.findWrite(obj); w != nil {
		// Second op by the same transaction on obj: fold into one op.
		if len(w.ops) == 1 {
			switch prev := w.ops[0].(type) {
			case wire.OpAdd:
				combined := addDelta(prev.Delta, delta)
				w.ops = []wire.Op{wire.OpAdd{Delta: combined}}
				obj.hist.Abort(vt)
				if err := obj.hist.InsertMerge(vt, history.Pending, w.readVT, mergeAdd(combined)); err != nil {
					tx.fail(fmt.Errorf("engine: apply add: %w", err))
				}
				return
			case wire.OpSet:
				// Add over the transaction's own absolute write stays
				// absolute.
				nv := addDelta(prev.Value, delta)
				if !obj.hist.SetValue(vt, nv) {
					tx.fail(fmt.Errorf("engine: lost own version of %s at %s", obj.id, vt))
					return
				}
				w.ops = []wire.Op{wire.OpSet{Value: nv}}
				return
			}
		}
		tx.fail(fmt.Errorf("engine: Add after structural ops on %s", obj.id))
		return
	}
	readVT := vt // an add reads nothing: tR = tT
	if r := tx.findRead(obj); r != nil {
		readVT = r.readVT
		r.absorbed = true // the RL check rides the update message
	}
	root := obj.replicationRoot()
	w := &writeRec{obj: obj, readVT: readVT, graphVT: root.graphVT, ops: []wire.Op{wire.OpAdd{Delta: delta}}}
	tx.st.writes = append(tx.st.writes, w)
	if err := obj.hist.InsertMerge(vt, history.Pending, readVT, mergeAdd(delta)); err != nil {
		tx.fail(fmt.Errorf("engine: apply add: %w", err))
		return
	}
	tx.st.applied = append(tx.st.applied, appliedUpdate{
		obj:  obj,
		undo: func() { obj.hist.Abort(vt) },
	})
	tx.recordPathDeps(obj)
}

// Submit schedules txn for execution at this site and returns its handle.
func (s *Site) Submit(txn *Txn) *Handle {
	h := newHandle()
	h.submittedWall = s.obs.NowNanos()
	s.stats.Submitted.Add(1)
	s.doOrDrop(
		func() { s.execute(txn, h, 0) },
		func() { h.finish(Result{Err: ErrSiteStopped}) },
	)
	return h
}

// execute runs one (re-)execution attempt inside the event loop.
func (s *Site) execute(txn *Txn, h *Handle, retries int) {
	vt := s.clock.Next()
	st := &txnState{
		vt:           vt,
		origin:       s.id,
		status:       txnExecuting,
		txn:          txn,
		handle:       h,
		rcDeps:       map[vtime.VT]bool{},
		waitConfirms: map[vtime.SiteID]bool{},
		involved:     map[vtime.SiteID]bool{s.id: true},
		retries:      retries,
	}
	s.txns[vt] = st

	if s.obs.TraceEnabled() {
		if retries == 0 {
			s.trace(obs.EvSubmit, vt, 0, txn.Name)
		}
		s.trace(obs.EvExecute, vt, 0, "attempt "+strconv.Itoa(retries+1))
	}

	tx := &Tx{s: s, st: st}
	err := runUserExecute(txn, tx)
	if err == nil {
		err = tx.err
	}
	if err != nil {
		// Programmed abort: undo, no retry (paper §2.4).
		s.undoApplied(st)
		st.status = txnAborted
		delete(s.txns, vt)
		s.stats.ProgrammedAborts.Add(1)
		if s.obs.TraceEnabled() {
			s.trace(obs.EvAbort, vt, 0, "programmed: "+err.Error())
		}
		if txn.OnAbort != nil {
			abortErr := err
			s.notify(func() { txn.OnAbort(abortErr) })
		}
		h.finish(Result{Err: fmt.Errorf("%w: %w", ErrAborted, err), Retries: retries, VT: vt})
		return
	}
	s.finishExecution(st)
}

// runUserExecute invokes user code, converting panics into errors so a
// faulty transaction cannot crash the site (paper §2.4: "Any uncaught
// exceptions are turned into transaction aborts").
func runUserExecute(txn *Txn, tx *Tx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: panic in transaction %q: %v", txn.Name, r)
		}
	}()
	return txn.Execute(tx)
}

// finishExecution propagates a locally executed transaction: optimistic
// view notifications, update/check messages, local primary checks, and —
// when nothing remote is involved — immediate commit.
func (s *Site) finishExecution(st *txnState) {
	st.status = txnWaiting
	st.handle.markApplied()

	// Optimistic views see the update as soon as it executes locally
	// (paper §4.1).
	s.scheduleOptimistic(st.appliedObjects())

	// A transaction made purely of commutative ops commits here and now —
	// no guess, no reservation, no confirm round-trip.
	if s.tryFastPath(st) {
		return
	}

	s.propagate(st)

	if st.denied {
		s.abortTxn(st, st.deniedReason)
		return
	}
	s.registerRCDeps(st)
	s.checkTxnComplete(st)
}

// appliedObjects returns the distinct objects this transaction modified
// locally.
func (st *txnState) appliedObjects() []*object {
	var out []*object
	seen := map[*object]bool{}
	for _, a := range st.applied {
		if !seen[a.obj] {
			seen[a.obj] = true
			out = append(out, a.obj)
		}
	}
	return out
}

// perSiteMsg accumulates the single message sent to one destination site
// for this transaction.
type perSiteMsg struct {
	updates      []wire.Update
	checks       []wire.ReadCheck
	needsConfirm bool
}

// propagate builds and sends the per-site messages for st and performs
// the primary-copy checks that fall to this site.
func (s *Site) propagate(st *txnState) {
	out := map[vtime.SiteID]*perSiteMsg{}
	sitemsg := func(site vtime.SiteID) *perSiteMsg {
		m, ok := out[site]
		if !ok {
			m = &perSiteMsg{}
			out[site] = m
		}
		return m
	}

	for _, w := range st.writes {
		root := w.obj.replicationRoot()
		g := root.graph
		if w.targetGraph != nil {
			g = w.targetGraph
		}
		path := w.obj.pathFromRoot()
		if w.pathOverride != nil {
			path = *w.pathOverride
		}
		primaryNode, hasPrimary := g.Primary()
		var primarySite vtime.SiteID
		if hasPrimary {
			primarySite, _ = g.SiteOf(primaryNode)
		} else {
			primarySite = s.id
		}
		for _, node := range g.Nodes() {
			nodeSite, _ := g.SiteOf(node)
			if node == root.id {
				continue // applied during execution
			}
			if nodeSite == s.id {
				// A sibling replica at this very site: apply directly.
				s.applySiblingWrite(st, node, path, w)
				continue
			}
			m := sitemsg(nodeSite)
			for _, op := range w.ops {
				m.updates = append(m.updates, wire.Update{
					Target:  node,
					Path:    path,
					ReadVT:  w.readVT,
					GraphVT: w.graphVT,
					Op:      op,
				})
			}
			if nodeSite == primarySite {
				m.needsConfirm = true
			}
		}
		if primarySite == s.id {
			// This site hosts the primary copy: validate RL and NC here.
			if ok, reason := s.checkWriteAtPrimary(root, primaryNode, path, w, st.vt); !ok {
				st.denied = true
				st.deniedReason = reason
				s.trace(obs.EvPrimaryCheck, st.vt, 0, reason)
			} else {
				s.trace(obs.EvPrimaryCheck, st.vt, 0, "ok")
				s.rememberReservation(st, root, primaryNode, path)
			}
		} else if s.failed[primarySite] {
			// The primary site failed and its graph is not yet repaired:
			// abort now, retry after the repair commits (paper §3.4).
			st.denied = true
			st.deniedReason = fmt.Sprintf("primary site %s failed", primarySite)
			st.parkOnAbort = true
		}
	}

	for _, r := range st.reads {
		if r.absorbed {
			continue
		}
		root := r.obj.replicationRoot()
		g := root.graph
		if g.NumNodes() <= 1 {
			continue // unreplicated object: nothing to confirm
		}
		path := r.obj.pathFromRoot()
		primaryNode, _ := g.Primary()
		primarySite, _ := g.SiteOf(primaryNode)
		if primarySite == s.id {
			if ok, reason := s.checkReadAtPrimary(root, primaryNode, path, r, st.vt); !ok {
				st.denied = true
				st.deniedReason = reason
				s.trace(obs.EvPrimaryCheck, st.vt, 0, reason)
			} else {
				s.trace(obs.EvPrimaryCheck, st.vt, 0, "ok")
				s.rememberReservation(st, root, primaryNode, path)
			}
			continue
		}
		m := sitemsg(primarySite)
		m.checks = append(m.checks, wire.ReadCheck{
			Target:  primaryNode,
			Path:    path,
			ReadVT:  r.readVT,
			GraphVT: r.graphVT,
		})
		m.needsConfirm = true
	}

	// Record involvement and who must confirm. Fan-out below iterates in
	// sorted site order so the emitted message schedule is a function of
	// state, not map iteration order (see order.go).
	order := sortedSites(out)
	for _, site := range order {
		st.involved[site] = true
		if out[site].needsConfirm {
			st.waitConfirms[site] = true
		}
	}

	// Delegated commit (paper §3.1): exactly one remote primary site, no
	// RC guesses, and that site receives updates.
	var delegate vtime.SiteID
	if !s.opts.DisableDelegation && len(st.waitConfirms) == 1 && len(st.rcDeps) == 0 && st.extraPending == 0 {
		for site := range st.waitConfirms {
			if m := out[site]; len(m.updates) > 0 {
				delegate = site
			}
		}
	}

	record := func(site vtime.SiteID, msg wire.Message) {
		if s.wal == nil {
			return
		}
		if st.sentMsgs == nil {
			st.sentMsgs = map[vtime.SiteID][]wire.Message{}
		}
		st.sentMsgs[site] = append(st.sentMsgs[site], msg)
	}
	for _, site := range order {
		m := out[site]
		if len(m.updates) > 0 {
			msg := wire.Write{
				TxnVT:        st.vt,
				Origin:       s.id,
				Updates:      m.updates,
				Checks:       m.checks,
				NeedsConfirm: m.needsConfirm,
			}
			if site == delegate {
				var others []vtime.SiteID
				for _, inv := range sortedSites(st.involved) {
					if inv != site {
						others = append(others, inv)
					}
				}
				msg.Delegate = &wire.Delegation{Sites: others}
				st.delegatedTo = site
				delete(st.waitConfirms, site)
			}
			if s.obs.TraceEnabled() {
				detail := ""
				switch {
				case site == delegate:
					detail = "delegate"
				case m.needsConfirm:
					detail = "confirm"
				}
				s.trace(obs.EvPropagate, st.vt, site, detail)
			}
			record(site, msg)
			s.send(site, msg)
		} else if len(m.checks) > 0 {
			s.trace(obs.EvPropagate, st.vt, site, "confirm")
			cr := wire.ConfirmRead{TxnVT: st.vt, Origin: s.id, Checks: m.checks}
			record(site, cr)
			s.send(site, cr)
		}
	}
}

// applySiblingWrite applies a write to another replica hosted at this same
// site (two joined objects living in one application).
func (s *Site) applySiblingWrite(st *txnState, node ids.ObjectID, path wire.Path, w *writeRec) {
	target, ok := s.objects[node]
	if !ok {
		s.log.Warn("sibling replica missing", "node", node.String())
		return
	}
	for _, op := range w.ops {
		s.applyOp(st, target, path, op, history.Pending)
	}
}

// rememberReservation records that st holds reservations on the resolved
// primary object so an abort can release them.
func (s *Site) rememberReservation(st *txnState, root *object, primaryNode ids.ObjectID, path wire.Path) {
	if obj := s.resolveCheckTarget(primaryNode, path); obj != nil {
		st.reservedObjs = append(st.reservedObjs, obj)
		if s.obs.TraceEnabled() {
			s.trace(obs.EvReserve, st.vt, 0, obj.id.String())
		}
	}
}

// resolveCheckTarget resolves the object a primary-copy check refers to:
// the primary node itself, or the child at path below it.
func (s *Site) resolveCheckTarget(node ids.ObjectID, path wire.Path) *object {
	o, ok := s.objects[node]
	if !ok {
		return nil
	}
	if len(path) == 0 {
		return o
	}
	child, _, _ := o.resolvePath(path)
	return child
}

// checkWriteAtPrimary performs the RL and NC guess checks for a write at
// this site's primary copy, reserving the intervals on success.
func (s *Site) checkWriteAtPrimary(root *object, primaryNode ids.ObjectID, path wire.Path, w *writeRec, vt vtime.VT) (bool, string) {
	primaryRoot, ok := s.objects[primaryNode]
	if !ok {
		return false, fmt.Sprintf("primary node %s unknown at %s", primaryNode, s.id)
	}
	if len(w.ops) == 1 {
		if _, isGraph := w.ops[0].(wire.OpGraph); isGraph {
			// Graph updates validate against graph history and graph
			// reservations only.
			groot := primaryRoot.replicationRoot()
			iv := vtime.Interval{Lo: w.graphVT, Hi: vt}
			if groot.graphHist.HasVersionIn(iv, vt) {
				return false, fmt.Sprintf("RL: graph change in %s for %s", iv, groot.id)
			}
			if groot.graphRes.Conflicts(vt, vt) {
				return false, fmt.Sprintf("NC: graph reservation conflict at %s on %s", vt, groot.id)
			}
			groot.graphRes.Reserve(iv, vt)
			return true, ""
		}
	}
	target := primaryRoot
	if len(path) > 0 {
		child, removed, blocked := primaryRoot.resolvePath(path)
		if removed {
			return false, fmt.Sprintf("path %s removed at primary", path)
		}
		if blocked || child == nil {
			// The structural op is in this same transaction (write to a
			// freshly embedded child at the origin): the target is the
			// local object itself when origin == primary, otherwise the
			// message path covers it. Fall back to the write's object.
			target = w.obj
		} else {
			target = child
		}
	}
	return s.primaryCheck(target, primaryRoot, w.readVT, w.graphVT, vt, true, false)
}

// checkReadAtPrimary performs the RL guess check for a read.
func (s *Site) checkReadAtPrimary(root *object, primaryNode ids.ObjectID, path wire.Path, r *readRec, vt vtime.VT) (bool, string) {
	primaryRoot, ok := s.objects[primaryNode]
	if !ok {
		return false, fmt.Sprintf("primary node %s unknown at %s", primaryNode, s.id)
	}
	target := primaryRoot
	if len(path) > 0 {
		child, removed, blocked := primaryRoot.resolvePath(path)
		if removed {
			return false, fmt.Sprintf("path %s removed at primary", path)
		}
		if blocked || child == nil {
			return false, fmt.Sprintf("path %s not yet present at primary", path)
		}
		target = child
	}
	return s.primaryCheck(target, primaryRoot, r.readVT, r.graphVT, vt, false, false)
}

// primaryCheck is the core primary-copy validation (paper §3.1):
//
//   - RL: no version other than the transaction's own exists in (tR, tT]
//     (for committedOnly checks: no committed version in (tR, tT), and a
//     pending version is a transient denial);
//   - graph RL: no graph change in (tG, tT];
//   - NC (writes only): no other transaction reserved an interval
//     containing tT;
//   - on success both intervals are reserved write-free.
//
// The boolean result is the verdict; the string carries the denial reason
// ("transient:" prefix marks transient denials).
func (s *Site) primaryCheck(target, graphHolder *object, readVT, graphVT, vt vtime.VT, isWrite, committedOnly bool) (bool, string) {
	return s.primaryCheckOpts(target, graphHolder, readVT, graphVT, vt, isWrite, committedOnly, false)
}

// primaryCheckOpts is primaryCheck with reservation control (noReserve:
// answer the check without reserving — optimistic view snapshots).
func (s *Site) primaryCheckOpts(target, graphHolder *object, readVT, graphVT, vt vtime.VT, isWrite, committedOnly, noReserve bool) (bool, string) {
	valIv := vtime.Interval{Lo: readVT, Hi: vt}
	if committedOnly {
		if target.hist.HasCommittedIn(valIv, vt) {
			return false, fmt.Sprintf("RL: committed update in %s for %s", valIv, target.id)
		}
		if target.hist.HasVersionIn(valIv, vt) {
			return false, fmt.Sprintf("transient: pending update in %s for %s", valIv, target.id)
		}
	} else if target.hist.HasVersionIn(valIv, vt) {
		return false, fmt.Sprintf("RL: update in %s for %s", valIv, target.id)
	}

	groot := graphHolder.replicationRoot()
	graphIv := vtime.Interval{Lo: graphVT, Hi: vt}
	if groot.graphHist.HasVersionIn(graphIv, vt) {
		return false, fmt.Sprintf("RL: graph change in %s for %s", graphIv, groot.id)
	}
	if isWrite {
		if target.res.Conflicts(vt, vt) {
			return false, fmt.Sprintf("NC: write at %s conflicts with reservation on %s", vt, target.id)
		}
		// Graph reservations are NOT checked here: they assert the
		// interval free of GRAPH updates, which a value write does not
		// violate. Graph updates have their own NC check in the OpGraph
		// validation paths.
	}

	if !noReserve {
		target.res.Reserve(valIv, vt)
		groot.graphRes.Reserve(graphIv, vt)
	}
	return true, ""
}

// registerRCDeps wires the transaction's RC guesses to this site's
// outcome notifications.
func (s *Site) registerRCDeps(st *txnState) {
	for _, dep := range sortedVTs(st.rcDeps) {
		dep := dep
		if known, ok := s.outcomes[dep]; ok {
			if known {
				delete(st.rcDeps, dep)
			} else {
				st.denied = true
				st.deniedReason = fmt.Sprintf("RC: read value of aborted txn %s", dep)
			}
			continue
		}
		s.rcWaiters[dep] = append(s.rcWaiters[dep], func(committed bool) {
			if st.status != txnWaiting {
				return
			}
			if committed {
				delete(st.rcDeps, dep)
				s.checkTxnComplete(st)
			} else {
				s.abortTxn(st, fmt.Sprintf("RC: txn %s aborted", dep))
			}
		})
	}
	if st.denied {
		s.abortTxn(st, st.deniedReason)
	}
}

// checkTxnComplete commits the transaction once every guess is confirmed.
func (s *Site) checkTxnComplete(st *txnState) {
	if st.status != txnWaiting || st.denied {
		return
	}
	if st.delegatedTo != 0 {
		return // the delegate decides
	}
	if len(st.waitConfirms) > 0 || len(st.rcDeps) > 0 || st.extraPending > 0 {
		return
	}
	s.commitTxn(st)
}

// commitTxn finalizes a transaction at its originating site and broadcasts
// the summary COMMIT.
func (s *Site) commitTxn(st *txnState) {
	st.status = txnCommitted
	s.outcomes[st.vt] = true
	st.commitApplied()
	s.walLocalCommit(st, true)
	st.sentMsgs = nil
	for _, site := range sortedSites(st.involved) {
		if site != s.id {
			s.send(site, wire.Outcome{TxnVT: st.vt, Committed: true})
		}
	}
	s.resolveRC(st.vt, true)
	s.onLocalCommit(st.appliedObjects(), st.vt)
	s.stats.Commits.Add(1)
	s.trace(obs.EvCommit, st.vt, 0, "")
	s.stats.CommitLatencyVT.Observe(float64(s.clock.Now().Time - st.vt.Time))
	if st.handle != nil {
		s.obs.ObserveSince(s.stats.CommitLatency, st.handle.submittedWall)
	}
	if st.hasGraphOp {
		s.unparkRetries()
		s.afterGraphCommit(st)
	}
	if st.handle != nil {
		st.handle.finish(Result{Committed: true, Retries: st.retries, VT: st.vt})
	}
}

// afterGraphCommit refreshes direct-propagation children of composites
// whose replica sets just changed (paper §3.2.2: "The parent node
// notifies the collaborating embedded node of all changes to its replica
// graph").
func (s *Site) afterGraphCommit(st *txnState) {
	for _, o := range st.graphObjs {
		if o.isComposite() {
			s.refreshDirectChildren(o)
		}
	}
}

// abortTxn undoes a transaction at its originating site, broadcasts the
// summary ABORT, and schedules automatic re-execution (paper §2.4).
func (s *Site) abortTxn(st *txnState, reason string) {
	if st.status == txnAborted || st.status == txnCommitted {
		return
	}
	s.log.Debug("abort", "txn", st.vt.String(), "reason", reason)
	st.status = txnAborted
	s.outcomes[st.vt] = false
	s.walLocalAbort(st)
	st.sentMsgs = nil
	s.undoApplied(st)
	s.releaseReservations(st)
	for _, site := range sortedSites(st.involved) {
		if site != s.id {
			s.send(site, wire.Outcome{TxnVT: st.vt, Committed: false})
		}
	}
	s.resolveRC(st.vt, false)
	s.onLocalAbort(st.appliedObjects())
	s.stats.ConflictAborts.Add(1)
	s.trace(obs.EvAbort, st.vt, 0, reason)

	// Automatic re-execution at the originating site.
	if st.retryFn != nil {
		if st.retries+1 > s.opts.MaxRetries {
			if st.handle != nil {
				st.handle.finish(Result{Err: fmt.Errorf("%w (%d attempts)", ErrTooManyRetries, st.retries+1), Retries: st.retries, VT: st.vt})
			}
			return
		}
		s.stats.Retries.Add(1)
		s.trace(obs.EvReExecute, st.vt, 0, "")
		retry, attempts, rh := st.retryFn, st.retries+1, st.handle
		s.doOrDrop(
			func() { retry(attempts) },
			func() {
				if rh != nil {
					rh.finish(Result{Err: ErrSiteStopped})
				}
			},
		)
		return
	}
	if st.txn == nil {
		// Protocol-level transactions without a retry path surface the
		// failure to the caller.
		if st.handle != nil {
			st.handle.finish(Result{Err: fmt.Errorf("%w: %s", ErrAborted, reason), Retries: st.retries, VT: st.vt})
		}
		return
	}
	if st.handle == nil {
		return
	}
	if st.retries+1 > s.opts.MaxRetries {
		st.handle.finish(Result{Err: fmt.Errorf("%w (%d attempts)", ErrTooManyRetries, st.retries+1), Retries: st.retries, VT: st.vt})
		return
	}
	if st.parkOnAbort {
		// The transaction depends on a failed primary site: defer the
		// retry until the graph repair commits (paper §3.4: "it is
		// retried later after the graph update has committed").
		s.parked = append(s.parked, parkedRetry{txn: st.txn, handle: st.handle, retries: st.retries + 1})
		s.stats.ParkedRetries.Set(int64(len(s.parked)))
		return
	}
	s.stats.Retries.Add(1)
	s.trace(obs.EvReExecute, st.vt, 0, "")
	txn, h, retries := st.txn, st.handle, st.retries+1
	resubmit := func() {
		s.doOrDrop(
			func() { s.execute(txn, h, retries) },
			func() { h.finish(Result{Err: ErrSiteStopped}) },
		)
	}
	if d := s.opts.RetryDelay; d > 0 {
		// Through the injectable scheduler, never a raw timer: under the
		// deterministic simulation the retry delay is a virtual-clock
		// event like any message delivery, so retry timing is part of
		// the explored, replayable schedule.
		s.opts.Scheduler.AfterFunc(d, resubmit)
	} else {
		resubmit()
	}
}

// undoApplied rolls back locally applied updates in reverse order.
func (s *Site) undoApplied(st *txnState) {
	for i := len(st.applied) - 1; i >= 0; i-- {
		st.applied[i].undo()
	}
	st.applied = nil
}

// releaseReservations frees primary-copy reservations held by st at this
// site.
func (s *Site) releaseReservations(st *txnState) {
	for _, obj := range st.reservedObjs {
		obj.res.Release(st.vt)
		obj.replicationRoot().graphRes.Release(st.vt)
	}
	st.reservedObjs = nil
}

// resolveRC fires the RC continuations waiting on vt's outcome.
func (s *Site) resolveRC(vt vtime.VT, committed bool) {
	waiters := s.rcWaiters[vt]
	delete(s.rcWaiters, vt)
	for _, w := range waiters {
		w(committed)
	}
}
