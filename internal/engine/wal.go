package engine

import (
	"fmt"
	"io"

	"decaf/internal/ids"
	"decaf/internal/vtime"
	"decaf/internal/wal"
	"decaf/internal/wire"
)

// Durable update log and anti-entropy sync (DESIGN.md §13).
//
// When Options.WAL is set, the site appends every protocol message that
// can change committed state — received Writes and FastWrites, received
// Outcomes, and its own local commit/abort decisions — to the write-ahead
// log before the event-loop batch ends. Checkpoint() writes a covering
// RecordMark; Recover() replays the log tail over the newest checkpoint;
// the SyncRequest/SyncUpdates exchange ships missing records to a
// reconnecting peer.
//
// Concurrency contract: every function in this file that touches s.wal
// runs on the event loop (the WAL's single-writer contract) and never
// under a lock — file I/O under a mutex is exactly what the lockedsend
// analyzer rejects.

// walAppendMsg appends one wire-encoded message to the log, stamped with
// the transaction VT so floor queries need not decode payloads. Append
// failures degrade durability, not availability: they are counted and
// logged, and the site keeps running.
func (s *Site) walAppendMsg(vt vtime.VT, msg wire.Message) {
	if s.wal == nil {
		return
	}
	b, err := wire.EncodeMessage(msg)
	if err != nil {
		s.stats.WALAppendErrors.Inc()
		s.log.Warn("wal encode failed", "txn", vt.String(), "err", err)
		return
	}
	if err := s.wal.Append(wal.Record{Kind: wal.RecordMessage, Origin: vt.Site, Time: vt.Time, Payload: b}); err != nil {
		s.stats.WALAppendErrors.Inc()
		s.log.Warn("wal append failed", "txn", vt.String(), "err", err)
	}
}

// walLogWrite logs a received Write before it is staged or applied.
func (s *Site) walLogWrite(m wire.Write) {
	if s.wal == nil {
		return
	}
	s.walAppendMsg(m.TxnVT, m)
}

// walLogFastWrite logs a received FastWrite. The caller has already run
// the duplicate guard, so a replayed log never carries the same
// (non-idempotent) FastWrite twice.
func (s *Site) walLogFastWrite(m wire.FastWrite) {
	if s.wal == nil {
		return
	}
	s.walAppendMsg(m.TxnVT, m)
}

// walLogOutcome logs a received summary outcome, skipping exact
// duplicates of an already-recorded decision.
func (s *Site) walLogOutcome(m wire.Outcome) {
	if s.wal == nil {
		return
	}
	if known, ok := s.outcomes[m.TxnVT]; ok && known == m.Committed {
		return
	}
	s.walAppendMsg(m.TxnVT, m)
}

// walLogRepair logs a decided graph repair as a RepairLearn record. On
// replay the record restores the repaired graphs and marks the decided
// Commit set, so a recovered site never re-litigates a repair its
// pre-crash incarnation already applied.
func (s *Site) walLogRepair(v wire.RepairValue) {
	if s.wal == nil {
		return
	}
	s.walAppendMsg(v.GraphVT, wire.RepairLearn{FailedSite: v.FailedSite, From: s.id, Value: v})
}

// walLocalCommit logs a locally originated commit: the Outcome record
// and a synthesized Write carrying this site's own updates (they never
// passed through handleMessage, so nothing else logs them). logOutcome
// is false when the decision arrived on the wire (delegated commit) and
// was therefore already logged by walLogOutcome.
func (s *Site) walLocalCommit(st *txnState, logOutcome bool) {
	if s.wal == nil || st.origin != s.id {
		return
	}
	if logOutcome {
		s.walAppendMsg(st.vt, wire.Outcome{TxnVT: st.vt, Committed: true})
	}
	var updates []wire.Update
	for _, w := range st.writes {
		root := w.obj.replicationRoot()
		path := w.obj.pathFromRoot()
		if w.pathOverride != nil {
			path = *w.pathOverride
		}
		for _, op := range w.ops {
			updates = append(updates, wire.Update{
				Target:  root.id,
				Path:    path,
				ReadVT:  w.readVT,
				GraphVT: w.graphVT,
				Op:      op,
			})
		}
	}
	if len(updates) > 0 {
		s.walAppendMsg(st.vt, wire.Write{TxnVT: st.vt, Origin: s.id, Updates: updates})
	}
	s.bumpSelfFloor(st.vt.Time)
}

// walLocalFastWrite logs a local fast-path commit as a synthesized
// FastWrite targeting this site's own replicas.
func (s *Site) walLocalFastWrite(st *txnState) {
	if s.wal == nil || st.origin != s.id {
		return
	}
	var updates []wire.Update
	for _, w := range st.writes {
		root := w.obj.replicationRoot()
		path := w.obj.pathFromRoot()
		for _, op := range w.ops {
			updates = append(updates, wire.Update{
				Target:  root.id,
				Path:    path,
				ReadVT:  w.readVT,
				GraphVT: w.graphVT,
				Op:      op,
			})
		}
	}
	if len(updates) > 0 {
		s.walAppendMsg(st.vt, wire.FastWrite{TxnVT: st.vt, Origin: s.id, Updates: updates})
	}
	s.bumpSelfFloor(st.vt.Time)
}

// walLocalAbort logs a locally decided abort so anti-entropy can ship
// the decision to peers that applied the optimistic updates before the
// partition.
func (s *Site) walLocalAbort(st *txnState) {
	if s.wal == nil || st.origin != s.id {
		return
	}
	s.walAppendMsg(st.vt, wire.Outcome{TxnVT: st.vt, Committed: false})
	s.bumpSelfFloor(st.vt.Time)
}

// noteOwnDecided records an own-origin decision time observed during
// log replay. Floors are per-origin time lines — the origin is fixed,
// so the plain time suffices and no VT tie-break is involved.
func (s *Site) noteOwnDecided(vt vtime.VT) {
	if vt.Site != s.id {
		return
	}
	t := vt.Time
	if t > s.maxOwnDecided {
		s.maxOwnDecided = t
	}
}

// bumpSelfFloor advances the own-origin sync floor after a decision at
// time t. The floor is the highest time such that every own transaction
// at or below it is decided — an undecided transaction below a later
// commit holds the floor down until it too decides (its outcome record
// must still be shippable to peers that adopted our floor).
func (s *Site) bumpSelfFloor(t uint64) {
	if t > s.maxOwnDecided {
		s.maxOwnDecided = t
	}
	cand := s.maxOwnDecided
	// Pure min-reduction: iteration order cannot affect the result.
	for vt, st := range s.txns {
		if st.origin != s.id {
			continue
		}
		if st.status != txnExecuting && st.status != txnWaiting {
			continue
		}
		if vt.Time-1 < cand {
			cand = vt.Time - 1
		}
	}
	if cand > s.syncFloors[s.id] {
		s.syncFloors[s.id] = cand
	}
}

// floorList snapshots the sync floors in deterministic (site) order.
func (s *Site) floorList() []wire.SyncFloor {
	out := make([]wire.SyncFloor, 0, len(s.syncFloors))
	for _, site := range sortedSites(s.syncFloors) {
		out = append(out, wire.SyncFloor{Site: site, Time: s.syncFloors[site]})
	}
	return out
}

// ---------------------------------------------------------------------------
// Crash recovery.
// ---------------------------------------------------------------------------

// Recover restores this (fresh, same-ID, WAL-attached) site from a
// checkpoint plus the write-ahead log: the checkpoint is loaded, then
// every logged record after the checkpoint's covering marker is
// replayed. Writes whose outcome the log records as committed re-apply
// as committed; writes still undecided at the crash are skipped — their
// fate is learned from peers through the ordinary §3 confirmation or a
// later anti-entropy session, never guessed locally. r may be nil when
// no checkpoint was ever taken (the whole log replays over an empty
// site).
func (s *Site) Recover(r io.Reader) error {
	if s.wal == nil {
		return fmt.Errorf("engine: Recover requires Options.WAL")
	}
	var cp wire.Checkpoint
	haveCP := false
	if r != nil {
		data, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("engine: read checkpoint: %w", err)
		}
		if len(data) > 0 {
			cp, err = decodeAnyCheckpoint(data)
			if err != nil {
				return err
			}
			if cp.Site != s.id {
				return fmt.Errorf("engine: checkpoint is for site %s, this site is %s", cp.Site, s.id)
			}
			haveCP = true
		}
	}
	var recErr error
	err := s.call(func() {
		if haveCP {
			if recErr = s.restoreCheckpointState(cp); recErr != nil {
				return
			}
		}
		recErr = s.replayWAL(cp.Seq)
	})
	if err != nil {
		return err
	}
	return recErr
}

// replayWAL replays the log over the restored checkpoint state, inside
// the event loop. Pass 1 collects every recorded outcome (last wins) and
// advances the Lamport clock past every logged VT; pass 2 re-applies the
// records after the checkpoint's marker.
func (s *Site) replayWAL(cpSeq uint64) error {
	// Pass 1: outcomes and clock. FastWrites are commits by construction.
	err := s.wal.Replay(func(rec wal.Record) error {
		if rec.Kind != wal.RecordMessage {
			return nil
		}
		s.clock.Observe(vtime.VT{Time: rec.Time, Site: rec.Origin})
		msg, _, err := wire.DecodeMessage(rec.Payload)
		if err != nil {
			return fmt.Errorf("engine: wal record undecodable: %w", err)
		}
		switch m := msg.(type) {
		case wire.Outcome:
			s.outcomes[m.TxnVT] = m.Committed
			s.noteOwnDecided(m.TxnVT)
		case wire.FastWrite:
			s.outcomes[m.TxnVT] = true
			s.noteOwnDecided(m.TxnVT)
		case wire.RepairLearn:
			// A decided repair commits exactly its Commit set; the abort
			// decisions for the rest were logged as explicit Outcomes.
			for _, vt := range m.Value.Commit {
				s.outcomes[vt] = true
				s.noteOwnDecided(vt)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Pass 2: re-apply records after the checkpoint marker.
	started := cpSeq == 0
	err = s.wal.Replay(func(rec wal.Record) error {
		if rec.Kind == wal.RecordMark {
			seq, ok := wal.MarkSeq(rec)
			if ok && seq == cpSeq {
				started = true
			}
			return nil
		}
		if !started || rec.Kind != wal.RecordMessage {
			return nil
		}
		msg, _, err := wire.DecodeMessage(rec.Payload)
		if err != nil {
			return fmt.Errorf("engine: wal record undecodable: %w", err)
		}
		switch m := msg.(type) {
		case wire.Write:
			committed, decided := s.outcomes[m.TxnVT]
			if !decided || !committed {
				// Undecided at the crash (or aborted): do not re-apply.
				// Undecided updates are recovered from peers, not from a
				// log that cannot know their outcome.
				return nil
			}
			// Replay with the decision forced: the primary round-trip
			// already happened in the pre-crash run.
			m.NeedsConfirm = false
			m.Delegate = nil
			m.Checks = nil
			s.handleWrite(m.Origin, m)
		case wire.FastWrite:
			s.handleFastWrite(m.Origin, m)
		case wire.RepairLearn:
			// Re-install the repaired graphs at the decided common VT and
			// remember the decision, exactly as the live protocol did.
			s.clock.Observe(m.Value.GraphVT)
			s.installRepairedGraphs(m.Value)
			s.repairDecided[m.Value.FailedSite] = m.Value
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.checkpointSeq = s.wal.LastMarkSeq()
	s.bumpSelfFloor(s.maxOwnDecided)
	return nil
}

// ---------------------------------------------------------------------------
// Anti-entropy sync sessions.
// ---------------------------------------------------------------------------

// SyncWith opens a pairwise anti-entropy session with peer (DESIGN.md
// §13): the peer ships every logged update above this site's version
// floors, then (on the reverse leg) this site ships what the peer is
// missing. The engine also starts a session automatically when the
// transport reports a peer recovered.
func (s *Site) SyncWith(peer vtime.SiteID) error {
	return s.call(func() { s.startSync(peer) })
}

// startSync sends the opening floor exchange, inside the loop.
func (s *Site) startSync(peer vtime.SiteID) {
	if s.wal == nil || peer == s.id {
		return
	}
	s.stats.SyncSessions.Inc()
	s.send(peer, wire.SyncRequest{From: s.id, ReqID: s.newReqID(), Floors: s.floorList()})
}

// handleSyncRequest answers a peer's floor exchange with every logged
// record above its floors, and advertises our own floors so the peer
// sends the reverse leg.
func (s *Site) handleSyncRequest(from vtime.SiteID, m wire.SyncRequest) {
	if s.wal == nil {
		return
	}
	s.stats.SyncSessions.Inc()
	s.send(m.From, wire.SyncUpdates{
		From:      s.id,
		ReqID:     m.ReqID,
		WantReply: true,
		Floors:    s.floorList(),
		Records:   s.buildSyncRecords(m.From, m.Floors),
	})
}

// handleSyncUpdates applies a sync transfer. Each record re-enters
// handleMessage like a live message — it is re-logged (transitive
// propagation), duplicate-guarded, and applied with its recorded
// outcome. Afterwards the peer's floors are adopted (the transfer just
// proved we hold everything below them), the reverse leg is sent when
// requested, and this site's own optimistic tail is re-submitted through
// the normal §3 confirmation.
func (s *Site) handleSyncUpdates(from vtime.SiteID, m wire.SyncUpdates) {
	if s.wal == nil {
		return
	}
	for _, b := range m.Records {
		msg, _, err := wire.DecodeMessage(b)
		if err != nil {
			s.log.Warn("sync record undecodable", "from", m.From.String(), "err", err)
			continue
		}
		s.stats.SyncRecordsApplied.Inc()
		s.handleMessage(m.From, msg)
	}
	for _, f := range m.Floors {
		if f.Time > s.syncFloors[f.Site] {
			s.syncFloors[f.Site] = f.Time
		}
	}
	if m.WantReply {
		s.send(m.From, wire.SyncUpdates{
			From:    s.id,
			ReqID:   m.ReqID,
			Floors:  s.floorList(),
			Records: s.buildSyncRecords(m.From, m.Floors),
		})
	}
	s.resubmitWaiting()
}

// buildSyncRecords collects the wire-encoded log records peer is missing
// — everything above its advertised floors, excluding records the peer
// itself originated — remapped into the peer's object-ID namespace.
// Outcomes ship first, then data records in log order, so the receiver
// applies every update with its decision already recorded.
func (s *Site) buildSyncRecords(peer vtime.SiteID, floors []wire.SyncFloor) [][]byte {
	floor := map[vtime.SiteID]uint64{}
	for _, f := range floors {
		floor[f.Site] = f.Time
	}
	var outcomes, data [][]byte
	appendMsg := func(dst *[][]byte, msg wire.Message) {
		b, err := wire.EncodeMessage(msg)
		if err != nil {
			s.log.Warn("sync record encode failed", "err", err)
			return
		}
		*dst = append(*dst, b)
	}
	err := s.wal.Replay(func(rec wal.Record) error {
		if rec.Kind != wal.RecordMessage || rec.Origin == peer || rec.Time <= floor[rec.Origin] {
			return nil
		}
		msg, _, err := wire.DecodeMessage(rec.Payload)
		if err != nil {
			return nil // tolerated: skip, the torn-tail scan already vetted frames
		}
		switch m := msg.(type) {
		case wire.Outcome:
			appendMsg(&outcomes, m)
		case wire.Write:
			if upd := s.remapUpdates(peer, m.Updates); len(upd) > 0 {
				// Checks/NeedsConfirm/Delegate are origin-session state;
				// a relayed update is pure data.
				appendMsg(&data, wire.Write{TxnVT: m.TxnVT, Origin: m.Origin, Updates: upd})
			}
		case wire.FastWrite:
			if upd := s.remapUpdates(peer, m.Updates); len(upd) > 0 {
				appendMsg(&data, wire.FastWrite{TxnVT: m.TxnVT, Origin: m.Origin, Updates: upd})
			}
		}
		return nil
	})
	if err != nil {
		s.log.Warn("sync replay failed", "err", err)
	}
	s.stats.SyncRecordsShipped.Add(uint64(len(outcomes) + len(data)))
	return append(outcomes, data...)
}

// remapUpdates rewrites update targets from this site's replica objects
// to the peer's, via the replication graph. Objects the peer does not
// replicate are dropped.
func (s *Site) remapUpdates(peer vtime.SiteID, updates []wire.Update) []wire.Update {
	var out []wire.Update
	for _, u := range updates {
		root, ok := s.objects[u.Target]
		if !ok {
			continue
		}
		g, _ := root.currentGraph()
		var peerNode ids.ObjectID
		found := false
		for _, node := range g.Nodes() {
			if site, ok := g.SiteOf(node); ok && site == peer {
				peerNode, found = node, true
				break
			}
		}
		if !found {
			continue
		}
		u.Target = peerNode
		out = append(out, u)
	}
	return out
}

// resubmitWaiting re-sends the stored propagation messages of this
// site's own still-waiting transactions — the optimistic tail whose
// confirmations were lost in the partition. Receivers deduplicate the
// updates; primaries whose decision already exists answer from the
// recorded outcome (see handleWrite).
func (s *Site) resubmitWaiting() {
	if s.wal == nil {
		return
	}
	for _, vt := range sortedVTs(s.txns) {
		st := s.txns[vt]
		if st.status != txnWaiting || st.origin != s.id || len(st.sentMsgs) == 0 {
			continue
		}
		for _, site := range sortedSites(st.sentMsgs) {
			if s.failed[site] {
				continue
			}
			for _, msg := range st.sentMsgs[site] {
				s.send(site, msg)
			}
		}
		s.stats.SyncResubmits.Inc()
	}
}

// ---------------------------------------------------------------------------
// Offline mode: disconnected is not failed.
// ---------------------------------------------------------------------------

// SetPeerDisconnected informs the suspicion policy that peer is
// disconnected, not failed (DESIGN.md §13): while marked, a transport
// failure event for the peer parks instead of triggering §3.4 failover,
// until either the transport reports the peer recovered or the
// OfflineGrace deadline expires. Unmarking with offline=false only
// clears the mark — an already parked failover still resolves through
// recovery or its grace deadline.
func (s *Site) SetPeerDisconnected(peer vtime.SiteID, offline bool) error {
	return s.call(func() {
		if offline {
			s.disconnected[peer] = true
			return
		}
		delete(s.disconnected, peer)
	})
}

// parkFailure defers the §3.4 failover for a disconnected peer, arming
// the OfflineGrace deadline when configured.
func (s *Site) parkFailure(f vtime.SiteID) {
	if _, ok := s.parkedFailures[f]; ok {
		return
	}
	s.stats.FailoversParked.Inc()
	s.log.Debug("failover parked", "peer", f.String())
	var cancel func()
	if g := s.opts.OfflineGrace; g > 0 {
		cancel = s.opts.Scheduler.AfterFunc(g, func() {
			s.do(func() { s.expireParkedFailure(f) })
		})
	}
	s.parkedFailures[f] = cancel
}

// expireParkedFailure runs the deferred failover after the grace period:
// the peer stayed away too long, so it is treated as failed after all.
func (s *Site) expireParkedFailure(f vtime.SiteID) {
	if _, ok := s.parkedFailures[f]; !ok {
		return
	}
	delete(s.parkedFailures, f)
	s.log.Debug("offline grace expired, running failover", "peer", f.String())
	s.stats.FailoversRun.Inc()
	s.handleSiteFailure(f)
}

// unparkFailure discards a parked failover (the peer recovered in time).
func (s *Site) unparkFailure(f vtime.SiteID) {
	cancel, ok := s.parkedFailures[f]
	if !ok {
		return
	}
	delete(s.parkedFailures, f)
	if cancel != nil {
		cancel()
	}
}
