package engine

import "fmt"

// Accounting identities over a quiescent site's Stats (PR 4). They are
// a library — shared by the obs invariant tests and the deterministic
// simulation harness — so every exploration run asserts exactly the
// identities the tests document:
//
//	Submitted + InternalTxns == Commits + ProgrammedAborts + abandoned
//	ConflictAborts           == Retries + abandoned
//	FastpathCommits          <= Commits
//
// where abandoned counts submissions whose Result was ErrTooManyRetries
// (the retry budget ran out), observed by the caller from the Handles,
// and InternalTxns counts transactions the engine initiates on its own
// behalf (graph repair after a site failure) — they commit like any
// other transaction but never pass through Submit. The first simulation
// sweeps flagged every crash run until internal initiations were
// counted; see DESIGN.md §12.
// A violation means a transaction was double-counted or leaked a state.
//
// The identities hold only at quiescence: no undecided transactions, no
// queued work, no messages in flight.

// IdentityViolations checks the quiescent accounting identities and
// returns a human-readable description of each violation (empty when
// all hold).
func (st Stats) IdentityViolations(abandoned uint64) []string {
	var v []string
	if st.Submitted+st.InternalTxns != st.Commits+st.ProgrammedAborts+abandoned {
		v = append(v, fmt.Sprintf("Submitted=%d + InternalTxns=%d != Commits=%d + ProgrammedAborts=%d + abandoned=%d",
			st.Submitted, st.InternalTxns, st.Commits, st.ProgrammedAborts, abandoned))
	}
	if st.ConflictAborts != st.Retries+abandoned {
		v = append(v, fmt.Sprintf("ConflictAborts=%d != Retries=%d + abandoned=%d",
			st.ConflictAborts, st.Retries, abandoned))
	}
	if st.FastpathCommits > st.Commits {
		v = append(v, fmt.Sprintf("FastpathCommits=%d > Commits=%d",
			st.FastpathCommits, st.Commits))
	}
	return v
}

// NotifyIdentityViolations checks the shutdown notifier identity,
// valid only after Stop has returned:
//
//	NotifyEnqueued == NotifyDelivered + NotifyDropped
//
// i.e. every accepted user callback was either delivered or counted as
// dropped — none lost to the shutdown race.
func (st Stats) NotifyIdentityViolations() []string {
	if st.NotifyEnqueued != st.NotifyDelivered+st.NotifyDropped {
		return []string{fmt.Sprintf("NotifyEnqueued=%d != NotifyDelivered=%d + NotifyDropped=%d",
			st.NotifyEnqueued, st.NotifyDelivered, st.NotifyDropped)}
	}
	return nil
}
