package engine

// The commutative fast path. A transaction whose updates are all provably
// commutative — counter adds (OpAdd), add-wins association inserts
// (OpAssocInsert), stable-position list inserts (OpListInsertAfter) — and
// whose read set is empty cannot fail the paper's §3.1 guess checks in any
// serialization: every interleaving of such ops merges to the same state.
// It therefore skips guess creation, RL/NC reservation, and the confirm
// exchange entirely: it commits locally at its VT stamp and propagates as
// already-confirmed over FastWrite, applied via deterministic merge on
// receipt.
//
// Coexistence with guessed transactions is the delicate part. A fast-path
// commit at vtF landing inside another transaction's reserved write-free
// interval (tR, tT] invalidates that RL guess; the guess is DEMOTED to
// re-validation (aborted and retried at its origin, which re-reads the
// merged value). In the other direction, fast-path versions sit in the
// object history like any other version, so a later guess over them is
// denied by the ordinary RL scan — the primary accounts for
// confirmed-on-arrival versions it never reserved.
//
// INVARIANT (enforced by the decaf-vet fastpath analyzer): functions in
// this file never call into the reservation/confirm machinery — no
// Reserve, no Conflicts, no primaryCheck*, no validateAsPrimary, no
// propagate. The fast path stays fast, and honest, by construction.

import (
	"fmt"

	"decaf/internal/history"
	"decaf/internal/obs"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// addDelta adds an OpAdd delta to a previous numeric value (nil reads as
// the kind's zero).
func addDelta(prev any, delta any) any {
	switch d := delta.(type) {
	case int64:
		n, _ := prev.(int64)
		return n + d
	case float64:
		f, _ := prev.(float64)
		return f + d
	}
	return prev
}

// mergeAdd builds the history-layer merge function of one counter add.
func mergeAdd(delta any) func(prev any) any {
	return func(prev any) any { return addDelta(prev, delta) }
}

// mergeRel builds the merge function of one add-wins relationship insert.
func mergeRel(rel wire.Relationship) func(prev any) any {
	return func(prev any) any {
		rels, _ := prev.([]wire.Relationship)
		return mergeRelationships(rels, rel)
	}
}

// mergeRelationships inserts rel into rels, replacing a same-name entry
// (deterministic under concurrency: versions recompute in VT order, so the
// greatest-VT insert of a name wins at every replica).
func mergeRelationships(rels []wire.Relationship, rel wire.Relationship) []wire.Relationship {
	out := make([]wire.Relationship, 0, len(rels)+1)
	replaced := false
	for _, r := range rels {
		if r.Name == rel.Name {
			out = append(out, rel)
			replaced = true
			continue
		}
		out = append(out, r)
	}
	if !replaced {
		out = append(out, rel)
	}
	return out
}

// isCommutativeOp reports whether op commutes with every concurrent
// instance of the commutative op set.
func isCommutativeOp(op wire.Op) bool {
	switch op.(type) {
	case wire.OpAdd, wire.OpAssocInsert, wire.OpListInsertAfter:
		return true
	default:
		return false
	}
}

// tryFastPath classifies st at the end of local execution. When every
// update is commutative and there is nothing to check — no reads, no RC
// dependencies, no graph ops, no join machinery — it commits the
// transaction on the fast path and returns true; the caller then skips
// propagate() entirely.
func (s *Site) tryFastPath(st *txnState) bool {
	if s.opts.DisableFastPath || st.denied {
		return false
	}
	if len(st.writes) == 0 || len(st.reads) != 0 || len(st.rcDeps) != 0 ||
		st.extraPending != 0 || st.hasGraphOp {
		return false
	}
	for _, w := range st.writes {
		// Protocol-level overrides (leaves, promotions) and non-blind
		// writes carry context a merge cannot express.
		if w.targetGraph != nil || w.pathOverride != nil || w.readVT != st.vt {
			return false
		}
		if len(w.ops) == 0 {
			return false
		}
		for _, op := range w.ops {
			if !isCommutativeOp(op) {
				return false
			}
		}
	}
	s.commitFastPath(st)
	return true
}

// commitFastPath commits st locally at its VT stamp and ships the updates
// as already-confirmed FastWrites — no reservation, no confirm exchange,
// no summary outcome.
func (s *Site) commitFastPath(st *txnState) {
	st.status = txnCommitted
	s.outcomes[st.vt] = true
	st.commitApplied()
	s.walLocalFastWrite(st)

	out := map[vtime.SiteID][]wire.Update{}
	for _, w := range st.writes {
		root := w.obj.replicationRoot()
		g := root.graph
		path := w.obj.pathFromRoot()
		for _, node := range g.Nodes() {
			nodeSite, _ := g.SiteOf(node)
			if node == root.id {
				continue // applied during execution
			}
			if nodeSite == s.id {
				// A sibling replica at this very site: merge directly,
				// already committed.
				if target, ok := s.objects[node]; ok {
					for _, op := range w.ops {
						s.applyOpRead(st, target, path, op, history.Committed, w.readVT)
					}
				}
				continue
			}
			for _, op := range w.ops {
				out[nodeSite] = append(out[nodeSite], wire.Update{
					Target:  node,
					Path:    path,
					ReadVT:  w.readVT,
					GraphVT: w.graphVT,
					Op:      op,
				})
			}
		}
	}
	for _, site := range sortedSites(out) {
		st.involved[site] = true
		s.trace(obs.EvPropagate, st.vt, site, "fastpath")
		s.send(site, wire.FastWrite{TxnVT: st.vt, Origin: s.id, Updates: out[site]})
	}

	s.resolveRC(st.vt, true)
	s.onLocalCommit(st.appliedObjects(), st.vt)
	s.demoteGuessesFor(st.appliedObjects(), st.vt)
	s.stats.Commits.Add(1)
	s.stats.FastpathCommits.Add(1)
	s.trace(obs.EvCommit, st.vt, 0, "fastpath")
	s.stats.CommitLatencyVT.Observe(float64(s.clock.Now().Time - st.vt.Time))
	if st.handle != nil {
		s.obs.ObserveSince(s.stats.CommitLatency, st.handle.submittedWall)
		st.handle.finish(Result{Committed: true, Retries: st.retries, VT: st.vt})
	}
	s.gcTxnObjects(st)
}

// handleFastWrite applies a remote fast-path transaction: the updates are
// already confirmed, so they merge in as committed versions immediately.
// An update blocked on unseen structure (a list insert whose After element
// has not arrived) parks on the root's pending queue like any indirect
// update; drainPending later applies it as committed because the outcome
// is recorded first.
func (s *Site) handleFastWrite(from vtime.SiteID, m wire.FastWrite) {
	s.outcomes[m.TxnVT] = true
	st := s.ensureTxn(m.TxnVT, m.Origin)
	if st.appliedWall == 0 {
		st.appliedWall = s.obs.NowNanos()
	}
	s.trace(obs.EvApply, m.TxnVT, m.Origin, "fastpath")

	for _, upd := range m.Updates {
		upd := upd
		if s.applyUpdate(st, upd, history.Committed) {
			s.stats.UpdatesApplied.Add(1)
			continue
		}
		if root := s.objects[upd.Target]; root != nil {
			root.pending = append(root.pending, pendingIndirect{
				txnVT:  m.TxnVT,
				origin: m.Origin,
				upd:    upd,
			})
		}
	}
	st.status = txnCommitted
	s.scheduleOptimistic(st.appliedObjects())
	s.onLocalCommit(st.appliedObjects(), m.TxnVT)
	s.resolveRC(m.TxnVT, true)
	s.demoteGuessesFor(st.appliedObjects(), m.TxnVT)
	s.trace(obs.EvCommit, m.TxnVT, m.Origin, "fastpath")
	s.gcTxnObjects(st)
}

// demoteGuessesFor finds open RL reservations on the given objects whose
// write-free interval contains the fast-path commit vt, and demotes their
// guesses to re-validation: the reserved interval was promised write-free,
// and the fast-path version just landed inside it. A local guess aborts
// and retries here (re-reading the merged value); a remote guess gets its
// confirmation retracted via a transient denial, which its origin treats
// as a conflict abort + retry if the transaction is still undecided.
func (s *Site) demoteGuessesFor(objs []*object, vt vtime.VT) {
	for _, obj := range objs {
		// Primary-side sweep: open reservations whose interval contains
		// the fast commit.
		for _, owner := range obj.res.Intersecting(vt, vt) {
			if _, decided := s.outcomes[owner]; decided {
				continue
			}
			reason := fmt.Sprintf("demoted: fast-path commit %s inside reserved interval of %s", vt, owner)
			s.stats.FastpathDemotions.Add(1)
			if st2, ok := s.txns[owner]; ok && st2.origin == s.id && st2.status == txnWaiting {
				s.abortTxn(st2, reason)
				continue
			}
			if owner.Site != s.id {
				// Retract the confirmation. If the origin already decided
				// (the commit raced the retraction), the fast version still
				// merged deterministically everywhere; the demotion only
				// closes the window for still-undecided guesses.
				s.send(owner.Site, wire.Confirm{
					TxnVT: owner, From: s.id, OK: false, Transient: true, Reason: reason,
				})
			}
		}
		// Origin-side sweep: a pending version here whose write-free
		// interval (ReadVT, VT] contains the fast commit belongs to a
		// guess whose read the fast write just invalidated. If that guess
		// originated here and is still waiting, abort it before a stale
		// confirmation can commit it.
		for _, v := range obj.hist.Versions() {
			if v.Status != history.Pending || v.VT == vt || v.ReadVT == v.VT {
				continue
			}
			iv := vtime.Interval{Lo: v.ReadVT, Hi: v.VT}
			if !iv.Contains(vt) {
				continue
			}
			st2, ok := s.txns[v.VT]
			if !ok || st2.origin != s.id || st2.status != txnWaiting {
				continue
			}
			s.stats.FastpathDemotions.Add(1)
			s.abortTxn(st2, fmt.Sprintf("demoted: fast-path commit %s inside read interval of %s", vt, v.VT))
		}
	}
}
