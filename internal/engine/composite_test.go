package engine

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/wire"
)

func TestListLocalOperations(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	lst, _ := h.site(1).CreateObject(KindList, "L", nil)

	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		if n, _ := tx.ListLen(lst); n != 0 {
			return fmt.Errorf("fresh list len %d", n)
		}
		a, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: "a"})
		if err != nil {
			return err
		}
		if _, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: "c"}); err != nil {
			return err
		}
		if _, err := tx.ListInsert(lst, 1, wire.ChildDecl{Kind: KindString, Value: "b"}); err != nil {
			return err
		}
		if v, _ := tx.Read(a); v != "a" {
			return fmt.Errorf("child read = %v", v)
		}
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	v, _ := h.site(1).ReadCommitted(lst)
	if !reflect.DeepEqual(v, []any{"a", "b", "c"}) {
		t.Fatalf("list = %v", v)
	}
}

func TestListRemoveAndRead(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	lst, _ := h.site(1).CreateObject(KindList, "L", nil)
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		for _, s := range []string{"x", "y", "z"} {
			if _, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: s}); err != nil {
				return err
			}
		}
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatal(res.Err)
	}
	res = h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.ListRemove(lst, 1)
	}}).Wait()
	if !res.Committed {
		t.Fatal(res.Err)
	}
	v, _ := h.site(1).ReadCommitted(lst)
	if !reflect.DeepEqual(v, []any{"x", "z"}) {
		t.Fatalf("list = %v", v)
	}
}

func TestListRemoveRollsBackOnAbort(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	lst, _ := h.site(1).CreateObject(KindList, "L", nil)
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		_, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindInt, Value: int64(1)})
		return err
	}}).Wait(); !res.Committed {
		t.Fatal("setup failed")
	}
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		if err := tx.ListRemove(lst, 0); err != nil {
			return err
		}
		return fmt.Errorf("changed my mind")
	}}).Wait()
	if res.Committed {
		t.Fatal("txn should have aborted")
	}
	v, _ := h.site(1).ReadCommitted(lst)
	if !reflect.DeepEqual(v, []any{int64(1)}) {
		t.Fatalf("list = %v, want element restored", v)
	}
}

func TestTupleOperations(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	tup, _ := h.site(1).CreateObject(KindTuple, "T", nil)
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		if _, err := tx.TupleSet(tup, "name", wire.ChildDecl{Kind: KindString, Value: "ada"}); err != nil {
			return err
		}
		if _, err := tx.TupleSet(tup, "age", wire.ChildDecl{Kind: KindInt, Value: int64(36)}); err != nil {
			return err
		}
		keys, err := tx.TupleKeys(tup)
		if err != nil {
			return err
		}
		if len(keys) != 2 {
			return fmt.Errorf("keys = %v", keys)
		}
		c, okc, err := tx.TupleGet(tup, "name")
		if err != nil || !okc {
			return fmt.Errorf("TupleGet: %v %v", okc, err)
		}
		if v, _ := tx.Read(c); v != "ada" {
			return fmt.Errorf("name = %v", v)
		}
		return tx.TupleRemove(tup, "age")
	}}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	v, _ := h.site(1).ReadCommitted(tup)
	if !reflect.DeepEqual(v, map[string]any{"name": "ada"}) {
		t.Fatalf("tuple = %v", v)
	}
}

func TestNestedComposites(t *testing.T) {
	// A tuple containing a list of ints, e.g. A[103][John][12] style
	// nesting from paper §3.2.
	h := newHarness(t, 1, transport.Config{})
	tup, _ := h.site(1).CreateObject(KindTuple, "A", nil)
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		john, err := tx.TupleSet(tup, "John", wire.ChildDecl{Kind: KindList})
		if err != nil {
			return err
		}
		for i := int64(0); i < 3; i++ {
			if _, err := tx.ListAppend(john, wire.ChildDecl{Kind: KindInt, Value: i * 10}); err != nil {
				return err
			}
		}
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	v, _ := h.site(1).ReadCommitted(tup)
	want := map[string]any{"John": []any{int64(0), int64(10), int64(20)}}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("tuple = %v, want %v", v, want)
	}
}

func TestIndirectPropagationToReplica(t *testing.T) {
	// Child updates route through the composite root's replication graph
	// with VT-tagged paths (paper §3.2 indirect propagation).
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	lists := h.joined(KindList, "L", nil, 1, 2)

	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		_, err := tx.ListAppend(lists[1], wire.ChildDecl{Kind: KindString, Value: "hello"})
		return err
	}}).Wait()
	if !res.Committed {
		t.Fatalf("insert: %+v", res)
	}
	h.eventually(2*time.Second, "replica structure", func() bool {
		v, _ := h.site(2).ReadCommitted(lists[2])
		return reflect.DeepEqual(v, []any{"hello"})
	})

	// Update the embedded child from the OTHER site: the path (with its
	// VT tag) must resolve to the same element.
	res = h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		c, err := tx.ListGet(lists[2], 0)
		if err != nil {
			return err
		}
		return tx.Write(c, "goodbye")
	}}).Wait()
	if !res.Committed {
		t.Fatalf("child update: %+v", res)
	}
	h.eventually(2*time.Second, "child update replicated", func() bool {
		v, _ := h.site(1).ReadCommitted(lists[1])
		return reflect.DeepEqual(v, []any{"goodbye"})
	})
}

func TestConcurrentListInsertsConverge(t *testing.T) {
	// Concurrent inserts from both replicas must converge to the same
	// order everywhere (VT-tagged elements, paper §3.2.1).
	h := newHarness(t, 2, transport.Config{Latency: 3 * time.Millisecond})
	lists := h.joined(KindList, "L", nil, 1, 2)

	var handles []*Handle
	for k := 0; k < 5; k++ {
		v1, v2 := fmt.Sprintf("a%d", k), fmt.Sprintf("b%d", k)
		handles = append(handles,
			h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
				_, err := tx.ListAppend(lists[1], wire.ChildDecl{Kind: KindString, Value: v1})
				return err
			}}),
			h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
				_, err := tx.ListAppend(lists[2], wire.ChildDecl{Kind: KindString, Value: v2})
				return err
			}}))
	}
	for _, hd := range handles {
		if r := hd.Wait(); !r.Committed {
			t.Fatalf("insert: %+v", r)
		}
	}
	h.eventually(3*time.Second, "list convergence", func() bool {
		v1, _ := h.site(1).ReadCommitted(lists[1])
		v2, _ := h.site(2).ReadCommitted(lists[2])
		l1, _ := v1.([]any)
		return len(l1) == 10 && reflect.DeepEqual(v1, v2)
	})
}

func TestCompositeJoinShipsStructure(t *testing.T) {
	// Joining a composite replica ships the full structure snapshot with
	// original element tags (so later paths resolve at the new member).
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	l1, _ := h.site(1).CreateObject(KindList, "L", nil)
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		for _, s := range []string{"p", "q"} {
			if _, err := tx.ListAppend(l1, wire.ChildDecl{Kind: KindString, Value: s}); err != nil {
				return err
			}
		}
		return nil
	}}).Wait(); !res.Committed {
		t.Fatal("setup")
	}

	l2, _ := h.site(2).CreateObject(KindList, "L", nil)
	if res := h.site(2).JoinObject(l2, 1, l1.ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}
	h.eventually(2*time.Second, "structure copied", func() bool {
		v, _ := h.site(2).ReadCurrent(l2)
		return reflect.DeepEqual(v, []any{"p", "q"})
	})

	// A child update from site 1 must resolve at site 2's copy.
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		c, err := tx.ListGet(l1, 1)
		if err != nil {
			return err
		}
		return tx.Write(c, "q2")
	}}).Wait(); !res.Committed {
		t.Fatalf("child write: %+v", res)
	}
	h.eventually(2*time.Second, "child update at joined replica", func() bool {
		v, _ := h.site(2).ReadCommitted(l2)
		return reflect.DeepEqual(v, []any{"p", "q2"})
	})
}

func TestViewOnCompositeSeesChildChanges(t *testing.T) {
	// A view attached to a composite receives notifications for changes
	// to its children (paper §2.5).
	h := newHarness(t, 1, transport.Config{})
	lst, _ := h.site(1).CreateObject(KindList, "L", nil)
	var child ObjRef
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		c, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindInt, Value: int64(0)})
		child = c
		return err
	}}).Wait(); !res.Committed {
		t.Fatal("setup")
	}

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{lst}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	h.eventually(time.Second, "initial", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= 1
	})
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(child, int64(7))
	}}).Wait(); !res.Committed {
		t.Fatal("child write")
	}
	h.eventually(time.Second, "child change notification", func() bool {
		ups, _ := rec.snapshot()
		last := ups[len(ups)-1]
		v, _ := last.Values[lst.ID()].([]any)
		return len(v) == 1 && v[0] == int64(7)
	})
}

func TestCompositeKindChecks(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	lst, _ := h.site(1).CreateObject(KindList, "L", nil)
	num, _ := h.site(1).CreateObject(KindInt, "n", int64(0))
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		if _, err := tx.ListAppend(num, wire.ChildDecl{Kind: KindInt}); err == nil {
			return fmt.Errorf("ListAppend on int succeeded")
		}
		if _, _, err := tx.TupleGet(lst, "k"); err == nil {
			return fmt.Errorf("TupleGet on list succeeded")
		}
		if err := tx.Write(lst, int64(1)); err == nil {
			return fmt.Errorf("scalar Write on list succeeded")
		}
		if _, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindAssociation}); err == nil {
			return fmt.Errorf("embedding an association succeeded")
		}
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatalf("checks failed: %+v", res)
	}
}
