package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// TestCommitQueryPrunesNewlyFailedSite pins the two-failure commit-query
// bug: a survivor's outstanding commit-query kept waiting for a reply
// from a site that failed AFTER the query started, so the orphaned
// transaction never decided (and the site never quiesced). The failure
// handler must prune the newly failed site from every waiting set and
// re-evaluate completion.
func TestCommitQueryPrunesNewlyFailedSite(t *testing.T) {
	h := newHarness(t, 4, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		// Every link touching site 3 is slow, so queries to it are still
		// outstanding when it dies.
		if from == 3 || to == 3 {
			return 100 * time.Millisecond
		}
		return 2 * time.Millisecond
	}})
	// Two relationships rooted at different sites give the transaction
	// two remote primaries (1 and 2), so delegated commit does not apply
	// and no single site can decide alone.
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3, 4)
	refsY := h.joined(KindInt, "y", int64(0), 2, 1, 3, 4)

	hd := h.site(4).Submit(&Txn{Execute: func(tx *Tx) error {
		if err := tx.Write(refs[4], int64(77)); err != nil {
			return err
		}
		return tx.Write(refsY[4], int64(88))
	}})
	<-hd.Applied()
	// Let the updates land at the fast survivors before the origin dies,
	// so they actually hold an undecided orphan.
	h.eventually(2*time.Second, "updates applied at sites 1 and 2", func() bool {
		return h.site(1).PendingUndecided() > 0 && h.site(2).PendingUndecided() > 0
	})
	h.net.Kill(4)

	// Sites 1 and 2 learn of the failure within ~2ms and start commit
	// queries whose waiting sets include slow site 3. Kill 3 before any
	// of its (~200ms round-trip) replies can arrive.
	time.Sleep(20 * time.Millisecond)
	h.net.Kill(3)

	h.eventually(5*time.Second, "orphan decided despite the second failure", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		v2, _ := h.site(2).ReadCommitted(refs[2])
		return v1 == v2 && h.noPendingTxns(1) && h.noPendingTxns(2)
	})
}

// TestLegacyRepairRejectsEqualEpochFromDifferentCoordinator pins the
// split-brain bug in the old epoch-based repair protocol: the staleness
// check was `cur.epoch > m.Epoch` only, so when divergent failure
// suspicions made two sites each open epoch 1 as self-appointed
// coordinator, an acceptor would ack both and two conflicting decisions
// could commit. At equal epoch the first coordinator must win.
func TestLegacyRepairRejectsEqualEpochFromDifferentCoordinator(t *testing.T) {
	h := newHarness(t, 4, transport.Config{})
	s := h.site(1)
	f := vtime.SiteID(9) // a site this harness never created

	propose := func(epoch uint64, from vtime.SiteID) {
		_ = s.call(func() {
			s.handleRepairPropose(wire.RepairPropose{
				Epoch:      epoch,
				FailedSite: f,
				From:       from,
				GraphVT:    vtime.VT{Time: 10 + epoch, Site: from},
				Survivors:  []vtime.SiteID{1, from},
			})
		})
	}
	coordinator := func() vtime.SiteID {
		var c vtime.SiteID
		_ = s.call(func() {
			if rs := s.legacyRepairs[f]; rs != nil {
				c = rs.coordinator
			}
		})
		return c
	}

	propose(1, 2)
	if c := coordinator(); c != 2 {
		t.Fatalf("after first proposal: coordinator = %v, want 2", c)
	}
	// Equal epoch from a different coordinator: must be rejected.
	propose(1, 3)
	if c := coordinator(); c != 2 {
		t.Fatalf("equal-epoch proposal from a different coordinator was accepted: coordinator = %v, want 2", c)
	}
	// A strictly higher epoch supersedes regardless of coordinator.
	propose(2, 3)
	if c := coordinator(); c != 3 {
		t.Fatalf("higher-epoch proposal was not accepted: coordinator = %v, want 3", c)
	}
}

// TestRecoveredSiteRepairStateCleared: a site recovering after being
// repaired out must rejoin like a restarted site — no stale repair
// instance, decided-repair record, or parked-retry state may survive at
// the survivors, and the repair itself stands.
func TestRecoveredSiteRepairStateCleared(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)
	if p, _ := h.site(2).PrimarySite(refs[2]); p != 1 {
		t.Fatalf("expected primary at site 1, got %v", p)
	}

	// False-positive suspicion: site 1 keeps running but survivors run
	// the §3.4 failover and repair it out by consensus.
	h.net.Suspect(1)
	h.eventually(3*time.Second, "repair committed at survivors", func() bool {
		for _, i := range []int{2, 3} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 2 {
				return false
			}
			for _, sid := range sites {
				if sid == 1 {
					return false
				}
			}
		}
		return true
	})

	h.net.Unsuspect(1)
	h.eventually(2*time.Second, "repair state cleared on recovery", func() bool {
		for _, i := range []int{2, 3} {
			s := h.site(i)
			clean := true
			_ = s.call(func() {
				_, decided := s.repairDecided[1]
				if s.failed[1] || s.repairs[1] != nil || s.legacyRepairs[1] != nil || decided || len(s.parked) != 0 {
					clean = false
				}
			})
			if !clean {
				return false
			}
		}
		return true
	})

	// The failover already performed stands: the survivors keep working
	// on the repaired graph (site 1 must rejoin explicitly, like a
	// restarted site).
	if res := h.setInt(2, refs[2], 5); !res.Committed {
		t.Fatalf("post-recovery write: %+v", res)
	}
	h.eventually(2*time.Second, "survivors converge", func() bool {
		v3, _ := h.site(3).ReadCommitted(refs[3])
		return v3 == int64(5)
	})
}

// TestCascadingCoordinatorFailure is the headline scenario: the primary
// dies mid-transaction, and then the survivor expected to coordinate the
// repair dies too. Under the old protocol the repair stalled forever
// (nobody re-proposed a dead coordinator's round). With consensus, the
// next survivor takes over with a higher ballot, the decided value
// settles the orphaned transaction (commit — survivor 3 saw its COMMIT),
// and the cascaded repair of the second failure follows.
func TestCascadingCoordinatorFailure(t *testing.T) {
	h := newHarnessOpts(t, 5, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		switch {
		case from == 2 && (to == 4 || to == 5):
			// Slow data links out of site 2, so its COMMIT broadcast is
			// still in flight (and is lost) when it dies.
			return 150 * time.Millisecond
		case (from == 2 && to == 1) || (from == 1 && to == 2):
			// A slow confirm round-trip widens the window between the
			// Write send and the Outcome send on the slow links.
			return 30 * time.Millisecond
		default:
			return 2 * time.Millisecond
		}
	}}, Options{DisableDelegation: true})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3, 4, 5)
	if p, _ := h.site(2).PrimarySite(refs[2]); p != 1 {
		t.Fatalf("expected primary at site 1, got %v", p)
	}

	// A transaction from site 2 commits (confirmed by primary 1); its
	// COMMIT reaches site 3 quickly but is still in flight to 4 and 5.
	hd := h.setInt2Async(2, refs[2], 77)
	if res := hd.Wait(); !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	h.eventually(3*time.Second, "write applied at the slow sites", func() bool {
		v3, _ := h.site(3).ReadCommitted(refs[3])
		return v3 == int64(77) &&
			h.site(4).PendingUndecided() > 0 && h.site(5).PendingUndecided() > 0
	})

	// Kill the primary, then the repair coordinator (site 2 is the
	// lowest survivor, so every site expects it to lead the repair).
	h.net.Kill(1)
	h.net.Kill(2)

	// Survivors 3, 4, 5 must converge: site 3 takes over the repair of
	// site 1 with a higher ballot (quorum 3 of members {2,3,4,5}), the
	// repaired graph hands the primary role to dead site 2, and the
	// cascaded repair of site 2 (quorum 2 of members {3,4,5}) follows.
	// The orphaned transaction commits everywhere because survivor 3
	// saw its COMMIT.
	h.eventually(10*time.Second, "cascaded repairs converge", func() bool {
		for _, i := range []int{3, 4, 5} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 3 {
				return false
			}
			for _, sid := range sites {
				if sid == 1 || sid == 2 {
					return false
				}
			}
			v, _ := h.site(i).ReadCommitted(refs[i])
			if v != int64(77) {
				return false
			}
			if h.site(i).PendingUndecided() != 0 {
				return false
			}
		}
		return true
	})

	// The repaired graph elects a live primary; writes keep working.
	if res := h.setInt(4, refs[4], 99); !res.Committed {
		t.Fatalf("post-repair write: %+v", res)
	}
	h.eventually(3*time.Second, "post-repair convergence", func() bool {
		v3, _ := h.site(3).ReadCommitted(refs[3])
		v5, _ := h.site(5).ReadCommitted(refs[5])
		return v3 == int64(99) && v5 == int64(99)
	})

	// The takeover burned extra ballots; the counters saw it.
	if h.site(3).Stats().RepairBallots == 0 {
		t.Fatal("site 3 took over the repair but RepairBallots is 0")
	}
}

// TestParkedRetryRunsExactlyOnce: a non-commutative increment stuck
// waiting on a failed primary is aborted, parked, and — after the repair
// commits — retried exactly once. A double retry would double the
// increment; a lost retry would leave the old value.
func TestParkedRetryRunsExactlyOnce(t *testing.T) {
	h := newHarnessOpts(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		if from == 3 || to == 3 {
			return 50 * time.Millisecond // slow path to the primary
		}
		return 2 * time.Millisecond
	}}, Options{DisableFastPath: true})
	refs := h.joined(KindInt, "x", int64(0), 3, 1, 2)
	if p, _ := h.site(1).PrimarySite(refs[1]); p != 3 {
		t.Fatalf("expected primary at site 3, got %v", p)
	}

	hd := h.site(1).Submit(&Txn{
		Name:    "inc",
		Execute: func(tx *Tx) error { return tx.Add(refs[1], int64(5)) },
	})
	<-hd.Applied()
	h.net.Kill(3) // primary dies while the confirm is in flight

	res := hd.Wait()
	if !res.Committed {
		t.Fatalf("parked retry should eventually commit: %+v", res)
	}
	h.eventually(3*time.Second, "increment applied exactly once", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		v2, _ := h.site(2).ReadCommitted(refs[2])
		return v1 == int64(5) && v2 == int64(5)
	})
}

// TestMinorityPartitionCannotCommitRepair: the consensus quorum is
// derived from the pre-failure graph membership, so survivors cut off in
// a minority partition can propose all they want — they can never commit
// a repair, and no split-brain graph exists. After the partition heals,
// their next proposal is short-circuited by the majority's decided value.
func TestMinorityPartitionCannotCommitRepair(t *testing.T) {
	h := newHarness(t, 6, transport.Config{Latency: 2 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3, 4, 5, 6)
	if p, _ := h.site(2).PrimarySite(refs[2]); p != 1 {
		t.Fatalf("expected primary at site 1, got %v", p)
	}

	// Silently cut {5,6} off from {2,3,4}, then kill the primary. The
	// repair members are {2,3,4,5,6}, quorum 3: the majority side can
	// decide, the minority side cannot.
	minority := []vtime.SiteID{5, 6}
	majority := []vtime.SiteID{2, 3, 4}
	for _, a := range minority {
		for _, b := range majority {
			h.net.Partition(a, b)
		}
	}
	h.net.Kill(1)

	h.eventually(5*time.Second, "majority side repairs", func() bool {
		for _, i := range []int{2, 3, 4} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 5 {
				return false
			}
			for _, sid := range sites {
				if sid == 1 {
					return false
				}
			}
		}
		return true
	})

	// Give the minority time to fire its takeover timer and fail at
	// least one proposal attempt, then check it never committed.
	h.eventually(10*time.Second, "minority attempted and failed a takeover", func() bool {
		return h.site(5).Stats().RepairQuorumFailures > 0
	})
	for _, i := range []int{5, 6} {
		s := h.site(i)
		var decided bool
		_ = s.call(func() {
			_, decided = s.repairDecided[1]
		})
		var hasOne bool
		if sites, err := s.ReplicaSites(refs[i]); err == nil {
			for _, sid := range sites {
				if sid == 1 {
					hasOne = true
				}
			}
		}
		if decided {
			t.Fatalf("minority site %d committed a repair without a quorum", i)
		}
		if !hasOne {
			t.Fatalf("minority site %d installed a repaired graph without a quorum", i)
		}
	}

	// Heal: the minority's next proposal reaches the majority, which
	// answers with the decided value; everyone converges on ONE repair.
	for _, a := range minority {
		for _, b := range majority {
			h.net.Heal(a, b)
		}
	}
	h.eventually(15*time.Second, "minority adopts the majority's decision", func() bool {
		for _, i := range []int{2, 3, 4, 5, 6} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 5 {
				return false
			}
			for _, sid := range sites {
				if sid == 1 {
					return false
				}
			}
		}
		return true
	})

	// One consistent graph: writes commit and reach every survivor.
	if res := h.setInt(5, refs[5], 42); !res.Committed {
		t.Fatalf("post-heal write: %+v", res)
	}
	h.eventually(5*time.Second, "post-heal convergence", func() bool {
		for _, i := range []int{2, 3, 4, 6} {
			v, _ := h.site(i).ReadCommitted(refs[i])
			if v != int64(42) {
				return false
			}
		}
		return true
	})
}
