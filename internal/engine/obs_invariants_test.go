package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"decaf/internal/obs"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// newObsHarness builds n sites, each with its own fully enabled
// Observer (tracing + timing), returned by 1-based site index.
func newObsHarness(t *testing.T, n int, cfg transport.Config, opts Options) (*harness, map[int]*obs.Observer) {
	t.Helper()
	h := &harness{t: t, net: transport.NewNetwork(cfg), sites: map[vtime.SiteID]*Site{}}
	observers := map[int]*obs.Observer{}
	for i := 1; i <= n; i++ {
		id := vtime.SiteID(i)
		ep, err := h.net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		siteOpts := opts
		siteOpts.Observer = obs.New()
		observers[i] = siteOpts.Observer
		s := NewSite(ep, siteOpts)
		s.Start()
		h.sites[id] = s
	}
	t.Cleanup(func() {
		for _, s := range h.sites {
			s.Stop()
		}
		h.net.Close()
	})
	return h, observers
}

// TestCounterInvariantsQuiescent drives a mixed workload (blind writes,
// conflicting read-modify-writes, programmed aborts) from three sites,
// waits for quiescence, and checks the accounting identities every
// quiescent site must satisfy (see invariants.go for the identities
// and their terms). A violation means a transaction was double-counted
// or leaked a state.
func TestCounterInvariantsQuiescent(t *testing.T) {
	h, observers := newObsHarness(t, 3, transport.Config{}, Options{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	rng := rand.New(rand.NewSource(7))
	const perSite = 40
	abandoned := map[int]uint64{}
	programmed := map[int]uint64{}
	committed := map[int]uint64{}

	var handles []*Handle
	sites := []int{1, 2, 3}
	var order []int
	for _, i := range sites {
		for k := 0; k < perSite; k++ {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

	byHandle := map[*Handle]int{}
	for _, i := range order {
		ref := refs[i]
		var txn *Txn
		switch rng.Intn(5) {
		case 0: // programmed abort
			txn = &Txn{Name: "boom", Execute: func(tx *Tx) error {
				return fmt.Errorf("no thanks")
			}}
		case 1, 2: // read-modify-write: conflicts under RL validation
			txn = &Txn{Name: "rmw", Execute: func(tx *Tx) error {
				v, err := tx.Read(ref)
				if err != nil {
					return err
				}
				n, _ := v.(int64)
				return tx.Write(ref, n+1)
			}}
		default: // blind write
			v := rng.Int63n(1000)
			txn = &Txn{Name: "set", Execute: func(tx *Tx) error {
				return tx.Write(ref, v)
			}}
		}
		hd := h.site(i).Submit(txn)
		byHandle[hd] = i
		handles = append(handles, hd)
	}

	for _, hd := range handles {
		res := hd.Wait()
		i := byHandle[hd]
		switch {
		case res.Committed:
			committed[i]++
		case errors.Is(res.Err, ErrAborted):
			programmed[i]++
		case errors.Is(res.Err, ErrTooManyRetries):
			abandoned[i]++
		default:
			t.Fatalf("site %d: unexpected result %+v", i, res)
		}
	}

	// Quiescence: no site holds an undecided remote transaction.
	h.eventually(5*time.Second, "all sites quiescent", func() bool {
		for _, i := range sites {
			if !h.noPendingTxns(i) {
				return false
			}
		}
		return true
	})

	for _, i := range sites {
		st := h.site(i).Stats()
		// The join/creation traffic of h.joined commits at its origin, so
		// it is already inside Submitted and Commits; only the workload
		// contributes aborts. The identities themselves live in
		// invariants.go, shared with the simulation harness.
		for _, violation := range st.IdentityViolations(abandoned[i]) {
			t.Errorf("site %d: %s", i, violation)
		}
		if st.ProgrammedAborts != programmed[i] {
			t.Errorf("site %d: ProgrammedAborts=%d, results saw %d", i, st.ProgrammedAborts, programmed[i])
		}
		// The same counters must be readable through the obs registry
		// under their Prometheus names.
		reg := observers[i].Metrics()
		if v, ok := reg.Value("decaf_txn_submitted_total"); !ok || uint64(v) != st.Submitted {
			t.Errorf("site %d: registry submitted=%v (ok=%v) != Stats.Submitted=%d", i, v, ok, st.Submitted)
		}
		if v, ok := reg.Value("decaf_txn_conflict_aborts_total"); !ok || uint64(v) != st.ConflictAborts {
			t.Errorf("site %d: registry conflict aborts=%v (ok=%v) != Stats.ConflictAborts=%d", i, v, ok, st.ConflictAborts)
		}
	}
}

// TestCommittedSpansContainConfirms checks the §3 state machine shape of
// traced spans: with delegation disabled, every committed transaction
// that propagated a confirmation-requiring write must have received a
// positive confirm from each such peer — and the trace must show it.
func TestCommittedSpansContainConfirms(t *testing.T) {
	h, observers := newObsHarness(t, 3, transport.Config{}, Options{DisableDelegation: true})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// Primary copy lives at site 1; all writes originate at sites 2 and 3.
	for k := 0; k < 10; k++ {
		for _, i := range []int{2, 3} {
			if res := h.setInt(i, refs[i], int64(k)); !res.Committed {
				t.Fatalf("site %d write %d: %+v", i, k, res)
			}
		}
	}

	for _, i := range []int{2, 3} {
		spans := observers[i].Trace().Spans()
		checkedSpans := 0
		for _, sp := range spans {
			if sp.Outcome != "committed" {
				continue
			}
			needConfirm := map[vtime.SiteID]bool{}
			gotConfirm := map[vtime.SiteID]bool{}
			for _, ev := range sp.Events {
				switch ev.Kind {
				case obs.EvPropagate:
					if ev.Detail == "confirm" {
						needConfirm[ev.Peer] = true
					}
				case obs.EvConfirm:
					if ev.Detail == "ok" {
						gotConfirm[ev.Peer] = true
					}
				}
			}
			for peer := range needConfirm {
				checkedSpans++
				if !gotConfirm[peer] {
					t.Errorf("site %d: committed span %s propagated to primary %s but has no ok confirm: %+v",
						i, sp.TxnVT, peer, sp.Events)
				}
			}
		}
		if checkedSpans == 0 {
			t.Errorf("site %d: no committed spans with confirmation-requiring propagation were traced", i)
		}
		if dropped := observers[i].Trace().Dropped(); dropped != 0 {
			t.Errorf("site %d: trace dropped %d events; grow the ring for this workload", i, dropped)
		}
	}
}

// TestFastpathCounterInvariants drives a mixed fast-path/guessed workload
// and checks the accounting identities the commutative fast path adds:
//
//	FastpathCommits <= Commits            (fast commits are commits)
//	Σ FastpathCommits == committed adds   (every add commits fast, once)
//	Submitted == Commits + ProgrammedAborts + abandoned   (still holds)
//
// plus the registry names and the "committed-fastpath" span outcome, and
// that fast-path spans never contain a confirm exchange.
func TestFastpathCounterInvariants(t *testing.T) {
	h, observers := newObsHarness(t, 3, transport.Config{}, Options{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	rng := rand.New(rand.NewSource(11))
	const perSite = 30
	sites := []int{1, 2, 3}
	abandoned := map[int]uint64{}
	committedAdds := map[int]uint64{}

	type sub struct {
		site  int
		isAdd bool
		hd    *Handle
	}
	var subs []sub
	for k := 0; k < perSite; k++ {
		for _, i := range sites {
			ref := refs[i]
			isAdd := rng.Intn(10) < 7
			var txn *Txn
			if isAdd {
				txn = &Txn{Name: "add", Execute: func(tx *Tx) error {
					return tx.Add(ref, int64(1))
				}}
			} else {
				txn = &Txn{Name: "rmw", Execute: func(tx *Tx) error {
					v, err := tx.Read(ref)
					if err != nil {
						return err
					}
					n, _ := v.(int64)
					return tx.Write(ref, n+1)
				}}
			}
			subs = append(subs, sub{site: i, isAdd: isAdd, hd: h.site(i).Submit(txn)})
		}
	}

	for _, sb := range subs {
		res := sb.hd.Wait()
		switch {
		case res.Committed:
			if sb.isAdd {
				committedAdds[sb.site]++
			}
		case errors.Is(res.Err, ErrTooManyRetries):
			abandoned[sb.site]++
		default:
			t.Fatalf("site %d: unexpected result %+v", sb.site, res)
		}
	}

	h.eventually(5*time.Second, "all sites quiescent", func() bool {
		for _, i := range sites {
			if !h.noPendingTxns(i) {
				return false
			}
		}
		return true
	})

	for _, i := range sites {
		st := h.site(i).Stats()
		if st.FastpathCommits > st.Commits {
			t.Errorf("site %d: FastpathCommits=%d > Commits=%d", i, st.FastpathCommits, st.Commits)
		}
		if st.FastpathCommits != committedAdds[i] {
			t.Errorf("site %d: FastpathCommits=%d, committed adds=%d", i, st.FastpathCommits, committedAdds[i])
		}
		if st.Submitted != st.Commits+st.ProgrammedAborts+abandoned[i] {
			t.Errorf("site %d: Submitted=%d != Commits=%d + ProgrammedAborts=%d + abandoned=%d",
				i, st.Submitted, st.Commits, st.ProgrammedAborts, abandoned[i])
		}
		reg := observers[i].Metrics()
		if v, ok := reg.Value("decaf_fastpath_commits_total"); !ok || uint64(v) != st.FastpathCommits {
			t.Errorf("site %d: registry fastpath commits=%v (ok=%v) != Stats.FastpathCommits=%d", i, v, ok, st.FastpathCommits)
		}
		if v, ok := reg.Value("decaf_fastpath_demotions_total"); !ok || uint64(v) != st.FastpathDemotions {
			t.Errorf("site %d: registry fastpath demotions=%v (ok=%v) != Stats.FastpathDemotions=%d", i, v, ok, st.FastpathDemotions)
		}

		// Fast-path spans carry the dedicated outcome and, by
		// construction, no confirm exchange.
		fastSpans := 0
		for _, sp := range observers[i].Trace().Spans() {
			if sp.Outcome != "committed-fastpath" {
				continue
			}
			if sp.TxnVT.Site != vtime.SiteID(i) {
				continue // remote fast write applied here
			}
			fastSpans++
			for _, ev := range sp.Events {
				if ev.Kind == obs.EvConfirm || (ev.Kind == obs.EvPropagate && ev.Detail == "confirm") {
					t.Errorf("site %d: fast-path span %s contains confirm traffic: %+v", i, sp.TxnVT, ev)
				}
			}
		}
		if committedAdds[i] > 0 && fastSpans == 0 {
			t.Errorf("site %d: committed %d adds but traced no committed-fastpath spans", i, committedAdds[i])
		}
	}
}

// TestRepairCounterInvariants drives the §3.4 failover — a primary
// crash, the survivors' consensus repair, and a transaction that was in
// flight at the dead primary — and checks that the repair-generated
// internal transactions (graph updates, orphan decisions) keep the
// quiescent accounting identities balanced, that the consensus counters
// surface through the registry under their Prometheus names, and that
// the parked-retry gauge is back to zero once the repair releases
// whatever it parked.
func TestRepairCounterInvariants(t *testing.T) {
	h, observers := newObsHarness(t, 3, transport.Config{Latency: 2 * time.Millisecond}, Options{DisableFastPath: true})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// Committed baseline traffic from every site, so the identities
	// have real terms on both sides before the crash.
	for k := 0; k < 3; k++ {
		for _, i := range []int{1, 2, 3} {
			if res := h.setInt(i, refs[i], int64(10*i+k)); !res.Committed {
				t.Fatalf("site %d write %d: %+v", i, k, res)
			}
		}
	}

	// A transaction is in flight at the primary when it dies. Depending
	// on timing its COMMIT either raced out before the kill or the
	// failover aborts it, parks the retry behind the repair, and re-runs
	// it under the repaired graph — it must commit either way.
	hd := h.site(2).Submit(&Txn{Name: "inc", Execute: func(tx *Tx) error {
		return tx.Add(refs[2], int64(1))
	}})
	<-hd.Applied()
	h.net.Kill(1)
	if res := hd.Wait(); !res.Committed {
		t.Fatalf("in-flight txn should commit after the repair: %+v", res)
	}

	h.eventually(5*time.Second, "repair installed and survivors quiescent", func() bool {
		for _, i := range []int{2, 3} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 2 {
				return false
			}
			if !h.noPendingTxns(i) {
				return false
			}
		}
		return true
	})

	var ballots uint64
	for _, i := range []int{2, 3} {
		st := h.site(i).Stats()
		for _, violation := range st.IdentityViolations(0) {
			t.Errorf("site %d: %s", i, violation)
		}
		ballots += st.RepairBallots
		reg := observers[i].Metrics()
		if v, ok := reg.Value("decaf_repair_ballots_total"); !ok || uint64(v) != st.RepairBallots {
			t.Errorf("site %d: registry repair ballots=%v (ok=%v) != Stats.RepairBallots=%d", i, v, ok, st.RepairBallots)
		}
		if v, ok := reg.Value("decaf_repair_quorum_failures_total"); !ok || uint64(v) != st.RepairQuorumFailures {
			t.Errorf("site %d: registry quorum failures=%v (ok=%v) != Stats.RepairQuorumFailures=%d", i, v, ok, st.RepairQuorumFailures)
		}
		if v, ok := reg.Value("decaf_engine_parked_retries"); !ok || v != 0 {
			t.Errorf("site %d: parked-retries gauge=%v (ok=%v), want 0 after the repair", i, v, ok)
		}
	}
	if ballots == 0 {
		t.Error("no survivor spent a repair ballot; the consensus path never ran")
	}
}
