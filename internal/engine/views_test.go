package engine

import (
	"sync"
	"testing"
	"time"

	"decaf/internal/ids"
	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// recorder is a test view capturing notifications.
type recorder struct {
	mu      sync.Mutex
	updates []SnapshotData
	commits int
}

func (r *recorder) fns() ViewFuncs {
	return ViewFuncs{
		Update: func(d SnapshotData) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.updates = append(r.updates, d)
		},
		Commit: func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.commits++
		},
	}
}

func (r *recorder) snapshot() ([]SnapshotData, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SnapshotData, len(r.updates))
	copy(out, r.updates)
	return out, r.commits
}

func (r *recorder) lastValue(id ids.ObjectID) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.updates) == 0 {
		return nil, false
	}
	v, ok := r.updates[len(r.updates)-1].Values[id]
	return v, ok
}

func TestOptimisticViewSeesUncommittedState(t *testing.T) {
	// Optimistic views must be notified on local execution, before the
	// transaction commits remotely (paper §4.1).
	h := newHarness(t, 2, transport.Config{Latency: 20 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(2).AttachView([]ObjRef{refs[2]}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	hd := h.setInt2Async(2, refs[2], 9)
	<-hd.Applied()
	// The update notification should arrive well before the ~2 network
	// latencies the commit needs.
	h.eventually(time.Second, "optimistic update notification", func() bool {
		ups, _ := rec.snapshot()
		for _, u := range ups {
			if v, ok := u.Values[refs[2].ID()]; ok && v == int64(9) {
				return true
			}
		}
		return false
	})
	sawAt := time.Since(start)
	res := hd.Wait()
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	if sawAt > 15*time.Millisecond {
		t.Fatalf("optimistic notification took %v; should beat the 40ms commit", sawAt)
	}
	// Eventually the commit notification follows (quiescence).
	h.eventually(time.Second, "optimistic commit notification", func() bool {
		_, commits := rec.snapshot()
		return commits >= 1
	})
}

// setInt2Async submits without waiting.
func (h *harness) setInt2Async(i int, ref ObjRef, v int64) *Handle {
	return h.site(i).Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(ref, v) }})
}

func TestPessimisticViewOnlyCommitted(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: 10 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(2).AttachView([]ObjRef{refs[2]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	// Drain the initial attach notification.
	h.eventually(time.Second, "initial notification", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= 1
	})

	hd := h.setInt2Async(2, refs[2], 5)
	<-hd.Applied()
	// Immediately after local apply, the pessimistic view must NOT have
	// seen 5 (it is uncommitted).
	if v, ok := rec.lastValue(refs[2].ID()); ok && v == int64(5) {
		t.Fatal("pessimistic view saw uncommitted value")
	}
	if res := hd.Wait(); !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	h.eventually(time.Second, "committed notification", func() bool {
		v, ok := rec.lastValue(refs[2].ID())
		return ok && v == int64(5)
	})
	ups, _ := rec.snapshot()
	for _, u := range ups {
		if !u.Committed {
			t.Fatal("pessimistic notification marked uncommitted")
		}
	}
}

func TestPessimisticMonotonicLossless(t *testing.T) {
	// Every committed update is notified exactly once, in monotonic VT
	// order (paper §4.2 guarantees 1 and 2).
	h := newHarness(t, 2, transport.Config{Latency: 2 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{refs[1]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for k := 1; k <= n; k++ {
		if res := h.setInt(2, refs[2], int64(k)); !res.Committed {
			t.Fatalf("write %d: %+v", k, res)
		}
	}
	h.eventually(3*time.Second, "all committed notifications", func() bool {
		ups, _ := rec.snapshot()
		if len(ups) == 0 {
			return false
		}
		last := ups[len(ups)-1]
		return last.Values[refs[1].ID()] == int64(n)
	})
	ups, _ := rec.snapshot()
	// Monotonic TS order.
	for i := 1; i < len(ups); i++ {
		if !ups[i-1].TS.Less(ups[i].TS) {
			t.Fatalf("non-monotonic notifications: %v then %v", ups[i-1].TS, ups[i].TS)
		}
	}
	// Lossless: with sequential commits, every value 1..n appears.
	seen := map[int64]bool{}
	for _, u := range ups {
		if v, ok := u.Values[refs[1].ID()].(int64); ok {
			seen[v] = true
		}
	}
	for k := int64(1); k <= n; k++ {
		if !seen[k] {
			t.Fatalf("pessimistic view lost committed value %d (saw %v)", k, seen)
		}
	}
}

func TestOptimisticViewRollbackRerun(t *testing.T) {
	// An optimistic view that saw state from an aborted transaction gets
	// a superseding notification with the reverted state (paper §4.1).
	net := transport.NewNetwork(transport.Config{})
	defer net.Close()
	ep1, _ := net.Endpoint(1)
	ep2, _ := net.Endpoint(2)
	s1 := NewSite(ep1, Options{MaxRetries: 1})
	s2 := NewSite(ep2, Options{MaxRetries: 1})
	s1.Start()
	s2.Start()
	defer s1.Stop()
	defer s2.Stop()

	ref1, _ := s1.CreateObject(KindInt, "x", int64(1))
	ref2, _ := s2.CreateObject(KindInt, "x", int64(1))
	if res := s2.JoinObject(ref2, 1, ref1.ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}

	rec := &recorder{}
	if _, err := s2.AttachView([]ObjRef{ref2}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	// Rig a conflicting reservation at the primary so the write aborts.
	_ = s1.call(func() {
		ref1.o.res.Reserve(vtime.Interval{Lo: vtime.Zero, Hi: vtime.VT{Time: 1 << 40, Site: 1}}, vtime.VT{Time: 1 << 41, Site: 1})
	})

	res := s2.Submit(&Txn{Execute: func(tx *Tx) error {
		v, _ := tx.Read(ref2)
		return tx.Write(ref2, v.(int64)+100)
	}}).Wait()
	if res.Err == nil {
		t.Fatalf("expected exhausted retries, got %+v", res)
	}
	// The view must have seen 101 optimistically, then reverted to 1.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := rec.lastValue(ref2.ID()); ok && v == int64(1) {
			ups, _ := rec.snapshot()
			saw101 := false
			for _, u := range ups {
				if u.Values[ref2.ID()] == int64(101) {
					saw101 = true
				}
			}
			if !saw101 {
				t.Log("rollback happened before the optimistic notification was observed (lossy delivery); acceptable")
			}
			st := s2.Stats()
			if st.SnapshotReruns == 0 {
				t.Fatalf("no snapshot rerun recorded: %+v", st)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("view never reverted to committed state")
}

func TestViewChangedLists(t *testing.T) {
	// Update notifications list only the objects that changed
	// (paper §2.5).
	h := newHarness(t, 1, transport.Config{})
	a, _ := h.site(1).CreateObject(KindInt, "a", int64(0))
	b, _ := h.site(1).CreateObject(KindInt, "b", int64(0))

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{a, b}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	h.eventually(time.Second, "initial", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) == 1
	})

	if res := h.setInt(1, a, 5); !res.Committed {
		t.Fatal("write failed")
	}
	h.eventually(time.Second, "second notification", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= 2
	})
	ups, _ := rec.snapshot()
	last := ups[len(ups)-1]
	if len(last.Changed) != 1 || last.Changed[0] != a.ID() {
		t.Fatalf("changed = %v, want [%v]", last.Changed, a.ID())
	}
}

func TestDetachStopsNotifications(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	a, _ := h.site(1).CreateObject(KindInt, "a", int64(0))
	rec := &recorder{}
	vh, err := h.site(1).AttachView([]ObjRef{a}, Optimistic, rec.fns())
	if err != nil {
		t.Fatal(err)
	}
	h.eventually(time.Second, "initial", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) == 1
	})
	vh.Detach()
	if res := h.setInt(1, a, 1); !res.Committed {
		t.Fatal("write failed")
	}
	time.Sleep(20 * time.Millisecond)
	ups, _ := rec.snapshot()
	if len(ups) != 1 {
		t.Fatalf("notifications after detach: %d", len(ups))
	}
}

func TestFig8OptimisticScenario(t *testing.T) {
	// Paper Fig. 8: view V attached to A and B; A committed at 100, B at
	// 80; transaction T at 110 updates A. The optimistic snapshot runs at
	// tS = 110 immediately; the commit notification follows when T
	// commits and B's interval (80,110] is confirmed write-free.
	h := newHarness(t, 2, transport.Config{Latency: 5 * time.Millisecond})
	refA := h.joined(KindInt, "A", int64(0), 1, 2)
	refB := h.joined(KindInt, "B", int64(0), 1, 2)

	// Establish committed baseline values.
	if res := h.setInt(2, refA[2], 100); !res.Committed {
		t.Fatal("baseline A")
	}
	if res := h.setInt(2, refB[2], 80); !res.Committed {
		t.Fatal("baseline B")
	}

	rec := &recorder{}
	if _, err := h.site(2).AttachView([]ObjRef{refA[2], refB[2]}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	h.eventually(time.Second, "initial", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= 1
	})
	_, commits0 := rec.snapshot()

	hd := h.setInt2Async(2, refA[2], 110)
	<-hd.Applied()
	// Update notification precedes commit.
	h.eventually(time.Second, "snapshot at T's VT", func() bool {
		ups, _ := rec.snapshot()
		last := ups[len(ups)-1]
		return last.Values[refA[2].ID()] == int64(110) && last.Values[refB[2].ID()] == int64(80)
	})
	if res := hd.Wait(); !res.Committed {
		t.Fatalf("T: %+v", res)
	}
	// Commit notification once RC (T commits) and RL for B are confirmed.
	h.eventually(time.Second, "commit notification", func() bool {
		_, commits := rec.snapshot()
		return commits > commits0
	})
}

func TestFig8PessimisticStraggler(t *testing.T) {
	// Pessimistic views must order a straggling committed update before a
	// later snapshot (paper §4.2): snapshots delivered in VT order even
	// when commits arrive out of order at the viewing site.
	h := newHarness(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		// Site 3 -> site 1 is slow; site 2 -> site 1 is fast, so site 2's
		// later transaction tends to arrive at site 1 first.
		if from == 3 && to == 1 {
			return 25 * time.Millisecond
		}
		return 2 * time.Millisecond
	}})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{refs[1]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	// Site 3 writes first (its message to site 1 dawdles), then site 2.
	h3 := h.setInt2Async(3, refs[3], 33)
	time.Sleep(5 * time.Millisecond)
	h2 := h.setInt2Async(2, refs[2], 22)
	r3, r2 := h3.Wait(), h2.Wait()
	if !r3.Committed || !r2.Committed {
		t.Fatalf("writes: %+v / %+v", r3, r2)
	}

	h.eventually(3*time.Second, "both committed updates notified", func() bool {
		ups, _ := rec.snapshot()
		saw22, saw33 := false, false
		for _, u := range ups {
			switch u.Values[refs[1].ID()] {
			case int64(22):
				saw22 = true
			case int64(33):
				saw33 = true
			}
		}
		return saw22 && saw33
	})
	ups, _ := rec.snapshot()
	for i := 1; i < len(ups); i++ {
		if !ups[i-1].TS.Less(ups[i].TS) {
			t.Fatalf("pessimistic notifications out of order: %v then %v", ups[i-1].TS, ups[i].TS)
		}
	}
}
