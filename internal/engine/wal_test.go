package engine

import (
	"bytes"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wal"
	"decaf/internal/wire"
)

// openTestWAL opens a write-ahead log in a fresh temp dir. SyncBatch
// matches the recommended production setting (one fsync per event
// batch); crash recovery in these tests goes through Close, which
// flushes, so the fsync policy does not affect what replay sees.
func openTestWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// walHarness builds n sites on one network, each with its own WAL.
func walHarness(t *testing.T, n int, opts Options) (*harness, []string) {
	t.Helper()
	h := &harness{t: t, net: transport.NewNetwork(transport.Config{}), sites: map[vtime.SiteID]*Site{}}
	dirs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		id := vtime.SiteID(i)
		ep, err := h.net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = t.TempDir()
		o := opts
		o.WAL = openTestWAL(t, dirs[i])
		s := NewSite(ep, o)
		s.Start()
		h.sites[id] = s
	}
	t.Cleanup(func() {
		for _, s := range h.sites {
			s.Stop()
		}
		h.net.Close()
	})
	return h, dirs
}

// normalizeCheckpoint strips the fields that legitimately differ
// between a live checkpoint and a post-recovery one: the WAL marker
// sequence (each checkpoint takes a fresh marker) and the clock (the
// recovered clock observed replayed VTs, the live one also ticked on
// local events). Everything else — objects, values, VTs, floors,
// NextSeq — must survive crash recovery byte-for-byte.
func normalizeCheckpoint(t *testing.T, raw []byte) []byte {
	t.Helper()
	cp, err := wire.DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	cp.Seq = 0
	cp.Clock = vtime.VT{}
	out, err := wire.EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWALCrashRecovery kills a site mid-run (after a checkpoint plus
// further committed transactions recorded only in the WAL) and checks
// that checkpoint load + WAL replay reconstructs the exact pre-crash
// committed state: the recovered site's re-checkpoint is byte-identical
// to one taken just before the crash.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	wl := openTestWAL(t, dir)

	net1 := transport.NewNetwork(transport.Config{})
	ep1, err := net1.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSite(ep1, Options{WAL: wl})
	s.Start()

	ref, err := s.CreateObject(KindInt, "counter", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	set := func(site *Site, r ObjRef, v int64) {
		t.Helper()
		res := site.Submit(&Txn{
			Name:    "set",
			Execute: func(tx *Tx) error { return tx.Write(r, v) },
		}).Wait()
		if res.Err != nil || !res.Committed {
			t.Fatalf("set %d: %+v", v, res)
		}
	}
	for v := int64(1); v <= 3; v++ {
		set(s, ref, v)
	}

	// The checkpoint recovery will start from.
	var cpBuf bytes.Buffer
	if err := s.Checkpoint(&cpBuf); err != nil {
		t.Fatal(err)
	}

	// Commits recorded only in the WAL, past the checkpoint marker.
	for v := int64(10); v <= 14; v++ {
		set(s, ref, v)
	}

	// Reference state just before the crash. This writes a second WAL
	// marker; recovery from the older checkpoint must skip past it.
	var preBuf bytes.Buffer
	if err := s.Checkpoint(&preBuf); err != nil {
		t.Fatal(err)
	}
	want, err := s.ReadCommitted(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: stop the site and reopen the log cold.
	s.Stop()
	net1.Close()
	if err := wl.Close(); err != nil {
		t.Fatal(err)
	}

	wl2 := openTestWAL(t, dir)
	net2 := transport.NewNetwork(transport.Config{})
	defer net2.Close()
	ep2, err := net2.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSite(ep2, Options{WAL: wl2})
	s2.Start()
	defer s2.Stop()
	if err := s2.Recover(bytes.NewReader(cpBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	ref2, ok := s2.Object(ref.ID())
	if !ok {
		t.Fatal("recovered site lost the object")
	}
	got, err := s2.ReadCommitted(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered committed value %v, want %v", got, want)
	}

	var postBuf bytes.Buffer
	if err := s2.Checkpoint(&postBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeCheckpoint(t, preBuf.Bytes()), normalizeCheckpoint(t, postBuf.Bytes())) {
		t.Fatal("re-checkpoint after crash recovery differs from pre-crash checkpoint")
	}
}

// TestWALRecoverWithoutCheckpoint recovers a site that crashed before
// ever taking a checkpoint: the whole log replays over an empty site.
func TestWALRecoverWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	wl := openTestWAL(t, dir)

	net1 := transport.NewNetwork(transport.Config{})
	ep1, err := net1.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSite(ep1, Options{WAL: wl})
	s.Start()
	ref, err := s.CreateObject(KindInt, "x", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Submit(&Txn{
		Name:    "set",
		Execute: func(tx *Tx) error { return tx.Write(ref, int64(7)) },
	}).Wait()
	if res.Err != nil || !res.Committed {
		t.Fatalf("set: %+v", res)
	}
	s.Stop()
	net1.Close()
	if err := wl.Close(); err != nil {
		t.Fatal(err)
	}

	wl2 := openTestWAL(t, dir)
	net2 := transport.NewNetwork(transport.Config{})
	defer net2.Close()
	ep2, err := net2.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSite(ep2, Options{WAL: wl2})
	s2.Start()
	defer s2.Stop()
	if err := s2.Recover(nil); err != nil {
		t.Fatal(err)
	}

	// Object creation is not WAL-logged (DESIGN.md §13): the update
	// replays but has no target object to land on, so the site comes
	// back empty rather than corrupt. What must hold is that recovery
	// succeeds and the committed outcome is remembered.
	st := s2.Stats()
	if st.Commits != 0 {
		t.Fatalf("replay over empty site produced %d commits", st.Commits)
	}
}

// TestAntiEntropyConvergence partitions a two-site replica pair, lets
// both sides write (the primary commits locally, the secondary's write
// parks as an optimistic tail), heals, and syncs. The secondary's
// parked transaction must resolve through normal §3 confirmation and
// both sites must converge on the same committed value with no
// failover run.
func TestAntiEntropyConvergence(t *testing.T) {
	h, _ := walHarness(t, 2, Options{})
	refs := h.joined(KindInt, "shared", int64(0), 1, 2)

	// Baseline write from the secondary proves the pair is connected.
	if res := h.setInt(2, refs[2], 1); res.Err != nil || !res.Committed {
		t.Fatalf("baseline write: %+v", res)
	}

	// Silent partition: each side marks the other disconnected.
	if err := h.site(1).SetPeerDisconnected(2, true); err != nil {
		t.Fatal(err)
	}
	if err := h.site(2).SetPeerDisconnected(1, true); err != nil {
		t.Fatal(err)
	}
	h.net.Partition(1, 2)

	// Primary-side write commits locally during the partition.
	if res := h.setInt(1, refs[1], 100); res.Err != nil || !res.Committed {
		t.Fatalf("primary write during partition: %+v", res)
	}
	// Secondary-side read-write transaction parks waiting for the
	// unreachable primary (a blind write would take the commutative
	// fast path and commit locally; a read needs §3 confirmation).
	parked := h.site(2).Submit(&Txn{
		Name: "set",
		Execute: func(tx *Tx) error {
			if _, err := tx.Read(refs[2]); err != nil {
				return err
			}
			return tx.Write(refs[2], int64(200))
		},
	})

	// The submission executes asynchronously: make sure the transaction
	// actually sent its (dropped) confirmation request and parked before
	// healing the link, or it would just commit over the healed link.
	h.eventually(3*time.Second, "transaction parked behind the partition", func() bool {
		return h.site(2).WaitingLocal() >= 1
	})

	h.net.Heal(1, 2)
	if err := h.site(1).SetPeerDisconnected(2, false); err != nil {
		t.Fatal(err)
	}
	if err := h.site(2).SetPeerDisconnected(1, false); err != nil {
		t.Fatal(err)
	}
	if err := h.site(2).SyncWith(1); err != nil {
		t.Fatal(err)
	}

	res := parked.Wait()
	if res.Err != nil || !res.Committed {
		t.Fatalf("parked write after sync: %+v", res)
	}

	h.eventually(3*time.Second, "sites converged after anti-entropy", func() bool {
		a := h.committedInt(1, refs[1])
		b := h.committedInt(2, refs[2])
		return a == b && (a == 100 || a == 200)
	})

	st1, st2 := h.site(1).Stats(), h.site(2).Stats()
	if st1.FailoversRun != 0 || st2.FailoversRun != 0 {
		t.Fatalf("failover ran during weakly connected operation: %d/%d",
			st1.FailoversRun, st2.FailoversRun)
	}
	if st2.SyncSessions == 0 {
		t.Fatal("no sync session recorded at the initiating site")
	}
	if st2.SyncResubmits == 0 {
		t.Fatal("parked transaction was not resubmitted")
	}
	if st1.SyncRecordsApplied+st2.SyncRecordsApplied == 0 {
		t.Fatal("no WAL records exchanged during anti-entropy")
	}
}

// TestOfflineParksFailover marks a peer disconnected before it dies:
// the transport's failure report must park instead of running §3.4
// failover, and the parked failover must run once OfflineGrace expires.
func TestOfflineParksFailover(t *testing.T) {
	h := newHarnessOpts(t, 2, transport.Config{}, Options{OfflineGrace: 60 * time.Millisecond})
	h.joined(KindInt, "shared", int64(0), 1, 2)

	if err := h.site(1).SetPeerDisconnected(2, true); err != nil {
		t.Fatal(err)
	}
	h.net.Kill(2)

	h.eventually(2*time.Second, "failover parked", func() bool {
		st := h.site(1).Stats()
		return st.FailoversParked == 1 && st.FailoversRun == 0
	})
	h.eventually(2*time.Second, "parked failover ran after grace", func() bool {
		return h.site(1).Stats().FailoversRun == 1
	})
}
